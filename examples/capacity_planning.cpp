// Capacity planning: the paper's running example (Figure 1), end to end
// through the SQL front end.
//
// An analyst wants the LATEST server purchase dates that keep the risk of
// running out of CPU cores below 1% in every week of the planning
// horizon. Each candidate (feature_release, purchase1, purchase2) triple
// requires a full Monte Carlo sweep over @current_week — exactly the
// workload fingerprints accelerate.
//
//   $ ./capacity_planning

#include <cstdio>

#include "models/cloud_models.h"
#include "sql/script_runner.h"

namespace {

constexpr const char* kScenario = R"(
-- DEFINITION --
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @feature_release AS SET (12,36,44);
SELECT DemandModel(@current_week, @feature_release) AS demand,
       CapacityModel(@current_week, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
-- BATCH MODE --
OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.01
GROUP BY feature_release, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
)";

}  // namespace

int main() {
  using namespace jigsaw;

  ModelRegistry registry;
  if (!RegisterCloudModels(&registry).ok()) return 1;

  RunConfig cfg;
  cfg.num_samples = 1000;
  cfg.fingerprint_size = 10;
  sql::ScriptRunner runner(&registry, cfg);

  std::printf("Solving the Figure 1 purchase-planning query...\n\n");
  auto outcome = runner.Run(kScenario);
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  const auto& o = outcome.value();

  std::printf("%s\n", o.optimize->ToString().c_str());
  std::printf("\nfeasible purchase plans (max weekly overload risk < 1%%):\n");
  std::printf("feature | purchase1 | purchase2 | max E[overload]\n");
  std::printf("--------+-----------+-----------+----------------\n");
  int shown = 0;
  for (const auto& g : o.optimize->groups) {
    if (!g.feasible || shown >= 15) continue;
    std::printf("%7.0f | %9.0f | %9.0f | %.4f\n", g.group_valuation[0],
                g.group_valuation[1], g.group_valuation[2],
                g.constraint_lhs[0]);
    ++shown;
  }

  std::printf("\n--- execution profile ---\n%s", o.Report().c_str());
  return 0;
}
