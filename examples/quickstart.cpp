// Quickstart: the smallest useful Jigsaw program.
//
// Sweeps the Demand model over a year of weeks with the
// fingerprint-accelerated runner and shows how much Monte Carlo work the
// basis reuse saved compared to generate-everything.
//
//   $ ./quickstart

#include <cstdio>

#include "core/sim_runner.h"
#include "models/cloud_models.h"

int main() {
  using namespace jigsaw;

  // 1. A stochastic black-box model (Algorithm 1 of the paper).
  CloudModelConfig model_cfg;
  BlackBoxSimFunction demand(MakeDemandModel(model_cfg));

  // 2. The parameter space: one year of weeks with a mid-year feature
  //    release. Demand is gaussian at every point with (mean, stddev)
  //    depending on the parameters, so every week maps linearly onto the
  //    very first one — a single basis distribution serves the whole
  //    sweep.
  ParameterSpace space;
  if (!space.Add({"current_week", RangeDomain{1, 52, 1}}).ok() ||
      !space.Add({"feature_release", SetDomain{{26.0}}}).ok()) {
    std::fprintf(stderr, "failed to build parameter space\n");
    return 1;
  }

  // 3. Monte Carlo with fingerprint reuse (n=1000 samples, m=10).
  RunConfig cfg;
  cfg.num_samples = 1000;
  cfg.fingerprint_size = 10;
  SimulationRunner runner(cfg);

  std::printf("week | E[demand] | stddev | served-by\n");
  std::printf("-----+-----------+--------+----------\n");
  const auto results = runner.RunSweep(demand, space);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto valuation = space.ValuationAt(i);
    const auto& r = results[i];
    std::printf("%4.0f | %9.3f | %6.3f | %s basis #%u\n", valuation[0],
                r.metrics.mean, r.metrics.stddev,
                r.reused ? "mapped " : "new    ", r.basis_id);
  }

  const auto& stats = runner.stats();
  std::printf(
      "\n%llu points, %llu reused, %zu basis distribution(s), "
      "%llu black-box invocations (naive would need %llu)\n",
      static_cast<unsigned long long>(stats.points_evaluated),
      static_cast<unsigned long long>(stats.points_reused),
      runner.basis_store().size(),
      static_cast<unsigned long long>(stats.blackbox_invocations),
      static_cast<unsigned long long>(stats.points_evaluated *
                                      cfg.num_samples));
  return 0;
}
