// Minimal Jigsaw script runner: executes a query file (or stdin) against
// the built-in cloud model registry and prints the outcome — useful for
// experimenting with the query language without writing C++.
//
//   $ ./sql_repl my_scenario.sql
//   $ echo "DECLARE ... SELECT ... OPTIMIZE ..." | ./sql_repl

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "interactive/ascii_graph.h"
#include "models/cloud_models.h"
#include "sql/script_runner.h"

int main(int argc, char** argv) {
  using namespace jigsaw;

  std::string text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  }
  if (text.empty()) {
    std::fprintf(stderr, "usage: sql_repl [script.sql]  (or pipe a script)\n");
    return 1;
  }

  ModelRegistry registry;
  if (!RegisterCloudModels(&registry).ok()) return 1;

  RunConfig cfg;
  cfg.num_samples = 500;
  cfg.fingerprint_size = 10;
  sql::ScriptRunner runner(&registry, cfg);

  auto outcome = runner.Run(text);
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  const auto& o = outcome.value();

  if (o.optimize) {
    std::printf("%s\n", o.optimize->ToString().c_str());
    std::printf("group valuations explored: %zu\n", o.optimize->groups.size());
  }
  if (o.graph) {
    std::vector<AsciiSeries> series(o.graph->spec.series.size());
    for (std::size_t s = 0; s < series.size(); ++s) {
      series[s].label = o.graph->spec.series[s].column;
      series[s].style = o.graph->spec.series[s].style;
      for (const auto& p : o.graph->points) {
        series[s].x.push_back(p.x);
        series[s].y.push_back(p.y[s]);
      }
    }
    std::printf("%s", RenderAsciiGraph(series).c_str());
  }
  std::printf("%s", o.Report().c_str());
  return 0;
}
