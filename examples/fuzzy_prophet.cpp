// Fuzzy Prophet: the interactive dashboard of Section 5 / Figure 2,
// rendered in the terminal.
//
// The GRAPH OVER query plots expected overload risk, capacity and demand
// volatility across the year for a chosen purchase plan; the interactive
// session below it shows progressive refinement of a single week's
// estimate — the initial guess arrives after ~10 samples via a mapped
// basis, then sharpens as refinement ticks add samples.
//
//   $ ./fuzzy_prophet

#include <cstdio>

#include "interactive/ascii_graph.h"
#include "interactive/interactive_session.h"
#include "models/cloud_models.h"
#include "sql/script_runner.h"

namespace {

constexpr const char* kScenario = R"(
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
SELECT DemandModel(@current_week, 44) AS demand,
       CapacityModel(@current_week, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
-- INTERACTIVE MODE --
GRAPH OVER @current_week
  EXPECT overload WITH bold red,
  EXPECT capacity WITH blue y2,
  EXPECT_STDDEV demand WITH orange y2
)";

}  // namespace

int main() {
  using namespace jigsaw;

  ModelRegistry registry;
  if (!RegisterCloudModels(&registry).ok()) return 1;

  RunConfig cfg;
  cfg.num_samples = 500;
  cfg.fingerprint_size = 10;

  // --- the Figure 2 chart -------------------------------------------------
  sql::ScriptRunner runner(&registry, cfg);
  auto outcome =
      runner.Run(kScenario, {{"purchase1", 38.0}, {"purchase2", 46.0}});
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  const auto& graph = *outcome.value().graph;

  std::printf("Fuzzy Prophet — purchases at weeks 38 and 46 (deliberately late: watch the risk spike)\n\n");
  std::vector<AsciiSeries> series(graph.spec.series.size());
  for (std::size_t s = 0; s < graph.spec.series.size(); ++s) {
    series[s].label = graph.spec.series[s].column;
    series[s].style = graph.spec.series[s].style;
  }
  // Normalize each series to [0,1] so risk (0..1) and capacity (~40..76)
  // share the chart, mirroring the paper's dual-axis GUI ("y2" series).
  for (std::size_t s = 0; s < series.size(); ++s) {
    double lo = 1e300, hi = -1e300;
    for (const auto& p : graph.points) {
      lo = std::min(lo, p.y[s]);
      hi = std::max(hi, p.y[s]);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    for (const auto& p : graph.points) {
      series[s].x.push_back(p.x);
      series[s].y.push_back((p.y[s] - lo) / span);
    }
    std::printf("  %-22s range [%.3f, %.3f] (normalized for display)\n",
                series[s].label.c_str(), lo, hi);
  }
  std::printf("\n%s\n", RenderAsciiGraph(series).c_str());

  // --- progressive refinement of one what-if ------------------------------
  std::printf("Progressive estimate of E[capacity] at week 30:\n");
  CloudModelConfig model_cfg;
  auto capacity = MakeCapacityModel(model_cfg);
  auto fn = std::make_shared<CallableSimFunction>(
      "capacity@plan",
      [capacity](std::span<const double> p, std::size_t k,
                 const SeedVector& seeds) {
        const std::vector<double> args = {p[0], 38.0, 46.0};
        return InvokeSeeded(*capacity, args, seeds.seed(k));
      });
  ParameterSpace space;
  if (!space.Add({"week", RangeDomain{0, 52, 1}}).ok()) return 1;

  InteractiveConfig icfg;
  icfg.run = cfg;
  InteractiveSession session(std::move(fn), std::move(space), icfg);
  if (!session.SetFocus(30).ok()) return 1;

  for (int round = 0; round < 6; ++round) {
    session.Run(round == 0 ? 1 : 20);
    const DisplayEstimate est = session.EstimateFor(30);
    std::printf(
        "  after %4llu evaluations: E = %8.3f +/- %-7.3f (%s, %lld samples "
        "behind it)\n",
        static_cast<unsigned long long>(session.stats().evaluations),
        est.mean, est.std_error, est.borrowed ? "borrowed" : "own basis",
        static_cast<long long>(est.support));
  }
  std::printf(
      "\n(basis distributions: %zu, rebinds after failed validation: %llu)\n",
      session.basis_count(),
      static_cast<unsigned long long>(session.stats().rebinds));
  return 0;
}
