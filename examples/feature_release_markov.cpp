// Feature release planning with a cyclical dependency (Figure 5 /
// Section 4).
//
// The feature release date depends on forecast demand, and demand
// depends on the release date — a Markov chain evaluated week by week.
// Jigsaw's MarkovJump skips the long non-Markovian stretches before and
// after the pull-in event by validating a synthesized estimator against
// chain fingerprints.
//
//   $ ./feature_release_markov

#include <cstdio>

#include "models/cloud_models.h"
#include "sql/chain_process.h"
#include "sql/script_runner.h"

namespace {

constexpr const char* kScenario = R"(
-- DEFINITION --
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @release_week AS CHAIN release_week
  FROM @current_week : @current_week - 1 INITIAL VALUE 52;
SELECT CASE WHEN demand > 26 AND @current_week + 4 < @release_week
            THEN @current_week + 4 ELSE @release_week END AS release_week,
       demand
FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
INTO results;
)";

}  // namespace

int main() {
  using namespace jigsaw;

  ModelRegistry registry;
  if (!RegisterCloudModels(&registry).ok()) return 1;

  auto bound = sql::ParseAndBind(kScenario, registry);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind error: %s\n",
                 bound.status().ToString().c_str());
    return 1;
  }

  RunConfig cfg;
  cfg.num_samples = 1000;
  cfg.fingerprint_size = 10;

  std::printf(
      "Release pulled in when demand crosses 26 (expected near week 26).\n"
      "Evaluating the chain at selected horizons, naive vs Markov-jump:\n\n");
  std::printf(
      "week | E[release] naive/jump | E[demand] naive/jump | honest steps "
      "naive/jump\n");
  std::printf(
      "-----+-----------------------+----------------------+-------------"
      "----------\n");

  for (std::int64_t target : {10, 20, 30, 40, 52}) {
    ChainRunStats naive_stats, jump_stats;
    auto naive_rel = sql::RunChainScenario(bound.value(), "release_week",
                                           target, cfg, false, &naive_stats);
    auto jump_rel = sql::RunChainScenario(bound.value(), "release_week",
                                          target, cfg, true, &jump_stats);
    auto naive_dem = sql::RunChainScenario(bound.value(), "demand", target,
                                           cfg, false, nullptr);
    auto jump_dem = sql::RunChainScenario(bound.value(), "demand", target,
                                          cfg, true, nullptr);
    if (!naive_rel.ok() || !jump_rel.ok() || !naive_dem.ok() ||
        !jump_dem.ok()) {
      std::fprintf(stderr, "chain run failed\n");
      return 1;
    }
    std::printf("%4lld | %9.2f / %-9.2f | %8.2f / %-8.2f | %8llu / %llu\n",
                static_cast<long long>(target), naive_rel.value().mean,
                jump_rel.value().mean, naive_dem.value().mean,
                jump_dem.value().mean,
                static_cast<unsigned long long>(naive_stats.step_invocations),
                static_cast<unsigned long long>(jump_stats.step_invocations));
  }

  std::printf(
      "\nThe jump runner steps only the %zu fingerprint instances through\n"
      "quiet regions and rebuilds the full population of %zu instances\n"
      "from the mapped estimator — the Section 4 speedup.\n",
      cfg.fingerprint_size, cfg.num_samples);
  return 0;
}
