// Ablation (ours): quantifying the Section 6.2 accuracy claim.
//
// "We have not observed any significant error of this sort in any of our
// experiments, suggesting that a fingerprint length of 10 is sufficient."
//
// For each Figure 6 workload this bench runs the fingerprint-accelerated
// sweep and the naive sweep with identical seeds and reports the maximum
// and mean absolute deviation of E[output] across all parameter points,
// plus the reuse rate. Linear-structure models (Demand, Capacity,
// SynthBasis) should show ~0 error; Overload's boolean collapse is where
// fingerprint-length risk concentrates.

#include "bench_common.h"

#include "util/timer.h"

#include <cmath>

#include "core/sim_runner.h"
#include "models/cloud_models.h"

namespace {

using namespace jigsaw;
using bench::PaperConfig;

void AccuracyBench(benchmark::State& state, const BlackBoxPtr& model,
                   const ParameterSpace& space) {
  BlackBoxSimFunction fn(model);
  double max_err = 0.0, mean_err = 0.0, reuse_rate = 0.0;
  for (auto _ : state) {
    RunConfig fast_cfg = PaperConfig();
    SimulationRunner fast(fast_cfg);
    RunConfig slow_cfg = PaperConfig();
    slow_cfg.use_fingerprints = false;
    SimulationRunner slow(slow_cfg);

    WallTimer timer;
    const auto a = fast.RunSweep(fn, space);
    state.SetIterationTime(timer.ElapsedSeconds());
    const auto b = slow.RunSweep(fn, space);

    max_err = 0.0;
    mean_err = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double err = std::fabs(a[i].metrics.mean - b[i].metrics.mean);
      max_err = std::max(max_err, err);
      mean_err += err;
    }
    mean_err /= static_cast<double>(a.size());
    reuse_rate = static_cast<double>(fast.stats().points_reused) /
                 static_cast<double>(fast.stats().points_evaluated);
  }
  state.counters["max_abs_mean_err"] = max_err;
  state.counters["mean_abs_mean_err"] = mean_err;
  state.counters["reuse_rate"] = reuse_rate;
}

ParameterSpace DemandSpace() {
  ParameterSpace space;
  (void)space.Add({"week", RangeDomain{1, 49, 1}});
  (void)space.Add({"feature", RangeDomain{0, 38, 2}});
  return space;
}

ParameterSpace CapacitySpace() {
  ParameterSpace space;
  (void)space.Add({"week", RangeDomain{0, 25, 1}});
  (void)space.Add({"p1", RangeDomain{0, 48, 8}});
  (void)space.Add({"p2", RangeDomain{0, 48, 8}});
  return space;
}

ParameterSpace SynthSpace() {
  ParameterSpace space;
  (void)space.Add({"point", RangeDomain{0, 499, 1}});
  return space;
}

void BM_Accuracy_Demand(benchmark::State& state) {
  AccuracyBench(state, MakeDemandModel({}), DemandSpace());
}
void BM_Accuracy_Capacity(benchmark::State& state) {
  AccuracyBench(state, MakeCapacityModel({}), CapacitySpace());
}
// Overload is measured across the demand/capacity crossing, where its
// boolean output actually varies (elsewhere the error is trivially 0).
ParameterSpace OverloadTransitionSpace() {
  ParameterSpace space;
  (void)space.Add({"week", RangeDomain{30, 55, 1}});
  (void)space.Add({"p1", RangeDomain{28, 52, 4}});
  (void)space.Add({"p2", RangeDomain{28, 52, 4}});
  return space;
}

void BM_Accuracy_Overload(benchmark::State& state) {
  AccuracyBench(state, MakeOverloadModel({}), OverloadTransitionSpace());
}
void BM_Accuracy_SynthBasis(benchmark::State& state) {
  CloudModelConfig cfg;
  cfg.synth_num_basis = 25;
  AccuracyBench(state, MakeSynthBasisModel(cfg), SynthSpace());
}

BENCHMARK(BM_Accuracy_Demand)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Accuracy_Capacity)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Accuracy_Overload)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Accuracy_SynthBasis)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
