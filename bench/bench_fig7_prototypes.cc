// Figure 7 (table): "User Interface Wrapper vs Core Engine Simulator
// Timing comparison. Values are in time per parameter combination."
//
// Paper result (C# + MS SQL wrapper vs Ruby core engine):
//   Demand      0.1964  s/pc   vs 0.00096 s/pc   (core ~200x faster)
//   Capacity    0.84525 s/pc   vs 0.0028  s/pc   (core ~300x faster)
//   Overload    5.4625  s/pc   vs 0.0928  s/pc   (core ~60x faster)
//   UserSelect  34.4    s/pc   vs 252.454 s/pc   (WRAPPER ~7x faster!)
//
// Shape to reproduce: the layered engine (per-invocation re-planning,
// boxed row-at-a-time interpretation, string interop) loses badly on
// model-bound queries but WINS on the data-bound UserSelection workload,
// because its set-oriented evaluation materializes each sampled user
// population once per world while the lightweight engine re-simulates
// every user inside the black box on every invocation.
//
// Each benchmark row reports s/pc (seconds per parameter combination) in
// the "s_per_pc" counter; compare Layered vs Core rows per model.

#include "bench_common.h"

#include "core/sim_runner.h"
#include "models/cloud_models.h"
#include "pdb/layered_engine.h"
#include "pdb/operators.h"
#include "pdb/vg_table.h"

namespace {

using namespace jigsaw;
using bench::FullScale;

CloudModelConfig ModelCfg() {
  CloudModelConfig cfg;
  cfg.num_users = FullScale() ? 20000 : 2000;
  return cfg;
}

RunConfig EngineCfg() {
  RunConfig cfg;
  cfg.num_samples = FullScale() ? 1000 : 100;
  cfg.fingerprint_size = 10;
  // Figure 7 compares raw engines; fingerprint reuse is off so the
  // numbers isolate execution-stack overheads (Figure 8 measures reuse).
  cfg.use_fingerprints = false;
  return cfg;
}

constexpr int kPoints = 10;  // parameter combinations measured

// Builds the scenario plan for one model as the layered engine sees it:
// Project(ModelCall(@params...)) over DUAL, rebuilt per invocation.
pdb::PlanNodePtr ScalarModelPlan(const BlackBoxPtr& model, int arity) {
  std::vector<pdb::ExprPtr> args;
  args.push_back(pdb::MakeParamRef(0, "week"));
  if (arity >= 2) args.push_back(pdb::MakeLiteral(pdb::Value(20.0)));
  if (arity >= 3) args.push_back(pdb::MakeLiteral(pdb::Value(40.0)));
  return pdb::MakeProject(pdb::MakeDualScan(),
                          {pdb::MakeModelCall(model, std::move(args), 1)},
                          {"out"});
}

void RunLayeredScalar(benchmark::State& state, const BlackBoxPtr& model,
                      int arity) {
  const RunConfig cfg = EngineCfg();
  for (auto _ : state) {
    pdb::LayeredEngine engine(cfg);
    for (int p = 0; p < kPoints; ++p) {
      const std::vector<double> params = {static_cast<double>(p * 5)};
      auto r = engine.RunPoint(
          [&]() -> Result<pdb::PlanNodePtr> {
            return ScalarModelPlan(model, arity);
          },
          params);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    }
  }
  state.counters["s_per_pc"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kPoints,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void RunCoreScalar(benchmark::State& state, const BlackBoxPtr& model,
                   int arity) {
  const RunConfig cfg = EngineCfg();
  auto fn = std::make_shared<CallableSimFunction>(
      "core", [model, arity](std::span<const double> p, std::size_t k,
                             const SeedVector& seeds) {
        std::vector<double> args = {p[0]};
        if (arity >= 2) args.push_back(20.0);
        if (arity >= 3) args.push_back(40.0);
        return InvokeSeeded(*model, args, seeds.seed(k), 1);
      });
  for (auto _ : state) {
    SimulationRunner runner(cfg);
    for (int p = 0; p < kPoints; ++p) {
      const std::vector<double> params = {static_cast<double>(p * 5)};
      benchmark::DoNotOptimize(runner.RunPoint(*fn, params));
    }
  }
  state.counters["s_per_pc"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kPoints,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

// --- Demand ---------------------------------------------------------------

void BM_Layered_Demand(benchmark::State& state) {
  RunLayeredScalar(state, MakeDemandModel(ModelCfg()), 2);
}
void BM_Core_Demand(benchmark::State& state) {
  RunCoreScalar(state, MakeDemandModel(ModelCfg()), 2);
}

// --- Capacity ---------------------------------------------------------------

void BM_Layered_Capacity(benchmark::State& state) {
  RunLayeredScalar(state, MakeCapacityModel(ModelCfg()), 3);
}
void BM_Core_Capacity(benchmark::State& state) {
  RunCoreScalar(state, MakeCapacityModel(ModelCfg()), 3);
}

// --- Overload ---------------------------------------------------------------

void BM_Layered_Overload(benchmark::State& state) {
  RunLayeredScalar(state, MakeOverloadModel(ModelCfg()), 3);
}
void BM_Core_Overload(benchmark::State& state) {
  RunCoreScalar(state, MakeOverloadModel(ModelCfg()), 3);
}

// --- UserSelect -------------------------------------------------------------
// Layered: the users VG table is realized once per world (WorldCache) and
// re-aggregated per point; Core: the black box re-simulates every user on
// every invocation.

void BM_Layered_UserSelect(benchmark::State& state) {
  const CloudModelConfig mcfg = ModelCfg();
  const RunConfig cfg = EngineCfg();
  auto users = pdb::MakeUsersVGTable(mcfg.num_users, mcfg.user_arrival_rate,
                                     mcfg.user_base_demand,
                                     mcfg.user_demand_spread,
                                     mcfg.user_sim_depth);
  for (auto _ : state) {
    pdb::LayeredEngine engine(cfg);
    for (int p = 0; p < kPoints; ++p) {
      const std::vector<double> params = {static_cast<double>(p * 5)};
      auto r = engine.RunPoint(
          [&]() -> Result<pdb::PlanNodePtr> {
            std::vector<pdb::AggSpec> aggs;
            aggs.push_back(pdb::AggSpec{pdb::AggKind::kSum,
                                        pdb::MakeColumnRef(2, "requirement"),
                                        "total"});
            return pdb::MakeHashAggregate(
                pdb::MakeFilter(
                    pdb::MakeCachedVGScan(users, &engine.world_cache()),
                    pdb::MakeBinary(pdb::BinaryOp::kLe,
                                    pdb::MakeColumnRef(1, "signup_week"),
                                    pdb::MakeParamRef(0, "week"))),
                {}, {}, std::move(aggs));
          },
          params);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    }
  }
  state.counters["s_per_pc"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kPoints,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_Core_UserSelect(benchmark::State& state) {
  RunCoreScalar(state, MakeUserSelectionModel(ModelCfg()), 1);
}

BENCHMARK(BM_Layered_Demand)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Core_Demand)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Layered_Capacity)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Core_Capacity)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Layered_Overload)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Core_Overload)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Layered_UserSelect)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Core_UserSelect)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
