// Figure 11: "Indexing, growing the parameter space with basis size."
//
// Paper result: with the basis fixed at 10% of the parameter space and
// both scaled together, the Array scan's per-point cost grows linearly
// with the basis count while Normalization and Sorted SID grow
// sub-linearly (one hash lookup regardless of basis count).
//
// Rows: basis count (Arg); space = 10x basis count points.
// Counters: s_per_point, bases.

#include "bench_common.h"

#include "util/timer.h"

#include "core/sim_runner.h"
#include "models/cloud_models.h"

namespace {

using namespace jigsaw;
using bench::PaperConfig;

void ScalingBench(benchmark::State& state, IndexKind index) {
  const int num_basis = static_cast<int>(state.range(0));
  const double points = num_basis * 10;  // basis = 10% of the space
  CloudModelConfig mcfg;
  mcfg.synth_num_basis = num_basis;
  BlackBoxSimFunction fn(MakeSynthBasisModel(mcfg));

  ParameterSpace space;
  (void)space.Add({"point", RangeDomain{0, points - 1, 1}});

  RunConfig cfg = PaperConfig();
  cfg.index_kind = index;
  std::size_t bases = 0;
  for (auto _ : state) {
    SimulationRunner runner(cfg);
    WallTimer timer;
    runner.RunSweep(fn, space);
    state.SetIterationTime(timer.ElapsedSeconds());
    bases = runner.basis_store().size();
  }
  state.counters["s_per_point"] = benchmark::Counter(
      points, benchmark::Counter::kIsIterationInvariantRate |
                  benchmark::Counter::kInvert);
  state.counters["bases"] = static_cast<double>(bases);
}

void BM_Scale_Array(benchmark::State& state) {
  ScalingBench(state, IndexKind::kArray);
}
void BM_Scale_Normalization(benchmark::State& state) {
  ScalingBench(state, IndexKind::kNormalization);
}
void BM_Scale_SortedSID(benchmark::State& state) {
  ScalingBench(state, IndexKind::kSortedSid);
}

const std::vector<std::int64_t> kBasisCounts = {50, 100, 150, 200, 300,
                                                400, 500};

void Register() {
  for (auto b : kBasisCounts) {
    benchmark::RegisterBenchmark("BM_Scale_Array", BM_Scale_Array)
        ->Arg(b)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
    benchmark::RegisterBenchmark("BM_Scale_Normalization",
                                 BM_Scale_Normalization)
        ->Arg(b)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
    benchmark::RegisterBenchmark("BM_Scale_SortedSID", BM_Scale_SortedSID)
        ->Arg(b)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
