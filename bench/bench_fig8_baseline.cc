// Figure 8 (bar chart): "Jigsaw vs fully exploring the parameter space."
//
// Paper result: full evaluation takes minutes (bars up to ~27 min);
// Jigsaw's fingerprint reuse reduces Usage (the Demand model), Capacity
// and MarkovStep to a few percent of that (annotated 0.06 / 0.15 / 0.36
// min), while Overload — whose boolean output destroys the linear
// structure — improves by only about 2x.
//
// Shape to reproduce: speedup >> 10x for Demand/Capacity/MarkovStep,
// ~2x (and clearly the smallest) for Overload. The "speedup" counter of
// each Jigsaw row is measured against its Full counterpart; "bases"
// reports how many basis distributions the sweep needed.

#include "bench_common.h"

#include "util/timer.h"

#include "core/sim_runner.h"
#include "markov/chain_runner.h"
#include "markov/markov_models.h"
#include "models/cloud_models.h"

namespace {

using namespace jigsaw;
using bench::FullScale;
using bench::PaperConfig;

// Parameter spaces mirroring the paper's point counts, scaled down by
// default ("Demand ~5000 points, Capacity ~8000 points, MarkovStep
// ~2500 steps").
ParameterSpace DemandSpace() {
  ParameterSpace space;
  const double weeks = FullScale() ? 99 : 49;     // x (feature count) below
  const double features = FullScale() ? 49 : 19;
  (void)space.Add({"week", RangeDomain{1, weeks, 1}});
  (void)space.Add({"feature", RangeDomain{0, features * 2, 2}});
  return space;  // full: 99*50 = 4950 points; scaled: 49*20 = 980
}

ParameterSpace CapacitySpace() {
  ParameterSpace space;
  const double weeks = FullScale() ? 51 : 25;
  (void)space.Add({"week", RangeDomain{0, weeks, 1}});
  (void)space.Add({"p1", RangeDomain{0, 48, 4}});
  (void)space.Add({"p2", RangeDomain{0, 48, 4}});
  return space;  // full: 52*13*13 = 8788; scaled: 26*13*13 = 4394
}

std::int64_t MarkovSteps() { return FullScale() ? 2500 : 600; }

double RunSweep(const SimFunction& fn, const ParameterSpace& space,
                bool use_fingerprints, std::size_t* bases,
                std::uint64_t* invocations,
                MappingFinderPtr finder = nullptr) {
  RunConfig cfg = PaperConfig();
  cfg.use_fingerprints = use_fingerprints;
  SimulationRunner runner(cfg, std::move(finder));
  WallTimer timer;
  runner.RunSweep(fn, space);
  const double secs = timer.ElapsedSeconds();
  if (bases != nullptr) *bases = runner.basis_store().size();
  if (invocations != nullptr) {
    *invocations = runner.stats().blackbox_invocations;
  }
  return secs;
}

void SweepBench(benchmark::State& state, const BlackBoxPtr& model,
                const ParameterSpace& space, bool jigsaw,
                MappingFinderPtr finder = nullptr) {
  BlackBoxSimFunction fn(model);
  std::size_t bases = 0;
  std::uint64_t invocations = 0;
  for (auto _ : state) {
    const double secs =
        RunSweep(fn, space, jigsaw, &bases, &invocations, finder);
    state.SetIterationTime(secs);
  }
  state.counters["points"] = static_cast<double>(space.NumPoints());
  state.counters["bases"] = static_cast<double>(bases);
  state.counters["invocations"] = static_cast<double>(invocations);
}

void BM_Full_Usage(benchmark::State& state) {
  SweepBench(state, MakeDemandModel({}), DemandSpace(), false);
}
void BM_Jigsaw_Usage(benchmark::State& state) {
  SweepBench(state, MakeDemandModel({}), DemandSpace(), true);
}
void BM_Full_Capacity(benchmark::State& state) {
  SweepBench(state, MakeCapacityModel({}), CapacitySpace(), false);
}
void BM_Jigsaw_Capacity(benchmark::State& state) {
  SweepBench(state, MakeCapacityModel({}), CapacitySpace(), true);
}
// Overload is swept across the demand/capacity crossing (weeks ~30-55
// with the default 40-core base), where its boolean output varies: the
// region where fingerprint remapping cannot help.
ParameterSpace OverloadSpace() {
  ParameterSpace space;
  (void)space.Add({"week", RangeDomain{30, FullScale() ? 81.0 : 55.0, 1}});
  (void)space.Add({"p1", RangeDomain{28, 52, 2}});
  (void)space.Add({"p2", RangeDomain{28, 52, 2}});
  return space;
}

void BM_Full_Overload(benchmark::State& state) {
  SweepBench(state, MakeOverloadModel({}), OverloadSpace(), false);
}
void BM_Jigsaw_Overload(benchmark::State& state) {
  SweepBench(state, MakeOverloadModel({}), OverloadSpace(), true);
}
// Paper-literal Algorithm 2 (no constant-fingerprint translation): the
// all-zero / all-one risk regions can never be reused, which is the
// regime in which the paper measured its ~2x Overload result.
void BM_Jigsaw_OverloadStrictAlg2(benchmark::State& state) {
  SweepBench(state, MakeOverloadModel({}), OverloadSpace(), true,
             LinearMappingFinder::MakeStrict());
}

void BM_Full_MarkovStep(benchmark::State& state) {
  MarkovStepProcess process((MarkovStepConfig()));
  const RunConfig cfg = PaperConfig();
  for (auto _ : state) {
    NaiveChainRunner runner(cfg);
    WallTimer timer;
    benchmark::DoNotOptimize(runner.Run(process, MarkovSteps()));
    state.SetIterationTime(timer.ElapsedSeconds());
  }
  state.counters["steps"] = static_cast<double>(MarkovSteps());
}

void BM_Jigsaw_MarkovStep(benchmark::State& state) {
  MarkovStepProcess process((MarkovStepConfig()));
  const RunConfig cfg = PaperConfig();
  std::uint64_t honest = 0;
  for (auto _ : state) {
    MarkovJumpRunner runner(cfg);
    WallTimer timer;
    const auto result = runner.Run(process, MarkovSteps());
    state.SetIterationTime(timer.ElapsedSeconds());
    honest = result.stats.step_invocations;
  }
  state.counters["steps"] = static_cast<double>(MarkovSteps());
  state.counters["honest_step_invocations"] = static_cast<double>(honest);
}

BENCHMARK(BM_Full_Usage)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Jigsaw_Usage)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Full_Capacity)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Jigsaw_Capacity)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Full_Overload)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Jigsaw_Overload)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Jigsaw_OverloadStrictAlg2)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Full_MarkovStep)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Jigsaw_MarkovStep)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
