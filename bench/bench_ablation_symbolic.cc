// Ablation (paper Section 6.2's proposed improvement, implemented):
// symbolic execution for boolean queries.
//
// "This strongly suggests that Jigsaw's techniques can be further
// improved by incorporating them into a database engine with a symbolic
// execution strategy (e.g. PIP). In such a system, database operations
// between random variables mapped from the same basis distribution are
// resolved symbolically."
//
// Three ways to sweep the Overload query P(capacity < demand):
//   Boolean:   the Overload black box through the fingerprint runner —
//              the paper's measured (weak) case;
//   Symbolic:  Demand and Capacity through the fingerprint runner with
//              retained basis samples, then P(X > Y) via one pass over
//              seed-aligned cached samples (no further invocations);
//   Full:      naive generate-everything on the boolean query.
//
// Expected shape: Symbolic recovers the parents' near-full reuse and
// beats Boolean whenever boolean fingerprints fragment, at identical
// estimate quality ("max_abs_err" counter vs the Full reference).

#include "bench_common.h"

#include "util/timer.h"

#include <cmath>

#include "core/symbolic.h"
#include "models/cloud_models.h"

namespace {

using namespace jigsaw;
using bench::PaperConfig;

ParameterSpace OverloadSpace() {
  ParameterSpace space;
  (void)space.Add({"week", RangeDomain{30, 55, 1}});
  (void)space.Add({"p1", RangeDomain{28, 52, 4}});
  (void)space.Add({"p2", RangeDomain{28, 52, 4}});
  return space;
}

std::vector<double> FullReference() {
  static std::vector<double> reference = [] {
    BlackBoxSimFunction fn(MakeOverloadModel({}));
    RunConfig cfg = PaperConfig();
    cfg.use_fingerprints = false;
    SimulationRunner runner(cfg);
    std::vector<double> out;
    for (const auto& r : runner.RunSweep(fn, OverloadSpace())) {
      out.push_back(r.metrics.mean);
    }
    return out;
  }();
  return reference;
}

void BM_Overload_Full(benchmark::State& state) {
  BlackBoxSimFunction fn(MakeOverloadModel({}));
  RunConfig cfg = PaperConfig();
  cfg.use_fingerprints = false;
  for (auto _ : state) {
    SimulationRunner runner(cfg);
    WallTimer timer;
    benchmark::DoNotOptimize(runner.RunSweep(fn, OverloadSpace()));
    state.SetIterationTime(timer.ElapsedSeconds());
  }
}

void BM_Overload_Boolean(benchmark::State& state) {
  BlackBoxSimFunction fn(MakeOverloadModel({}));
  const auto reference = FullReference();
  double max_err = 0.0;
  std::uint64_t invocations = 0;
  for (auto _ : state) {
    SimulationRunner runner(PaperConfig());
    WallTimer timer;
    const auto results = runner.RunSweep(fn, OverloadSpace());
    state.SetIterationTime(timer.ElapsedSeconds());
    max_err = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      max_err = std::max(
          max_err, std::fabs(results[i].metrics.mean - reference[i]));
    }
    invocations = runner.stats().blackbox_invocations;
  }
  state.counters["max_abs_err"] = max_err;
  state.counters["invocations"] = static_cast<double>(invocations);
}

void BM_Overload_Symbolic(benchmark::State& state) {
  CloudModelConfig mcfg;
  BlackBoxSimFunction demand_fn(MakeDemandModel(mcfg), /*call_site=*/1);
  BlackBoxSimFunction capacity_fn(MakeCapacityModel(mcfg), /*call_site=*/2);
  const auto reference = FullReference();
  const ParameterSpace space = OverloadSpace();

  RunConfig cfg = PaperConfig();
  cfg.keep_samples = true;  // symbolic execution reads basis samples

  double max_err = 0.0;
  std::uint64_t invocations = 0;
  for (auto _ : state) {
    SimulationRunner runner(cfg);
    WallTimer timer;
    double err = 0.0;
    for (std::size_t i = 0; i < space.NumPoints(); ++i) {
      const auto v = space.ValuationAt(i);
      const std::vector<double> dparams = {v[0], 1e9};  // feature ignored
      const auto dpoint = runner.RunPoint(demand_fn, dparams);
      const auto cpoint = runner.RunPoint(capacity_fn, v);
      auto dsym = SymbolicVar::FromPoint(runner.basis_store(), dpoint);
      auto csym = SymbolicVar::FromPoint(runner.basis_store(), cpoint);
      if (!dsym.ok() || !csym.ok()) {
        state.SkipWithError("symbolic view unavailable");
        break;
      }
      auto p = dsym.value().ProbGreater(csym.value());
      if (!p.ok()) {
        state.SkipWithError(p.status().ToString().c_str());
        break;
      }
      err = std::max(err, std::fabs(p.value() - reference[i]));
    }
    state.SetIterationTime(timer.ElapsedSeconds());
    max_err = err;
    invocations = runner.stats().blackbox_invocations;
  }
  state.counters["max_abs_err"] = max_err;
  state.counters["invocations"] = static_cast<double>(invocations);
}

BENCHMARK(BM_Overload_Full)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Overload_Boolean)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Overload_Symbolic)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
