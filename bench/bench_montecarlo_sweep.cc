// MONTECARLO OVER @p scaling: how the two-axis (points x worlds) fan-out
// behaves as the point count grows, on both expression paths.
//
// For each point count the sweep statement runs three ways:
//
//   standalone — N standalone MONTECARLO statements, serial: the
//                semantics the sweep must reproduce bit-for-bit;
//   serial     — MONTECARLO OVER with num_threads=1;
//   parallel   — MONTECARLO OVER with --num_threads workers (every
//                (point, world-chunk) cell is one pool task).
//
// Every run's per-point metrics are folded into a bitwise checksum; the
// binary exits non-zero if any of the three diverge — CI smoke-runs it
// threaded as the machine check of the sweep determinism contract.
//
// Every row is a JSON-lines record on stdout; a human summary goes to
// stderr. Flags: --num_samples=N --batch_size=N --num_threads=N
// (bench_common.h).

#include "bench_common.h"

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "models/cloud_models.h"
#include "sql/script_runner.h"
#include "util/timer.h"

namespace {

using namespace jigsaw;
using bench::BenchFlags;
using bench::EmitJsonLine;
using bench::JsonLineBuilder;

/// Order-sensitive bitwise fold (FNV-1a over the raw doubles).
class Checksum {
 public:
  void FoldMetrics(const OutputMetrics& m) {
    const double fields[] = {static_cast<double>(m.count),
                             m.mean,
                             m.stddev,
                             m.std_error,
                             m.min,
                             m.max,
                             m.p50,
                             m.p95};
    for (double x : fields) {
      std::uint64_t u;
      std::memcpy(&u, &x, sizeof u);
      h_ = (h_ ^ u) * 0x100000001b3ULL;
    }
  }
  void FoldColumns(const std::map<std::string, OutputMetrics>& columns) {
    for (const auto& [name, m] : columns) FoldMetrics(m);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

constexpr const char* kScenario = R"(
DECLARE PARAMETER @w AS RANGE 0 TO 63 STEP BY 1;
SELECT DemandModel(@w, 36) AS demand,
       CapacityModel(@w, 8, 8) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO r;
)";

std::string SweepStatement(std::size_t points) {
  std::string in;
  for (std::size_t i = 0; i < points; ++i) {
    in += (in.empty() ? "" : ", ") + std::to_string(i);
  }
  return std::string(kScenario) + "MONTECARLO OVER @w IN (" + in + ");";
}

struct RunResult {
  double elapsed_s = 0.0;
  std::uint64_t cells = 0;  ///< points x worlds evaluated
  std::uint64_t checksum = 0;
  bool ok = true;
};

RunConfig MakeConfig(const BenchFlags& flags, std::size_t threads,
                     bool compiled) {
  RunConfig cfg;
  cfg.num_samples = flags.num_samples;
  cfg.num_threads = threads;
  cfg.batch_size = flags.batch_size;
  cfg.compile_expressions = compiled;
  return cfg;
}

/// N standalone MONTECARLO statements, serial — the reference semantics.
RunResult DriveStandalone(const ModelRegistry& registry,
                          const BenchFlags& flags, bool compiled,
                          std::size_t points) {
  sql::ScriptRunner runner(&registry, MakeConfig(flags, 1, compiled));
  const std::string script = std::string(kScenario) + "MONTECARLO;";
  RunResult r;
  Checksum sum;
  WallTimer timer;
  for (std::size_t p = 0; p < points; ++p) {
    auto outcome = runner.Run(script, {{"w", static_cast<double>(p)}});
    if (!outcome.ok() || !outcome.value().montecarlo.has_value()) {
      std::fprintf(stderr, "standalone run failed: %s\n",
                   outcome.status().ToString().c_str());
      r.ok = false;
      return r;
    }
    sum.FoldColumns(outcome.value().montecarlo->columns);
    r.cells += flags.num_samples;
  }
  r.elapsed_s = timer.ElapsedSeconds();
  r.checksum = sum.value();
  return r;
}

/// The sweep statement at a given thread count.
RunResult DriveSweep(const ModelRegistry& registry, const BenchFlags& flags,
                     bool compiled, std::size_t points,
                     std::size_t threads) {
  sql::ScriptRunner runner(&registry,
                           MakeConfig(flags, threads, compiled));
  RunResult r;
  WallTimer timer;
  auto outcome = runner.Run(SweepStatement(points));
  r.elapsed_s = timer.ElapsedSeconds();
  if (!outcome.ok()) {
    std::fprintf(stderr, "sweep run failed: %s\n",
                 outcome.status().ToString().c_str());
    r.ok = false;
    return r;
  }
  const std::size_t got = outcome.value().montecarlo.has_value()
                              ? outcome.value().montecarlo->points.size()
                              : 0;
  if (got != points) {
    std::fprintf(stderr, "sweep produced %zu point(s), expected %zu\n",
                 got, points);
    r.ok = false;
    return r;
  }
  Checksum sum;
  for (const auto& point : outcome.value().montecarlo->points) {
    sum.FoldColumns(point.columns);
    r.cells += flags.num_samples;
  }
  r.checksum = sum.value();
  return r;
}

void EmitRow(const std::string& mode, bool compiled, std::size_t points,
             std::size_t threads, const BenchFlags& flags,
             const RunResult& r) {
  JsonLineBuilder row;
  row.Str("bench", "montecarlo_sweep")
      .Str("mode", mode)
      .Str("exprs", compiled ? "compiled" : "interpreted")
      .Num("points", static_cast<double>(points))
      .Num("worlds", static_cast<double>(flags.num_samples))
      .Num("batch_size", static_cast<double>(flags.batch_size))
      .Num("num_threads", static_cast<double>(threads))
      .Num("elapsed_s", r.elapsed_s)
      .Num("cells_per_sec",
           r.elapsed_s > 0.0 ? static_cast<double>(r.cells) / r.elapsed_s
                             : 0.0)
      .Num("checksum", static_cast<double>(r.checksum >> 12));
  EmitJsonLine(std::cout, row);
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = bench::ParseBenchFlags(&argc, argv);
  if (flags.batch_size == 0) flags.batch_size = 1;
  if (flags.num_threads == 0) flags.num_threads = 1;
  const std::vector<std::size_t> point_counts =
      bench::FullScale() ? std::vector<std::size_t>{1, 4, 16, 64}
                         : std::vector<std::size_t>{1, 4, 16};

  ModelRegistry registry;
  if (auto s = RegisterCloudModels(&registry); !s.ok()) {
    std::fprintf(stderr, "model registration failed: %s\n",
                 s.ToString().c_str());
    return 2;
  }

  bool checksums_ok = true;
  for (bool compiled : {false, true}) {
    for (std::size_t points : point_counts) {
      const RunResult standalone =
          DriveStandalone(registry, flags, compiled, points);
      const RunResult serial =
          DriveSweep(registry, flags, compiled, points, 1);
      const RunResult parallel =
          DriveSweep(registry, flags, compiled, points, flags.num_threads);
      EmitRow("standalone", compiled, points, 1, flags, standalone);
      EmitRow("serial", compiled, points, 1, flags, serial);
      EmitRow("parallel", compiled, points, flags.num_threads, flags,
              parallel);

      const bool same = standalone.ok && serial.ok && parallel.ok &&
                        standalone.checksum == serial.checksum &&
                        serial.checksum == parallel.checksum;
      const double speedup = parallel.elapsed_s > 0.0
                                 ? serial.elapsed_s / parallel.elapsed_s
                                 : 0.0;
      std::fprintf(stderr,
                   "%-11s points=%-3zu sweep/standalone %5.2fx  "
                   "parallel(%zu) %5.2fx  checksums %s\n",
                   compiled ? "compiled" : "interpreted", points,
                   serial.elapsed_s > 0.0
                       ? standalone.elapsed_s / serial.elapsed_s
                       : 0.0,
                   flags.num_threads, speedup, same ? "match" : "MISMATCH");
      checksums_ok = checksums_ok && same;
    }
  }

  if (!checksums_ok) {
    std::fprintf(stderr,
                 "FAIL: sweep diverged from standalone/serial reference\n");
    return 1;
  }
  return 0;
}
