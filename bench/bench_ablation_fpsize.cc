// Ablation (ours): fingerprint size m.
//
// Section 6.2 reports that "a fingerprint length of 10 is sufficient for
// the models we consider". This bench sweeps m and reports, for the
// Capacity sweep:
//   - total time (the m-vs-reuse tradeoff: larger m costs more per point
//     but discriminates better),
//   - basis count (too-small m under-splits: unrelated points can match,
//     as seen via accuracy),
//   - max |E_jigsaw - E_naive| across the sweep (reuse error).

#include "bench_common.h"

#include "util/timer.h"

#include <cmath>

#include "core/sim_runner.h"
#include "models/cloud_models.h"

namespace {

using namespace jigsaw;
using bench::PaperConfig;

ParameterSpace CapacitySpace() {
  ParameterSpace space;
  (void)space.Add({"week", RangeDomain{0, 25, 1}});
  (void)space.Add({"p1", RangeDomain{0, 48, 8}});
  (void)space.Add({"p2", RangeDomain{0, 48, 8}});
  return space;
}

void BM_FingerprintSize(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  BlackBoxSimFunction fn(MakeCapacityModel({}));
  const ParameterSpace space = CapacitySpace();

  // Naive reference once (outside timing).
  RunConfig naive_cfg = PaperConfig();
  naive_cfg.use_fingerprints = false;
  SimulationRunner naive(naive_cfg);
  const auto reference = naive.RunSweep(fn, space);

  RunConfig cfg = PaperConfig();
  cfg.fingerprint_size = m;
  std::size_t bases = 0;
  double max_err = 0.0;
  for (auto _ : state) {
    SimulationRunner runner(cfg);
    WallTimer timer;
    const auto results = runner.RunSweep(fn, space);
    state.SetIterationTime(timer.ElapsedSeconds());
    bases = runner.basis_store().size();
    max_err = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      max_err = std::max(max_err, std::fabs(results[i].metrics.mean -
                                            reference[i].metrics.mean));
    }
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["bases"] = static_cast<double>(bases);
  state.counters["max_abs_mean_err"] = max_err;
}

void Register() {
  for (std::int64_t m : {2, 3, 5, 10, 20, 50, 100}) {
    benchmark::RegisterBenchmark("BM_FingerprintSize", BM_FingerprintSize)
        ->Arg(m)->Unit(benchmark::kMillisecond)->UseManualTime()
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
