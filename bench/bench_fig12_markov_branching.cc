// Figure 12: "Performance for a Markov process" — ms/step of the naive
// runner vs the Markov-jump runner as the branching factor (probability
// of a state divergence per step) grows from 1e-5 to 0.1.
//
// Paper result: the naive runner is flat (~100 ms/step on their setup);
// Jigsaw starts ~10x cheaper and degrades as branching grows, crossing
// the naive line around branching ~ 1/20 ("Jigsaw is able to improve the
// efficiency of Markovian processes where as many as one in twenty steps
// involves a discontinuity").
//
// The chain is invoked for 128 steps (as in the paper).
// Counters: ms_per_step, honest step invocations, estimator invocations.

#include "bench_common.h"

#include "util/timer.h"

#include "markov/chain_runner.h"
#include "markov/markov_models.h"

namespace {

using namespace jigsaw;
using bench::PaperConfig;

constexpr std::int64_t kSteps = 128;

MarkovBranchProcess ProcessFor(std::int64_t branching_ppm) {
  MarkovBranchConfig cfg;
  cfg.branching = static_cast<double>(branching_ppm) * 1e-6;
  return MarkovBranchProcess(cfg);
}

void BM_Markov_Naive(benchmark::State& state) {
  const MarkovBranchProcess process = ProcessFor(state.range(0));
  const RunConfig cfg = PaperConfig();
  for (auto _ : state) {
    NaiveChainRunner runner(cfg);
    WallTimer timer;
    benchmark::DoNotOptimize(runner.Run(process, kSteps));
    state.SetIterationTime(timer.ElapsedSeconds());
  }
  state.counters["ms_per_step"] = benchmark::Counter(
      static_cast<double>(kSteps) / 1000.0,
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
  state.counters["branching"] = static_cast<double>(state.range(0)) * 1e-6;
}

void BM_Markov_Jigsaw(benchmark::State& state) {
  const MarkovBranchProcess process = ProcessFor(state.range(0));
  const RunConfig cfg = PaperConfig();
  ChainRunStats stats;
  for (auto _ : state) {
    MarkovJumpRunner runner(cfg);
    WallTimer timer;
    const auto result = runner.Run(process, kSteps);
    state.SetIterationTime(timer.ElapsedSeconds());
    stats = result.stats;
  }
  state.counters["ms_per_step"] = benchmark::Counter(
      static_cast<double>(kSteps) / 1000.0,
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
  state.counters["branching"] = static_cast<double>(state.range(0)) * 1e-6;
  state.counters["honest_steps"] =
      static_cast<double>(stats.step_invocations);
  state.counters["estimator_evals"] =
      static_cast<double>(stats.estimator_invocations);
}

// Branching factors in parts-per-million: 1e-5 ... 0.1.
const std::vector<std::int64_t> kBranchingPpm = {10,    100,   1000, 5000,
                                                 10000, 20000, 50000, 100000};

void Register() {
  for (auto b : kBranchingPpm) {
    benchmark::RegisterBenchmark("BM_Markov_Naive", BM_Markov_Naive)
        ->Arg(b)->Unit(benchmark::kMillisecond)->UseManualTime()
        ->Iterations(3);
    benchmark::RegisterBenchmark("BM_Markov_Jigsaw", BM_Markov_Jigsaw)
        ->Arg(b)->Unit(benchmark::kMillisecond)->UseManualTime()
        ->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
