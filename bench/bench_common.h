#pragma once

/// \file bench_common.h
/// Shared plumbing for the paper-reproduction benchmarks. Every bench
/// binary regenerates one table or figure of the paper's Section 6; the
/// google-benchmark rows are the figure's series points and the counters
/// carry the derived quantities the paper plots (s/point, ms/step,
/// speedup, basis counts).
///
/// Sizes are scaled relative to the paper's 2.4 GHz Core2 Duo + Ruby
/// setup so each binary finishes in about a minute; the *ratios* are what
/// the reproduction checks. Set JIGSAW_BENCH_FULL=1 to run the paper's
/// full parameter-space sizes.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/run_config.h"

namespace jigsaw::bench {

inline bool FullScale() {
  const char* env = std::getenv("JIGSAW_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

/// The paper's experimental setup (Section 6): 1000 sample instances per
/// point, fingerprint size 10.
inline RunConfig PaperConfig() {
  RunConfig cfg;
  cfg.num_samples = 1000;
  cfg.fingerprint_size = 10;
  return cfg;
}

}  // namespace jigsaw::bench
