#pragma once

/// \file bench_common.h
/// Shared plumbing for the paper-reproduction benchmarks. Every bench
/// binary regenerates one table or figure of the paper's Section 6; the
/// google-benchmark rows are the figure's series points and the counters
/// carry the derived quantities the paper plots (s/point, ms/step,
/// speedup, basis counts).
///
/// Sizes are scaled relative to the paper's 2.4 GHz Core2 Duo + Ruby
/// setup so each binary finishes in about a minute; the *ratios* are what
/// the reproduction checks. Set JIGSAW_BENCH_FULL=1 to run the paper's
/// full parameter-space sizes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <string>

#include "core/run_config.h"

namespace jigsaw::bench {

inline bool FullScale() {
  const char* env = std::getenv("JIGSAW_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

/// The paper's experimental setup (Section 6): 1000 sample instances per
/// point, fingerprint size 10.
inline RunConfig PaperConfig() {
  RunConfig cfg;
  cfg.num_samples = 1000;
  cfg.fingerprint_size = 10;
  return cfg;
}

/// Sizing flags shared by the bench binaries. Parsed with ParseBenchFlags
/// *before* benchmark::Initialize so the two flag namespaces never clash.
struct BenchFlags {
  std::size_t num_samples = 1000;
  std::size_t num_threads = 1;
  std::size_t batch_size = 64;
  std::size_t num_sessions = 8;  ///< concurrent clients (serving benches)
  std::size_t seed_schema = 1;   ///< 1 = seed table, 2 = counter planes
};

/// The SeedSchema a bench run was asked for (--seed_schema={1,2}).
inline SeedSchema SchemaFromFlags(const BenchFlags& flags) {
  return flags.seed_schema == 2 ? SeedSchema::kV2 : SeedSchema::kV1;
}

/// Parses and strips `--num_samples=N`, `--num_threads=N`,
/// `--batch_size=N`, `--num_sessions=N` and `--seed_schema=N` (also the
/// two-token `--flag N` form) from argv,
/// compacting the remaining arguments in place. Unrecognized flags are
/// left for the caller (e.g. google-benchmark's own Initialize).
inline BenchFlags ParseBenchFlags(int* argc, char** argv) {
  BenchFlags flags;
  auto match = [](const char* arg, const char* name,
                  const char** value) -> bool {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) return false;
    if (arg[len] == '=') {
      *value = arg + len + 1;
      return true;
    }
    if (arg[len] == '\0') {
      *value = nullptr;  // value is the next argv token
      return true;
    }
    return false;
  };
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* value = nullptr;
    std::size_t* target = nullptr;
    if (match(argv[i], "--num_samples", &value)) {
      target = &flags.num_samples;
    } else if (match(argv[i], "--num_threads", &value)) {
      target = &flags.num_threads;
    } else if (match(argv[i], "--batch_size", &value)) {
      target = &flags.batch_size;
    } else if (match(argv[i], "--num_sessions", &value)) {
      target = &flags.num_sessions;
    } else if (match(argv[i], "--seed_schema", &value)) {
      target = &flags.seed_schema;
    }
    if (target == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    const char* flag = argv[i];
    // Two-token form: only a token that isn't itself a flag is a value.
    if (value == nullptr && i + 1 < *argc && argv[i + 1][0] != '-') {
      value = argv[++i];
    }
    char* end = nullptr;
    if (value != nullptr && *value >= '0' && *value <= '9') {
      const unsigned long long parsed = std::strtoull(value, &end, 10);
      if (end != nullptr && *end == '\0') {
        *target = static_cast<std::size_t>(parsed);
        continue;
      }
    }
    std::fprintf(stderr,
                 "warning: ignoring %s (missing or non-numeric value)\n",
                 flag);
  }
  *argc = out;
  return flags;
}

/// Builds one JSON-lines record — `{"k":v,...}` — with keys in call
/// order. Numbers are printed with round-trip precision so BENCH_*.json
/// trajectories can be diffed mechanically across runs.
class JsonLineBuilder {
 public:
  JsonLineBuilder& Str(const std::string& key, const std::string& value) {
    Key(key);
    line_ += '"';
    Escape(value);
    line_ += '"';
    return *this;
  }

  JsonLineBuilder& Num(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    Key(key);
    line_ += buf;
    return *this;
  }

  /// The finished record, without a trailing newline.
  std::string Build() const { return line_ + "}"; }

 private:
  void Key(const std::string& key) {
    line_ += line_.empty() ? "{\"" : ",\"";
    Escape(key);
    line_ += "\":";
  }
  void Escape(const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') line_ += '\\';
      line_ += c;
    }
  }
  std::string line_;
};

/// Writes one record per line (the JSON-lines convention).
inline void EmitJsonLine(std::ostream& os, const JsonLineBuilder& builder) {
  os << builder.Build() << "\n";
}

}  // namespace jigsaw::bench
