// Ablation (ours): why the *global* seed vector matters.
//
// Section 3.1: "It is crucial for both invocations of F to use the same
// source of randomness to make their comparison meaningful... using
// different seeds, equivalence testing is much more difficult."
//
// This bench runs the same Demand sweep twice: once with the standard
// shared seed vector, and once with per-point seed salting (each
// parameter point draws from its own stream family — what a naive
// implementation that re-seeds per query would do). With salted seeds no
// two fingerprints ever map; the basis store degenerates to one basis per
// point and the speedup vanishes.
//
// Counters: reuse_rate, bases, invocations.

#include "bench_common.h"

#include "util/timer.h"

#include "core/sim_runner.h"
#include "models/cloud_models.h"
#include "util/hash.h"

namespace {

using namespace jigsaw;
using bench::PaperConfig;

ParameterSpace DemandSpace() {
  ParameterSpace space;
  (void)space.Add({"week", RangeDomain{1, 52, 1}});
  (void)space.Add({"feature", SetDomain{{52.0}}});
  return space;
}

void SeedBench(benchmark::State& state, bool shared_seeds) {
  auto model = MakeDemandModel({});
  // With shared_seeds=false, the stream is additionally salted by the
  // parameter point — breaking the deterministic cross-point relationship
  // fingerprints rely on.
  auto fn = std::make_shared<CallableSimFunction>(
      shared_seeds ? "demand/shared" : "demand/salted",
      [model, shared_seeds](std::span<const double> p, std::size_t k,
                            const SeedVector& seeds) {
        std::uint64_t salt = 1;
        if (!shared_seeds) {
          salt = HashCombine(0xBADC0FFEULL,
                             static_cast<std::uint64_t>(p[0] * 1024));
        }
        return InvokeSeeded(*model, p, seeds.seed(k), salt);
      });
  const ParameterSpace space = DemandSpace();

  double reuse_rate = 0.0;
  std::size_t bases = 0;
  std::uint64_t invocations = 0;
  for (auto _ : state) {
    SimulationRunner runner(PaperConfig());
    WallTimer timer;
    runner.RunSweep(*fn, space);
    state.SetIterationTime(timer.ElapsedSeconds());
    reuse_rate = static_cast<double>(runner.stats().points_reused) /
                 static_cast<double>(runner.stats().points_evaluated);
    bases = runner.basis_store().size();
    invocations = runner.stats().blackbox_invocations;
  }
  state.counters["reuse_rate"] = reuse_rate;
  state.counters["bases"] = static_cast<double>(bases);
  state.counters["invocations"] = static_cast<double>(invocations);
}

void BM_Seeds_SharedVector(benchmark::State& state) {
  SeedBench(state, true);
}
void BM_Seeds_PerPointSalted(benchmark::State& state) {
  SeedBench(state, false);
}

BENCHMARK(BM_Seeds_SharedVector)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Seeds_PerPointSalted)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
