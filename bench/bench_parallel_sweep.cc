// Parallel-sweep scaling: RunSweep fanned out across parameter points on
// the worker pool vs the serial sweep, for both the naive baseline and
// the fingerprint-accelerated path.
//
// Shape to reproduce: near-linear scaling for the naive sweep (points are
// embarrassingly parallel) and solid scaling for the fingerprint sweep's
// miss phase, while every thread count reports identical checksums — the
// "checksum" counter folds all output metrics bitwise, so any scheduling
// nondeterminism shows up as differing counter values between rows.

#include "bench_common.h"

#include <cstring>

#include "core/sim_runner.h"
#include "models/cloud_models.h"
#include "util/timer.h"

namespace {

using namespace jigsaw;
using bench::FullScale;
using bench::PaperConfig;

ParameterSpace SweepSpace() {
  ParameterSpace space;
  const double weeks = FullScale() ? 99 : 49;
  const double features = FullScale() ? 49 : 9;
  (void)space.Add({"week", RangeDomain{1, weeks, 1}});
  (void)space.Add({"feature", RangeDomain{0, features * 2, 2}});
  return space;  // full: 99*50 = 4950 points; scaled: 49*10 = 490
}

/// Order-sensitive bitwise fold of every metric the sweep produced.
double MetricsChecksum(const std::vector<PointResult>& results) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto fold = [&h](double x) {
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof u);
    h = (h ^ u) * 0x100000001b3ULL;
  };
  for (const auto& r : results) {
    fold(r.metrics.mean);
    fold(r.metrics.stddev);
    fold(r.metrics.p50);
    fold(r.metrics.p95);
    h = (h ^ static_cast<std::uint64_t>(r.reused)) * 0x100000001b3ULL;
  }
  // Expose as a double counter; keep 52 bits so the value is exact.
  return static_cast<double>(h >> 12);
}

void SweepBench(benchmark::State& state, bool use_fingerprints) {
  const auto model = MakeDemandModel({});
  BlackBoxSimFunction fn(model);
  const ParameterSpace space = SweepSpace();
  const auto threads = static_cast<std::size_t>(state.range(0));

  RunConfig cfg = PaperConfig();
  cfg.use_fingerprints = use_fingerprints;
  cfg.num_threads = threads;

  double checksum = 0.0;
  std::uint64_t reused = 0;
  for (auto _ : state) {
    SimulationRunner runner(cfg);
    WallTimer timer;
    const auto results = runner.RunSweep(fn, space);
    state.SetIterationTime(timer.ElapsedSeconds());
    checksum = MetricsChecksum(results);
    reused = runner.stats().points_reused;
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["points"] = static_cast<double>(space.NumPoints());
  state.counters["reused"] = static_cast<double>(reused);
  state.counters["checksum"] = checksum;
}

void BM_NaiveSweep(benchmark::State& state) { SweepBench(state, false); }
void BM_JigsawSweep(benchmark::State& state) { SweepBench(state, true); }

BENCHMARK(BM_NaiveSweep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_JigsawSweep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
