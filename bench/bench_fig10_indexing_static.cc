// Figure 10: "Indexing in a static parameter space" — computation time of
// each index strategy relative to a naive Array scan, as the number of
// basis distributions grows.
//
// Paper result: past ~50 bases the Array scan's candidate tests dominate;
// Normalization and Sorted SID replace the scan with one hash lookup and
// asymptotically approach a ~10% total-time reduction (sample generation
// dominating the rest), with Sorted SID slightly ahead of Normalization.
//
// Setup mirrors the paper: SynthBasis black boxes engineered to produce
// an exact basis count, expectation computed for 1000 parameter combos.
// Counters: s_per_point, bases, candidates_tested (index selectivity).

#include "bench_common.h"

#include "util/timer.h"

#include "core/sim_runner.h"
#include "models/cloud_models.h"

namespace {

using namespace jigsaw;
using bench::FullScale;
using bench::PaperConfig;

void IndexBench(benchmark::State& state, IndexKind index) {
  const int num_basis = static_cast<int>(state.range(0));
  CloudModelConfig mcfg;
  mcfg.synth_num_basis = num_basis;
  BlackBoxSimFunction fn(MakeSynthBasisModel(mcfg));

  ParameterSpace space;
  const double points = FullScale() ? 999 : 999;  // paper: 1000 combos
  (void)space.Add({"point", RangeDomain{0, points, 1}});

  RunConfig cfg = PaperConfig();
  cfg.index_kind = index;
  std::uint64_t candidates = 0;
  std::size_t bases = 0;
  for (auto _ : state) {
    SimulationRunner runner(cfg);
    WallTimer timer;
    runner.RunSweep(fn, space);
    state.SetIterationTime(timer.ElapsedSeconds());
    candidates = runner.basis_store().stats().candidates_tested;
    bases = runner.basis_store().size();
  }
  state.counters["s_per_point"] = benchmark::Counter(
      (points + 1) , benchmark::Counter::kIsIterationInvariantRate |
                         benchmark::Counter::kInvert);
  state.counters["bases"] = static_cast<double>(bases);
  state.counters["candidates_tested"] = static_cast<double>(candidates);
}

void BM_Index_Array(benchmark::State& state) {
  IndexBench(state, IndexKind::kArray);
}
void BM_Index_Normalization(benchmark::State& state) {
  IndexBench(state, IndexKind::kNormalization);
}
void BM_Index_SortedSID(benchmark::State& state) {
  IndexBench(state, IndexKind::kSortedSid);
}

const std::vector<std::int64_t> kBasisCounts = {10, 25, 50, 100, 200, 500};

void Register() {
  for (auto b : kBasisCounts) {
    benchmark::RegisterBenchmark("BM_Index_Array", BM_Index_Array)
        ->Arg(b)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
    benchmark::RegisterBenchmark("BM_Index_Normalization",
                                 BM_Index_Normalization)
        ->Arg(b)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
    benchmark::RegisterBenchmark("BM_Index_SortedSID", BM_Index_SortedSID)
        ->Arg(b)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
