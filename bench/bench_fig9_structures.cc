// Figure 9: "Computation time versus the size of structures in the
// Capacity model."
//
// Paper result: each purchase is followed by a settling window (a
// "structure") during which the hardware is online in only an
// exponentially-shrinking fraction of instances. As the structure grows
// from 0 to 20 weeks, time per point rises only sub-linearly (~0.08 to
// ~0.22 ms/point) because Jigsaw recognizes matching positions inside
// each structure and reuses their bases; both index strategies stay below
// the Array scan.
//
// Rows: structure size (weeks, the benchmark Arg) x index strategy.
// Counters: ms_per_point, bases.

#include "bench_common.h"

#include "util/timer.h"

#include "core/sim_runner.h"
#include "models/cloud_models.h"

namespace {

using namespace jigsaw;
using bench::FullScale;
using bench::PaperConfig;

ParameterSpace CapacitySpace() {
  ParameterSpace space;
  const double weeks = FullScale() ? 51 : 25;
  (void)space.Add({"week", RangeDomain{0, weeks, 1}});
  (void)space.Add({"p1", RangeDomain{0, 48, 4}});
  (void)space.Add({"p2", RangeDomain{0, 48, 4}});
  return space;
}

void StructureBench(benchmark::State& state, IndexKind index) {
  // Arg: structure size in tenths of a week (0 -> nearly instant settle).
  const double settle = std::max(state.range(0) / 10.0, 0.05);
  CloudModelConfig mcfg;
  mcfg.settle_weeks = settle;
  BlackBoxSimFunction fn(MakeCapacityModel(mcfg));
  const ParameterSpace space = CapacitySpace();

  RunConfig cfg = PaperConfig();
  cfg.index_kind = index;
  std::size_t bases = 0;
  for (auto _ : state) {
    SimulationRunner runner(cfg);
    WallTimer timer;
    runner.RunSweep(fn, space);
    state.SetIterationTime(timer.ElapsedSeconds());
    bases = runner.basis_store().size();
  }
  const double points = static_cast<double>(space.NumPoints());
  state.counters["ms_per_point"] = benchmark::Counter(
      points / 1000.0,
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
  state.counters["bases"] = static_cast<double>(bases);
  state.counters["structure_weeks"] = settle;
}

void BM_Structure_Array(benchmark::State& state) {
  StructureBench(state, IndexKind::kArray);
}
void BM_Structure_Normalization(benchmark::State& state) {
  StructureBench(state, IndexKind::kNormalization);
}
void BM_Structure_SortedSID(benchmark::State& state) {
  StructureBench(state, IndexKind::kSortedSid);
}

// Structure sizes 0..20 weeks (Args are tenths of a week).
const std::vector<std::int64_t> kSizes = {1, 5, 10, 20, 40, 80, 140, 200};

void Register() {
  for (auto s : kSizes) {
    benchmark::RegisterBenchmark("BM_Structure_Array", BM_Structure_Array)
        ->Arg(s)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
    benchmark::RegisterBenchmark("BM_Structure_Normalization",
                                 BM_Structure_Normalization)
        ->Arg(s)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
    benchmark::RegisterBenchmark("BM_Structure_SortedSID",
                                 BM_Structure_SortedSID)
        ->Arg(s)->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Register();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
