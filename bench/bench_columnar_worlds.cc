// Columnar possible-worlds storage at scale: materialize N-row uncertain
// tables across W worlds and fold every numeric column, on both storage
// representations.
//
// For each row count the fold runs three ways:
//
//   boxed    — columnar_storage=false, serial: each world realized as a
//              Table of variant Values, columns staged through
//              NumericColumn copies (the pre-columnar semantics);
//   columnar — columnar_storage=true, serial: worlds realized straight
//              into typed ColumnChunk buffers, kDouble columns folded
//              zero-copy via Estimator::AddSpan;
//   parallel — columnar with --num_threads workers, one world-chunk
//              extent per pool task (the shard-ownership rule).
//
// Every run's metrics fold into a bitwise checksum; the binary exits
// non-zero if any representation diverges — CI smoke-runs it as the
// machine check that the columnar path is a bit-identical twin. The
// interesting series are tuples/sec (columnar/boxed is the paper-scale
// speedup claim) and peak RSS, which proves the 1e6 x 8 sweep fits in
// memory. ru_maxrss is a process-wide high-water mark, so row counts run
// ascending and each row reports the watermark *after* its run.
//
// Every row is a JSON-lines record on stdout; a human summary goes to
// stderr. Flags: --num_samples=W (worlds) --num_threads=N
// --batch_size=N --seed_schema={1,2} (bench_common.h).

#include "bench_common.h"

#include <sys/resource.h>

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "pdb/join.h"
#include "pdb/monte_carlo.h"
#include "pdb/vg_table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace jigsaw;
using bench::BenchFlags;
using bench::EmitJsonLine;
using bench::JsonLineBuilder;

/// Order-sensitive bitwise fold (FNV-1a over the raw doubles).
class Checksum {
 public:
  void FoldMetrics(const OutputMetrics& m) {
    const double fields[] = {static_cast<double>(m.count),
                             m.mean,
                             m.stddev,
                             m.std_error,
                             m.min,
                             m.max,
                             m.p50,
                             m.p95};
    for (double x : fields) {
      std::uint64_t u;
      std::memcpy(&u, &x, sizeof u);
      h_ = (h_ ^ u) * 0x100000001b3ULL;
    }
  }
  void FoldColumns(const std::map<std::string, OutputMetrics>& columns) {
    for (const auto& [name, m] : columns) FoldMetrics(m);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Process peak RSS in bytes (ru_maxrss is KiB on Linux).
double PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) * 1024.0;
}

struct RunResult {
  double elapsed_s = 0.0;
  std::uint64_t tuples = 0;  ///< rows x worlds materialized and folded
  std::uint64_t checksum = 0;
  bool ok = true;
};

RunResult DriveFold(const pdb::VGTableFunction& fn, std::size_t rows,
                    const BenchFlags& flags, bool columnar,
                    std::size_t threads) {
  RunConfig cfg;
  cfg.num_samples = flags.num_samples;
  // Threaded runs shard worlds into at least one extent per worker
  // (chunking only moves AddSpan boundaries, which the estimator
  // contract keeps bit-identical).
  cfg.batch_size =
      threads > 1
          ? std::min(flags.batch_size,
                     std::max<std::size_t>(1, flags.num_samples / threads))
          : flags.batch_size;
  cfg.num_threads = threads;
  cfg.seed_schema = bench::SchemaFromFlags(flags);
  cfg.columnar_storage = columnar;
  const SeedVector seeds(cfg.master_seed, flags.num_samples,
                         cfg.seed_schema);
  const std::vector<std::string> columns = {"demand", "cost"};

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  RunResult r;
  WallTimer timer;
  auto metrics = pdb::FoldVGColumns(fn, columns, flags.num_samples, seeds,
                                    cfg, pool.get());
  r.elapsed_s = timer.ElapsedSeconds();
  if (!metrics.ok()) {
    std::fprintf(stderr, "fold failed: %s\n",
                 metrics.status().ToString().c_str());
    r.ok = false;
    return r;
  }
  Checksum sum;
  sum.FoldColumns(metrics.value());
  r.checksum = sum.value();
  r.tuples = static_cast<std::uint64_t>(rows) * flags.num_samples;
  return r;
}

/// Join phase: a fixed 256-user population equi-joined against the
/// scaling items table on user_id = item_id, per world. The boxed
/// nested-loop oracle probes rows x 256 pairs per world — the quadratic
/// baseline the span kernels must beat while staying bit-identical.
RunResult DriveJoin(const pdb::VGTableFunctionPtr& users,
                    const pdb::VGTableFunctionPtr& items, std::size_t rows,
                    const BenchFlags& flags, bool columnar,
                    JoinAlgorithm algorithm, std::size_t threads) {
  RunConfig cfg;
  cfg.num_samples = flags.num_samples;
  cfg.batch_size =
      threads > 1
          ? std::min(flags.batch_size,
                     std::max<std::size_t>(1, flags.num_samples / threads))
          : flags.batch_size;
  cfg.num_threads = threads;
  cfg.seed_schema = bench::SchemaFromFlags(flags);
  cfg.columnar_storage = columnar;
  cfg.join_algorithm = algorithm;
  const SeedVector seeds(cfg.master_seed, flags.num_samples,
                         cfg.seed_schema);
  const std::vector<std::string> columns = {"requirement", "demand", "cost"};

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  RunResult r;
  WallTimer timer;
  auto metrics =
      pdb::FoldJoinedVGColumns(users, items, {"user_id", "item_id"}, columns,
                               flags.num_samples, seeds, cfg, pool.get());
  r.elapsed_s = timer.ElapsedSeconds();
  if (!metrics.ok()) {
    std::fprintf(stderr, "join fold failed: %s\n",
                 metrics.status().ToString().c_str());
    r.ok = false;
    return r;
  }
  Checksum sum;
  sum.FoldColumns(metrics.value());
  r.checksum = sum.value();
  // Throughput counts right-side tuples scanned per world (the scaling
  // axis), not the 256-row joined output.
  r.tuples = static_cast<std::uint64_t>(rows) * flags.num_samples;
  return r;
}

void EmitRow(const std::string& mode, std::size_t rows, std::size_t threads,
             const BenchFlags& flags, const RunResult& r) {
  JsonLineBuilder row;
  row.Str("bench", "columnar_worlds")
      .Str("mode", mode)
      .Num("rows", static_cast<double>(rows))
      .Num("worlds", static_cast<double>(flags.num_samples))
      .Num("batch_size", static_cast<double>(flags.batch_size))
      .Num("num_threads", static_cast<double>(threads))
      .Num("seed_schema", static_cast<double>(flags.seed_schema))
      .Num("elapsed_s", r.elapsed_s)
      .Num("tuples_per_sec",
           r.elapsed_s > 0.0 ? static_cast<double>(r.tuples) / r.elapsed_s
                             : 0.0)
      .Num("peak_rss_bytes", PeakRssBytes())
      .Num("checksum", static_cast<double>(r.checksum >> 12));
  EmitJsonLine(std::cout, row);
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = bench::ParseBenchFlags(&argc, argv);
  if (flags.num_samples == 1000) flags.num_samples = 8;  // worlds default
  if (flags.batch_size == 0) flags.batch_size = 1;
  if (flags.num_threads == 0) flags.num_threads = 1;
  // Ascending so each size's peak-RSS watermark is its own: the 1e6 row
  // is the memory acceptance check.
  const std::vector<std::size_t> row_counts =
      bench::FullScale()
          ? std::vector<std::size_t>{10'000, 100'000, 1'000'000, 4'000'000}
          : std::vector<std::size_t>{10'000, 100'000, 1'000'000};

  bool checksums_ok = true;
  for (std::size_t rows : row_counts) {
    const auto fn = pdb::MakeScalingItemsVGTable(rows);
    const RunResult boxed = DriveFold(*fn, rows, flags, false, 1);
    EmitRow("boxed", rows, 1, flags, boxed);
    const RunResult columnar = DriveFold(*fn, rows, flags, true, 1);
    EmitRow("columnar", rows, 1, flags, columnar);
    const RunResult parallel =
        DriveFold(*fn, rows, flags, true, flags.num_threads);
    EmitRow("parallel", rows, flags.num_threads, flags, parallel);

    const bool same = boxed.ok && columnar.ok && parallel.ok &&
                      boxed.checksum == columnar.checksum &&
                      columnar.checksum == parallel.checksum;
    const double speedup = columnar.elapsed_s > 0.0
                               ? boxed.elapsed_s / columnar.elapsed_s
                               : 0.0;
    const double scaling = parallel.elapsed_s > 0.0
                               ? columnar.elapsed_s / parallel.elapsed_s
                               : 0.0;
    std::fprintf(stderr,
                 "rows=%-8zu worlds=%zu  columnar/boxed %5.2fx  "
                 "parallel(%zu) %5.2fx  rss %.0f MiB  checksums %s\n",
                 rows, flags.num_samples, speedup, flags.num_threads,
                 scaling, PeakRssBytes() / (1024.0 * 1024.0),
                 same ? "match" : "MISMATCH");
    checksums_ok = checksums_ok && same;
  }

  // Join phase: sort-merge vs hash vs the boxed nested-loop oracle,
  // serial and threaded, on a fixed 256-user left side so the oracle's
  // quadratic probe stays feasible while the right side scales.
  const auto users = pdb::MakeUsersVGTable(256, 0.8, 5.0, 2.0);
  const std::vector<std::size_t> join_rows =
      bench::FullScale()
          ? std::vector<std::size_t>{10'000, 100'000, 1'000'000}
          : std::vector<std::size_t>{10'000, 100'000};
  for (std::size_t rows : join_rows) {
    const auto items = pdb::MakeScalingItemsVGTable(rows);
    const RunResult oracle = DriveJoin(users, items, rows, flags, false,
                                       JoinAlgorithm::kSortMerge, 1);
    EmitRow("join_oracle", rows, 1, flags, oracle);
    const RunResult sort = DriveJoin(users, items, rows, flags, true,
                                     JoinAlgorithm::kSortMerge, 1);
    EmitRow("join_sort", rows, 1, flags, sort);
    const RunResult hash =
        DriveJoin(users, items, rows, flags, true, JoinAlgorithm::kHash, 1);
    EmitRow("join_hash", rows, 1, flags, hash);
    const RunResult sort_par =
        DriveJoin(users, items, rows, flags, true, JoinAlgorithm::kSortMerge,
                  flags.num_threads);
    EmitRow("join_sort_par", rows, flags.num_threads, flags, sort_par);
    const RunResult hash_par = DriveJoin(users, items, rows, flags, true,
                                         JoinAlgorithm::kHash,
                                         flags.num_threads);
    EmitRow("join_hash_par", rows, flags.num_threads, flags, hash_par);

    const bool same = oracle.ok && sort.ok && hash.ok && sort_par.ok &&
                      hash_par.ok && oracle.checksum == sort.checksum &&
                      sort.checksum == hash.checksum &&
                      hash.checksum == sort_par.checksum &&
                      sort_par.checksum == hash_par.checksum;
    const double sort_speedup =
        sort.elapsed_s > 0.0 ? oracle.elapsed_s / sort.elapsed_s : 0.0;
    const double hash_speedup =
        hash.elapsed_s > 0.0 ? oracle.elapsed_s / hash.elapsed_s : 0.0;
    std::fprintf(stderr,
                 "join rows=%-8zu worlds=%zu  sort/oracle %6.2fx  "
                 "hash/oracle %6.2fx  checksums %s\n",
                 rows, flags.num_samples, sort_speedup, hash_speedup,
                 same ? "match" : "MISMATCH");
    checksums_ok = checksums_ok && same;
  }

  if (!checksums_ok) {
    std::fprintf(stderr,
                 "FAIL: columnar fold diverged from boxed reference\n");
    return 1;
  }
  return 0;
}
