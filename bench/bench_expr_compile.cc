// Interpreted vs compiled expression throughput (the PR-4 batch
// compiler). Three scenario shapes, each bound once and then executed
// through both expression paths:
//
//   arith    — parameter/literal arithmetic and CASE only: pure
//              interpretation overhead, the compiler's best case;
//   figure1  — the paper's Figure 1 projection (two cloud-model calls
//              plus an overload CASE over their aliases);
//   chain    — the Figure 5 CHAIN scenario on the naive chain runner
//              (per-instance state rides the compiled lane params).
//
// Phases:
//   column_eval — SampleBatch over every scenario column across a small
//                 parameter sweep (the core engine's fingerprint / full
//                 simulation hot loop);
//   montecarlo  — the SQL MONTECARLO statement end to end (FoldWorlds
//                 with per-world plans vs FoldWorldSpans with one
//                 BatchProgram per chunk task), threaded when
//                 --num_threads > 1;
//   chain       — RunChainScenario to a fixed target step.
//
// Every row is a JSON-lines record on stdout; a human summary goes to
// stderr. All interpreted/compiled pairs are checksummed bitwise and the
// binary exits non-zero on any divergence — CI runs it as a smoke test
// of the compiled path's bit-identity contract.
//
// Flags: --num_samples=N --batch_size=N --num_threads=N (bench_common.h).

#include "bench_common.h"

#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "models/cloud_models.h"
#include "sql/binder.h"
#include "sql/chain_process.h"
#include "sql/script_runner.h"
#include "util/timer.h"

namespace {

using namespace jigsaw;
using bench::BenchFlags;
using bench::EmitJsonLine;
using bench::JsonLineBuilder;

/// Order-sensitive bitwise fold (FNV-1a over the raw doubles).
class Checksum {
 public:
  void Fold(std::span<const double> xs) {
    for (double x : xs) {
      std::uint64_t u;
      std::memcpy(&u, &x, sizeof u);
      h_ = (h_ ^ u) * 0x100000001b3ULL;
    }
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

void FoldMetrics(Checksum& sum, const OutputMetrics& m) {
  const double fields[] = {static_cast<double>(m.count),
                           m.mean,
                           m.stddev,
                           m.std_error,
                           m.min,
                           m.max,
                           m.p50,
                           m.p95};
  sum.Fold(fields);
}

struct RunResult {
  double elapsed_s = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t checksum = 0;
  bool ok = true;
};

constexpr const char* kArithScript = R"(
DECLARE PARAMETER @w AS RANGE 0 TO 40 STEP BY 1;
DECLARE PARAMETER @cap AS RANGE 0 TO 16 STEP BY 8;
SELECT @w * 1.5 + 3 AS demand,
       40 + @cap - @w / 2 AS capacity,
       CASE WHEN capacity < demand AND @w > 10 THEN 1 ELSE 0 END AS overload
INTO r;
MONTECARLO;
)";

constexpr const char* kFigure1Script = R"(
DECLARE PARAMETER @w AS RANGE 0 TO 40 STEP BY 1;
DECLARE PARAMETER @p1 AS RANGE 0 TO 16 STEP BY 8;
SELECT DemandModel(@w, 36) AS demand,
       CapacityModel(@w, @p1, 8) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO r;
MONTECARLO;
)";

constexpr const char* kChainScript = R"(
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @release_week AS CHAIN release_week
  FROM @current_week : @current_week - 1 INITIAL VALUE 52;
SELECT CASE WHEN demand > 26 AND @current_week + 4 < @release_week
            THEN @current_week + 4 ELSE @release_week END AS release_week,
       demand
FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
INTO results;
)";

/// SampleBatch over every scenario column across a small sweep — the
/// shape of the core engine's fingerprint/full-sim loops.
RunResult DriveColumns(const sql::BoundScript& bound, const SeedVector& seeds,
                       std::size_t points, std::size_t samples_per_point,
                       std::size_t batch) {
  RunResult r;
  Checksum sum;
  std::vector<double> buf(samples_per_point);
  const std::size_t num_points = bound.scenario.params.NumPoints();
  WallTimer timer;
  for (std::size_t p = 0; p < points; ++p) {
    const auto valuation =
        bound.scenario.params.ValuationAt((p * 7) % num_points);
    for (const auto& col : bound.scenario.columns) {
      for (std::size_t i = 0; i < samples_per_point; i += batch) {
        const std::size_t len = std::min(batch, samples_per_point - i);
        col.fn->SampleBatch(valuation, i, seeds,
                            std::span<double>(buf.data() + i, len));
      }
      sum.Fold(buf);
      r.samples += samples_per_point;
    }
  }
  r.elapsed_s = timer.ElapsedSeconds();
  r.checksum = sum.value();
  return r;
}

/// The SQL MONTECARLO statement end to end.
RunResult DriveMonteCarlo(const ModelRegistry& registry,
                          const std::string& script, const BenchFlags& flags,
                          bool compiled) {
  RunConfig cfg;
  cfg.num_samples = flags.num_samples;
  cfg.num_threads = flags.num_threads;
  cfg.batch_size = flags.batch_size;
  cfg.compile_expressions = compiled;
  sql::ScriptRunner runner(&registry, cfg);
  RunResult r;
  WallTimer timer;
  auto outcome = runner.Run(script);
  r.elapsed_s = timer.ElapsedSeconds();
  if (!outcome.ok() || !outcome.value().montecarlo.has_value()) {
    std::fprintf(stderr, "montecarlo run failed: %s\n",
                 outcome.status().ToString().c_str());
    r.ok = false;
    return r;
  }
  Checksum sum;
  for (const auto& [name, m] : outcome.value().montecarlo->columns) {
    FoldMetrics(sum, m);
  }
  r.checksum = sum.value();
  r.samples = flags.num_samples * outcome.value().montecarlo->columns.size();
  return r;
}

/// The Figure 5 chain on the naive runner (every instance, every step).
RunResult DriveChain(const sql::BoundScript& bound, const BenchFlags& flags,
                     bool compiled, std::int64_t target) {
  RunConfig cfg;
  cfg.num_samples = flags.num_samples;
  cfg.batch_size = flags.batch_size;
  cfg.compile_expressions = compiled;
  RunResult r;
  WallTimer timer;
  auto metrics = sql::RunChainScenario(bound, "demand", target, cfg,
                                       /*use_jump=*/false);
  r.elapsed_s = timer.ElapsedSeconds();
  if (!metrics.ok()) {
    std::fprintf(stderr, "chain run failed: %s\n",
                 metrics.status().ToString().c_str());
    r.ok = false;
    return r;
  }
  Checksum sum;
  FoldMetrics(sum, metrics.value());
  r.checksum = sum.value();
  r.samples = flags.num_samples * static_cast<std::uint64_t>(target);
  return r;
}

void EmitRow(const std::string& phase, const std::string& scenario,
             const std::string& mode, const BenchFlags& flags,
             const RunResult& r) {
  JsonLineBuilder row;
  row.Str("bench", "expr_compile")
      .Str("phase", phase)
      .Str("scenario", scenario)
      .Str("mode", mode)
      .Num("num_samples", static_cast<double>(flags.num_samples))
      .Num("batch_size", static_cast<double>(flags.batch_size))
      .Num("num_threads", static_cast<double>(flags.num_threads))
      .Num("elapsed_s", r.elapsed_s)
      .Num("samples_per_sec",
           r.elapsed_s > 0.0 ? static_cast<double>(r.samples) / r.elapsed_s
                             : 0.0)
      .Num("checksum", static_cast<double>(r.checksum >> 12));
  EmitJsonLine(std::cout, row);
}

bool Compare(const std::string& phase, const std::string& scenario,
             const RunResult& interpreted, const RunResult& compiled) {
  const bool same = interpreted.ok && compiled.ok &&
                    interpreted.checksum == compiled.checksum;
  const double speedup = compiled.elapsed_s > 0.0
                             ? interpreted.elapsed_s / compiled.elapsed_s
                             : 0.0;
  std::fprintf(stderr, "%-12s %-10s speedup %5.2fx  checksums %s\n",
               phase.c_str(), scenario.c_str(), speedup,
               same ? "match" : "MISMATCH");
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = bench::ParseBenchFlags(&argc, argv);
  if (flags.batch_size == 0) flags.batch_size = 1;
  const std::size_t points = bench::FullScale() ? 200 : 40;
  const std::int64_t chain_target = bench::FullScale() ? 45 : 20;

  ModelRegistry registry;
  if (auto s = RegisterCloudModels(&registry); !s.ok()) {
    std::fprintf(stderr, "model registration failed: %s\n",
                 s.ToString().c_str());
    return 2;
  }

  bool checksums_ok = true;

  // -- column_eval ---------------------------------------------------------
  for (const auto& [name, script] :
       std::vector<std::pair<std::string, const char*>>{
           {"arith", kArithScript}, {"figure1", kFigure1Script}}) {
    auto bound = sql::ParseAndBind(script, registry);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind failed (%s): %s\n", name.c_str(),
                   bound.status().ToString().c_str());
      return 2;
    }
    if (!bound.value().program->compiled()) {
      std::fprintf(stderr, "scenario %s did not compile: %s\n", name.c_str(),
                   bound.value().program->batch_fallback_reason.c_str());
      return 2;
    }
    sql::BoundScript interpreted = bound.value();
    sql::UseInterpretedExpressions(interpreted);
    const SeedVector seeds(RunConfig{}.master_seed, flags.num_samples);

    const RunResult slow = DriveColumns(interpreted, seeds, points,
                                        flags.num_samples, flags.batch_size);
    const RunResult fast = DriveColumns(bound.value(), seeds, points,
                                        flags.num_samples, flags.batch_size);
    EmitRow("column_eval", name, "interpreted", flags, slow);
    EmitRow("column_eval", name, "compiled", flags, fast);
    checksums_ok = Compare("column_eval", name, slow, fast) && checksums_ok;

    // -- montecarlo --------------------------------------------------------
    const RunResult mc_slow =
        DriveMonteCarlo(registry, script, flags, /*compiled=*/false);
    const RunResult mc_fast =
        DriveMonteCarlo(registry, script, flags, /*compiled=*/true);
    EmitRow("montecarlo", name, "interpreted", flags, mc_slow);
    EmitRow("montecarlo", name, "compiled", flags, mc_fast);
    checksums_ok =
        Compare("montecarlo", name, mc_slow, mc_fast) && checksums_ok;
  }

  // -- chain ---------------------------------------------------------------
  {
    auto bound = sql::ParseAndBind(kChainScript, registry);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind failed (chain): %s\n",
                   bound.status().ToString().c_str());
      return 2;
    }
    const RunResult slow =
        DriveChain(bound.value(), flags, /*compiled=*/false, chain_target);
    const RunResult fast =
        DriveChain(bound.value(), flags, /*compiled=*/true, chain_target);
    EmitRow("chain", "figure5", "interpreted", flags, slow);
    EmitRow("chain", "figure5", "compiled", flags, fast);
    checksums_ok = Compare("chain", "figure5", slow, fast) && checksums_ok;
  }

  if (!checksums_ok) {
    std::fprintf(stderr,
                 "FAIL: compiled expressions diverged from interpreter\n");
    return 1;
  }
  return 0;
}
