// Scalar-vs-batched throughput for the SampleBatch engine.
//
// Two workloads per model, each run once through the legacy scalar path
// (per-sample virtual Sample calls, forced via a wrapper that hides the
// model's batch kernel) and once through the batched path (SampleBatch
// over batch_size chunks):
//
//   fingerprint — many points, the first m seeded samples each (the
//                 ComputeFingerprint hot loop);
//   full_sim    — few points, all num_samples samples each (the miss
//                 simulation hot loop).
//
// Models cover both kernel classes: DemandModel and UserSelectionModel
// have native batch kernels (cloud_models.cc); "ScalarMix" is a
// CallableBlackBox with no EvalBatch override, so its batch path is the
// scalar-fallback loop — the speedup it shows is pure call-overhead
// elimination.
//
// Every row is emitted as a JSON-lines record on stdout (BENCH_*.json
// trajectories); a human summary goes to stderr. The binary exits
// non-zero if any checksum pair disagrees — it doubles as a bit-identity
// smoke test in CI.
//
// Flags: --num_samples=N --batch_size=N --num_threads=N --seed_schema={1,2}
// (bench_common.h). Schema 2 derives draws counter-based (draw planes).
// With --num_threads > 1 each workload additionally runs a "threaded"
// mode that fans SampleBatch chunks out on a ThreadPool (the SampleRange
// fan-out), and a "worlds" phase drives MonteCarloExecutor's possible-
// worlds chunk fan-out serial-vs-parallel — so one bench covers both
// chunked parallel paths, each checked bitwise against its serial twin.
// Point-sweep thread scaling remains bench_parallel_sweep's job.

#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "core/fingerprint.h"
#include "core/sim_function.h"
#include "models/cloud_models.h"
#include "pdb/expr.h"
#include "pdb/monte_carlo.h"
#include "pdb/operators.h"
#include "random/seed_vector.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace jigsaw;
using bench::BenchFlags;
using bench::EmitJsonLine;
using bench::JsonLineBuilder;

/// Forces the legacy scalar path: only Sample is forwarded, so the
/// inherited SampleBatch default loops over per-sample virtual calls —
/// exactly the pre-batching hot loop.
class ScalarizedSimFunction : public SimFunction {
 public:
  explicit ScalarizedSimFunction(const SimFunction& inner) : inner_(inner) {}

  const std::string& label() const override { return inner_.label(); }

  double Sample(std::span<const double> params, std::size_t sample_id,
                const SeedVector& seeds) const override {
    return inner_.Sample(params, sample_id, seeds);
  }

 private:
  const SimFunction& inner_;
};

/// Order-sensitive bitwise fold (FNV-1a over the raw doubles).
class Checksum {
 public:
  void Fold(std::span<const double> xs) {
    for (double x : xs) {
      std::uint64_t u;
      std::memcpy(&u, &x, sizeof u);
      h_ = (h_ ^ u) * 0x100000001b3ULL;
    }
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

struct Workload {
  std::string model;
  SimFunctionPtr fn;
  std::vector<double> (*params_for)(std::size_t point);
};

struct RunResult {
  double elapsed_s = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t checksum = 0;
};

/// Evaluates samples [0, samples_per_point) of `points` parameter points
/// through SampleBatch chunks of `batch`, folding a checksum.
RunResult Drive(const SimFunction& fn, const Workload& w,
                const SeedVector& seeds, std::size_t points,
                std::size_t samples_per_point, std::size_t batch) {
  RunResult r;
  Checksum sum;
  std::vector<double> buf(samples_per_point);
  WallTimer timer;
  for (std::size_t p = 0; p < points; ++p) {
    const std::vector<double> params = w.params_for(p);
    for (std::size_t i = 0; i < samples_per_point; i += batch) {
      const std::size_t len = std::min(batch, samples_per_point - i);
      fn.SampleBatch(params, i, seeds,
                     std::span<double>(buf.data() + i, len));
    }
    sum.Fold(buf);
  }
  r.elapsed_s = timer.ElapsedSeconds();
  r.samples = static_cast<std::uint64_t>(points) * samples_per_point;
  r.checksum = sum.value();
  return r;
}

/// Threaded twin of Drive: the per-point sample range fans out across
/// `pool` in batch-sized chunks written to disjoint subspans — exactly
/// SampleRange's chunk schedule — and the checksum folds each point's
/// buffer after the barrier, so it must match the scalar run bitwise.
RunResult DriveThreaded(const SimFunction& fn, const Workload& w,
                        const SeedVector& seeds, std::size_t points,
                        std::size_t samples_per_point, std::size_t batch,
                        ThreadPool& pool) {
  RunResult r;
  Checksum sum;
  std::vector<double> buf(samples_per_point);
  WallTimer timer;
  const std::size_t chunks = (samples_per_point + batch - 1) / batch;
  for (std::size_t p = 0; p < points; ++p) {
    const std::vector<double> params = w.params_for(p);
    pool.ParallelFor(chunks, [&](std::size_t c) {
      const std::size_t i = c * batch;
      const std::size_t len = std::min(batch, samples_per_point - i);
      fn.SampleBatch(params, i, seeds,
                     std::span<double>(buf.data() + i, len));
    });
    sum.Fold(buf);
  }
  r.elapsed_s = timer.ElapsedSeconds();
  r.samples = static_cast<std::uint64_t>(points) * samples_per_point;
  r.checksum = sum.value();
  return r;
}

/// Order-sensitive bitwise fold over a Monte Carlo result's per-column
/// summaries (columns iterate in name order; map is sorted).
std::uint64_t MetricsChecksum(const pdb::MonteCarloResult& result) {
  Checksum sum;
  for (const auto& [name, m] : result.columns) {
    const double fields[] = {static_cast<double>(m.count), m.mean, m.stddev,
                             m.std_error, m.min,           m.max,  m.p50,
                             m.p95};
    sum.Fold(fields);
  }
  return sum.value();
}

/// Drives MonteCarloExecutor's possible-worlds fan-out: a one-column
/// stochastic plan evaluated over `worlds` sampled worlds.
RunResult DriveWorlds(std::size_t worlds, std::size_t threads,
                      std::size_t batch, SeedSchema schema) {
  RunConfig cfg;
  cfg.num_samples = worlds;
  cfg.num_threads = threads;
  cfg.batch_size = batch;
  cfg.seed_schema = schema;
  pdb::MonteCarloExecutor executor(cfg);
  const auto model = MakeDemandModel({});
  auto factory = [&]() -> jigsaw::Result<pdb::PlanNodePtr> {
    return pdb::MakeProject(
        pdb::MakeDualScan(),
        {pdb::MakeModelCall(model,
                            {pdb::MakeParamRef(0, "week"),
                             pdb::MakeLiteral(pdb::Value(52.0))},
                            1)},
        {"demand"});
  };
  const std::vector<double> params = {25.0};
  RunResult r;
  WallTimer timer;
  auto result = executor.Run(factory, params);
  r.elapsed_s = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "worlds run failed: %s\n",
                 result.status().ToString().c_str());
    return r;
  }
  r.samples = worlds;
  r.checksum = MetricsChecksum(result.value());
  return r;
}

void EmitRow(const std::string& bench, const std::string& model,
             const std::string& mode, const BenchFlags& flags,
             std::size_t points, std::size_t samples_per_point,
             const RunResult& r) {
  JsonLineBuilder row;
  row.Str("bench", bench)
      .Str("model", model)
      .Str("mode", mode)
      .Num("points", static_cast<double>(points))
      .Num("samples_per_point", static_cast<double>(samples_per_point))
      .Num("batch_size", static_cast<double>(flags.batch_size))
      .Num("num_threads", static_cast<double>(flags.num_threads))
      .Num("seed_schema", static_cast<double>(flags.seed_schema))
      .Num("elapsed_s", r.elapsed_s)
      .Num("samples_per_sec",
           r.elapsed_s > 0.0 ? static_cast<double>(r.samples) / r.elapsed_s
                             : 0.0)
      .Num("checksum", static_cast<double>(r.checksum >> 12));
  EmitJsonLine(std::cout, row);
}

std::vector<double> DemandParams(std::size_t p) {
  return {1.0 + static_cast<double>(p % 50),
          2.0 * static_cast<double>(p % 10)};
}

std::vector<double> WeekParam(std::size_t p) {
  return {1.0 + static_cast<double>(p % 50)};
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = bench::ParseBenchFlags(&argc, argv);
  if (flags.batch_size == 0) flags.batch_size = 1;
  const std::size_t m = 10;  // fingerprint size (paper setup)
  if (flags.num_samples < m) {
    std::fprintf(stderr, "error: --num_samples must be >= %zu\n", m);
    return 2;
  }
  const std::size_t fp_points = bench::FullScale() ? 5000 : 500;
  const std::size_t sim_points = bench::FullScale() ? 50 : 8;

  const SeedSchema schema = bench::SchemaFromFlags(flags);
  const SeedVector seeds(RunConfig{}.master_seed, flags.num_samples, schema);

  CloudModelConfig user_cfg;
  user_cfg.num_users = 200;   // keep the data-bound model tractable
  user_cfg.user_sim_depth = 4;

  const auto demand =
      std::make_shared<BlackBoxSimFunction>(MakeDemandModel({}));
  const auto users =
      std::make_shared<BlackBoxSimFunction>(MakeUserSelectionModel(user_cfg));
  // Scalar-fallback black box: no EvalBatch override, so the batched mode
  // exercises BlackBox's default per-seed loop.
  const auto scalar_mix = std::make_shared<BlackBoxSimFunction>(
      std::make_shared<CallableBlackBox>(
          "ScalarMix", std::vector<std::string>{"week"},
          [](std::span<const double> p, RandomStream& rng) {
            return rng.Normal(p[0], std::sqrt(0.1 * p[0] + 1.0)) +
                   rng.Exponential(1.0 / (p[0] + 1.0));
          }));

  const std::vector<Workload> workloads = {
      {"DemandModel", demand, &DemandParams},
      {"UserSelectionModel", users, &WeekParam},
      {"ScalarMix", scalar_mix, &WeekParam},
  };

  std::unique_ptr<ThreadPool> pool;
  if (flags.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(flags.num_threads);
  }

  bool checksums_ok = true;
  for (const auto& w : workloads) {
    const ScalarizedSimFunction scalar_fn(*w.fn);
    struct Phase {
      const char* name;
      std::size_t points;
      std::size_t samples_per_point;
    };
    const Phase phases[] = {
        {"fingerprint", fp_points, m},
        {"full_sim", sim_points, flags.num_samples},
    };
    for (const Phase& phase : phases) {
      const RunResult scalar = Drive(scalar_fn, w, seeds, phase.points,
                                     phase.samples_per_point,
                                     /*batch=*/1);
      const RunResult batched = Drive(*w.fn, w, seeds, phase.points,
                                      phase.samples_per_point,
                                      flags.batch_size);
      EmitRow(phase.name, w.model, "scalar", flags, phase.points,
              phase.samples_per_point, scalar);
      EmitRow(phase.name, w.model, "batched", flags, phase.points,
              phase.samples_per_point, batched);
      const double speedup =
          batched.elapsed_s > 0.0 ? scalar.elapsed_s / batched.elapsed_s
                                  : 0.0;
      bool same = scalar.checksum == batched.checksum;
      checksums_ok = checksums_ok && same;
      std::fprintf(stderr, "%-22s %-12s speedup %5.2fx  checksums %s\n",
                   w.model.c_str(), phase.name, speedup,
                   same ? "match" : "MISMATCH");
      if (pool != nullptr) {
        const RunResult threaded =
            DriveThreaded(*w.fn, w, seeds, phase.points,
                          phase.samples_per_point, flags.batch_size, *pool);
        EmitRow(phase.name, w.model, "threaded", flags, phase.points,
                phase.samples_per_point, threaded);
        same = scalar.checksum == threaded.checksum;
        checksums_ok = checksums_ok && same;
        std::fprintf(stderr,
                     "%-22s %-12s threaded (%zu workers)  checksums %s\n",
                     w.model.c_str(), phase.name, flags.num_threads,
                     same ? "match" : "MISMATCH");
      }
    }
  }

  // Possible-worlds fan-out: MonteCarloExecutor serial vs parallel over
  // the same worlds must agree bitwise on every column summary.
  {
    const std::size_t worlds = flags.num_samples;
    const RunResult serial = DriveWorlds(worlds, /*threads=*/1,
                                         /*batch=*/1, schema);
    const RunResult parallel =
        DriveWorlds(worlds, std::max<std::size_t>(1, flags.num_threads),
                    flags.batch_size, schema);
    // The baseline row must carry the config it actually ran with.
    BenchFlags serial_flags = flags;
    serial_flags.num_threads = 1;
    serial_flags.batch_size = 1;
    EmitRow("worlds", "DemandModel", "serial", serial_flags, 1, worlds,
            serial);
    EmitRow("worlds", "DemandModel", "parallel", flags, 1, worlds, parallel);
    const bool same =
        serial.checksum == parallel.checksum && serial.samples == worlds;
    checksums_ok = checksums_ok && same;
    std::fprintf(stderr, "%-22s %-12s speedup %5.2fx  checksums %s\n",
                 "MonteCarloExecutor", "worlds",
                 parallel.elapsed_s > 0.0
                     ? serial.elapsed_s / parallel.elapsed_s
                     : 0.0,
                 same ? "match" : "MISMATCH");
  }

  if (!checksums_ok) {
    std::fprintf(stderr, "FAIL: a parallel/batched path diverged from its "
                         "serial twin\n");
    return 1;
  }
  return 0;
}
