#!/usr/bin/env bash
# Appends one JSONL record per checksummed bench run to
# BENCH_TRAJECTORY.jsonl at the repo root — the in-repo performance
# trajectory (ROADMAP: "record the JSONL trajectory in-repo").
#
# Each record wraps the bench's own stdout JSONL rows:
#   {"commit":..., "bench":..., "args":..., "ok":0|1, "elapsed_s":...,
#    "rows":[<the bench's JSON-lines rows>]}
#
# Sample counts are pinned (200 samples, batch 64, 2 threads) so rows are
# comparable across commits; bench_batched_sampling runs at BOTH
# --seed_schema values so the trajectory records the v1-vs-v2 speedup.
# Checksummed benches exit non-zero on a serial/parallel divergence, and
# that failure is recorded (ok:0) rather than swallowed.
#
# Usage: bench/run_trajectory.sh [build-dir]   (default: build)

set -u
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
OUT="BENCH_TRAJECTORY.jsonl"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

run_bench() {
  local bench="$1"
  shift
  local bin="$BUILD/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "skip: $bin not built" >&2
    return
  fi
  local start end ok rows elapsed
  start=$(date +%s.%N)
  rows="$("$bin" "$@" 2>/dev/null)"
  ok=$([ $? -eq 0 ] && echo 1 || echo 0)
  end=$(date +%s.%N)
  elapsed=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
  # The bench rows are one JSON object per line; join them into an array.
  local joined
  joined="$(printf '%s' "$rows" | paste -sd, -)"
  printf '{"commit":"%s","bench":"%s","args":"%s","ok":%s,"elapsed_s":%s,"rows":[%s]}\n' \
    "$COMMIT" "$bench" "$*" "$ok" "$elapsed" "$joined" >> "$OUT"
  echo "recorded: $bench $* (ok=$ok, ${elapsed}s)" >&2
}

# Static-analysis tooling wall time rides along in the same trajectory:
# if the determinism lint or the tidy driver creeps from seconds to
# minutes it shows up here next to the bench rows. `tool` rows carry no
# bench rows; tidy is recorded even when clang-tidy is absent (exit 3 →
# ok:0 with skipped:1, so local GCC-only records are distinguishable
# from real findings).
run_tool() {
  local name="$1"
  shift
  local start end rc ok skipped elapsed
  start=$(date +%s.%N)
  "$@" > /dev/null 2>&1
  rc=$?
  end=$(date +%s.%N)
  ok=$([ "$rc" -eq 0 ] && echo 1 || echo 0)
  skipped=$([ "$rc" -eq 3 ] && echo 1 || echo 0)
  elapsed=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
  printf '{"commit":"%s","tool":"%s","args":"%s","ok":%s,"skipped":%s,"elapsed_s":%s}\n' \
    "$COMMIT" "$name" "$*" "$ok" "$skipped" "$elapsed" >> "$OUT"
  echo "recorded: tool $name (ok=$ok, skipped=$skipped, ${elapsed}s)" >&2
}

PIN="--num_samples=200 --batch_size=64 --num_threads=2"

run_tool lint_determinism python3 tools/lint_determinism.py --root .
run_tool clang_tidy bash tools/run_clang_tidy.sh "$BUILD"

run_bench bench_batched_sampling $PIN --seed_schema=1
run_bench bench_batched_sampling $PIN --seed_schema=2
run_bench bench_batched_sampling --num_samples=200 --batch_size=64 --num_threads=1 --seed_schema=1
run_bench bench_batched_sampling --num_samples=200 --batch_size=64 --num_threads=1 --seed_schema=2
run_bench bench_expr_compile $PIN
run_bench bench_montecarlo_sweep $PIN
# Columnar storage scale check: rows x worlds on both representations.
# --num_samples is the world count here; the row sweep is built in.
run_bench bench_columnar_worlds --num_samples=8 --batch_size=64 --num_threads=2 --seed_schema=1
run_bench bench_columnar_worlds --num_samples=8 --batch_size=64 --num_threads=2 --seed_schema=2
run_bench bench_session_server --num_samples=200 --num_threads=2 --num_sessions=4
