// Serving-layer throughput and latency: N concurrent clients replaying a
// mixed what-if workload (MONTECARLO runs, OVER sweeps, interactive
// ticks) against one SessionServer's shared snapshots and worker pool.
//
// Two phases per session count:
//
//   concurrent — every client on its own thread, all requests fanned out
//                on the ONE shared pool;
//   standalone — each client's workload replayed by an independent
//                serial single-tenant pipeline under the same session
//                seed: the semantics the server must reproduce
//                bit-for-bit.
//
// Each client folds every result it sees (sweep metrics, Monte Carlo
// metrics, interactive estimates) into a bitwise checksum; the binary
// exits non-zero if any session's concurrent checksum diverges from its
// standalone twin — CI smoke-runs it threaded as the machine check of
// the serving determinism contract.
//
// Every row is a JSON-lines record on stdout with throughput and
// p50/p95/p99 request latency, plus one "session_server_round" row per
// (round, request kind) — the per-round latency trajectory of the run,
// not just end-of-run percentiles. A human summary goes to stderr. Flags:
// --num_samples=N --batch_size=N --num_threads=N --num_sessions=N
// (bench_common.h).

#include "bench_common.h"

#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "interactive/auto_prime.h"
#include "models/cloud_models.h"
#include "serve/session_server.h"
#include "sql/script_runner.h"
#include "util/timer.h"

namespace {

using namespace jigsaw;
using bench::BenchFlags;
using bench::EmitJsonLine;
using bench::JsonLineBuilder;

/// Order-sensitive bitwise fold (FNV-1a over the raw doubles).
class Checksum {
 public:
  void Fold(double x) {
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof u);
    h_ = (h_ ^ u) * 0x100000001b3ULL;
  }
  void FoldMetrics(const OutputMetrics& m) {
    const double fields[] = {static_cast<double>(m.count),
                             m.mean,
                             m.stddev,
                             m.std_error,
                             m.min,
                             m.max,
                             m.p50,
                             m.p95};
    for (double x : fields) Fold(x);
  }
  void FoldColumns(const std::map<std::string, OutputMetrics>& columns) {
    for (const auto& [name, m] : columns) FoldMetrics(m);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

constexpr const char* kScenario = R"(
DECLARE PARAMETER @w AS RANGE 10 TO 50 STEP BY 10;
SELECT DemandModel(@w, 36) AS demand,
       CapacityModel(@w, 8, 8) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO r;
)";

const std::string kSweepScript = std::string(kScenario) +
                                 "MONTECARLO OVER @w;";
const std::string kMonteCarloScript = std::string(kScenario) +
                                      "MONTECARLO;";

constexpr std::size_t kTicksPerRound = 30;

struct SessionResult {
  std::vector<double> latencies_s;  ///< one entry per request
  std::uint64_t cells = 0;          ///< (point x world) evaluations
  std::uint64_t checksum = 0;
  bool ok = true;
  std::string error;
};

void FoldInteractive(InteractiveSession& session, std::size_t rounds,
                     Checksum* sum, SessionResult* r) {
  const std::size_t n = session.num_points();
  if (session.SetFocus(rounds % n).ok()) {
    session.Run(kTicksPerRound);
    r->cells += kTicksPerRound;  // batched tick evaluations
  }
  for (std::size_t p = 0; p < n; ++p) {
    const DisplayEstimate e = session.EstimateFor(p);
    sum->Fold(e.mean);
    sum->Fold(e.std_error);
    sum->Fold(static_cast<double>(e.support));
  }
}

/// One client's workload: `rounds` iterations of sweep -> pinned
/// MONTECARLO -> prime-and-tick. `run` executes a published script;
/// `prime` opens an interactive session off a sweep outcome. Both
/// closures hide whether this is the concurrent server path or the
/// standalone serial twin — the workload (and so the checksum stream) is
/// identical by construction.
template <typename RunFn, typename PrimeFn>
SessionResult DriveWorkload(std::size_t rounds, std::size_t worlds,
                            RunFn&& run, PrimeFn&& prime) {
  SessionResult r;
  Checksum sum;
  for (std::size_t round = 0; round < rounds && r.ok; ++round) {
    // Sweep request.
    WallTimer sweep_timer;
    Result<sql::ScriptOutcome> sweep = run(kSweepScript, round, true);
    r.latencies_s.push_back(sweep_timer.ElapsedSeconds());
    if (!sweep.ok()) {
      r.ok = false;
      r.error = sweep.status().ToString();
      break;
    }
    for (const auto& point : sweep.value().montecarlo->points) {
      sum.FoldColumns(point.columns);
      r.cells += worlds;
    }

    // Pinned single-valuation request.
    WallTimer mc_timer;
    Result<sql::ScriptOutcome> mc = run(kMonteCarloScript, round, false);
    r.latencies_s.push_back(mc_timer.ElapsedSeconds());
    if (!mc.ok()) {
      r.ok = false;
      r.error = mc.status().ToString();
      break;
    }
    sum.FoldColumns(mc.value().montecarlo->columns);
    r.cells += worlds;

    // Interactive what-if request primed off the sweep just run.
    WallTimer tick_timer;
    Result<std::unique_ptr<InteractiveSession>> primed =
        prime(sweep.value());
    if (!primed.ok()) {
      r.ok = false;
      r.error = primed.status().ToString();
      break;
    }
    FoldInteractive(*primed.value(), round, &sum, &r);
    r.latencies_s.push_back(tick_timer.ElapsedSeconds());
  }
  r.checksum = sum.value();
  return r;
}

/// Overrides pinning @w for the round's single-valuation request.
std::vector<std::pair<std::string, double>> RoundOverrides(
    std::size_t round, bool sweep) {
  if (sweep) return {};
  return {{"w", 10.0 + 10.0 * static_cast<double>(round % 5)}};
}

SessionResult DriveConcurrentClient(serve::Session& session,
                                    std::size_t rounds,
                                    std::size_t worlds) {
  return DriveWorkload(
      rounds, worlds,
      [&](const std::string& text, std::size_t round, bool sweep) {
        return session.Run(sweep ? "sweep" : "mc",
                           RoundOverrides(round, sweep));
      },
      [&](const sql::ScriptOutcome& outcome) {
        return session.PrimeInteractive(outcome, "demand");
      });
}

SessionResult DriveStandaloneTwin(const ModelRegistry& registry,
                                  const serve::Session& session,
                                  std::size_t rounds, std::size_t worlds) {
  const RunConfig twin_cfg = serve::StandaloneTwinConfig(session);
  sql::ScriptRunner runner(&registry, twin_cfg);
  return DriveWorkload(
      rounds, worlds,
      [&](const std::string& text, std::size_t round, bool sweep) {
        return runner.Run(text, RoundOverrides(round, sweep));
      },
      [&](const sql::ScriptOutcome& outcome) {
        InteractiveConfig cfg;
        cfg.run = twin_cfg;
        return MakeSessionFromOutcome(outcome, "demand", cfg);
      });
}

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void EmitRow(const std::string& mode, std::size_t sessions,
             std::size_t threads, std::size_t rounds,
             const BenchFlags& flags,
             const std::vector<SessionResult>& results, double elapsed_s) {
  std::vector<double> lat;
  std::uint64_t cells = 0;
  for (const SessionResult& r : results) {
    lat.insert(lat.end(), r.latencies_s.begin(), r.latencies_s.end());
    cells += r.cells;
  }
  std::sort(lat.begin(), lat.end());
  JsonLineBuilder row;
  row.Str("bench", "session_server")
      .Str("mode", mode)
      .Num("sessions", static_cast<double>(sessions))
      .Num("num_threads", static_cast<double>(threads))
      .Num("rounds", static_cast<double>(rounds))
      .Num("worlds", static_cast<double>(flags.num_samples))
      .Num("batch_size", static_cast<double>(flags.batch_size))
      .Num("elapsed_s", elapsed_s)
      .Num("requests", static_cast<double>(lat.size()))
      .Num("requests_per_sec",
           elapsed_s > 0.0 ? static_cast<double>(lat.size()) / elapsed_s
                           : 0.0)
      .Num("cells_per_sec",
           elapsed_s > 0.0 ? static_cast<double>(cells) / elapsed_s : 0.0)
      .Num("lat_p50_ms", Percentile(lat, 0.50) * 1e3)
      .Num("lat_p95_ms", Percentile(lat, 0.95) * 1e3)
      .Num("lat_p99_ms", Percentile(lat, 0.99) * 1e3);
  EmitJsonLine(std::cout, row);
}

/// Time-series output: one row per (round, request kind) aggregating
/// that round's latencies across sessions — the trajectory view of the
/// run (warm-up effects, cache convergence), not just end-of-run
/// percentiles. DriveWorkload pushes exactly three latencies per
/// completed round, in (sweep, mc, tick) order; sessions that aborted
/// mid-round simply contribute fewer entries.
void EmitRoundRows(const std::string& mode, std::size_t sessions,
                   std::size_t threads, std::size_t rounds,
                   const BenchFlags& flags,
                   const std::vector<SessionResult>& results) {
  static const char* kKinds[] = {"sweep", "mc", "tick"};
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t kind = 0; kind < 3; ++kind) {
      std::vector<double> lat;
      for (const SessionResult& r : results) {
        const std::size_t idx = 3 * round + kind;
        if (idx < r.latencies_s.size()) lat.push_back(r.latencies_s[idx]);
      }
      if (lat.empty()) continue;
      std::sort(lat.begin(), lat.end());
      double total = 0.0;
      for (double x : lat) total += x;
      JsonLineBuilder row;
      row.Str("bench", "session_server_round")
          .Str("mode", mode)
          .Str("request", kKinds[kind])
          .Num("round", static_cast<double>(round))
          .Num("sessions", static_cast<double>(sessions))
          .Num("num_threads", static_cast<double>(threads))
          .Num("worlds", static_cast<double>(flags.num_samples))
          .Num("batch_size", static_cast<double>(flags.batch_size))
          .Num("lat_mean_ms", total / static_cast<double>(lat.size()) * 1e3)
          .Num("lat_min_ms", lat.front() * 1e3)
          .Num("lat_p50_ms", Percentile(lat, 0.50) * 1e3)
          .Num("lat_max_ms", lat.back() * 1e3);
      EmitJsonLine(std::cout, row);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = bench::ParseBenchFlags(&argc, argv);
  if (flags.batch_size == 0) flags.batch_size = 1;
  if (flags.num_threads == 0) flags.num_threads = 1;
  if (flags.num_sessions == 0) flags.num_sessions = 1;
  const std::size_t rounds = bench::FullScale() ? 8 : 3;

  ModelRegistry registry;
  if (auto s = RegisterCloudModels(&registry); !s.ok()) {
    std::fprintf(stderr, "model registration failed: %s\n",
                 s.ToString().c_str());
    return 2;
  }

  RunConfig base;
  base.num_samples = flags.num_samples;
  base.num_threads = flags.num_threads;
  base.batch_size = flags.batch_size;
  base.keep_samples = true;  // sweeps must be primeable

  bool checksums_ok = true;
  for (std::size_t sessions : {std::size_t{1}, flags.num_sessions}) {
    serve::SessionServer server(&registry, base);
    if (auto s = server.Publish("sweep", kSweepScript); !s.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   s.status().ToString().c_str());
      return 2;
    }
    if (auto s = server.Publish("mc", kMonteCarloScript); !s.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   s.status().ToString().c_str());
      return 2;
    }

    std::vector<serve::Session*> clients;
    for (std::size_t s = 0; s < sessions; ++s) {
      clients.push_back(&server.Connect());
    }

    // Concurrent phase: one OS thread per client, shared pool under all.
    std::vector<SessionResult> concurrent(sessions);
    WallTimer concurrent_timer;
    {
      std::vector<std::thread> workers;
      workers.reserve(sessions);
      for (std::size_t s = 0; s < sessions; ++s) {
        workers.emplace_back([&, s] {
          concurrent[s] = DriveConcurrentClient(*clients[s], rounds,
                                                flags.num_samples);
        });
      }
      for (auto& t : workers) t.join();
    }
    const double concurrent_s = concurrent_timer.ElapsedSeconds();

    // Standalone phase: serial single-tenant twins, same seeds.
    std::vector<SessionResult> standalone(sessions);
    WallTimer standalone_timer;
    for (std::size_t s = 0; s < sessions; ++s) {
      standalone[s] =
          DriveStandaloneTwin(registry, *clients[s], rounds,
                              flags.num_samples);
    }
    const double standalone_s = standalone_timer.ElapsedSeconds();

    EmitRow("concurrent", sessions, flags.num_threads, rounds, flags,
            concurrent, concurrent_s);
    EmitRow("standalone", sessions, 1, rounds, flags, standalone,
            standalone_s);
    EmitRoundRows("concurrent", sessions, flags.num_threads, rounds, flags,
                  concurrent);
    EmitRoundRows("standalone", sessions, 1, rounds, flags, standalone);

    bool same = true;
    for (std::size_t s = 0; s < sessions; ++s) {
      if (!concurrent[s].ok) {
        std::fprintf(stderr, "session %zu failed: %s\n", s,
                     concurrent[s].error.c_str());
        same = false;
      } else if (!standalone[s].ok) {
        std::fprintf(stderr, "twin %zu failed: %s\n", s,
                     standalone[s].error.c_str());
        same = false;
      } else if (concurrent[s].checksum != standalone[s].checksum) {
        std::fprintf(stderr,
                     "session %zu DIVERGED: concurrent %016llx != "
                     "standalone %016llx\n",
                     s,
                     static_cast<unsigned long long>(
                         concurrent[s].checksum),
                     static_cast<unsigned long long>(
                         standalone[s].checksum));
        same = false;
      }
    }
    std::fprintf(stderr,
                 "sessions=%-3zu threads=%zu concurrent %6.2fs  standalone "
                 "%6.2fs  checksums %s\n",
                 sessions, flags.num_threads, concurrent_s, standalone_s,
                 same ? "match" : "MISMATCH");
    checksums_ok = checksums_ok && same;
    if (sessions == flags.num_sessions) break;  // {1, N} may coincide
  }

  if (!checksums_ok) {
    std::fprintf(stderr,
                 "FAIL: a concurrent session diverged from its standalone "
                 "twin\n");
    return 1;
  }
  return 0;
}
