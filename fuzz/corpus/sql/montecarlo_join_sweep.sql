DECLARE PARAMETER @w AS RANGE 0 TO 7 STEP BY 1;
SELECT 1 AS one INTO r;
MONTECARLO FROM users(16, 0.8, 5.0, 2.0) JOIN items(24)
           ON users.user_id = items.item_id OVER @w IN (1, 3, 5) USING LAYERED;
