SELECT CASE WHEN (DemandModel(@w,
