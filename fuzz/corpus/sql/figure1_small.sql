DECLARE PARAMETER @current_week AS RANGE 0 TO 24 STEP BY 2;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 16 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 16 STEP BY 8;
DECLARE PARAMETER @feature_release AS SET (12,36);
SELECT DemandModel(@current_week, @feature_release) AS demand,
       CapacityModel(@current_week, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.01
GROUP BY feature_release, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
