DECLARE PARAMETER @w AS RANGE 0 TO 63 STEP BY 1;
SELECT DemandModel(@w, 36) AS demand,
       CapacityModel(@w, 8, 8) AS capacity INTO r;
MONTECARLO OVER @w IN (0, 8, 16, 24);
