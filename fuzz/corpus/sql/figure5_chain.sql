DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @release_week AS CHAIN release_week
  FROM @current_week : @current_week - 1 INITIAL VALUE 52;
SELECT CASE WHEN demand > 26 AND @current_week + 4 < @release_week
            THEN @current_week + 4 ELSE @release_week END AS release_week,
       demand
FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
INTO results;
