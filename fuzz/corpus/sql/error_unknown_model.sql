DECLARE PARAMETER @w AS SET (1,2);
SELECT NoSuchModel(@w) AS x INTO results;
