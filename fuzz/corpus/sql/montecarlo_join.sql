SELECT 1 AS one INTO r;
MONTECARLO FROM users(20, 0.8, 5.0, 2.0) AS u JOIN items(30) AS i
           ON u.user_id = i.item_id;
