DECLARE PARAMETER @w AS SET (1, 2);
SELECT DemandModel(@w, 4) AS demand INTO r;
MONTECARLO OVER @ghost IN (1, 2);
