MONTECARLO FROM users(8) JOIN items(8) ON u.user_id =;
