SELECT 1 AS one INTO r;
MONTECARLO FROM users(8, 0.8, 5.0, 2.0) AS u JOIN items(8) AS i
           ON ghost.user_id = i.item_id;
