// Fuzz harness for the SQL front end: lexer -> parser -> binder.
//
// Property under test: for ARBITRARY bytes, every stage either returns a
// value or an error Status — it never crashes, overflows, or hangs. The
// front end is the only layer that consumes untrusted text (session
// clients send scripts over the wire), so it gets the fuzzer.
//
// Dual mode:
//   * Under Clang with JIGSAW_LIBFUZZER defined, this compiles against
//     libFuzzer (-fsanitize=fuzzer provides main) for coverage-guided
//     exploration:  ./fuzz_sql fuzz/corpus/sql -max_total_time=30
//   * Elsewhere (GCC builds, this repo's default toolchain) a standalone
//     main() below replays corpus files passed as arguments. Both modes
//     accept "binary CORPUS_FILE..." so the fuzz_sql_corpus CTest is the
//     same invocation either way.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "models/black_box.h"
#include "models/cloud_models.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace {

// One registry for the whole run: binding must not mutate it, and
// rebuilding the cloud models per input would dominate the fuzz loop.
// Leaked on purpose — libFuzzer's LSan run ignores still-reachable.
const jigsaw::ModelRegistry& SharedRegistry() {
  static const jigsaw::ModelRegistry* registry = [] {
    auto* r = new jigsaw::ModelRegistry();
    if (!jigsaw::RegisterCloudModels(r).ok()) std::abort();
    return r;
  }();
  return *registry;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Lex and parse run on every input (they must reject garbage cleanly);
  // the binder only sees scripts that survive the parser, mirroring the
  // production pipeline. Results are intentionally discarded — the
  // assertions here are the sanitizers and "no crash".
  (void)jigsaw::sql::Lex(text);
  if (jigsaw::sql::ParseScript(text).ok()) {
    (void)jigsaw::sql::ParseAndBind(text, SharedRegistry());
  }
  return 0;
}

#ifndef JIGSAW_LIBFUZZER
#include <cstdio>
#include <fstream>
#include <sstream>

// Corpus-replay driver for builds without libFuzzer. Skips flag-shaped
// arguments so a libFuzzer-style command line still works.
int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "fuzz_sql: cannot open %s\n", argv[i]);
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string data = ss.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
    ++replayed;
  }
  std::printf("fuzz_sql: replayed %d corpus file(s), no crashes\n", replayed);
  return 0;
}
#endif  // !JIGSAW_LIBFUZZER
