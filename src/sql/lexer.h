#pragma once

/// \file lexer.h
/// Hand-written lexer for the Jigsaw query language. Supports `--` line
/// comments (the paper's examples use them as section markers), numeric
/// literals, quoted strings, @parameters and multi-character operators
/// (<=, >=, <>, !=).

#include <string>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace jigsaw::sql {

/// Tokenizes `text`; the result always ends with a kEnd token.
Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace jigsaw::sql
