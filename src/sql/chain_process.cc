#include "sql/chain_process.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw::sql {

ScenarioChainProcess::ScenarioChainProcess(
    std::shared_ptr<const RowProgram> program, BoundChain chain,
    std::vector<double> base_valuation, std::size_t output_column)
    : program_(std::move(program)),
      chain_(chain),
      base_valuation_(std::move(base_valuation)),
      output_column_(output_column),
      name_("chain:" + program_->outer_names[chain.source_column_index]) {
  JIGSAW_CHECK(chain_.chain_param_index < base_valuation_.size());
  JIGSAW_CHECK(chain_.driver_param_index < base_valuation_.size());
  JIGSAW_CHECK(output_column_ < program_->outer_exprs.size());
}

double ScenarioChainProcess::EvalColumn(std::size_t column,
                                        double chain_value,
                                        std::int64_t step, std::size_t k,
                                        const SeedVector& seeds,
                                        std::uint64_t salt) const {
  std::vector<double> params = base_valuation_;
  params[chain_.driver_param_index] = static_cast<double>(step);
  params[chain_.chain_param_index] = chain_value;
  auto v = program_->EvalColumn(column, params, k, seeds, salt);
  JIGSAW_CHECK_MSG(v.ok(), "chain scenario evaluation failed: "
                               << v.status().ToString());
  return v.value();
}

double ScenarioChainProcess::StepForInstance(double prev_state,
                                             std::int64_t step,
                                             std::size_t k,
                                             const SeedVector& seeds) const {
  return EvalColumn(chain_.source_column_index, prev_state, step, k, seeds,
                    MarkovStepSalt(step));
}

double ScenarioChainProcess::EstimateForInstance(
    double anchor_state, std::int64_t /*anchor_step*/, std::int64_t step,
    std::size_t k, const SeedVector& seeds) const {
  // The synthesized estimator: one transition with the chain input frozen
  // at the anchor value, under the same per-step stream as honest
  // stepping (Section 4.2).
  return EvalColumn(chain_.source_column_index, anchor_state, step, k, seeds,
                    MarkovStepSalt(step));
}

double ScenarioChainProcess::OutputForInstance(double state,
                                               std::int64_t step,
                                               std::size_t k,
                                               const SeedVector& seeds) const {
  return EvalColumn(output_column_, state, step, k, seeds,
                    MarkovOutputSalt(step));
}

void ScenarioChainProcess::EvalColumnBatch(
    std::size_t column, std::span<const double> chain_states,
    std::int64_t step, std::size_t k_begin, const SeedVector& seeds,
    std::uint64_t salt, std::span<double> out) const {
  std::vector<double> params = base_valuation_;
  params[chain_.driver_param_index] = static_cast<double>(step);
  const pdb::BatchProgram::LaneParam lane_param{chain_.chain_param_index,
                                                chain_states};
  Status s = program_->EvalColumnSpan(
      column, params, k_begin, seeds, salt,
      std::span<const pdb::BatchProgram::LaneParam>(&lane_param, 1), out);
  JIGSAW_CHECK_MSG(s.ok(),
                   "chain scenario evaluation failed: " << s.ToString());
}

void ScenarioChainProcess::StepBatch(std::span<const double> prev_states,
                                     std::int64_t step, std::size_t k_begin,
                                     const SeedVector& seeds,
                                     std::span<double> out) const {
  if (!program_->compiled()) {
    MarkovProcess::StepBatch(prev_states, step, k_begin, seeds, out);
    return;
  }
  EvalColumnBatch(chain_.source_column_index, prev_states, step, k_begin,
                  seeds, MarkovStepSalt(step), out);
}

void ScenarioChainProcess::EstimateBatch(
    std::span<const double> anchor_states, std::int64_t anchor_step,
    std::int64_t step, std::size_t k_begin, const SeedVector& seeds,
    std::span<double> out) const {
  if (!program_->compiled()) {
    MarkovProcess::EstimateBatch(anchor_states, anchor_step, step, k_begin,
                                 seeds, out);
    return;
  }
  // Same per-step stream as honest stepping (Section 4.2), like the
  // scalar EstimateForInstance.
  EvalColumnBatch(chain_.source_column_index, anchor_states, step, k_begin,
                  seeds, MarkovStepSalt(step), out);
}

void ScenarioChainProcess::OutputBatch(std::span<const double> states,
                                       std::int64_t step, std::size_t k_begin,
                                       const SeedVector& seeds,
                                       std::span<double> out) const {
  if (!program_->compiled()) {
    MarkovProcess::OutputBatch(states, step, k_begin, seeds, out);
    return;
  }
  EvalColumnBatch(output_column_, states, step, k_begin, seeds,
                  MarkovOutputSalt(step), out);
}

Result<OutputMetrics> RunChainScenario(const BoundScript& bound,
                                       const std::string& output_column,
                                       std::int64_t target,
                                       const RunConfig& config, bool use_jump,
                                       ChainRunStats* stats) {
  if (!bound.chain) {
    return Status::InvalidArgument(
        "scenario has no CHAIN parameter; use the batch runner");
  }
  std::size_t out_idx = bound.program->outer_names.size();
  for (std::size_t j = 0; j < bound.program->outer_names.size(); ++j) {
    if (EqualsIgnoreCase(bound.program->outer_names[j], output_column)) {
      out_idx = j;
      break;
    }
  }
  if (out_idx == bound.program->outer_names.size()) {
    return Status::NotFound("no result column named '" + output_column +
                            "'");
  }

  const auto base = bound.scenario.params.NumPoints() > 0
                        ? bound.scenario.params.ValuationAt(0)
                        : std::vector<double>{};
  auto program = bound.program;
  if (!config.compile_expressions && program->compiled()) {
    program = WithoutBatchProgram(*program);
  }
  ScenarioChainProcess process(program, *bound.chain, base, out_idx);

  ChainResult result;
  if (use_jump) {
    MarkovJumpRunner runner(config);
    result = runner.Run(process, target);
    if (stats != nullptr) *stats = result.stats;
    return ChainOutputMetrics(process, result, target, runner.seeds(),
                              config);
  }
  NaiveChainRunner runner(config);
  result = runner.Run(process, target);
  if (stats != nullptr) *stats = result.stats;
  return ChainOutputMetrics(process, result, target, runner.seeds(), config);
}

}  // namespace jigsaw::sql
