#pragma once

/// \file ast.h
/// Parse-level AST for the Jigsaw query language. The grammar covers the
/// paper's surface syntax:
///
///   DECLARE PARAMETER @p AS RANGE lo TO hi STEP BY s;
///   DECLARE PARAMETER @p AS SET (v1, v2, ...);
///   DECLARE PARAMETER @p AS CHAIN col FROM @driver : expr
///                         INITIAL VALUE v;                  -- Figure 5
///   SELECT expr AS alias, ... [FROM (SELECT ...)] INTO results;
///   OPTIMIZE SELECT @p, ... FROM results
///     WHERE MAX(EXPECT col) < 0.01 [AND ...]
///     GROUP BY p, ...
///     FOR MAX @p1, MIN @p2;                                 -- Figure 1
///   GRAPH OVER @p EXPECT col WITH style..., ...;            -- Section 2.2
///   MONTECARLO [FROM t1(args) [AS a] JOIN t2(args) [AS b] ON a.c = b.c]
///              [OVER @p [IN (v1, v2, ...) | IN lo TO hi [STEP BY s]]]
///              [USING DIRECT | LAYERED];                    -- Section 2.1

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace jigsaw::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

enum class AstExprKind {
  kNumber,
  kString,
  kIdent,     ///< column / alias reference
  kParam,     ///< @parameter reference
  kCall,      ///< Model(args...)
  kBinary,
  kNot,
  kNegate,
  kCase,
};

struct AstExpr {
  AstExprKind kind = AstExprKind::kNumber;
  // kNumber
  double number = 0.0;
  // kString / kIdent / kParam / kCall (callee) / kBinary (operator text)
  std::string text;
  // kCall args, kBinary {lhs, rhs}, kNot/kNegate {operand},
  // kCase: pairs flattened as [when1, then1, when2, then2, ...] with
  // else_expr kept separately.
  std::vector<AstExprPtr> children;
  AstExprPtr else_expr;

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct RangeSpecAst {
  double lo = 0.0;
  double hi = 0.0;
  double step = 1.0;
};

struct SetSpecAst {
  std::vector<double> values;
};

struct ChainSpecAst {
  std::string column;        ///< result column chained back
  std::string driver_param;  ///< @driver
  AstExprPtr source_step;    ///< e.g. @current_week - 1
  double initial = 0.0;
};

struct DeclareStmt {
  std::string param;
  std::optional<RangeSpecAst> range;
  std::optional<SetSpecAst> set;
  std::optional<ChainSpecAst> chain;
};

struct SelectItemAst {
  AstExprPtr expr;
  std::string alias;  ///< empty -> synthesized from the expression
};

struct SelectStmt {
  std::vector<SelectItemAst> items;
  std::unique_ptr<SelectStmt> from_subquery;  ///< FROM (SELECT ...)
  std::string into_table;                     ///< INTO name ("" if absent)
};

struct ConstraintAst {
  std::string sweep_agg;  ///< MAX/MIN/AVG/SUM ("" -> MAX default)
  std::string metric;     ///< EXPECT / EXPECT_STDDEV / MEDIAN / P95 / ...
  std::string column;
  std::string cmp;        ///< < <= > >=
  double threshold = 0.0;
};

struct ObjectiveAst {
  std::string param;
  bool maximize = true;
};

struct OptimizeStmt {
  std::vector<std::string> select_params;
  std::string from_table;
  std::vector<ConstraintAst> constraints;
  std::vector<std::string> group_by;
  std::vector<ObjectiveAst> objectives;
};

struct GraphSeriesAst {
  std::string metric;
  std::string column;
  std::vector<std::string> style;  ///< WITH words, kept verbatim
};

struct GraphStmt {
  std::string x_param;
  std::vector<GraphSeriesAst> series;
};

/// OVER clause of a MONTECARLO statement: the swept parameter plus its
/// point list. Exactly one of `values` / `range` is set when an IN
/// clause was written; with neither, the sweep covers the parameter's
/// declared domain.
struct MonteCarloSweepAst {
  std::string param;
  std::optional<SetSpecAst> values;   ///< IN (v1, v2, ...)
  std::optional<RangeSpecAst> range;  ///< IN lo TO hi [STEP BY s]
};

/// One side of a MONTECARLO FROM ... JOIN clause: a VG (uncertain) table
/// from the catalog, its numeric constructor arguments, and the alias ON
/// columns reference it by (defaults to the table name).
struct MonteCarloTableAst {
  std::string table;
  std::vector<double> args;
  std::string alias;  ///< "" -> table name
};

/// FROM t1(...) AS a JOIN t2(...) AS b ON a.col = b.col: world-
/// partitioned equi-join of two uncertain relations. Each ON side is a
/// qualified alias.column reference, kept verbatim for the binder.
struct MonteCarloJoinAst {
  MonteCarloTableAst left;
  MonteCarloTableAst right;
  std::string on_left_alias;
  std::string on_left_column;
  std::string on_right_alias;
  std::string on_right_column;
};

/// MONTECARLO [FROM t1(...) [AS a] JOIN t2(...) [AS b] ON a.c1 = b.c2]
///            [OVER @p [IN ...]] [USING DIRECT | LAYERED]: evaluates the
/// scenario SELECT through the possible-worlds executor and reports full
/// per-column distribution summaries (Section 2.1's sampled databases,
/// as opposed to the fingerprint-reusing sweep). With an OVER clause the
/// estimate is produced at every point of the swept parameter — the
/// optimization workflow's "compare the output distribution at each
/// candidate setting" — fanning out across both points and worlds while
/// staying bit-identical to one standalone MONTECARLO per point.
struct MonteCarloStmt {
  bool layered = false;  ///< USING LAYERED routes through LayeredEngine
  std::optional<MonteCarloJoinAst> join;  ///< FROM ... JOIN ... ON ...
  std::optional<MonteCarloSweepAst> over;
};

struct Statement {
  // Exactly one is set.
  std::unique_ptr<DeclareStmt> declare;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<OptimizeStmt> optimize;
  std::unique_ptr<GraphStmt> graph;
  std::unique_ptr<MonteCarloStmt> montecarlo;
};

struct Script {
  std::vector<Statement> statements;
};

}  // namespace jigsaw::sql
