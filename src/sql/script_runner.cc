#include "sql/script_runner.h"

#include <algorithm>

#include "pdb/join.h"
#include "pdb/layered_engine.h"
#include "pdb/monte_carlo.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace jigsaw::sql {

namespace {

/// One-row plan over the scenario's interpreted projection: evaluates
/// every outer column of the RowProgram for the context's (params,
/// world) pair. This is the SQL-bound Monte Carlo fallback when the row
/// program has no compiled form — the factory hands a fresh node per
/// world, and the node carries no shared mutable state, so it is safe
/// under the executor's world fan-out.
pdb::PlanNodePtr MakeInterpretedRowScan(
    std::shared_ptr<const RowProgram> program) {
  std::vector<pdb::Column> cols;
  cols.reserve(program->outer_names.size());
  for (const auto& name : program->outer_names) {
    cols.push_back({name, pdb::ValueType::kDouble});
  }
  auto fill = [program = std::move(program)](
                  pdb::EvalContext& ctx, std::vector<double>* out) -> Status {
    JIGSAW_ASSIGN_OR_RETURN(
        *out, program->EvalAllColumns(ctx.params, ctx.sample_id, *ctx.seeds,
                                      ctx.stream_salt));
    return Status::OK();
  };
  return pdb::MakeSingleRowScan(pdb::Schema(std::move(cols)),
                                std::move(fill));
}

/// Fixes every parameter: overrides first, then the first value of its
/// domain (the same convention the GRAPH sweep uses for non-x params).
Result<std::vector<double>> BaseValuation(
    const ParameterSpace& params,
    const std::vector<std::pair<std::string, double>>& overrides) {
  std::vector<double> valuation(params.num_params(), 0.0);
  for (std::size_t i = 0; i < params.num_params(); ++i) {
    const auto values = params.def(i).Values();
    valuation[i] = values.empty() ? 0.0 : values[0];
  }
  for (const auto& [name, value] : overrides) {
    auto idx = params.IndexOf(name);
    if (!idx) {
      return Status::InvalidArgument("override for undeclared '@" + name +
                                     "'");
    }
    valuation[*idx] = value;
  }
  return valuation;
}

}  // namespace

std::string ScriptOutcome::Report() const {
  std::string out;
  if (bound.program != nullptr) {
    // Surface the expression-execution mode: silent de-optimization to
    // the interpreter would otherwise be invisible.
    if (bound.program->compiled()) {
      out += "expressions: compiled (vectorized batch programs)\n";
    } else {
      out += "expressions: interpreted";
      if (!bound.program->batch_fallback_reason.empty()) {
        out += " (fallback: " + bound.program->batch_fallback_reason + ")";
      }
      out += "\n";
    }
  }
  if (optimize) {
    out += optimize->ToString() + "\n";
  }
  if (graph) {
    out += StrFormat("GRAPH over @%s: %zu points x %zu series\n",
                     graph->spec.x_param.c_str(), graph->points.size(),
                     graph->spec.series.size());
  }
  if (montecarlo) {
    if (!montecarlo->join.empty()) {
      out += "MONTECARLO join: " + montecarlo->join + "\n";
    }
    if (!montecarlo->sweep_param.empty()) {
      out += StrFormat(
          "MONTECARLO OVER @%s (%s engine, %zu points x %zu worlds, %zu "
          "thread%s):\n",
          montecarlo->sweep_param.c_str(),
          montecarlo->layered ? "layered" : "direct",
          montecarlo->points.size(), montecarlo->worlds,
          montecarlo->num_threads, montecarlo->num_threads == 1 ? "" : "s");
      const MonteCarloPoint* prev = nullptr;
      for (const auto& point : montecarlo->points) {
        out += StrFormat("  @%s = %s:\n", montecarlo->sweep_param.c_str(),
                         DoubleToString(point.value).c_str());
        for (const auto& [name, metrics] : point.columns) {
          out += "    " + name + " " + metrics.ToString();
          // Point-vs-point deltas: how the column's expectation moved
          // relative to the previous sweep point.
          if (prev != nullptr) {
            auto it = prev->columns.find(name);
            if (it != prev->columns.end()) {
              out += StrFormat(" (dmean %+g vs prev point)",
                               metrics.mean - it->second.mean);
            }
          }
          out += "\n";
        }
        prev = &point;
      }
    } else {
      out += StrFormat("MONTECARLO (%s engine, %zu worlds, %zu thread%s):\n",
                       montecarlo->layered ? "layered" : "direct",
                       montecarlo->worlds, montecarlo->num_threads,
                       montecarlo->num_threads == 1 ? "" : "s");
      for (const auto& [name, metrics] : montecarlo->columns) {
        out += "  " + name + " " + metrics.ToString() + "\n";
      }
    }
  }
  out += StrFormat(
      "points evaluated: %llu, reused: %llu (%.1f%%), basis "
      "distributions: %zu, black-box invocations: %llu\n",
      static_cast<unsigned long long>(runner_stats.points_evaluated),
      static_cast<unsigned long long>(runner_stats.points_reused),
      runner_stats.points_evaluated
          ? 100.0 * static_cast<double>(runner_stats.points_reused) /
                static_cast<double>(runner_stats.points_evaluated)
          : 0.0,
      basis_count,
      static_cast<unsigned long long>(runner_stats.blackbox_invocations));
  return out;
}

Result<ScriptOutcome> ScriptRunner::Run(const std::string& text) {
  return Run(text, {});
}

Result<ScriptOutcome> ScriptRunner::Run(
    const std::string& text,
    const std::vector<std::pair<std::string, double>>& overrides) {
  JIGSAW_ASSIGN_OR_RETURN(BoundScript bound, ParseAndBind(text, *registry_));
  if (!config_.compile_expressions) UseInterpretedExpressions(bound);
  return RunBound(std::move(bound), overrides);
}

Result<ScriptOutcome> ScriptRunner::RunBound(
    BoundScript bound,
    const std::vector<std::pair<std::string, double>>& overrides,
    const SnapshotResources& shared) {
  ScriptOutcome outcome;
  SimulationRunner runner(config_, /*finder=*/nullptr, shared.basis_store);

  if (bound.optimize) {
    if (bound.chain) {
      return Status::Unimplemented(
          "OPTIMIZE over CHAIN scenarios is not supported; use "
          "RunChainScenario");
    }
    Optimizer optimizer(&runner);
    JIGSAW_ASSIGN_OR_RETURN(OptimizeResult result,
                            optimizer.Run(bound.scenario, *bound.optimize));
    outcome.optimize = std::move(result);
  }

  if (bound.graph) {
    if (bound.chain) {
      return Status::Unimplemented(
          "GRAPH over CHAIN scenarios is not supported; use "
          "RunChainScenario per step");
    }
    const auto& params = bound.scenario.params;
    auto xidx = params.IndexOf(bound.graph->x_param);
    JIGSAW_CHECK(xidx.has_value());

    // Fix every non-x parameter: overrides first, then the first value of
    // its domain.
    JIGSAW_ASSIGN_OR_RETURN(std::vector<double> valuation,
                            BaseValuation(params, overrides));

    // Resolve series columns to SimFunctions once.
    std::vector<const ScenarioColumn*> cols;
    for (const auto& s : bound.graph->series) {
      JIGSAW_ASSIGN_OR_RETURN(const ScenarioColumn* col,
                              bound.scenario.FindColumn(s.column));
      cols.push_back(col);
    }

    GraphData data;
    data.spec = *bound.graph;
    for (double x : params.def(*xidx).Values()) {
      valuation[*xidx] = x;
      GraphPoint point;
      point.x = x;
      for (std::size_t s = 0; s < cols.size(); ++s) {
        const PointResult r = runner.RunPoint(*cols[s]->fn, valuation);
        point.y.push_back(
            ExtractMetric(r.metrics, bound.graph->series[s].metric));
      }
      data.points.push_back(std::move(point));
    }
    outcome.graph = std::move(data);
  }

  if (bound.montecarlo) {
    JIGSAW_ASSIGN_OR_RETURN(
        std::vector<double> valuation,
        BaseValuation(bound.scenario.params, overrides));
    // Each world gets its own scan node; the shared RowProgram (and its
    // compiled BatchProgram) is immutable, so the factory is thread-safe
    // under the executor's world fan-out (RunConfig::num_threads). A
    // compiled program rides inside the plan as a BatchProgramScan leaf;
    // otherwise the interpreted scan node walks the Expr trees.
    std::shared_ptr<const RowProgram> program = bound.program;
    auto factory = [program]() -> Result<pdb::PlanNodePtr> {
      if (program->compiled()) {
        return pdb::MakeBatchProgramScan(program->batch);
      }
      return MakeInterpretedRowScan(program);
    };

    MonteCarloOutcome mc;
    mc.layered = bound.montecarlo->layered;
    mc.worlds = config_.num_samples;
    mc.num_threads = std::max<std::size_t>(1, config_.num_threads);
    mc.master_seed = config_.master_seed;
    mc.base_valuation = valuation;

    // The standalone statement is the one-point case of the sweep: OVER
    // @p pins the swept parameter to each point value on top of the base
    // valuation (overrides still fix the other parameters), and every
    // point runs with the standalone statement's seed schema — point k's
    // draws are identical to a standalone MONTECARLO at that valuation,
    // and a one-point "sweep" keeps standalone error messages verbatim
    // (the sweep folds only name points past one).
    std::vector<std::vector<double>> valuations;
    if (bound.montecarlo->over) {
      const MonteCarloSweepSpec& sweep = *bound.montecarlo->over;
      mc.sweep_param = sweep.param_name;
      mc.sweep_param_index = sweep.param_index;
      valuations.reserve(sweep.points.size());
      for (double v : sweep.points) {
        valuations.push_back(valuation);
        valuations.back()[sweep.param_index] = v;
      }
    } else {
      valuations.push_back(valuation);
    }

    std::vector<std::map<std::string, OutputMetrics>> per_point;
    if (bound.montecarlo->join) {
      // FROM ... JOIN: fold the world-partitioned equi-join of the two
      // bound VG tables instead of the row program. The join consumes no
      // script parameters, so every sweep point is the standalone fold
      // re-run under that point's name — trivially bit-identical to a
      // one-point statement, which is exactly the sweep contract.
      const MonteCarloJoinSpec& join = *bound.montecarlo->join;
      mc.join = join.description;
      // Summarize every numeric column of the joined schema, in schema
      // order; strings have no distribution summary.
      std::vector<std::string> columns;
      for (const auto& col : join.resolved.output.columns()) {
        if (col.type != pdb::ValueType::kString) columns.push_back(col.name);
      }
      const SeedVector seeds(config_.master_seed, config_.num_samples,
                             config_.seed_schema);
      std::unique_ptr<ThreadPool> owned_pool;
      ThreadPool* pool = nullptr;
      if (config_.num_threads > 1) {
        pool = config_.shared_pool;
        if (pool == nullptr) {
          owned_pool = std::make_unique<ThreadPool>(config_.num_threads);
          pool = owned_pool.get();
        }
      }
      // USING LAYERED realizes through the WorldCache (the snapshot's
      // shared cache when published, else a statement-local one); DIRECT
      // realizes per-fold extents, matching the row-program engines.
      pdb::WorldCache local_cache;
      pdb::WorldCache* cache = nullptr;
      if (bound.montecarlo->layered) {
        cache =
            shared.world_cache != nullptr ? shared.world_cache : &local_cache;
      }
      for (std::size_t k = 0; k < valuations.size(); ++k) {
        auto folded = pdb::FoldJoinedVGColumns(
            join.left, join.right, join.keys, columns, config_.num_samples,
            seeds, config_, pool, cache);
        if (!folded.ok()) {
          if (valuations.size() > 1) {
            return pdb::NameSweepPoint(k, folded.status());
          }
          return folded.status();
        }
        per_point.push_back(std::move(folded).value());
      }
    } else if (bound.montecarlo->layered) {
      // Layered path: the prototype's per-point executors, worlds fanned
      // out within each point, WorldCache shared across points (and, when
      // the snapshot publishes one, across sessions).
      pdb::LayeredEngine engine(config_, shared.world_cache);
      JIGSAW_ASSIGN_OR_RETURN(auto results,
                              engine.RunSweep(factory, valuations));
      for (auto& r : results) per_point.push_back(std::move(r.columns));
    } else if (program->compiled()) {
      // Compiled fast path: the two-axis fan-out — every (point,
      // world-chunk) cell is one BatchProgram execution, all cells
      // spread across the shared pool at once. The single compiled
      // program is reused by every point; only ctx.params varies.
      pdb::MonteCarloExecutor executor(config_);
      const SeedVector& seeds = executor.seeds();
      auto run_span = [&](std::size_t point, std::size_t begin,
                          std::size_t count,
                          std::span<double* const> columns) {
        return program->EvalAllColumnsSpan(valuations[point], begin, count,
                                           seeds, /*stream_salt=*/0,
                                           columns);
      };
      JIGSAW_ASSIGN_OR_RETURN(
          auto results,
          executor.RunSweepSpans(program->outer_names, valuations.size(),
                                 run_span));
      for (auto& r : results) per_point.push_back(std::move(r.columns));
    } else {
      // Interpreter twin: same cell grid, one boxed plan per world.
      pdb::MonteCarloExecutor executor(config_);
      JIGSAW_ASSIGN_OR_RETURN(auto results,
                              executor.RunSweep(factory, valuations));
      for (auto& r : results) per_point.push_back(std::move(r.columns));
    }

    if (bound.montecarlo->over) {
      mc.points.reserve(per_point.size());
      for (std::size_t k = 0; k < per_point.size(); ++k) {
        mc.points.push_back(MonteCarloPoint{
            bound.montecarlo->over->points[k], std::move(per_point[k])});
      }
    } else {
      mc.columns = std::move(per_point[0]);
    }
    outcome.montecarlo = std::move(mc);
  }

  outcome.runner_stats = runner.stats();
  outcome.basis_count = runner.basis_store().size();
  outcome.bound = std::move(bound);
  return outcome;
}

}  // namespace jigsaw::sql
