#include "sql/script_runner.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw::sql {

std::string ScriptOutcome::Report() const {
  std::string out;
  if (optimize) {
    out += optimize->ToString() + "\n";
  }
  if (graph) {
    out += StrFormat("GRAPH over @%s: %zu points x %zu series\n",
                     graph->spec.x_param.c_str(), graph->points.size(),
                     graph->spec.series.size());
  }
  out += StrFormat(
      "points evaluated: %llu, reused: %llu (%.1f%%), basis "
      "distributions: %zu, black-box invocations: %llu\n",
      static_cast<unsigned long long>(runner_stats.points_evaluated),
      static_cast<unsigned long long>(runner_stats.points_reused),
      runner_stats.points_evaluated
          ? 100.0 * static_cast<double>(runner_stats.points_reused) /
                static_cast<double>(runner_stats.points_evaluated)
          : 0.0,
      basis_count,
      static_cast<unsigned long long>(runner_stats.blackbox_invocations));
  return out;
}

Result<ScriptOutcome> ScriptRunner::Run(const std::string& text) {
  return Run(text, {});
}

Result<ScriptOutcome> ScriptRunner::Run(
    const std::string& text,
    const std::vector<std::pair<std::string, double>>& overrides) {
  JIGSAW_ASSIGN_OR_RETURN(BoundScript bound, ParseAndBind(text, *registry_));

  ScriptOutcome outcome;
  SimulationRunner runner(config_);

  if (bound.optimize) {
    if (bound.chain) {
      return Status::Unimplemented(
          "OPTIMIZE over CHAIN scenarios is not supported; use "
          "RunChainScenario");
    }
    Optimizer optimizer(&runner);
    JIGSAW_ASSIGN_OR_RETURN(OptimizeResult result,
                            optimizer.Run(bound.scenario, *bound.optimize));
    outcome.optimize = std::move(result);
  }

  if (bound.graph) {
    if (bound.chain) {
      return Status::Unimplemented(
          "GRAPH over CHAIN scenarios is not supported; use "
          "RunChainScenario per step");
    }
    const auto& params = bound.scenario.params;
    auto xidx = params.IndexOf(bound.graph->x_param);
    JIGSAW_CHECK(xidx.has_value());

    // Fix every non-x parameter: overrides first, then the first value of
    // its domain.
    std::vector<double> valuation(params.num_params(), 0.0);
    for (std::size_t i = 0; i < params.num_params(); ++i) {
      const auto& def = params.def(i);
      const auto values = def.Values();
      valuation[i] = values.empty() ? 0.0 : values[0];
    }
    for (const auto& [name, value] : overrides) {
      auto idx = params.IndexOf(name);
      if (!idx) {
        return Status::InvalidArgument("override for undeclared '@" + name +
                                       "'");
      }
      valuation[*idx] = value;
    }

    // Resolve series columns to SimFunctions once.
    std::vector<const ScenarioColumn*> cols;
    for (const auto& s : bound.graph->series) {
      JIGSAW_ASSIGN_OR_RETURN(const ScenarioColumn* col,
                              bound.scenario.FindColumn(s.column));
      cols.push_back(col);
    }

    GraphData data;
    data.spec = *bound.graph;
    for (double x : params.def(*xidx).Values()) {
      valuation[*xidx] = x;
      GraphPoint point;
      point.x = x;
      for (std::size_t s = 0; s < cols.size(); ++s) {
        const PointResult r = runner.RunPoint(*cols[s]->fn, valuation);
        point.y.push_back(
            ExtractMetric(r.metrics, bound.graph->series[s].metric));
      }
      data.points.push_back(std::move(point));
    }
    outcome.graph = std::move(data);
  }

  outcome.runner_stats = runner.stats();
  outcome.basis_count = runner.basis_store().size();
  outcome.bound = std::move(bound);
  return outcome;
}

}  // namespace jigsaw::sql
