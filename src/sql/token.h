#pragma once

/// \file token.h
/// Token stream for the Jigsaw query language (Figure 1 / Figure 5
/// syntax). Keywords are not reserved at the lexer level; the parser
/// matches identifier text case-insensitively, which keeps the keyword set
/// extensible (EXPECT, CHAIN, ...) without breaking identifiers.

#include <cstddef>
#include <string>

namespace jigsaw::sql {

enum class TokenKind {
  kIdent,    ///< bare identifier / keyword
  kParam,    ///< @identifier
  kNumber,   ///< numeric literal (always lexed as double)
  kString,   ///< 'single quoted'
  kSymbol,   ///< punctuation / operator, text holds the spelling
  kEnd,      ///< end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< identifier/param name, literal, or symbol
  double number = 0.0;  ///< value when kind == kNumber
  std::size_t line = 1;
  std::size_t column = 1;

  std::string Describe() const;
};

}  // namespace jigsaw::sql
