#pragma once

/// \file script_runner.h
/// End-to-end execution of Jigsaw scripts: parse -> bind -> run. A script
/// contains DECLARE PARAMETER statements, one scenario SELECT, and
/// optionally an OPTIMIZE (batch mode, Figure 1) and/or a GRAPH query
/// (interactive mode's presentation, Section 2.2). This is the highest-
/// level entry point of the library; the examples and the REPL sit on it.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/graph_spec.h"
#include "core/metrics.h"
#include "core/optimizer.h"
#include "core/run_config.h"
#include "core/sim_runner.h"
#include "models/black_box.h"
#include "sql/binder.h"
#include "util/status.h"

namespace jigsaw::pdb {
class WorldCache;
}  // namespace jigsaw::pdb

namespace jigsaw::sql {

struct GraphPoint {
  double x = 0.0;
  std::vector<double> y;  ///< one value per series
};

struct GraphData {
  GraphSpec spec;
  std::vector<GraphPoint> points;
};

/// One point of a MONTECARLO OVER sweep: the swept parameter's value and
/// the per-column summaries at that valuation — bit-identical to a
/// standalone MONTECARLO run with the parameter pinned to `value`.
struct MonteCarloPoint {
  double value = 0.0;
  std::map<std::string, OutputMetrics> columns;
};

/// Result of a MONTECARLO statement: full per-column distribution
/// summaries over the sampled possible worlds — at one valuation, or
/// (OVER @p) one summary table per sweep point.
struct MonteCarloOutcome {
  std::map<std::string, OutputMetrics> columns;  ///< single-valuation run
  std::size_t worlds = 0;
  std::size_t num_threads = 1;  ///< worker threads the worlds fanned over
  bool layered = false;         ///< true if run through LayeredEngine
  std::string join;  ///< FROM...JOIN description ("" for row-program runs)
  std::string sweep_param;      ///< OVER parameter name ("" if no sweep)
  std::vector<MonteCarloPoint> points;  ///< one per OVER point, in order

  // Provenance for downstream consumers (MakeSessionFromOutcome): which
  // seed namespace the worlds drew from and which valuation each sweep
  // point pinned, so an interactive session can verify the outcome's
  // world ids are its own sample ids before importing them.
  std::uint64_t master_seed = 0;         ///< seed namespace of the draws
  std::vector<double> base_valuation;    ///< valuation before OVER pinning
  std::optional<std::size_t> sweep_param_index;  ///< OVER param's index
};

struct ScriptOutcome {
  BoundScript bound;
  std::optional<OptimizeResult> optimize;
  std::optional<GraphData> graph;
  std::optional<MonteCarloOutcome> montecarlo;
  RunnerStats runner_stats;
  std::size_t basis_count = 0;

  /// Human-readable summary of whatever the script produced.
  std::string Report() const;
};

/// Frozen shared resources a published catalog snapshot hands to every
/// run executed against it (see serve/session_server.h). Both pointers
/// are optional and non-owning; when set they must be thread-safe and
/// outlive the run. Neither changes a run's results — the world cache
/// memoizes realizations that are pure functions of (table, seed
/// namespace, world), and the basis store is frozen at publish time so
/// probes against it are order-independent.
struct SnapshotResources {
  pdb::WorldCache* world_cache = nullptr;  ///< shared VG realizations
  BasisStore* basis_store = nullptr;       ///< frozen published bases
};

class ScriptRunner {
 public:
  ScriptRunner(const ModelRegistry* registry, const RunConfig& config)
      : registry_(registry), config_(config) {}

  /// Runs a full script. `overrides` pins specific parameters (by name)
  /// when sweeping a GRAPH's x-axis; unspecified parameters default to
  /// the first value of their domain.
  Result<ScriptOutcome> Run(const std::string& text);
  Result<ScriptOutcome> Run(const std::string& text,
                            const std::vector<std::pair<std::string, double>>&
                                overrides);

  /// Executes an already-bound script — the session-server path, where
  /// parse+bind happened once at publish time and every client run
  /// replays the frozen plan. `bound` is taken by value (snapshot callers
  /// pass a copy of the published twin; the copy is cheap — columns and
  /// programs are shared_ptrs) and must already match this runner's
  /// expression mode: Run() strips compiled programs itself when
  /// config.compile_expressions is false, RunBound never mutates the
  /// plan. Results are bit-identical to Run() on the same script text
  /// with the same config, with or without `shared` resources.
  Result<ScriptOutcome> RunBound(
      BoundScript bound,
      const std::vector<std::pair<std::string, double>>& overrides,
      const SnapshotResources& shared = {});

 private:
  const ModelRegistry* registry_;
  RunConfig config_;
};

}  // namespace jigsaw::sql
