#pragma once

/// \file parser.h
/// Recursive-descent parser for the Jigsaw query language. Produces the
/// parse-level AST of ast.h; all name resolution happens later in the
/// binder. Errors carry line/column positions.

#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace jigsaw::sql {

/// Parses a whole script (semicolon-separated statements).
Result<Script> ParseScript(const std::string& text);

/// Parses a single standalone expression (used by tests and the REPL).
Result<AstExprPtr> ParseExpression(const std::string& text);

}  // namespace jigsaw::sql
