#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace jigsaw::sql {

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier '" + text + "'";
    case TokenKind::kParam:
      return "parameter '@" + text + "'";
    case TokenKind::kNumber:
      return "number " + DoubleToString(number);
    case TokenKind::kString:
      return "string '" + text + "'";
    case TokenKind::kSymbol:
      return "'" + text + "'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t col = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') advance(1);
      continue;
    }

    Token tok;
    tok.line = line;
    tok.column = col;

    if (IsIdentStart(c)) {
      std::size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      tok.kind = TokenKind::kIdent;
      tok.text = text.substr(i, j - i);
      advance(j - i);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '@') {
      std::size_t j = i + 1;
      if (j >= n || !IsIdentStart(text[j])) {
        return Status::ParseError(
            StrFormat("line %zu: '@' must be followed by a parameter name",
                      line));
      }
      while (j < n && IsIdentChar(text[j])) ++j;
      tok.kind = TokenKind::kParam;
      tok.text = text.substr(i + 1, j - i - 1);
      advance(j - i);
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      char* end = nullptr;
      const double v = std::strtod(text.c_str() + i, &end);
      const std::size_t len = static_cast<std::size_t>(end - (text.c_str() + i));
      tok.kind = TokenKind::kNumber;
      tok.number = v;
      tok.text = text.substr(i, len);
      advance(len);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      std::string value;
      while (j < n && text[j] != '\'') {
        value += text[j];
        ++j;
      }
      if (j >= n) {
        return Status::ParseError(
            StrFormat("line %zu: unterminated string literal", line));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(value);
      advance(j - i + 1);
      out.push_back(std::move(tok));
      continue;
    }

    // Multi-char operators first.
    auto two = i + 1 < n ? text.substr(i, 2) : std::string();
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
      tok.kind = TokenKind::kSymbol;
      tok.text = two;
      advance(2);
      out.push_back(std::move(tok));
      continue;
    }
    // '.' here is the qualified-name separator (alias.column in JOIN ON
    // clauses); a '.' starting a numeric literal was consumed above.
    static const std::string kSingles = "()+-*/<>=,;:.";
    if (kSingles.find(c) != std::string::npos) {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      advance(1);
      out.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError(
        StrFormat("line %zu col %zu: unexpected character '%c'", line, col,
                  c));
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = col;
  out.push_back(std::move(end));
  return out;
}

}  // namespace jigsaw::sql
