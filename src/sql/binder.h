#pragma once

/// \file binder.h
/// Semantic analysis: resolves a parsed Script against a ModelRegistry
/// into an executable BoundScript — a core::Scenario (parameter space +
/// compiled result columns), plus the OPTIMIZE / GRAPH specs and chain
/// metadata if present. All name/arity errors surface here as BindError
/// with context; execution never sees unresolved names.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/graph_spec.h"
#include "core/optimizer.h"
#include "core/scenario.h"
#include "models/black_box.h"
#include "pdb/batch_program.h"
#include "pdb/expr.h"
#include "pdb/join.h"
#include "pdb/vg_table.h"
#include "sql/ast.h"
#include "util/status.h"

namespace jigsaw::sql {

/// Chain (Figure 5) metadata: which parameter is chained, which column
/// feeds it, which parameter drives the steps.
struct BoundChain {
  std::size_t chain_param_index = 0;
  std::size_t driver_param_index = 0;
  std::size_t source_column_index = 0;
  double initial = 0.0;
};

/// The compiled projection shared by all column SimFunctions: inner
/// (subquery) expressions first, then outer expressions which may
/// reference inner columns and earlier outer aliases.
struct RowProgram {
  std::vector<pdb::ExprPtr> inner_exprs;
  std::vector<std::string> inner_names;
  std::vector<pdb::ExprPtr> outer_exprs;
  std::vector<std::string> outer_names;

  /// Compiled batch form, produced at bind time. Null when the compiler
  /// bailed — batch_fallback_reason then says why, and every consumer
  /// falls back to the interpreter transparently.
  pdb::BatchProgramPtr batch;
  std::string batch_fallback_reason;

  bool compiled() const { return batch != nullptr; }

  /// Evaluates outer column `j` for one (params, sample) pair; the salt
  /// lets the Markov executor vary randomness per chain step.
  Result<double> EvalColumn(std::size_t j, std::span<const double> params,
                            std::size_t sample_id, const SeedVector& seeds,
                            std::uint64_t stream_salt = 0) const;

  /// Evaluates every outer column at once (used by the chain executor
  /// and the layered engine).
  Result<std::vector<double>> EvalAllColumns(
      std::span<const double> params, std::size_t sample_id,
      const SeedVector& seeds, std::uint64_t stream_salt = 0) const;

  /// Evaluates outer column `j` for samples [sample_begin, sample_begin +
  /// out.size()) into `out` — compiled BatchProgram when available, else
  /// a scalar EvalColumn loop. `lane_params` overrides parameters with
  /// per-lane values (the chain executor's per-instance state). Entry i
  /// is bit-identical to EvalColumn at sample_begin + i, and the error
  /// (if any) is the one the lowest failing sample would report.
  Status EvalColumnSpan(
      std::size_t j, std::span<const double> params,
      std::size_t sample_begin, const SeedVector& seeds,
      std::uint64_t stream_salt,
      std::span<const pdb::BatchProgram::LaneParam> lane_params,
      std::span<double> out) const;

  /// Span twin of EvalAllColumns: fills out[c][i] with column c of sample
  /// sample_begin + i, for i in [0, count).
  Status EvalAllColumnsSpan(std::span<const double> params,
                            std::size_t sample_begin, std::size_t count,
                            const SeedVector& seeds,
                            std::uint64_t stream_salt,
                            std::span<double* const> out) const;
};

/// Copy of `program` with the compiled form stripped (interpreter-only);
/// the reference twin benches and parity tests diff against.
std::shared_ptr<const RowProgram> WithoutBatchProgram(
    const RowProgram& program);

/// Bound OVER clause of a MONTECARLO statement: the swept parameter
/// (resolved to its index) plus the materialized point values — an
/// explicit IN list, an expanded IN range, or the parameter's declared
/// domain. Never empty: an empty sweep is a bind error.
struct MonteCarloSweepSpec {
  std::size_t param_index = 0;
  std::string param_name;
  std::vector<double> points;
};

/// Bound FROM ... JOIN clause of a MONTECARLO statement: both VG tables
/// instantiated from the catalog, the key columns, and the join resolved
/// against their schemas (key slots, common key type, concatenated
/// output schema). Every name/type/duplicate error surfaced at bind time
/// with the pdb resolver's text, so execution never re-diagnoses.
struct MonteCarloJoinSpec {
  pdb::VGTableFunctionPtr left;
  pdb::VGTableFunctionPtr right;
  pdb::JoinSpec keys;
  pdb::ResolvedJoin resolved;
  std::string description;  ///< "users AS u JOIN items AS i ON u.a = i.b"
};

/// MONTECARLO statement: run the scenario's row program through the
/// possible-worlds executor — the direct MonteCarloExecutor or (USING
/// LAYERED) the layered prototype engine — at a single valuation, or
/// with `over` at every point of the swept parameter. With `join`, the
/// statement instead folds the world-partitioned equi-join of two
/// uncertain relations (pdb::FoldJoinedVGColumns) — every joined tuple
/// of every sampled world — and the row program is not consulted.
struct MonteCarloSpec {
  bool layered = false;
  std::optional<MonteCarloJoinSpec> join;
  std::optional<MonteCarloSweepSpec> over;
};

struct BoundScript {
  Scenario scenario;
  std::shared_ptr<const RowProgram> program;
  std::optional<OptimizeSpec> optimize;
  std::optional<GraphSpec> graph;
  std::optional<BoundChain> chain;
  std::optional<MonteCarloSpec> montecarlo;
};

/// Rewrites `bound` to execute interpreted-only: strips the compiled
/// program and rebuilds the scenario's column SimFunctions on the
/// stripped copy. Applied by ScriptRunner when
/// RunConfig::compile_expressions is false.
void UseInterpretedExpressions(BoundScript& bound);

class Binder {
 public:
  explicit Binder(const ModelRegistry* registry) : registry_(registry) {}

  Result<BoundScript> Bind(const Script& script);

 private:
  const ModelRegistry* registry_;
};

/// Convenience: parse + bind in one call.
Result<BoundScript> ParseAndBind(const std::string& text,
                                 const ModelRegistry& registry);

}  // namespace jigsaw::sql
