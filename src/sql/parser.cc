#include "sql/parser.h"

#include "sql/lexer.h"
#include "util/string_util.h"

namespace jigsaw::sql {

std::string AstExpr::ToString() const {
  switch (kind) {
    case AstExprKind::kNumber:
      return DoubleToString(number);
    case AstExprKind::kString:
      return "'" + text + "'";
    case AstExprKind::kIdent:
      return text;
    case AstExprKind::kParam:
      return "@" + text;
    case AstExprKind::kCall: {
      std::vector<std::string> args;
      args.reserve(children.size());
      for (const auto& c : children) args.push_back(c->ToString());
      return text + "(" + Join(args, ", ") + ")";
    }
    case AstExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + text + " " +
             children[1]->ToString() + ")";
    case AstExprKind::kNot:
      return "NOT " + children[0]->ToString();
    case AstExprKind::kNegate:
      return "-" + children[0]->ToString();
    case AstExprKind::kCase: {
      std::string out = "CASE";
      for (std::size_t i = 0; i + 1 < children.size(); i += 2) {
        out += " WHEN " + children[i]->ToString() + " THEN " +
               children[i + 1]->ToString();
      }
      if (else_expr) out += " ELSE " + else_expr->ToString();
      return out + " END";
    }
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Script> ParseScript() {
    Script script;
    while (!AtEnd()) {
      if (AcceptSymbol(";")) continue;  // stray separators
      JIGSAW_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      script.statements.push_back(std::move(stmt));
      if (!AtEnd()) {
        JIGSAW_RETURN_IF_ERROR(ExpectSymbol(";"));
      }
    }
    return script;
  }

  Result<AstExprPtr> ParseSingleExpression() {
    JIGSAW_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
    if (!AtEnd()) {
      return Error("unexpected trailing " + Peek().Describe());
    }
    return e;
  }

 private:
  // -- token helpers -------------------------------------------------------

  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool PeekKeyword(const std::string& kw, std::size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdent && EqualsIgnoreCase(t.text, kw);
  }

  bool AcceptKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Error("expected '" + kw + "', found " + Peek().Describe());
    }
    return Status::OK();
  }

  bool AcceptSymbol(const std::string& sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) {
      return Error("expected '" + sym + "', found " + Peek().Describe());
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const std::string& what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected " + what + ", found " + Peek().Describe());
    }
    return Advance().text;
  }

  Result<std::string> ExpectParam() {
    if (Peek().kind != TokenKind::kParam) {
      return Error("expected @parameter, found " + Peek().Describe());
    }
    return Advance().text;
  }

  Result<double> ExpectNumber() {
    bool neg = false;
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "-") {
      Advance();
      neg = true;
    }
    if (Peek().kind != TokenKind::kNumber) {
      return Error("expected number, found " + Peek().Describe());
    }
    const double v = Advance().number;
    return neg ? -v : v;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(StrFormat("line %zu col %zu: %s", Peek().line,
                                        Peek().column, message.c_str()));
  }

  // -- statements ----------------------------------------------------------

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (PeekKeyword("DECLARE")) {
      JIGSAW_ASSIGN_OR_RETURN(auto d, ParseDeclare());
      stmt.declare = std::make_unique<DeclareStmt>(std::move(d));
      return stmt;
    }
    if (PeekKeyword("SELECT")) {
      JIGSAW_ASSIGN_OR_RETURN(auto s, ParseSelect());
      stmt.select = std::make_unique<SelectStmt>(std::move(s));
      return stmt;
    }
    if (PeekKeyword("OPTIMIZE")) {
      JIGSAW_ASSIGN_OR_RETURN(auto o, ParseOptimize());
      stmt.optimize = std::make_unique<OptimizeStmt>(std::move(o));
      return stmt;
    }
    if (PeekKeyword("GRAPH")) {
      JIGSAW_ASSIGN_OR_RETURN(auto g, ParseGraph());
      stmt.graph = std::make_unique<GraphStmt>(std::move(g));
      return stmt;
    }
    if (PeekKeyword("MONTECARLO")) {
      JIGSAW_ASSIGN_OR_RETURN(auto m, ParseMonteCarlo());
      stmt.montecarlo = std::make_unique<MonteCarloStmt>(std::move(m));
      return stmt;
    }
    return Error("expected DECLARE, SELECT, OPTIMIZE, GRAPH or MONTECARLO");
  }

  Result<DeclareStmt> ParseDeclare() {
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("DECLARE"));
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("PARAMETER"));
    DeclareStmt decl;
    JIGSAW_ASSIGN_OR_RETURN(decl.param, ExpectParam());
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("AS"));

    if (AcceptKeyword("RANGE")) {
      RangeSpecAst range;
      JIGSAW_ASSIGN_OR_RETURN(range.lo, ExpectNumber());
      JIGSAW_RETURN_IF_ERROR(ExpectKeyword("TO"));
      JIGSAW_ASSIGN_OR_RETURN(range.hi, ExpectNumber());
      if (AcceptKeyword("STEP")) {
        JIGSAW_RETURN_IF_ERROR(ExpectKeyword("BY"));
        JIGSAW_ASSIGN_OR_RETURN(range.step, ExpectNumber());
      }
      decl.range = range;
      return decl;
    }
    if (AcceptKeyword("SET")) {
      JIGSAW_RETURN_IF_ERROR(ExpectSymbol("("));
      SetSpecAst set;
      do {
        JIGSAW_ASSIGN_OR_RETURN(double v, ExpectNumber());
        set.values.push_back(v);
      } while (AcceptSymbol(","));
      JIGSAW_RETURN_IF_ERROR(ExpectSymbol(")"));
      decl.set = std::move(set);
      return decl;
    }
    if (AcceptKeyword("CHAIN")) {
      ChainSpecAst chain;
      JIGSAW_ASSIGN_OR_RETURN(chain.column, ExpectIdent("chain column"));
      JIGSAW_RETURN_IF_ERROR(ExpectKeyword("FROM"));
      JIGSAW_ASSIGN_OR_RETURN(chain.driver_param, ExpectParam());
      JIGSAW_RETURN_IF_ERROR(ExpectSymbol(":"));
      JIGSAW_ASSIGN_OR_RETURN(chain.source_step, ParseExpr());
      JIGSAW_RETURN_IF_ERROR(ExpectKeyword("INITIAL"));
      JIGSAW_RETURN_IF_ERROR(ExpectKeyword("VALUE"));
      JIGSAW_ASSIGN_OR_RETURN(chain.initial, ExpectNumber());
      decl.chain = std::move(chain);
      return decl;
    }
    return Error("expected RANGE, SET or CHAIN");
  }

  Result<SelectStmt> ParseSelect() {
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStmt select;
    do {
      SelectItemAst item;
      JIGSAW_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        JIGSAW_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
      } else if (item.expr->kind == AstExprKind::kIdent) {
        item.alias = item.expr->text;
      }
      select.items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    if (AcceptKeyword("FROM")) {
      JIGSAW_RETURN_IF_ERROR(ExpectSymbol("("));
      JIGSAW_ASSIGN_OR_RETURN(SelectStmt sub, ParseSelect());
      JIGSAW_RETURN_IF_ERROR(ExpectSymbol(")"));
      select.from_subquery = std::make_unique<SelectStmt>(std::move(sub));
    }
    if (AcceptKeyword("INTO")) {
      JIGSAW_ASSIGN_OR_RETURN(select.into_table, ExpectIdent("table name"));
    }
    return select;
  }

  Result<OptimizeStmt> ParseOptimize() {
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("OPTIMIZE"));
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    OptimizeStmt opt;
    do {
      if (Peek().kind == TokenKind::kParam) {
        opt.select_params.push_back(Advance().text);
      } else {
        JIGSAW_ASSIGN_OR_RETURN(std::string name,
                                ExpectIdent("parameter name"));
        opt.select_params.push_back(std::move(name));
      }
    } while (AcceptSymbol(","));

    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    JIGSAW_ASSIGN_OR_RETURN(opt.from_table, ExpectIdent("table name"));

    if (AcceptKeyword("WHERE")) {
      do {
        JIGSAW_ASSIGN_OR_RETURN(ConstraintAst c, ParseConstraint());
        opt.constraints.push_back(std::move(c));
      } while (AcceptKeyword("AND"));
    }

    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("GROUP"));
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      if (Peek().kind == TokenKind::kParam) {
        opt.group_by.push_back(Advance().text);
      } else {
        JIGSAW_ASSIGN_OR_RETURN(std::string name,
                                ExpectIdent("parameter name"));
        opt.group_by.push_back(std::move(name));
      }
    } while (AcceptSymbol(","));

    if (AcceptKeyword("FOR")) {
      do {
        ObjectiveAst obj;
        if (AcceptKeyword("MAX")) {
          obj.maximize = true;
        } else if (AcceptKeyword("MIN")) {
          obj.maximize = false;
        } else {
          return Error("expected MAX or MIN in FOR clause");
        }
        JIGSAW_ASSIGN_OR_RETURN(obj.param, ExpectParam());
        opt.objectives.push_back(std::move(obj));
      } while (AcceptSymbol(","));
    }
    return opt;
  }

  bool IsMetricKeyword(const Token& t) const {
    if (t.kind != TokenKind::kIdent) return false;
    return EqualsIgnoreCase(t.text, "EXPECT") ||
           EqualsIgnoreCase(t.text, "EXPECT_STDDEV") ||
           EqualsIgnoreCase(t.text, "STDERR") ||
           EqualsIgnoreCase(t.text, "MEDIAN") ||
           EqualsIgnoreCase(t.text, "P95");
  }

  Result<ConstraintAst> ParseConstraint() {
    ConstraintAst c;
    // Optional sweep aggregate wrapper: MAX( ... ), MIN(...), AVG, SUM.
    if ((PeekKeyword("MAX") || PeekKeyword("MIN") || PeekKeyword("AVG") ||
         PeekKeyword("SUM")) &&
        Peek(1).kind == TokenKind::kSymbol && Peek(1).text == "(") {
      c.sweep_agg = ToUpper(Advance().text);
      JIGSAW_RETURN_IF_ERROR(ExpectSymbol("("));
      if (!IsMetricKeyword(Peek())) {
        return Error("expected a metric (EXPECT, EXPECT_STDDEV, ...)")
            ;
      }
      c.metric = ToUpper(Advance().text);
      JIGSAW_ASSIGN_OR_RETURN(c.column, ExpectIdent("column name"));
      JIGSAW_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else if (IsMetricKeyword(Peek())) {
      c.metric = ToUpper(Advance().text);
      JIGSAW_ASSIGN_OR_RETURN(c.column, ExpectIdent("column name"));
    } else {
      return Error("expected aggregate or metric in WHERE clause");
    }

    if (Peek().kind != TokenKind::kSymbol ||
        (Peek().text != "<" && Peek().text != "<=" && Peek().text != ">" &&
         Peek().text != ">=")) {
      return Error("expected comparison operator");
    }
    c.cmp = Advance().text;
    JIGSAW_ASSIGN_OR_RETURN(c.threshold, ExpectNumber());
    return c;
  }

  Result<GraphStmt> ParseGraph() {
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("GRAPH"));
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("OVER"));
    GraphStmt graph;
    JIGSAW_ASSIGN_OR_RETURN(graph.x_param, ExpectParam());
    do {
      GraphSeriesAst series;
      if (!IsMetricKeyword(Peek())) {
        return Error("expected a metric (EXPECT, EXPECT_STDDEV, ...)")
            ;
      }
      series.metric = ToUpper(Advance().text);
      JIGSAW_ASSIGN_OR_RETURN(series.column, ExpectIdent("column name"));
      if (AcceptKeyword("WITH")) {
        while (Peek().kind == TokenKind::kIdent &&
               !PeekKeyword("WITH")) {
          series.style.push_back(Advance().text);
        }
      }
      graph.series.push_back(std::move(series));
    } while (AcceptSymbol(","));
    return graph;
  }

  /// table(arg, ...) [AS alias] — one side of a FROM ... JOIN clause.
  Result<MonteCarloTableAst> ParseMonteCarloTable() {
    MonteCarloTableAst t;
    JIGSAW_ASSIGN_OR_RETURN(t.table, ExpectIdent("VG table name"));
    JIGSAW_RETURN_IF_ERROR(ExpectSymbol("("));
    if (!AcceptSymbol(")")) {
      do {
        JIGSAW_ASSIGN_OR_RETURN(double v, ExpectNumber());
        t.args.push_back(v);
      } while (AcceptSymbol(","));
      JIGSAW_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    if (AcceptKeyword("AS")) {
      JIGSAW_ASSIGN_OR_RETURN(t.alias, ExpectIdent("table alias"));
    } else {
      t.alias = t.table;
    }
    return t;
  }

  /// alias '.' column — a qualified ON-clause reference.
  Result<std::pair<std::string, std::string>> ParseQualifiedColumn() {
    std::pair<std::string, std::string> q;
    JIGSAW_ASSIGN_OR_RETURN(q.first, ExpectIdent("table alias"));
    JIGSAW_RETURN_IF_ERROR(ExpectSymbol("."));
    JIGSAW_ASSIGN_OR_RETURN(q.second, ExpectIdent("column name"));
    return q;
  }

  Result<MonteCarloStmt> ParseMonteCarlo() {
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("MONTECARLO"));
    MonteCarloStmt mc;
    if (AcceptKeyword("FROM")) {
      MonteCarloJoinAst join;
      JIGSAW_ASSIGN_OR_RETURN(join.left, ParseMonteCarloTable());
      JIGSAW_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      JIGSAW_ASSIGN_OR_RETURN(join.right, ParseMonteCarloTable());
      JIGSAW_RETURN_IF_ERROR(ExpectKeyword("ON"));
      JIGSAW_ASSIGN_OR_RETURN(auto lhs, ParseQualifiedColumn());
      JIGSAW_RETURN_IF_ERROR(ExpectSymbol("="));
      JIGSAW_ASSIGN_OR_RETURN(auto rhs, ParseQualifiedColumn());
      join.on_left_alias = std::move(lhs.first);
      join.on_left_column = std::move(lhs.second);
      join.on_right_alias = std::move(rhs.first);
      join.on_right_column = std::move(rhs.second);
      mc.join = std::move(join);
    }
    if (AcceptKeyword("OVER")) {
      MonteCarloSweepAst over;
      JIGSAW_ASSIGN_OR_RETURN(over.param, ExpectParam());
      if (AcceptKeyword("IN")) {
        if (AcceptSymbol("(")) {
          SetSpecAst set;
          do {
            JIGSAW_ASSIGN_OR_RETURN(double v, ExpectNumber());
            set.values.push_back(v);
          } while (AcceptSymbol(","));
          JIGSAW_RETURN_IF_ERROR(ExpectSymbol(")"));
          over.values = std::move(set);
        } else {
          RangeSpecAst range;
          JIGSAW_ASSIGN_OR_RETURN(range.lo, ExpectNumber());
          JIGSAW_RETURN_IF_ERROR(ExpectKeyword("TO"));
          JIGSAW_ASSIGN_OR_RETURN(range.hi, ExpectNumber());
          if (AcceptKeyword("STEP")) {
            JIGSAW_RETURN_IF_ERROR(ExpectKeyword("BY"));
            JIGSAW_ASSIGN_OR_RETURN(range.step, ExpectNumber());
          }
          over.range = range;
        }
      }
      mc.over = std::move(over);
    }
    if (AcceptKeyword("USING")) {
      if (AcceptKeyword("LAYERED")) {
        mc.layered = true;
      } else if (AcceptKeyword("DIRECT")) {
        mc.layered = false;
      } else {
        return Error("expected DIRECT or LAYERED after USING");
      }
    }
    return mc;
  }

  // -- expressions (precedence climbing) -----------------------------------

  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    JIGSAW_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      JIGSAW_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAnd());
      lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstExprPtr> ParseAnd() {
    JIGSAW_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      JIGSAW_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseNot());
      lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      JIGSAW_ASSIGN_OR_RETURN(AstExprPtr operand, ParseNot());
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kNot;
      e->children.push_back(std::move(operand));
      return e;
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    JIGSAW_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseAdditive());
    if (Peek().kind == TokenKind::kSymbol) {
      const std::string& s = Peek().text;
      if (s == "<" || s == "<=" || s == ">" || s == ">=" || s == "=" ||
          s == "<>" || s == "!=") {
        const std::string op = Advance().text;
        JIGSAW_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAdditive());
        return MakeBinary(op == "!=" ? "<>" : op, std::move(lhs),
                          std::move(rhs));
      }
    }
    return lhs;
  }

  Result<AstExprPtr> ParseAdditive() {
    JIGSAW_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseMultiplicative());
    while (Peek().kind == TokenKind::kSymbol &&
           (Peek().text == "+" || Peek().text == "-")) {
      const std::string op = Advance().text;
      JIGSAW_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstExprPtr> ParseMultiplicative() {
    JIGSAW_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseUnary());
    while (Peek().kind == TokenKind::kSymbol &&
           (Peek().text == "*" || Peek().text == "/")) {
      const std::string op = Advance().text;
      JIGSAW_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstExprPtr> ParseUnary() {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "-") {
      Advance();
      JIGSAW_ASSIGN_OR_RETURN(AstExprPtr operand, ParseUnary());
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kNegate;
      e->children.push_back(std::move(operand));
      return e;
    }
    return ParsePrimary();
  }

  Result<AstExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kNumber) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kNumber;
      e->number = Advance().number;
      return e;
    }
    if (t.kind == TokenKind::kString) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kString;
      e->text = Advance().text;
      return e;
    }
    if (t.kind == TokenKind::kParam) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kParam;
      e->text = Advance().text;
      return e;
    }
    if (t.kind == TokenKind::kSymbol && t.text == "(") {
      Advance();
      JIGSAW_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
      JIGSAW_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (PeekKeyword("CASE")) return ParseCase();
    if (t.kind == TokenKind::kIdent) {
      std::string name = Advance().text;
      if (AcceptSymbol("(")) {
        auto e = std::make_unique<AstExpr>();
        e->kind = AstExprKind::kCall;
        e->text = std::move(name);
        if (!AcceptSymbol(")")) {
          do {
            JIGSAW_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
            e->children.push_back(std::move(arg));
          } while (AcceptSymbol(","));
          JIGSAW_RETURN_IF_ERROR(ExpectSymbol(")"));
        }
        return e;
      }
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kIdent;
      e->text = std::move(name);
      return e;
    }
    return Error("expected expression, found " + t.Describe());
  }

  Result<AstExprPtr> ParseCase() {
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("CASE"));
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kCase;
    if (!PeekKeyword("WHEN")) {
      return Error("CASE requires at least one WHEN branch");
    }
    while (AcceptKeyword("WHEN")) {
      JIGSAW_ASSIGN_OR_RETURN(AstExprPtr cond, ParseExpr());
      JIGSAW_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      JIGSAW_ASSIGN_OR_RETURN(AstExprPtr result, ParseExpr());
      e->children.push_back(std::move(cond));
      e->children.push_back(std::move(result));
    }
    if (AcceptKeyword("ELSE")) {
      JIGSAW_ASSIGN_OR_RETURN(e->else_expr, ParseExpr());
    }
    JIGSAW_RETURN_IF_ERROR(ExpectKeyword("END"));
    return e;
  }

  static AstExprPtr MakeBinary(std::string op, AstExprPtr lhs,
                               AstExprPtr rhs) {
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kBinary;
    e->text = std::move(op);
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Script> ParseScript(const std::string& text) {
  JIGSAW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseScript();
}

Result<AstExprPtr> ParseExpression(const std::string& text) {
  JIGSAW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseSingleExpression();
}

}  // namespace jigsaw::sql
