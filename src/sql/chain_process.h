#pragma once

/// \file chain_process.h
/// Bridges a bound CHAIN scenario (Figure 5) onto the Markov executor of
/// Section 4. The chain parameter's value is the per-instance state; one
/// chain step evaluates the scenario's projection with
///   @driver = step,  @chain = previous state
/// and feeds the designated source column back as the next state. The
/// synthesized estimator (Section 4.2) freezes the chain parameter at the
/// anchor value — "an estimator from this value will be constructed by
/// fixing release_week (the chain parameter) at its initial value".

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/run_config.h"
#include "markov/chain_runner.h"
#include "markov/markov_process.h"
#include "sql/binder.h"

namespace jigsaw::sql {

class ScenarioChainProcess final : public MarkovProcess {
 public:
  /// `base_valuation` fixes every parameter other than the driver and the
  /// chain parameter (use ParameterSpace::ValuationAt(0) or overrides).
  /// `output_column` is the observable extracted by OutputForInstance.
  ScenarioChainProcess(std::shared_ptr<const RowProgram> program,
                       BoundChain chain, std::vector<double> base_valuation,
                       std::size_t output_column);

  const std::string& name() const override { return name_; }
  double initial_state() const override { return chain_.initial; }

  double StepForInstance(double prev_state, std::int64_t step, std::size_t k,
                         const SeedVector& seeds) const override;

  double EstimateForInstance(double anchor_state, std::int64_t anchor_step,
                             std::int64_t step, std::size_t k,
                             const SeedVector& seeds) const override;

  double OutputForInstance(double state, std::int64_t step, std::size_t k,
                           const SeedVector& seeds) const override;

  // Batch hooks: one compiled BatchProgram run per instance span, with
  // the chain parameter fed per lane — bit-identical to the scalar
  // *ForInstance hooks (which stay on the interpreter). When the row
  // program did not compile these fall back to the default scalar loops.

  void StepBatch(std::span<const double> prev_states, std::int64_t step,
                 std::size_t k_begin, const SeedVector& seeds,
                 std::span<double> out) const override;

  void EstimateBatch(std::span<const double> anchor_states,
                     std::int64_t anchor_step, std::int64_t step,
                     std::size_t k_begin, const SeedVector& seeds,
                     std::span<double> out) const override;

  void OutputBatch(std::span<const double> states, std::int64_t step,
                   std::size_t k_begin, const SeedVector& seeds,
                   std::span<double> out) const override;

 private:
  double EvalColumn(std::size_t column, double chain_value,
                    std::int64_t step, std::size_t k,
                    const SeedVector& seeds, std::uint64_t salt) const;

  /// Compiled span evaluation of `column` with per-lane chain states.
  void EvalColumnBatch(std::size_t column,
                       std::span<const double> chain_states,
                       std::int64_t step, std::size_t k_begin,
                       const SeedVector& seeds, std::uint64_t salt,
                       std::span<double> out) const;

  std::shared_ptr<const RowProgram> program_;
  BoundChain chain_;
  std::vector<double> base_valuation_;
  std::size_t output_column_;
  std::string name_;
};

/// Evaluates a CHAIN scenario to `target` steps and returns metrics of
/// `output_column` over all instances. With use_jump=false this is the
/// naive full-chain baseline.
Result<OutputMetrics> RunChainScenario(const BoundScript& bound,
                                       const std::string& output_column,
                                       std::int64_t target,
                                       const RunConfig& config, bool use_jump,
                                       ChainRunStats* stats = nullptr);

}  // namespace jigsaw::sql
