#include "sql/binder.h"

#include <cmath>

#include "sql/parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw::sql {

namespace {

using pdb::BinaryOp;
using pdb::EvalContext;
using pdb::ExprPtr;
using pdb::Value;

Result<BinaryOp> BinaryOpFromText(const std::string& op) {
  if (op == "+") return BinaryOp::kAdd;
  if (op == "-") return BinaryOp::kSub;
  if (op == "*") return BinaryOp::kMul;
  if (op == "/") return BinaryOp::kDiv;
  if (op == "<") return BinaryOp::kLt;
  if (op == "<=") return BinaryOp::kLe;
  if (op == ">") return BinaryOp::kGt;
  if (op == ">=") return BinaryOp::kGe;
  if (op == "=") return BinaryOp::kEq;
  if (op == "<>") return BinaryOp::kNe;
  if (EqualsIgnoreCase(op, "AND")) return BinaryOp::kAnd;
  if (EqualsIgnoreCase(op, "OR")) return BinaryOp::kOr;
  return Status::BindError("unknown operator '" + op + "'");
}

Result<MetricSelector> MetricFromText(const std::string& metric) {
  if (EqualsIgnoreCase(metric, "EXPECT")) return MetricSelector::kExpect;
  if (EqualsIgnoreCase(metric, "EXPECT_STDDEV")) {
    return MetricSelector::kStdDev;
  }
  if (EqualsIgnoreCase(metric, "STDERR")) return MetricSelector::kStdError;
  if (EqualsIgnoreCase(metric, "MEDIAN")) return MetricSelector::kMedian;
  if (EqualsIgnoreCase(metric, "P95")) return MetricSelector::kP95;
  return Status::BindError("unknown metric '" + metric + "'");
}

Result<SweepAgg> SweepAggFromText(const std::string& agg) {
  if (agg.empty() || EqualsIgnoreCase(agg, "MAX")) return SweepAgg::kMax;
  if (EqualsIgnoreCase(agg, "MIN")) return SweepAgg::kMin;
  if (EqualsIgnoreCase(agg, "AVG")) return SweepAgg::kAvg;
  if (EqualsIgnoreCase(agg, "SUM")) return SweepAgg::kSum;
  return Status::BindError("unknown sweep aggregate '" + agg + "'");
}

/// VG-table catalog for MONTECARLO FROM ... JOIN: table name (case-
/// insensitive) -> generator factory over positional numeric literal
/// arguments. The catalog is the bind-time boundary between SQL names
/// and pdb VG table functions; an unknown name or a bad arity is a
/// BindError before any world is realized.
Result<pdb::VGTableFunctionPtr> MakeCatalogVGTable(
    const std::string& name, const std::vector<double>& args) {
  if (EqualsIgnoreCase(name, "users")) {
    if (args.size() < 4 || args.size() > 5) {
      return Status::BindError(
          "VG table 'users' takes (num_users, arrival_rate, base_demand, "
          "spread[, sim_depth])");
    }
    if (args[0] < 1.0) {
      return Status::BindError("VG table 'users' needs num_users >= 1");
    }
    return pdb::MakeUsersVGTable(
        static_cast<int>(args[0]), args[1], args[2], args[3],
        args.size() == 5 ? static_cast<int>(args[4]) : 16);
  }
  if (EqualsIgnoreCase(name, "items")) {
    if (args.empty() || args.size() > 4) {
      return Status::BindError(
          "VG table 'items' takes (num_rows[, demand_mu, demand_sigma, "
          "cost_base])");
    }
    if (args[0] < 1.0) {
      return Status::BindError("VG table 'items' needs num_rows >= 1");
    }
    return pdb::MakeScalingItemsVGTable(
        static_cast<std::size_t>(args[0]),
        args.size() > 1 ? args[1] : 1.0, args.size() > 2 ? args[2] : 0.5,
        args.size() > 3 ? args[3] : 10.0);
  }
  return Status::BindError("unknown VG table '" + name + "'");
}

/// Binds a FROM ... JOIN ... ON clause: instantiates both catalog
/// tables, maps the ON sides onto them by alias (either order), and
/// resolves the equi-join against their schemas. Resolver failures
/// (unknown column, mismatched key types, duplicate output names) keep
/// the pdb resolver's text, surfaced at bind time as BindError.
Result<MonteCarloJoinSpec> BindMonteCarloJoin(const MonteCarloJoinAst& j) {
  MonteCarloJoinSpec join;
  JIGSAW_ASSIGN_OR_RETURN(join.left,
                          MakeCatalogVGTable(j.left.table, j.left.args));
  JIGSAW_ASSIGN_OR_RETURN(join.right,
                          MakeCatalogVGTable(j.right.table, j.right.args));
  if (EqualsIgnoreCase(j.left.alias, j.right.alias)) {
    return Status::BindError("JOIN sides share the alias '" + j.left.alias +
                             "'");
  }
  auto side_of = [&](const std::string& alias) -> Result<bool> {
    if (EqualsIgnoreCase(alias, j.left.alias)) return true;
    if (EqualsIgnoreCase(alias, j.right.alias)) return false;
    return Status::BindError("ON references unknown alias '" + alias + "'");
  };
  JIGSAW_ASSIGN_OR_RETURN(bool lhs_is_left, side_of(j.on_left_alias));
  JIGSAW_ASSIGN_OR_RETURN(bool rhs_is_left, side_of(j.on_right_alias));
  if (lhs_is_left == rhs_is_left) {
    return Status::BindError("ON must relate the two joined tables ('" +
                             j.on_left_alias + "' and '" + j.on_right_alias +
                             "' name the same side)");
  }
  join.keys.left_key = lhs_is_left ? j.on_left_column : j.on_right_column;
  join.keys.right_key = lhs_is_left ? j.on_right_column : j.on_left_column;
  auto resolved =
      pdb::ResolveJoin(join.left->schema(), join.right->schema(), join.keys);
  if (!resolved.ok()) {
    return Status::BindError(resolved.status().message());
  }
  join.resolved = std::move(resolved).value();
  join.description = StrFormat(
      "%s AS %s JOIN %s AS %s ON %s.%s = %s.%s", j.left.table.c_str(),
      j.left.alias.c_str(), j.right.table.c_str(), j.right.alias.c_str(),
      j.left.alias.c_str(), join.keys.left_key.c_str(),
      j.right.alias.c_str(), join.keys.right_key.c_str());
  return join;
}

Result<CmpOp> CmpFromText(const std::string& cmp) {
  if (cmp == "<") return CmpOp::kLt;
  if (cmp == "<=") return CmpOp::kLe;
  if (cmp == ">") return CmpOp::kGt;
  if (cmp == ">=") return CmpOp::kGe;
  return Status::BindError("unknown comparison '" + cmp + "'");
}

/// Compilation scope for one SELECT level.
struct ExprScope {
  const ParameterSpace* params = nullptr;
  /// Columns of the FROM subquery (resolve to ColumnRef).
  const std::vector<std::string>* input_columns = nullptr;
  /// Aliases of items already compiled at this level (AliasRef).
  const std::vector<std::string>* visible_aliases = nullptr;
};

class ExprCompiler {
 public:
  ExprCompiler(const ModelRegistry* registry, std::uint64_t* call_site_counter)
      : registry_(registry), call_sites_(call_site_counter) {}

  Result<ExprPtr> Compile(const AstExpr& ast, const ExprScope& scope) {
    switch (ast.kind) {
      case AstExprKind::kNumber:
        return pdb::MakeLiteral(Value(ast.number));
      case AstExprKind::kString:
        return pdb::MakeLiteral(Value(ast.text));
      case AstExprKind::kParam: {
        if (scope.params == nullptr) {
          return Status::BindError("parameter '@" + ast.text +
                                   "' not allowed here");
        }
        auto idx = scope.params->IndexOf(ast.text);
        if (!idx) {
          return Status::BindError("undeclared parameter '@" + ast.text +
                                   "'");
        }
        return pdb::MakeParamRef(*idx, ast.text);
      }
      case AstExprKind::kIdent: {
        // Aliases first (Figure 1's overload references its siblings),
        // then subquery columns.
        if (scope.visible_aliases != nullptr) {
          for (std::size_t i = 0; i < scope.visible_aliases->size(); ++i) {
            if (EqualsIgnoreCase((*scope.visible_aliases)[i], ast.text)) {
              return pdb::MakeAliasRef(i, ast.text);
            }
          }
        }
        if (scope.input_columns != nullptr) {
          for (std::size_t i = 0; i < scope.input_columns->size(); ++i) {
            if (EqualsIgnoreCase((*scope.input_columns)[i], ast.text)) {
              return pdb::MakeColumnRef(i, ast.text);
            }
          }
        }
        return Status::BindError("unresolved column '" + ast.text + "'");
      }
      case AstExprKind::kCall: {
        JIGSAW_ASSIGN_OR_RETURN(BlackBoxPtr model,
                                registry_->Lookup(ast.text));
        if (model->arity() != ast.children.size()) {
          return Status::BindError(StrFormat(
              "%s expects %zu argument(s), got %zu", model->name().c_str(),
              model->arity(), ast.children.size()));
        }
        std::vector<ExprPtr> args;
        args.reserve(ast.children.size());
        for (const auto& child : ast.children) {
          JIGSAW_ASSIGN_OR_RETURN(ExprPtr arg, Compile(*child, scope));
          args.push_back(std::move(arg));
        }
        const std::uint64_t site = ++*call_sites_;
        return pdb::MakeModelCall(std::move(model), std::move(args), site);
      }
      case AstExprKind::kBinary: {
        JIGSAW_ASSIGN_OR_RETURN(BinaryOp op, BinaryOpFromText(ast.text));
        JIGSAW_ASSIGN_OR_RETURN(ExprPtr lhs,
                                Compile(*ast.children[0], scope));
        JIGSAW_ASSIGN_OR_RETURN(ExprPtr rhs,
                                Compile(*ast.children[1], scope));
        return pdb::MakeBinary(op, std::move(lhs), std::move(rhs));
      }
      case AstExprKind::kNot: {
        JIGSAW_ASSIGN_OR_RETURN(ExprPtr operand,
                                Compile(*ast.children[0], scope));
        return pdb::MakeNot(std::move(operand));
      }
      case AstExprKind::kNegate: {
        JIGSAW_ASSIGN_OR_RETURN(ExprPtr operand,
                                Compile(*ast.children[0], scope));
        return pdb::MakeBinary(BinaryOp::kSub,
                               pdb::MakeLiteral(Value(0.0)),
                               std::move(operand));
      }
      case AstExprKind::kCase: {
        std::vector<std::pair<ExprPtr, ExprPtr>> branches;
        for (std::size_t i = 0; i + 1 < ast.children.size(); i += 2) {
          JIGSAW_ASSIGN_OR_RETURN(ExprPtr cond,
                                  Compile(*ast.children[i], scope));
          JIGSAW_ASSIGN_OR_RETURN(ExprPtr result,
                                  Compile(*ast.children[i + 1], scope));
          branches.emplace_back(std::move(cond), std::move(result));
        }
        ExprPtr else_expr;
        if (ast.else_expr) {
          JIGSAW_ASSIGN_OR_RETURN(else_expr,
                                  Compile(*ast.else_expr, scope));
        }
        return pdb::MakeCase(std::move(branches), std::move(else_expr));
      }
    }
    return Status::Internal("unhandled AST expression kind");
  }

 private:
  const ModelRegistry* registry_;
  std::uint64_t* call_sites_;
};

/// SimFunction over one outer column of a RowProgram. Runtime expression
/// failures abort with a message: the binder validates statically and
/// performs a probe evaluation at bind time, so an error here is a
/// programming bug, not user input.
class ColumnSimFunction final : public SimFunction {
 public:
  ColumnSimFunction(std::shared_ptr<const RowProgram> program,
                    std::size_t column, std::string label)
      : program_(std::move(program)),
        column_(column),
        label_(std::move(label)) {}

  const std::string& label() const override { return label_; }

  double Sample(std::span<const double> params, std::size_t sample_id,
                const SeedVector& seeds) const override {
    auto v = program_->EvalColumn(column_, params, sample_id, seeds);
    JIGSAW_CHECK_MSG(v.ok(), "column '" << label_ << "': "
                                        << v.status().ToString());
    return v.value();
  }

  /// The core engine's fingerprint/tail/sweep phases drive this: one
  /// compiled BatchProgram run per span instead of out.size() virtual
  /// tree walks (falls back to the inherited scalar loop when the
  /// program did not compile).
  void SampleBatch(std::span<const double> params, std::size_t sample_begin,
                   const SeedVector& seeds,
                   std::span<double> out) const override {
    if (!program_->compiled()) {
      SimFunction::SampleBatch(params, sample_begin, seeds, out);
      return;
    }
    Status s = program_->EvalColumnSpan(column_, params, sample_begin,
                                        seeds, /*stream_salt=*/0, {}, out);
    JIGSAW_CHECK_MSG(s.ok(),
                     "column '" << label_ << "': " << s.ToString());
  }

 private:
  std::shared_ptr<const RowProgram> program_;
  std::size_t column_;
  std::string label_;
};

}  // namespace

Result<double> RowProgram::EvalColumn(std::size_t j,
                                      std::span<const double> params,
                                      std::size_t sample_id,
                                      const SeedVector& seeds,
                                      std::uint64_t stream_salt) const {
  EvalContext ctx;
  ctx.params = params;
  ctx.sample_id = sample_id;
  ctx.seeds = &seeds;
  ctx.stream_salt = stream_salt;

  pdb::Row inner_row;
  if (!inner_exprs.empty()) {
    std::vector<Value> inner_aliases;
    inner_aliases.reserve(inner_exprs.size());
    EvalContext inner_ctx = ctx;
    inner_ctx.aliases = &inner_aliases;
    for (const auto& e : inner_exprs) {
      JIGSAW_ASSIGN_OR_RETURN(Value v, e->Eval(inner_ctx));
      inner_aliases.push_back(std::move(v));
    }
    inner_row = std::move(inner_aliases);
    ctx.row = &inner_row;
  }

  std::vector<Value> aliases;
  aliases.reserve(j + 1);
  ctx.aliases = &aliases;
  for (std::size_t i = 0; i <= j; ++i) {
    JIGSAW_ASSIGN_OR_RETURN(Value v, outer_exprs[i]->Eval(ctx));
    aliases.push_back(std::move(v));
  }
  if (!aliases[j].IsNumeric()) {
    return Status::ExecutionError("column '" + outer_names[j] +
                                  "' is not numeric");
  }
  return aliases[j].AsDouble();
}

Result<std::vector<double>> RowProgram::EvalAllColumns(
    std::span<const double> params, std::size_t sample_id,
    const SeedVector& seeds, std::uint64_t stream_salt) const {
  EvalContext ctx;
  ctx.params = params;
  ctx.sample_id = sample_id;
  ctx.seeds = &seeds;
  ctx.stream_salt = stream_salt;

  pdb::Row inner_row;
  if (!inner_exprs.empty()) {
    std::vector<Value> inner_aliases;
    inner_aliases.reserve(inner_exprs.size());
    EvalContext inner_ctx = ctx;
    inner_ctx.aliases = &inner_aliases;
    for (const auto& e : inner_exprs) {
      JIGSAW_ASSIGN_OR_RETURN(Value v, e->Eval(inner_ctx));
      inner_aliases.push_back(std::move(v));
    }
    inner_row = std::move(inner_aliases);
    ctx.row = &inner_row;
  }

  std::vector<Value> aliases;
  aliases.reserve(outer_exprs.size());
  ctx.aliases = &aliases;
  std::vector<double> out;
  out.reserve(outer_exprs.size());
  for (std::size_t i = 0; i < outer_exprs.size(); ++i) {
    JIGSAW_ASSIGN_OR_RETURN(Value v, outer_exprs[i]->Eval(ctx));
    aliases.push_back(std::move(v));
    if (!aliases[i].IsNumeric()) {
      return Status::ExecutionError("column '" + outer_names[i] +
                                    "' is not numeric");
    }
    out.push_back(aliases[i].AsDouble());
  }
  return out;
}

Status RowProgram::EvalColumnSpan(
    std::size_t j, std::span<const double> params, std::size_t sample_begin,
    const SeedVector& seeds, std::uint64_t stream_salt,
    std::span<const pdb::BatchProgram::LaneParam> lane_params,
    std::span<double> out) const {
  if (compiled()) {
    pdb::BatchProgram::Context ctx;
    ctx.params = params;
    ctx.lane_params = lane_params;
    ctx.sample_begin = sample_begin;
    ctx.seeds = &seeds;
    ctx.stream_salt = stream_salt;
    thread_local pdb::BatchScratch scratch;
    return batch->RunColumn(j, ctx, out.size(), out, scratch);
  }
  // Interpreter fallback: scalar tree walks, lane params substituted into
  // a per-lane valuation copy — identical to what the compiled path
  // computes, one sample at a time.
  std::vector<double> lane_valuation(params.begin(), params.end());
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::span<const double> valuation = params;
    if (!lane_params.empty()) {
      std::copy(params.begin(), params.end(), lane_valuation.begin());
      for (const auto& lp : lane_params) {
        lane_valuation[lp.param_index] = lp.values[i];
      }
      valuation = lane_valuation;
    }
    auto v = EvalColumn(j, valuation, sample_begin + i, seeds, stream_salt);
    JIGSAW_RETURN_IF_ERROR(v.status());
    out[i] = v.value();
  }
  return Status::OK();
}

Status RowProgram::EvalAllColumnsSpan(std::span<const double> params,
                                      std::size_t sample_begin,
                                      std::size_t count,
                                      const SeedVector& seeds,
                                      std::uint64_t stream_salt,
                                      std::span<double* const> out) const {
  if (compiled()) {
    pdb::BatchProgram::Context ctx;
    ctx.params = params;
    ctx.sample_begin = sample_begin;
    ctx.seeds = &seeds;
    ctx.stream_salt = stream_salt;
    thread_local pdb::BatchScratch scratch;
    return batch->RunAll(ctx, count, out, scratch);
  }
  for (std::size_t i = 0; i < count; ++i) {
    auto row = EvalAllColumns(params, sample_begin + i, seeds, stream_salt);
    JIGSAW_RETURN_IF_ERROR(row.status());
    for (std::size_t c = 0; c < out.size(); ++c) out[c][i] = row.value()[c];
  }
  return Status::OK();
}

std::shared_ptr<const RowProgram> WithoutBatchProgram(
    const RowProgram& program) {
  auto stripped = std::make_shared<RowProgram>(program);
  stripped->batch = nullptr;
  stripped->batch_fallback_reason = "compiled expressions disabled";
  return stripped;
}

void UseInterpretedExpressions(BoundScript& bound) {
  if (bound.program == nullptr) return;
  auto stripped = WithoutBatchProgram(*bound.program);
  bound.program = stripped;
  for (std::size_t j = 0; j < bound.scenario.columns.size(); ++j) {
    auto& col = bound.scenario.columns[j];
    col.fn = std::make_shared<ColumnSimFunction>(stripped, j, col.name);
  }
}

Result<BoundScript> Binder::Bind(const Script& script) {
  BoundScript bound;

  // Pass 1: parameter declarations.
  const DeclareStmt* chain_decl = nullptr;
  for (const auto& stmt : script.statements) {
    if (!stmt.declare) continue;
    const DeclareStmt& d = *stmt.declare;
    ParameterDef def;
    def.name = d.param;
    if (d.range) {
      def.domain = RangeDomain{d.range->lo, d.range->hi, d.range->step};
    } else if (d.set) {
      def.domain = SetDomain{d.set->values};
    } else if (d.chain) {
      def.domain = ChainDomain{d.chain->column, d.chain->driver_param,
                               d.chain->initial};
      chain_decl = &d;
    } else {
      return Status::BindError("parameter '@" + d.param +
                               "' has no domain");
    }
    JIGSAW_RETURN_IF_ERROR(bound.scenario.params.Add(std::move(def)));
  }

  // Pass 2: the scenario SELECT (exactly one top-level SELECT expected).
  const SelectStmt* select = nullptr;
  for (const auto& stmt : script.statements) {
    if (stmt.select) {
      if (select != nullptr) {
        return Status::BindError(
            "multiple SELECT statements; one scenario per script");
      }
      select = stmt.select.get();
    }
  }
  if (select == nullptr) {
    return Status::BindError("script has no SELECT statement");
  }
  if (select->from_subquery && select->from_subquery->from_subquery) {
    return Status::Unimplemented(
        "nested FROM subqueries deeper than one level");
  }

  std::uint64_t call_site_counter = 0;
  ExprCompiler compiler(registry_, &call_site_counter);
  auto program = std::make_shared<RowProgram>();

  if (select->from_subquery) {
    const SelectStmt& sub = *select->from_subquery;
    ExprScope scope;
    scope.params = &bound.scenario.params;
    scope.visible_aliases = &program->inner_names;
    for (const auto& item : sub.items) {
      JIGSAW_ASSIGN_OR_RETURN(ExprPtr e, compiler.Compile(*item.expr, scope));
      program->inner_exprs.push_back(std::move(e));
      program->inner_names.push_back(
          item.alias.empty()
              ? StrFormat("col%zu", program->inner_names.size())
              : item.alias);
    }
  }

  {
    ExprScope scope;
    scope.params = &bound.scenario.params;
    scope.input_columns = &program->inner_names;
    scope.visible_aliases = &program->outer_names;
    for (const auto& item : select->items) {
      JIGSAW_ASSIGN_OR_RETURN(ExprPtr e, compiler.Compile(*item.expr, scope));
      program->outer_exprs.push_back(std::move(e));
      program->outer_names.push_back(
          item.alias.empty()
              ? StrFormat("col%zu", program->outer_names.size())
              : item.alias);
    }
  }

  bound.scenario.into_table = select->into_table;
  bound.program = program;
  for (std::size_t j = 0; j < program->outer_exprs.size(); ++j) {
    bound.scenario.columns.push_back(ScenarioColumn{
        program->outer_names[j],
        std::make_shared<ColumnSimFunction>(program, j,
                                            program->outer_names[j])});
  }

  // Probe evaluation: catch latent runtime errors (type mismatches,
  // division by zero on the initial valuation) at bind time.
  {
    SeedVector probe_seeds(0xB1FD0000DEADBEEFULL, 2);
    const auto valuation = bound.scenario.params.NumPoints() > 0
                               ? bound.scenario.params.ValuationAt(0)
                               : std::vector<double>{};
    auto probe = program->EvalAllColumns(valuation, 0, probe_seeds);
    if (!probe.ok()) {
      return Status::BindError("scenario probe evaluation failed: " +
                               probe.status().message());
    }
  }

  // Lower the row program into its vectorized batch form. Failure is not
  // an error — the expression simply has no bit-identical batch
  // representation — but the reason is kept so the de-optimization is
  // visible (ScriptOutcome::Report surfaces it).
  {
    auto compiled = pdb::CompileBatchProgram(
        program->inner_exprs, program->outer_exprs, program->outer_names);
    if (compiled.ok()) {
      program->batch = std::move(compiled).value();
    } else {
      program->batch_fallback_reason = compiled.status().message();
    }
  }

  // Pass 3: chain metadata.
  if (chain_decl != nullptr) {
    const ChainSpecAst& c = *chain_decl->chain;
    BoundChain chain;
    chain.initial = c.initial;
    auto pidx = bound.scenario.params.IndexOf(chain_decl->param);
    JIGSAW_CHECK(pidx.has_value());
    chain.chain_param_index = *pidx;
    auto didx = bound.scenario.params.IndexOf(c.driver_param);
    if (!didx) {
      return Status::BindError("chain driver '@" + c.driver_param +
                               "' is not declared");
    }
    if (bound.scenario.params.def(*didx).is_chain()) {
      return Status::BindError("chain driver '@" + c.driver_param +
                               "' must not itself be a CHAIN parameter");
    }
    chain.driver_param_index = *didx;
    bool found_col = false;
    for (std::size_t j = 0; j < program->outer_names.size(); ++j) {
      if (EqualsIgnoreCase(program->outer_names[j], c.column)) {
        chain.source_column_index = j;
        found_col = true;
        break;
      }
    }
    if (!found_col) {
      return Status::BindError("chain column '" + c.column +
                               "' is not a result column");
    }
    // Only the previous-step form "@driver - 1" is supported (Figure 5).
    const AstExpr& src = *c.source_step;
    const bool prev_step_form =
        src.kind == AstExprKind::kBinary && src.text == "-" &&
        src.children[0]->kind == AstExprKind::kParam &&
        EqualsIgnoreCase(src.children[0]->text, c.driver_param) &&
        src.children[1]->kind == AstExprKind::kNumber &&
        src.children[1]->number == 1.0;
    if (!prev_step_form) {
      return Status::Unimplemented(
          "CHAIN source step must be '@driver - 1' (previous step)");
    }
    bound.chain = chain;
  }

  // Pass 4: OPTIMIZE.
  for (const auto& stmt : script.statements) {
    if (!stmt.optimize) continue;
    if (bound.optimize) {
      return Status::BindError("multiple OPTIMIZE statements");
    }
    const OptimizeStmt& o = *stmt.optimize;
    if (!bound.scenario.into_table.empty() &&
        !EqualsIgnoreCase(o.from_table, bound.scenario.into_table)) {
      return Status::BindError("OPTIMIZE reads table '" + o.from_table +
                               "' but the scenario writes INTO '" +
                               bound.scenario.into_table + "'");
    }
    OptimizeSpec spec;
    spec.select_params = o.select_params;
    for (const auto& g : o.group_by) {
      if (!bound.scenario.params.IndexOf(g)) {
        return Status::BindError("GROUP BY references undeclared '" + g +
                                 "'");
      }
      spec.group_params.push_back(g);
    }
    for (const auto& c : o.constraints) {
      MetricConstraint mc;
      JIGSAW_ASSIGN_OR_RETURN(mc.agg, SweepAggFromText(c.sweep_agg));
      JIGSAW_ASSIGN_OR_RETURN(mc.metric, MetricFromText(c.metric));
      JIGSAW_ASSIGN_OR_RETURN(const ScenarioColumn* col,
                              bound.scenario.FindColumn(c.column));
      mc.column = col->name;
      JIGSAW_ASSIGN_OR_RETURN(mc.cmp, CmpFromText(c.cmp));
      mc.threshold = c.threshold;
      spec.constraints.push_back(std::move(mc));
    }
    for (const auto& obj : o.objectives) {
      if (!bound.scenario.params.IndexOf(obj.param)) {
        return Status::BindError("FOR references undeclared '@" +
                                 obj.param + "'");
      }
      spec.objectives.push_back(ObjectiveTerm{obj.param, obj.maximize});
    }
    bound.optimize = std::move(spec);
  }

  // Pass 5: MONTECARLO. The statement runs the already-compiled row
  // program; a CHAIN scenario is fine (the chain parameter is frozen at
  // its anchor value, the same convention the synthesized estimator
  // uses). An OVER clause resolves its parameter and materializes the
  // sweep points here so execution never sees an unbound, empty,
  // non-finite or absurdly large sweep.
  constexpr double kMaxSweepPoints = 1e6;
  for (const auto& stmt : script.statements) {
    if (!stmt.montecarlo) continue;
    if (bound.montecarlo) {
      return Status::BindError("multiple MONTECARLO statements");
    }
    MonteCarloSpec spec;
    spec.layered = stmt.montecarlo->layered;
    if (stmt.montecarlo->join) {
      JIGSAW_ASSIGN_OR_RETURN(spec.join,
                              BindMonteCarloJoin(*stmt.montecarlo->join));
    }
    if (stmt.montecarlo->over) {
      const MonteCarloSweepAst& over = *stmt.montecarlo->over;
      MonteCarloSweepSpec sweep;
      auto pidx = bound.scenario.params.IndexOf(over.param);
      if (!pidx) {
        return Status::BindError(
            "MONTECARLO OVER references undeclared '@" + over.param + "'");
      }
      sweep.param_index = *pidx;
      sweep.param_name = bound.scenario.params.def(*pidx).name;
      if (over.values) {
        sweep.points = over.values->values;
      } else if (over.range) {
        if (over.range->step <= 0.0) {
          return Status::BindError("MONTECARLO OVER '@" + over.param +
                                   "' has non-positive STEP");
        }
        // Unlike DECLARE, this range never passes ParameterSpace::Add, so
        // guard the expansion here: a non-finite bound would spin the
        // materialization loop forever, and a huge span would OOM the
        // binder before execution ever starts.
        if (!std::isfinite(over.range->lo) ||
            !std::isfinite(over.range->hi) ||
            !std::isfinite(over.range->step)) {
          return Status::BindError("MONTECARLO OVER '@" + over.param +
                                   "' range bounds must be finite");
        }
        if ((over.range->hi - over.range->lo) / over.range->step >=
            kMaxSweepPoints) {
          return Status::BindError("MONTECARLO OVER '@" + over.param +
                                   "' sweeps more than 1000000 points");
        }
        ParameterDef expand;
        expand.domain =
            RangeDomain{over.range->lo, over.range->hi, over.range->step};
        sweep.points = expand.Values();
      } else {
        // Bare OVER @p: sweep the parameter's declared domain (empty for
        // CHAIN parameters, which have no enumerable domain). A RANGE
        // domain's cap is checked against its span first — DECLARE
        // accepts ranges far larger than a sweep may use, and the clean
        // BindError must come before Values() materializes them.
        const ParameterDef& def = bound.scenario.params.def(*pidx);
        if (const auto* range = std::get_if<RangeDomain>(&def.domain)) {
          if ((range->hi - range->lo) / range->step >= kMaxSweepPoints) {
            return Status::BindError("MONTECARLO OVER '@" + over.param +
                                     "' sweeps more than 1000000 points");
          }
        }
        sweep.points = def.Values();
      }
      if (sweep.points.empty()) {
        return Status::BindError("MONTECARLO OVER '@" + over.param +
                                 "' sweeps an empty point list");
      }
      // Uniform across all three forms — the range pre-checks above only
      // guard the expansion itself. A bare OVER of a huge declared
      // domain must hit the same cap, and an overflowed IN-list literal
      // or non-finite declared SET value must not reach execution as
      // @p = inf.
      if (sweep.points.size() >= kMaxSweepPoints) {
        return Status::BindError("MONTECARLO OVER '@" + over.param +
                                 "' sweeps more than 1000000 points");
      }
      for (double v : sweep.points) {
        if (!std::isfinite(v)) {
          return Status::BindError("MONTECARLO OVER '@" + over.param +
                                   "' has a non-finite point value");
        }
      }
      spec.over = std::move(sweep);
    }
    bound.montecarlo = std::move(spec);
  }

  // Pass 6: GRAPH.
  for (const auto& stmt : script.statements) {
    if (!stmt.graph) continue;
    if (bound.graph) {
      return Status::BindError("multiple GRAPH statements");
    }
    const GraphStmt& g = *stmt.graph;
    GraphSpec spec;
    auto xidx = bound.scenario.params.IndexOf(g.x_param);
    if (!xidx) {
      return Status::BindError("GRAPH OVER references undeclared '@" +
                               g.x_param + "'");
    }
    spec.x_param = g.x_param;
    for (const auto& s : g.series) {
      GraphSeries series;
      JIGSAW_ASSIGN_OR_RETURN(series.metric, MetricFromText(s.metric));
      JIGSAW_ASSIGN_OR_RETURN(const ScenarioColumn* col,
                              bound.scenario.FindColumn(s.column));
      series.column = col->name;
      series.style = Join(s.style, " ");
      spec.series.push_back(std::move(series));
    }
    bound.graph = std::move(spec);
  }

  return bound;
}

Result<BoundScript> ParseAndBind(const std::string& text,
                                 const ModelRegistry& registry) {
  JIGSAW_ASSIGN_OR_RETURN(Script script, ParseScript(text));
  Binder binder(&registry);
  return binder.Bind(script);
}

}  // namespace jigsaw::sql
