#include "serve/session_server.h"

#include "core/sim_runner.h"
#include "random/splitmix64.h"

namespace jigsaw::serve {

std::uint64_t SessionSeed(std::uint64_t master_seed,
                          std::uint64_t session_id) {
  // One SplitMix64 scramble of (master, id). The golden-ratio stride
  // separates consecutive ids across the whole state space before the
  // scramble mixes; "SESS" tags the derivation so a session namespace
  // can never collide with other derived-seed schemes rooted at the
  // same master seed.
  SplitMix64 sm(master_seed ^
                (0x53455353ULL + session_id * 0x9E3779B97F4A7C15ULL));
  return sm.Next();
}

RunConfig StandaloneTwinConfig(const Session& session) {
  RunConfig twin = session.config();
  twin.num_threads = 1;
  twin.shared_pool = nullptr;
  return twin;
}

SessionServer::SessionServer(const ModelRegistry* registry,
                             const RunConfig& base)
    : registry_(registry),
      base_(base),
      catalog_(std::make_shared<const Catalog>()) {
  if (base_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(base_.num_threads);
  }
  base_.shared_pool = pool_.get();
}

Result<std::shared_ptr<const ScriptSnapshot>> SessionServer::Publish(
    const std::string& name, const std::string& text,
    const PublishOptions& options) {
  // Bind once, outside the lock — publishing must not stall Connect or
  // sibling publishes behind a parse.
  JIGSAW_ASSIGN_OR_RETURN(sql::BoundScript compiled,
                          sql::ParseAndBind(text, *registry_));
  sql::BoundScript interpreted = compiled;
  sql::UseInterpretedExpressions(interpreted);

  auto snapshot = std::make_shared<ScriptSnapshot>();
  snapshot->name = name;
  snapshot->text = text;
  snapshot->world_cache = std::make_shared<pdb::WorldCache>();
  snapshot->seed_schema = base_.seed_schema;

  if (options.warm_basis_store) {
    // Warm under the server namespace: sweep every scenario column once
    // with a throwaway runner, then copy its bases — in insertion order,
    // so ids and index content are reproducible — into a frozen
    // thread-safe store. Warming happens before the snapshot is
    // published, so no session can observe a half-warm store.
    RunConfig warm_cfg = base_;
    SimulationRunner warm(warm_cfg);
    for (const auto& column : compiled.scenario.columns) {
      warm.RunSweep(*column.fn, compiled.scenario.params);
    }
    auto finder = LinearMappingFinder::Make();
    auto store = std::make_shared<BasisStore>(
        finder, base_.index_kind, base_.tolerance, base_.quantum,
        /*thread_safe=*/true);
    const BasisStore& warmed = warm.basis_store();
    for (BasisId id = 0; id < warmed.size(); ++id) {
      const BasisDistribution& basis = warmed.Get(id);
      store->Insert(Fingerprint(basis.fingerprint), basis.metrics);
    }
    snapshot->basis_store = std::move(store);
  }

  snapshot->compiled =
      std::make_shared<const sql::BoundScript>(std::move(compiled));
  snapshot->interpreted =
      std::make_shared<const sql::BoundScript>(std::move(interpreted));

  // Copy-on-write swap: runs holding the previous catalog pointer keep
  // an unchanged view; new runs pick up the new snapshot.
  std::shared_ptr<const ScriptSnapshot> published = std::move(snapshot);
  MutexLock lock(&mu_);
  auto next = std::make_shared<Catalog>(*catalog_);
  (*next)[name] = published;
  catalog_ = std::move(next);
  return published;
}

Result<Session*> SessionServer::TryConnect(const SessionOptions& options) {
  // Schema is a server-wide property: every published snapshot (warmed
  // bases, cached worlds) is pinned to base_.seed_schema, so a session
  // under another schema could never run one — reject at admission,
  // the serving analogue of a bind error.
  if (options.seed_schema && *options.seed_schema != base_.seed_schema) {
    return Status::InvalidArgument(
        "session seed schema does not match the server's published "
        "schema; snapshots are pinned to the schema they were built "
        "under");
  }
  MutexLock lock(&mu_);
  const std::uint64_t id = next_session_id_++;
  RunConfig config = base_;
  if (!options.shared_namespace) {
    config.master_seed = SessionSeed(base_.master_seed, id);
  }
  if (options.compile_expressions) {
    config.compile_expressions = *options.compile_expressions;
  }
  sessions_.push_back(std::unique_ptr<Session>(
      new Session(this, id, std::move(config))));
  return sessions_.back().get();
}

Session& SessionServer::Connect(const SessionOptions& options) {
  Result<Session*> session = TryConnect(options);
  JIGSAW_CHECK_MSG(session.ok(), session.status().message());
  return *session.value();
}

std::shared_ptr<const Catalog> SessionServer::catalog() const {
  MutexLock lock(&mu_);
  return catalog_;
}

std::size_t SessionServer::session_count() const {
  MutexLock lock(&mu_);
  return sessions_.size();
}

Result<sql::ScriptOutcome> Session::Run(
    const std::string& script_name,
    const std::vector<std::pair<std::string, double>>& overrides) {
  const std::shared_ptr<const Catalog> catalog = server_->catalog();
  auto it = catalog->find(script_name);
  if (it == catalog->end()) {
    return Status::NotFound("no published script named '" + script_name +
                            "'");
  }
  // Keep the snapshot alive past any concurrent republish of the name.
  const std::shared_ptr<const ScriptSnapshot> snapshot = it->second;
  // TryConnect already rejects mixed-schema sessions; re-check against
  // the snapshot itself so a future republish-under-new-schema path can
  // never silently mix draw derivations in one run.
  if (snapshot->seed_schema != config_.seed_schema) {
    return Status::InvalidArgument(
        "snapshot '" + script_name +
        "' was published under a different seed schema than this "
        "session runs");
  }
  const std::shared_ptr<const sql::BoundScript>& twin =
      config_.compile_expressions ? snapshot->compiled
                                  : snapshot->interpreted;
  sql::SnapshotResources shared;
  shared.world_cache = snapshot->world_cache.get();
  shared.basis_store = snapshot->basis_store.get();
  sql::ScriptRunner runner(server_->registry(), config_);
  return runner.RunBound(sql::BoundScript(*twin), overrides, shared);
}

Result<sql::ScriptOutcome> Session::RunText(
    const std::string& text,
    const std::vector<std::pair<std::string, double>>& overrides) {
  sql::ScriptRunner runner(server_->registry(), config_);
  return runner.Run(text, overrides);
}

Result<std::unique_ptr<InteractiveSession>> Session::PrimeInteractive(
    const sql::ScriptOutcome& outcome, const std::string& column,
    InteractiveConfig config) {
  config.run = config_;
  return MakeSessionFromOutcome(outcome, column, config);
}

}  // namespace jigsaw::serve
