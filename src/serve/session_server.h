#pragma once

/// \file session_server.h
/// The serving layer: many concurrent clients exploring the same
/// published scenario catalog, each bit-identical to a standalone run.
///
/// Jigsaw's batch pipeline is single-tenant — one ScriptRunner, one
/// script, one seed namespace. An interactive deployment (Section 2.2's
/// GUI sessions) is many-tenant: analysts connect, run MONTECARLO sweeps
/// and what-if ticks against the same scenario, and expect both isolation
/// (my draws are mine) and sharing (the expensive immutable artifacts —
/// bound plans, compiled batch programs, world realizations, warmed basis
/// catalogs — are built once, not per client).
///
/// The contract, in determinism terms:
///
///  * Publish() parses and binds a script ONCE, building an immutable
///    ScriptSnapshot: a compiled plan twin, an interpreted plan twin
///    (UseInterpretedExpressions mutates, so both are pre-built and
///    frozen), a shared WorldCache, and optionally a warmed, frozen
///    BasisStore. Snapshots hang off a copy-on-write catalog: publishing
///    swaps the catalog pointer, so a Run() that already grabbed the old
///    catalog keeps executing against unchanged state.
///  * Connect() admits a client session. Each session owns a seed
///    namespace — SessionSeed(master, id) — so its draws are disjoint
///    from every sibling's by construction; a session that opts into the
///    server namespace instead shares realizations and warmed bases with
///    the publisher.
///  * Session::Run() executes a published snapshot. Every run is
///    bit-identical (values, draws, metrics, error text and ordering) to
///    a standalone serial ScriptRunner::Run of the same text under the
///    session's seed — no matter how many sibling sessions are running,
///    how the shared pool schedules their cells, or which sibling's error
///    aborted mid-flight. Shared state is either immutable (snapshots,
///    published bases) or memoization of pure functions (WorldCache), so
///    concurrency cannot leak into results.
///
/// Threading model: SessionServer (Publish/Connect/catalog) is
/// thread-safe. A Session is owned by one client thread — calls on one
/// session are not synchronized against each other. Work fans out on ONE
/// shared ThreadPool: sessions submit world-chunk cells from their client
/// threads and never call each other's WaitIdle (ParallelFor tracks
/// completion per call), so a saturated pool degrades throughput, never
/// correctness.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/basis_store.h"
#include "core/run_config.h"
#include "interactive/auto_prime.h"
#include "interactive/interactive_session.h"
#include "models/black_box.h"
#include "pdb/vg_table.h"
#include "sql/binder.h"
#include "sql/script_runner.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace jigsaw::serve {

/// Derives a session's seed namespace from the server's master seed.
/// Distinct session ids give statistically independent namespaces (one
/// SplitMix64 scramble), and the derivation is pure, so a standalone
/// twin of session k is just a runner seeded with SessionSeed(master, k).
std::uint64_t SessionSeed(std::uint64_t master_seed,
                          std::uint64_t session_id);

/// One published script: everything immutable a run needs, built once.
struct ScriptSnapshot {
  std::string name;
  std::string text;  ///< original source, for standalone-twin replays
  /// Plan twins. Both are fully bound; `interpreted` has its compiled
  /// batch programs stripped and its column closures rebuilt over the
  /// Expr trees. A session picks the twin matching its
  /// compile_expressions flag — never mutating a shared plan.
  std::shared_ptr<const sql::BoundScript> compiled;
  std::shared_ptr<const sql::BoundScript> interpreted;
  /// Shared VG realizations, keyed by (table, seed namespace, world):
  /// same-namespace sessions amortize generation, private-namespace
  /// sessions occupy disjoint keys. Entries are dual-representation —
  /// typed column chunks (ColumnarTable) and/or boxed rows, whichever
  /// the consumers' RunConfig::columnar_storage gates asked for first;
  /// both views of a world are bit-identical, so mixed-gate sessions
  /// sharing one cache still replay byte-identically.
  std::shared_ptr<pdb::WorldCache> world_cache;
  /// Frozen basis catalog warmed at publish time under the server
  /// namespace (null unless PublishOptions::warm_basis_store). Consulted
  /// read-only by every run; probes from private session namespaces
  /// deterministically miss.
  std::shared_ptr<BasisStore> basis_store;
  /// The seed schema everything in this snapshot was built under (warmed
  /// bases, cached worlds). Pinned from the server's base config at
  /// publish time; sessions must run it under the same schema.
  SeedSchema seed_schema = SeedSchema::kV1;
};

using Catalog = std::map<std::string, std::shared_ptr<const ScriptSnapshot>>;

struct PublishOptions {
  /// Pre-run every scenario column's full sweep under the server
  /// namespace at publish time and freeze the resulting basis catalog
  /// into the snapshot. Server-namespace sessions then open with a warm
  /// store (their standalone twin is a serial run handed the same frozen
  /// store — mapped-basis estimates are part of the program, not noise).
  bool warm_basis_store = false;
};

struct SessionOptions {
  /// Overrides the server's compile_expressions flag for this session
  /// (both plan twins are published, so either choice is zero-cost).
  std::optional<bool> compile_expressions;
  /// Run under the server's own seed namespace instead of a private
  /// one: draws coincide with the publisher's (and with every other
  /// shared-namespace session's), enabling WorldCache and warmed-basis
  /// sharing. Private namespaces (the default) guarantee disjoint draws.
  bool shared_namespace = false;
  /// Requested seed schema for this session. Published snapshots are
  /// pinned to the schema they were built under, so requesting anything
  /// other than the server's base schema is a bind error (TryConnect);
  /// leave unset to inherit the server's schema.
  std::optional<SeedSchema> seed_schema;
};

class SessionServer;

/// One client's connection. Owned by the server; use from one thread.
class Session {
 public:
  /// Runs a published snapshot by name. Bit-identical to a standalone
  /// serial ScriptRunner::Run of the snapshot's text under config()'s
  /// seed (plus the snapshot's frozen basis store, when one was warmed).
  Result<sql::ScriptOutcome> Run(
      const std::string& script_name,
      const std::vector<std::pair<std::string, double>>& overrides = {});

  /// Ad-hoc path: parse+bind per call, still session-seeded and fanned
  /// out on the shared pool. No snapshot sharing.
  Result<sql::ScriptOutcome> RunText(
      const std::string& text,
      const std::vector<std::pair<std::string, double>>& overrides = {});

  /// Opens an interactive what-if session primed from `outcome` (a
  /// MONTECARLO run with keep_samples) via MakeSessionFromOutcome.
  /// `config.run` is overwritten with this session's config — the
  /// namespace gate (sweep world ids == session sample ids) then holds
  /// by construction for outcomes this session produced.
  Result<std::unique_ptr<InteractiveSession>> PrimeInteractive(
      const sql::ScriptOutcome& outcome, const std::string& column,
      InteractiveConfig config = {});

  std::uint64_t id() const { return id_; }
  /// This session's full run configuration: the server's base config
  /// with master_seed swapped to the session namespace and shared_pool
  /// pointing at the server pool. A standalone twin is this config with
  /// num_threads=1 and shared_pool=nullptr (see StandaloneTwinConfig).
  const RunConfig& config() const { return config_; }

 private:
  friend class SessionServer;
  Session(SessionServer* server, std::uint64_t id, RunConfig config)
      : server_(server), id_(id), config_(std::move(config)) {}

  SessionServer* server_;
  std::uint64_t id_;
  RunConfig config_;
};

/// The serial single-tenant config whose standalone run a session's
/// concurrent runs must match bit-for-bit.
RunConfig StandaloneTwinConfig(const Session& session);

class SessionServer {
 public:
  /// `base` seeds every derived session config: num_threads sizes the
  /// one shared pool (1 = everything serial, no pool), master_seed roots
  /// the per-session namespaces. `registry` must outlive the server.
  SessionServer(const ModelRegistry* registry, const RunConfig& base);

  /// Parses, binds, and publishes `text` under `name`, replacing any
  /// previous snapshot of that name for *future* runs (in-flight runs
  /// hold the catalog they started with). Thread-safe. Fails on parse or
  /// bind errors — nothing is published on failure.
  Result<std::shared_ptr<const ScriptSnapshot>> Publish(
      const std::string& name, const std::string& text,
      const PublishOptions& options = {}) JIGSAW_EXCLUDES(mu_);

  /// Admits a new client session. Thread-safe; the returned session is
  /// valid for the server's lifetime. Fails (binding error) when the
  /// options request a seed schema other than the server's — every
  /// published snapshot is pinned to the base schema, so a mixed-schema
  /// session could never run one.
  Result<Session*> TryConnect(const SessionOptions& options = {})
      JIGSAW_EXCLUDES(mu_);

  /// Convenience wrapper for the common can't-fail case; CHECK-fails on
  /// a schema mismatch (use TryConnect to handle it as a Status).
  Session& Connect(const SessionOptions& options = {});

  /// Current catalog handle (copy-on-write: never mutated in place).
  std::shared_ptr<const Catalog> catalog() const JIGSAW_EXCLUDES(mu_);

  const ModelRegistry* registry() const { return registry_; }
  const RunConfig& base_config() const { return base_; }
  ThreadPool* pool() { return pool_.get(); }
  std::size_t session_count() const JIGSAW_EXCLUDES(mu_);

 private:
  /// registry_, base_ and pool_ are set in the constructor and immutable
  /// afterwards: every thread may read them without mu_.
  const ModelRegistry* registry_;
  RunConfig base_;
  std::unique_ptr<ThreadPool> pool_;  ///< the ONE shared worker pool

  mutable Mutex mu_;  ///< guards catalog_ swaps and sessions_
  /// COW handle: replaced (never mutated in place) under mu_; readers
  /// copy the shared_ptr under mu_ and then use the immutable Catalog
  /// lock-free. The pointee is const, so only the handle needs the guard.
  std::shared_ptr<const Catalog> catalog_ JIGSAW_GUARDED_BY(mu_);
  /// Sessions are deque-of-unique_ptr-stable: the pointers handed to
  /// clients outlive the vector's growth; only the vector itself is
  /// guarded.
  std::vector<std::unique_ptr<Session>> sessions_ JIGSAW_GUARDED_BY(mu_);
  std::uint64_t next_session_id_ JIGSAW_GUARDED_BY(mu_) = 0;
};

}  // namespace jigsaw::serve
