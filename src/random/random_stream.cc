#include "random/random_stream.h"

#include <cmath>

#include "util/logging.h"

namespace jigsaw {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

std::int64_t RandomStream::UniformInt(std::int64_t lo, std::int64_t hi) {
  JIGSAW_DCHECK(hi >= lo);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextUint64() % span);
}

double RandomStream::Gaussian() {
  // Guard against log(0).
  double u1 = NextDouble();
  const double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(kTwoPi * u2);
}

double RandomStream::Exponential(double lambda) {
  JIGSAW_DCHECK(lambda > 0.0);
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

std::int64_t RandomStream::Poisson(double mean) {
  JIGSAW_DCHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double prod = NextDouble();
    while (prod > limit) {
      ++k;
      prod *= NextDouble();
    }
    return k;
  }
  const double v = mean + std::sqrt(mean) * Gaussian() + 0.5;
  return v < 0.0 ? 0 : static_cast<std::int64_t>(v);
}

std::int64_t RandomStream::Geometric(double p) {
  JIGSAW_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::size_t RandomStream::Discrete(const std::vector<double>& weights) {
  JIGSAW_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  JIGSAW_CHECK_MSG(total > 0.0, "discrete distribution with zero mass");
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

double RandomStream::Gamma(double shape, double scale) {
  JIGSAW_DCHECK(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
    const double u = NextDouble();
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

}  // namespace jigsaw
