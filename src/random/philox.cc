#include "random/philox.h"

namespace jigsaw {

namespace {
inline std::uint32_t MulHi(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(a) * b) >> 32);
}
inline std::uint32_t MulLo(std::uint32_t a, std::uint32_t b) {
  return a * b;
}
}  // namespace

Philox4x32::Counter Philox4x32::Block(Counter ctr, Key key) {
  for (int round = 0; round < 10; ++round) {
    const std::uint32_t hi0 = MulHi(kMult0, ctr[0]);
    const std::uint32_t lo0 = MulLo(kMult0, ctr[0]);
    const std::uint32_t hi1 = MulHi(kMult1, ctr[2]);
    const std::uint32_t lo1 = MulLo(kMult1, ctr[2]);
    Counter next;
    next[0] = hi1 ^ ctr[1] ^ key[0];
    next[1] = lo1;
    next[2] = hi0 ^ ctr[3] ^ key[1];
    next[3] = lo0;
    ctr = next;
    key[0] += kWeyl0;
    key[1] += kWeyl1;
  }
  return ctr;
}

void Philox4x32::Block64(std::uint64_t counter_lo, std::uint64_t counter_hi,
                         std::uint64_t key, std::uint64_t* out0,
                         std::uint64_t* out1) {
  Counter ctr = {static_cast<std::uint32_t>(counter_lo),
                 static_cast<std::uint32_t>(counter_lo >> 32),
                 static_cast<std::uint32_t>(counter_hi),
                 static_cast<std::uint32_t>(counter_hi >> 32)};
  Key k = {static_cast<std::uint32_t>(key),
           static_cast<std::uint32_t>(key >> 32)};
  const Counter out = Block(ctr, k);
  *out0 = (static_cast<std::uint64_t>(out[1]) << 32) | out[0];
  *out1 = (static_cast<std::uint64_t>(out[3]) << 32) | out[2];
}

std::uint64_t DeriveStreamSeed(std::uint64_t sigma, std::uint64_t call_site) {
  std::uint64_t a = 0, b = 0;
  Philox4x32::Block64(sigma, call_site, /*key=*/0x6a09e667f3bcc908ULL, &a,
                      &b);
  return a ^ (b * 0x9e3779b97f4a7c15ULL);
}

}  // namespace jigsaw
