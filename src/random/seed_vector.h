#pragma once

/// \file seed_vector.h
/// The global seed vector {sigma_k} of Section 3.1. Jigsaw fixes one
/// sequence of seeds at initialization and uses seed sigma_k for the k'th
/// Monte Carlo sample of *every* parameter point. The fingerprint of a
/// point is its first m outputs; because the same seeds are used
/// everywhere, correlated points produce deterministically mappable
/// fingerprints.
///
/// SeedVector is a schema-dispatching facade (see draw_plane.h):
///
///   v1 — materializes the SplitMix64-expanded seed table and derives one
///        Xoshiro256 stream per (sample, call site) cell. Byte-exact with
///        every pre-v2 run.
///   v2 — no table at all: the vector is just (master seed, logical
///        size), streams are counter-based, and batch kernels pull whole
///        draw planes with one Philox block per four samples.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "random/draw_plane.h"
#include "random/philox.h"
#include "random/random_stream.h"
#include "random/splitmix64.h"
#include "util/logging.h"

namespace jigsaw {

/// A schema-tagged view of samples [k_begin, k_begin + size) — the batch
/// kernels' seed input. Under v1 it wraps the contiguous sigma span;
/// under v2 it carries (master seed, k_begin) so kernels can derive draw
/// planes directly. Implicitly constructible from a raw sigma span so
/// v1-only call sites keep their existing shape.
class SeedSpan {
 public:
  /// v1 view over explicit sigmas (implicit on purpose).
  SeedSpan(std::span<const std::uint64_t> sigmas)  // NOLINT
      : schema_(SeedSchema::kV1), sigmas_(sigmas) {}

  /// v2 view: samples [k_begin, k_begin + count) under `master_seed`.
  SeedSpan(std::uint64_t master_seed, std::size_t k_begin, std::size_t count)
      : schema_(SeedSchema::kV2),
        master_(master_seed),
        k_begin_(k_begin),
        count_(count) {}

  SeedSchema schema() const { return schema_; }

  std::size_t size() const {
    return schema_ == SeedSchema::kV1 ? sigmas_.size() : count_;
  }

  /// v1 only: the sample seed behind entry i.
  std::uint64_t sigma(std::size_t i) const {
    JIGSAW_DCHECK(schema_ == SeedSchema::kV1);
    return sigmas_[i];
  }

  /// v2 only: the absolute sample index of entry 0, and the Philox key
  /// for a call site (hoist out of per-sample loops).
  std::size_t k_begin() const { return k_begin_; }
  std::uint64_t draw_key(std::uint64_t call_site) const {
    JIGSAW_DCHECK(schema_ == SeedSchema::kV2);
    return DrawKey(master_, call_site);
  }

  /// The deterministic stream for entry i at `call_site` — the scalar
  /// twin every batch kernel must reproduce bit-for-bit.
  RandomStream StreamAt(std::size_t i, std::uint64_t call_site) const {
    if (schema_ == SeedSchema::kV1) {
      return RandomStream(DeriveStreamSeed(sigmas_[i], call_site));
    }
    return RandomStream(
        CounterStream(DrawKey(master_, call_site), k_begin_ + i));
  }

 private:
  SeedSchema schema_;
  std::span<const std::uint64_t> sigmas_;
  std::uint64_t master_ = 0;
  std::size_t k_begin_ = 0;
  std::size_t count_ = 0;
};

class SeedVector {
 public:
  /// v1: expands `master_seed` into `count` sample seeds. v2: records the
  /// logical size only — there is no table to expand.
  SeedVector(std::uint64_t master_seed, std::size_t count,
             SeedSchema schema = SeedSchema::kV1)
      : master_seed_(master_seed), schema_(schema), cont_(master_seed) {
    if (schema_ == SeedSchema::kV1) {
      seeds_.reserve(count);
      for (std::size_t i = 0; i < count; ++i) seeds_.push_back(cont_.Next());
    } else {
      virtual_size_ = count;
    }
  }

  std::uint64_t master_seed() const { return master_seed_; }
  SeedSchema schema() const { return schema_; }
  std::size_t size() const {
    return schema_ == SeedSchema::kV1 ? seeds_.size() : virtual_size_;
  }

  /// v1 only: the k'th sample seed.
  std::uint64_t seed(std::size_t k) const {
    JIGSAW_DCHECK(schema_ == SeedSchema::kV1);
    return seeds_[k];
  }

  /// v1 only: contiguous view of seeds [begin, begin + count).
  /// Invalidated by EnsureSize (which may reallocate). The bounds check
  /// is overflow-safe: `begin + count` could wrap for adversarial counts.
  std::span<const std::uint64_t> seed_span(std::size_t begin,
                                           std::size_t count) const {
    JIGSAW_DCHECK(schema_ == SeedSchema::kV1);
    JIGSAW_DCHECK(begin <= seeds_.size() &&
                  count <= seeds_.size() - begin);
    return std::span<const std::uint64_t>(seeds_).subspan(begin, count);
  }

  /// Schema-dispatching view of samples [begin, begin + count) — what
  /// batch kernels receive through BlackBox::EvalBatch.
  SeedSpan span(std::size_t begin, std::size_t count) const {
    JIGSAW_DCHECK(begin <= size() && count <= size() - begin);
    if (schema_ == SeedSchema::kV1) {
      return SeedSpan(
          std::span<const std::uint64_t>(seeds_).subspan(begin, count));
    }
    return SeedSpan(master_seed_, begin, count);
  }

  /// Extends the vector (interactive mode grows fingerprints lazily).
  /// Append-stable by contract: entry k is always the k'th output of
  /// SplitMix64(master) no matter how growth was chunked, so a vector
  /// grown to n is element-identical to one constructed at n. (The
  /// pre-v2 continuation reseeded from the current size, making grown
  /// entries depend on the growth path.) Under v2 growth is free.
  void EnsureSize(std::size_t count) {
    if (schema_ != SeedSchema::kV1) {
      if (count > virtual_size_) virtual_size_ = count;
      return;
    }
    while (seeds_.size() < count) seeds_.push_back(cont_.Next());
  }

  /// Builds the deterministic stream for sample k at black-box call site
  /// `call_site`. The same (k, call_site) pair always yields the same
  /// stream regardless of evaluation order or thread scheduling.
  RandomStream StreamFor(std::size_t k, std::uint64_t call_site) const {
    if (schema_ == SeedSchema::kV1) {
      return RandomStream(DeriveStreamSeed(seeds_[k], call_site));
    }
    return RandomStream(
        CounterStream(DrawKey(master_seed_, call_site), k));
  }

  /// v2 only: the Philox key shared by every sample at `call_site` —
  /// batch kernels hoist this and pull draw planes against it.
  std::uint64_t draw_key(std::uint64_t call_site) const {
    JIGSAW_DCHECK(schema_ == SeedSchema::kV2);
    return DrawKey(master_seed_, call_site);
  }

 private:
  std::uint64_t master_seed_;
  SeedSchema schema_;
  std::vector<std::uint64_t> seeds_;     ///< v1 seed table
  std::size_t virtual_size_ = 0;         ///< v2 logical size
  SplitMix64 cont_;  ///< v1 continuation state (EnsureSize appends)
};

}  // namespace jigsaw
