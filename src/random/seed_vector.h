#pragma once

/// \file seed_vector.h
/// The global seed vector {sigma_k} of Section 3.1. Jigsaw fixes one
/// sequence of seeds at initialization and uses seed sigma_k for the k'th
/// Monte Carlo sample of *every* parameter point. The fingerprint of a
/// point is its first m outputs; because the same seeds are used
/// everywhere, correlated points produce deterministically mappable
/// fingerprints.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "random/philox.h"
#include "random/random_stream.h"
#include "random/splitmix64.h"
#include "util/logging.h"

namespace jigsaw {

class SeedVector {
 public:
  /// Expands `master_seed` into `count` sample seeds.
  SeedVector(std::uint64_t master_seed, std::size_t count)
      : master_seed_(master_seed) {
    seeds_.reserve(count);
    SplitMix64 sm(master_seed);
    for (std::size_t i = 0; i < count; ++i) seeds_.push_back(sm.Next());
  }

  std::uint64_t master_seed() const { return master_seed_; }
  std::size_t size() const { return seeds_.size(); }
  std::uint64_t seed(std::size_t k) const { return seeds_[k]; }

  /// Contiguous view of seeds [begin, begin + count) — the batch kernels'
  /// input. Invalidated by EnsureSize (which may reallocate).
  std::span<const std::uint64_t> seed_span(std::size_t begin,
                                           std::size_t count) const {
    JIGSAW_DCHECK(begin + count <= seeds_.size());
    return std::span<const std::uint64_t>(seeds_).subspan(begin, count);
  }

  /// Extends the vector (interactive mode grows fingerprints lazily).
  void EnsureSize(std::size_t count) {
    if (count <= seeds_.size()) return;
    SplitMix64 sm(master_seed_ ^ 0xabcdef1234567890ULL ^ seeds_.size());
    while (seeds_.size() < count) seeds_.push_back(sm.Next());
  }

  /// Builds the deterministic stream for sample k at black-box call site
  /// `call_site`. The same (k, call_site) pair always yields the same
  /// stream regardless of evaluation order or thread scheduling.
  RandomStream StreamFor(std::size_t k, std::uint64_t call_site) const {
    return RandomStream(DeriveStreamSeed(seeds_[k], call_site));
  }

 private:
  std::uint64_t master_seed_;
  std::vector<std::uint64_t> seeds_;
};

}  // namespace jigsaw
