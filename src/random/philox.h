#pragma once

/// \file philox.h
/// Philox-4x32-10 counter-based PRNG (Salmon et al., SC'11). Counter-based
/// generation is ideal for Jigsaw's seed-derivation problem: the k'th
/// sample of call-site c under seed sigma is a pure function
/// philox(key=(sigma, c), counter=k) with no sequential state, so any
/// (sample, call-site) cell can be generated independently and in parallel.

#include <array>
#include <cstdint>

namespace jigsaw {

class Philox4x32 {
 public:
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  /// One 10-round Philox block: 128 bits of output per call.
  static Counter Block(Counter ctr, Key key);

  /// Convenience: collapses a block into two 64-bit words.
  static void Block64(std::uint64_t counter_lo, std::uint64_t counter_hi,
                      std::uint64_t key, std::uint64_t* out0,
                      std::uint64_t* out1);

 private:
  static constexpr std::uint32_t kMult0 = 0xD2511F53;
  static constexpr std::uint32_t kMult1 = 0xCD9E8D57;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9;
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85;
};

/// Derives a stream seed for (sigma, call_site). Different call sites in
/// the same sampled world get independent deterministic streams; the same
/// (sigma, call_site) always yields the same seed. This is the mechanism
/// Section 3.1 requires: "all sources of randomness within F(P, sigma) are
/// replaced by invocations of a pseudorandom generator seeded by sigma".
std::uint64_t DeriveStreamSeed(std::uint64_t sigma, std::uint64_t call_site);

}  // namespace jigsaw
