#pragma once

/// \file draw_plane.h
/// Seed-schema v2: counter-based draw planes. Schema v1 (the original
/// derivation) expands the master seed into a per-sample seed table and
/// seeds one sequential Xoshiro256 stream per (sample, call site) cell;
/// every batched kernel therefore pays per-sample generator setup before
/// its first draw. Philox-4x32 is counter-based — a draw is a pure
/// function of (key, counter) with no state to set up — so schema v2
/// derives the d'th draw of sample k at a call site directly:
///
///   word(k, d) = Philox4x32::Block(counter = (k / 4, d),
///                                  key     = DrawKey(master, site))[k % 4]
///
/// One 4-wide Philox block yields the same draw index for four adjacent
/// samples, so a *draw plane* — the vector of draw d across a contiguous
/// sample range — fills with one block per four lanes and no per-sample
/// work at all. CounterStream is the scalar view of the same mapping
/// (sample k's words in draw-index order), which is what makes the plane
/// kernels bit-identical to their serial twins by construction.
///
/// Schema choice is part of the determinism contract (ROADMAP): v2
/// changes the draw sequence, so it lives behind the explicit SeedSchema
/// gate and is never on by default.

#include <cstddef>
#include <cstdint>
#include <span>

#include "random/philox.h"

namespace jigsaw {

/// Versioned derivation of the per-(sample, call site) draw sequence.
/// Everything downstream of a RunConfig — runners, kernels, caches,
/// serve snapshots — keys its randomness on one of these.
enum class SeedSchema : std::uint8_t {
  /// Seed-table schema: sigma_k from SplitMix64(master), one Xoshiro256
  /// stream per cell via DeriveStreamSeed(sigma_k, site). The original
  /// (and default) derivation; byte-exact with all pre-v2 history.
  kV1 = 1,
  /// Counter-based schema: draws come straight out of Philox blocks
  /// keyed on DrawKey(master, site) and countered on (sample, draw).
  kV2 = 2,
};

/// Combines a stream salt with a call site the way the batch program
/// runtime does: salt 0 means "no extra namespace".
std::uint64_t CombineSite(std::uint64_t call_site, std::uint64_t stream_salt);

/// Schema-v2 Philox key for a (master seed, combined call site) pair.
/// One SplitMix64-style finalizer — per-call-site setup is one mix, and
/// there is no per-sample setup at all.
inline std::uint64_t DrawKey(std::uint64_t master_seed, std::uint64_t site) {
  std::uint64_t z = master_seed + 0x9e3779b97f4a7c15ULL * (site + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Scalar schema-v2 uniform source for one sample: the words of sample
/// `k` under `key`, in draw-index order. Pure function of (key, k, draw
/// index) — construction costs two shifts, so building one per sample in
/// a fallback loop is still cheap; the plane helpers below amortize the
/// Philox block across four samples and are the hot path.
class CounterStream {
 public:
  CounterStream(std::uint64_t key, std::uint64_t k)
      : key_{static_cast<std::uint32_t>(key),
             static_cast<std::uint32_t>(key >> 32)},
        block_(k >> 2),
        lane_(static_cast<std::uint32_t>(k & 3)) {}

  /// The next 32-bit draw word (draw indices advance by one per call).
  std::uint32_t NextWord() {
    const Philox4x32::Counter out = Philox4x32::Block(
        {static_cast<std::uint32_t>(block_),
         static_cast<std::uint32_t>(block_ >> 32),
         static_cast<std::uint32_t>(draw_),
         static_cast<std::uint32_t>(draw_ >> 32)},
        key_);
    ++draw_;
    return out[lane_];
  }

  /// Uniform double in [0, 1) at 2^-32 resolution (one word per call;
  /// v2 trades v1's 53-bit uniforms for half the Philox work — the
  /// models' distributions are far coarser than either).
  double NextDouble() {
    return static_cast<double>(NextWord()) * 0x1.0p-32;
  }

  /// Uniform 64-bit word from two draw words (hi then lo).
  std::uint64_t NextUint64() {
    const std::uint64_t hi = NextWord();
    const std::uint64_t lo = NextWord();
    return (hi << 32) | lo;
  }

  std::uint64_t draw_index() const { return draw_; }

 private:
  Philox4x32::Key key_;
  std::uint64_t block_;
  std::uint32_t lane_;
  std::uint64_t draw_ = 0;
};

// ---------------------------------------------------------------------------
// Draw planes: dst[i] is the draw of sample (k_begin + i) — one Philox
// block per four lanes, bit-identical to CounterStream(key, k_begin + i)
// consuming the same draw indices.
// ---------------------------------------------------------------------------

/// Uniform plane: dst[i] = uniform [0,1) word of sample k_begin+i at
/// `draw_idx` (consumes one draw index).
void DrawSpan(std::span<double> dst, std::size_t k_begin, std::uint64_t key,
              std::uint64_t draw_idx);

/// Convenience overload matching the (call_site, salt) naming the rest of
/// the stack uses; derives the key internally.
void DrawSpan(std::span<double> dst, std::size_t k_begin,
              std::uint64_t master_seed, std::uint64_t call_site,
              std::uint64_t stream_salt, std::uint64_t draw_idx);

/// Standard-normal plane via the trigonometric Box-Muller transform,
/// exactly as RandomStream::Gaussian computes it (consumes draw indices
/// draw_idx and draw_idx + 1).
void GaussianPlane(std::span<double> dst, std::size_t k_begin,
                   std::uint64_t key, std::uint64_t draw_idx);

/// Exponential(lambda) plane by inversion, exactly as
/// RandomStream::Exponential (consumes one draw index).
void ExponentialPlane(std::span<double> dst, std::size_t k_begin,
                      std::uint64_t key, std::uint64_t draw_idx,
                      double lambda);

}  // namespace jigsaw
