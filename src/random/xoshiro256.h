#pragma once

/// \file xoshiro256.h
/// xoshiro256** 1.0 (Blackman & Vigna). The main uniform engine behind
/// RandomStream. Chosen over std engines so output is identical across
/// platforms/standard libraries — a hard requirement for fingerprint
/// reproducibility.

#include <cstdint>

#include "random/splitmix64.h"

namespace jigsaw {

class Xoshiro256 {
 public:
  /// Seeds the 256-bit state by SplitMix64 expansion (the authors'
  /// recommended procedure; avoids the all-zero state).
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.Next();
  }

  /// Zero state, never to be stepped: RandomStream's counter-based mode
  /// carries an engine member it doesn't use, and paying the four-word
  /// SplitMix64 expansion there would defeat the point of schema v2.
  Xoshiro256() : s_{} {}

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls of Next(); used to split non-overlapping
  /// streams when a caller wants many independent engines from one seed.
  void Jump();

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace jigsaw
