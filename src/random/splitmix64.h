#pragma once

/// \file splitmix64.h
/// SplitMix64 (Steele, Lea, Flood 2014): a tiny, fast, well-distributed
/// 64-bit generator. Used to expand a single master seed into the global
/// seed vector {sigma_k} and to seed larger-state engines.

#include <cstdint>

namespace jigsaw {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace jigsaw
