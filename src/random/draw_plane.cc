#include "random/draw_plane.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace jigsaw {

namespace {

// Same literal as random_stream.cc — the plane transforms must be
// expression-identical to the scalar distributions for bit-identity.
constexpr double kTwoPi = 6.283185307179586476925286766559;

inline Philox4x32::Counter MakeCounter(std::uint64_t block,
                                       std::uint64_t draw) {
  return {static_cast<std::uint32_t>(block),
          static_cast<std::uint32_t>(block >> 32),
          static_cast<std::uint32_t>(draw),
          static_cast<std::uint32_t>(draw >> 32)};
}

inline Philox4x32::Key MakeKey(std::uint64_t key) {
  return {static_cast<std::uint32_t>(key),
          static_cast<std::uint32_t>(key >> 32)};
}

/// Walks dst in 4-lane Philox-block groups (partial head/tail groups for
/// unaligned k_begin or size). fn(i, sub, take, block) must fill
/// dst[i .. i+take) from lanes [sub, sub+take) of `block`.
template <typename Fn>
inline void ForEachBlockGroup(std::size_t dst_size, std::size_t k_begin,
                              Fn&& fn) {
  std::size_t i = 0;
  while (i < dst_size) {
    const std::size_t k = k_begin + i;
    const std::uint64_t block = static_cast<std::uint64_t>(k) >> 2;
    const std::size_t sub = k & 3;
    const std::size_t take = std::min(dst_size - i, std::size_t{4} - sub);
    fn(i, sub, take, block);
    i += take;
  }
}

}  // namespace

std::uint64_t CombineSite(std::uint64_t call_site,
                          std::uint64_t stream_salt) {
  return stream_salt == 0 ? call_site : HashCombine(stream_salt, call_site);
}

void DrawSpan(std::span<double> dst, std::size_t k_begin, std::uint64_t key,
              std::uint64_t draw_idx) {
  const Philox4x32::Key k = MakeKey(key);
  ForEachBlockGroup(
      dst.size(), k_begin,
      [&](std::size_t i, std::size_t sub, std::size_t take,
          std::uint64_t block) {
        const Philox4x32::Counter w =
            Philox4x32::Block(MakeCounter(block, draw_idx), k);
        for (std::size_t j = 0; j < take; ++j) {
          dst[i + j] = static_cast<double>(w[sub + j]) * 0x1.0p-32;
        }
      });
}

void DrawSpan(std::span<double> dst, std::size_t k_begin,
              std::uint64_t master_seed, std::uint64_t call_site,
              std::uint64_t stream_salt, std::uint64_t draw_idx) {
  DrawSpan(dst, k_begin,
           DrawKey(master_seed, CombineSite(call_site, stream_salt)),
           draw_idx);
}

void GaussianPlane(std::span<double> dst, std::size_t k_begin,
                   std::uint64_t key, std::uint64_t draw_idx) {
  const Philox4x32::Key k = MakeKey(key);
  ForEachBlockGroup(
      dst.size(), k_begin,
      [&](std::size_t i, std::size_t sub, std::size_t take,
          std::uint64_t block) {
        const Philox4x32::Counter w1 =
            Philox4x32::Block(MakeCounter(block, draw_idx), k);
        const Philox4x32::Counter w2 =
            Philox4x32::Block(MakeCounter(block, draw_idx + 1), k);
        for (std::size_t j = 0; j < take; ++j) {
          double u1 = static_cast<double>(w1[sub + j]) * 0x1.0p-32;
          const double u2 = static_cast<double>(w2[sub + j]) * 0x1.0p-32;
          if (u1 <= 0.0) u1 = 0x1.0p-53;
          const double r = std::sqrt(-2.0 * std::log(u1));
          dst[i + j] = r * std::cos(kTwoPi * u2);
        }
      });
}

void ExponentialPlane(std::span<double> dst, std::size_t k_begin,
                      std::uint64_t key, std::uint64_t draw_idx,
                      double lambda) {
  const Philox4x32::Key k = MakeKey(key);
  ForEachBlockGroup(
      dst.size(), k_begin,
      [&](std::size_t i, std::size_t sub, std::size_t take,
          std::uint64_t block) {
        const Philox4x32::Counter w =
            Philox4x32::Block(MakeCounter(block, draw_idx), k);
        for (std::size_t j = 0; j < take; ++j) {
          double u = static_cast<double>(w[sub + j]) * 0x1.0p-32;
          if (u <= 0.0) u = 0x1.0p-53;
          dst[i + j] = -std::log(u) / lambda;
        }
      });
}

}  // namespace jigsaw
