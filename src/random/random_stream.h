#pragma once

/// \file random_stream.h
/// RandomStream is the single source of randomness handed to black-box
/// functions. All distribution algorithms are implemented explicitly (no
/// std::*_distribution) so that a given seed produces bit-identical sample
/// sequences on every platform — the property fingerprints depend on.
///
/// A stream draws its uniforms from one of two sources, fixed at
/// construction: a seeded Xoshiro256 engine (seed-schema v1) or a
/// counter-based CounterStream (schema v2, see draw_plane.h). The
/// distribution algorithms above the uniform layer are shared, so a v2
/// plane kernel that replicates the uniform mapping reproduces the full
/// distribution draw bit-for-bit.

#include <cmath>
#include <cstdint>
#include <vector>

#include "random/draw_plane.h"
#include "random/xoshiro256.h"

namespace jigsaw {

class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) : engine_(seed) {}

  /// Schema-v2 stream: all uniforms come from `counter`; the engine
  /// member stays zero-state and untouched.
  explicit RandomStream(const CounterStream& counter)
      : counter_(counter), counter_based_(true) {}

  /// Uniform 64-bit word.
  std::uint64_t NextUint64() {
    return counter_based_ ? counter_.NextUint64() : engine_.Next();
  }

  /// Uniform double in [0, 1): 53 bits of precision under schema v1,
  /// 32 bits (one Philox word) under schema v2.
  double NextDouble() {
    if (counter_based_) return counter_.NextDouble();
    return static_cast<double>(engine_.Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [lo, hi] (inclusive); rejection-free Lemire-style
  /// reduction is avoided in favor of a simple modulo — bias is negligible
  /// for the small ranges used here and determinism is simpler to audit.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via the trigonometric Box-Muller transform. Both
  /// variates are computed and one is discarded: the stream then advances
  /// by a fixed amount per call, which keeps call sites independent of
  /// previous Gaussian parity (no cached spare).
  double Gaussian();

  /// Normal with the given mean/stddev.
  double Normal(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Exponential with rate lambda (mean 1/lambda) by inversion.
  double Exponential(double lambda);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Poisson. Knuth's product method for small means; for mean >= 30 a
  /// normal approximation with continuity correction (adequate for the
  /// workload models and fully deterministic).
  std::int64_t Poisson(double mean);

  /// Geometric: number of failures before first success, p in (0,1].
  std::int64_t Geometric(double p);

  /// Samples an index proportionally to non-negative `weights`.
  std::size_t Discrete(const std::vector<double>& weights);

  /// Gamma(shape k, scale theta) via Marsaglia-Tsang squeeze (k >= 1) and
  /// the boost trick for k < 1. Deterministic given the stream.
  double Gamma(double shape, double scale);

  /// LogNormal with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

 private:
  Xoshiro256 engine_;
  CounterStream counter_{0, 0};
  bool counter_based_ = false;
};

}  // namespace jigsaw
