#pragma once

/// \file interactive_session.h
/// Online what-if exploration (Section 5, Algorithm 5). The session keeps
/// per-point state — a progressively grown fingerprint, a basis
/// distribution and a mapping — and advances in small pick-evaluate-update
/// ticks so a GUI can repaint between them:
///
///  - Refinement: new sample ids for the focused point; results are
///    mapped *back* into the basis through M^{-1}, so accuracy improves
///    for every point sharing the basis.
///  - Validation: re-evaluates sample ids already present in the basis;
///    the duplicates effectively extend the point's fingerprint. A
///    mismatch rebinds the point to a new basis.
///  - Exploration: heuristically picks a neighboring point the user is
///    likely to visit next and warms its fingerprint/basis.
///
/// The display estimate for a point is its mapped basis metric, available
/// after only a fingerprint-sized number of evaluations — that is the
/// "initial guess" the paper refines progressively.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/mapping.h"
#include "core/metrics.h"
#include "core/parameter_space.h"
#include "core/run_config.h"
#include "core/sim_function.h"
#include "random/random_stream.h"
#include "util/math_util.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace jigsaw {

struct InteractiveConfig {
  /// run.num_threads > 1 evaluates each tick's sample batch on a worker
  /// pool. Samples are pure functions of their ids and the fold back into
  /// basis/point state stays serial in id order, so every estimate and
  /// statistic is bit-identical to the single-threaded session.
  RunConfig run;
  /// Samples generated per tick (Algorithm 5 uses PickAtRandom(10, ...)).
  std::size_t batch_size = 10;
  /// Task mix. Remaining probability mass goes to refinement.
  double validation_weight = 0.2;
  double exploration_weight = 0.2;
  /// Maximum sample ids a basis may accumulate (bounds memory and puts a
  /// ceiling on refinement work per point).
  std::size_t max_samples = 1000;
};

enum class InteractiveTask { kRefinement, kValidation, kExploration };

const char* InteractiveTaskName(InteractiveTask task);

struct DisplayEstimate {
  double mean = 0.0;
  double std_error = 0.0;
  std::int64_t support = 0;  ///< samples behind the estimate
  bool borrowed = false;     ///< true if served through a mapped basis
  bool available = false;    ///< false before any evaluation
};

struct InteractiveStats {
  std::uint64_t ticks = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t rebinds = 0;       ///< validation failures
  std::uint64_t basis_created = 0;
  std::uint64_t borrow_hits = 0;   ///< points served from a shared basis
};

class InteractiveSession {
 public:
  /// Explores `fn` over `space` (one scenario column; run several
  /// sessions for several columns).
  InteractiveSession(SimFunctionPtr fn, ParameterSpace space,
                     const InteractiveConfig& config);
  ~InteractiveSession();

  InteractiveSession(const InteractiveSession&) = delete;
  InteractiveSession& operator=(const InteractiveSession&) = delete;

  /// Focuses the user's point of interest (enumeration index within the
  /// space); subsequent ticks refine it and explore around it.
  Status SetFocus(std::size_t point_index);

  /// Seeds a point's state from an externally computed possible-worlds
  /// summary — one point of a `MONTECARLO OVER` sweep run with
  /// keep_samples=true and the same master seed, whose world ids are this
  /// session's sample ids. Retained sample i folds in as the evaluation
  /// of sample id i, exactly as if a tick had produced it: an unbound
  /// point binds and its estimate becomes addressable immediately
  /// (EstimateFor); an already-bound point refines its basis with the
  /// imported ids, rebinding if one contradicts the mapping. Later ticks
  /// validate/refine on top of the primed state. Fails if `metrics`
  /// retained no samples, or more than max_samples of them (nothing is
  /// silently truncated — trim or raise the cap instead).
  Status PrimeFromSweep(std::size_t point_index,
                        const OutputMetrics& metrics);

  /// One pick-evaluate-update iteration (Algorithm 5 loop body). Returns
  /// the task performed.
  InteractiveTask Tick();

  /// Convenience: run `n` ticks.
  void Run(std::size_t n);

  /// Current estimate for a point (cheap; no evaluation).
  DisplayEstimate EstimateFor(std::size_t point_index) const;

  std::size_t focus() const { return focus_; }
  std::size_t num_points() const;
  std::size_t basis_count() const;
  const InteractiveStats& stats() const { return stats_; }

 private:
  struct BasisRecord;
  struct PointState;

  PointState& StateFor(std::size_t point_index);
  /// Records one (sample id, value) evaluation in the point's state and
  /// folds it into the bound basis — validation with rebind-on-mismatch
  /// for ids the basis already holds, refinement through M^{-1} for new
  /// ids. Shared by ticks and PrimeFromSweep.
  void FoldSample(PointState& state, std::size_t id, double value);
  InteractiveTask PickTask(const PointState& state);
  std::size_t ExploreHeuristic(std::size_t point_index);
  void EvaluateBatch(std::size_t point_index,
                     const std::vector<std::size_t>& ids);
  void BindPoint(std::size_t point_index);

  SimFunctionPtr fn_;
  ParameterSpace space_;
  InteractiveConfig config_;
  SeedVector seeds_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  ///< owned_pool_ or run.shared_pool
  RandomStream heuristic_rng_;
  std::size_t focus_ = 0;
  std::map<std::size_t, std::unique_ptr<PointState>> points_;
  std::vector<std::shared_ptr<BasisRecord>> bases_;
  MappingFinderPtr finder_;
  InteractiveStats stats_;
};

}  // namespace jigsaw
