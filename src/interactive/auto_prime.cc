#include "interactive/auto_prime.h"

#include <utility>
#include <vector>

#include "util/string_util.h"

namespace jigsaw {

namespace {

/// Maps a full valuation back to its row-major enumeration index (last
/// parameter varies fastest, matching ParameterSpace::ValuationAt).
/// Values are compared exactly: on-grid sweep points are the domain's own
/// doubles (the binder materializes OVER-less sweeps from Values()), so
/// equality is the right test and anything off-grid is a caller error.
/// Chain parameters contribute a factor of 1 and their value is not
/// checked (they are not enumerated; ValuationAt pins them to INITIAL).
Result<std::size_t> EnumIndexOf(const ParameterSpace& space,
                                const std::vector<double>& valuation) {
  std::size_t idx = 0;
  for (std::size_t i = 0; i < space.num_params(); ++i) {
    const ParameterDef& def = space.def(i);
    if (def.is_chain()) continue;
    const auto values = def.Values();
    std::size_t pos = values.size();
    for (std::size_t v = 0; v < values.size(); ++v) {
      if (values[v] == valuation[i]) {
        pos = v;
        break;
      }
    }
    if (pos == values.size()) {
      return Status::InvalidArgument(StrFormat(
          "sweep valuation pins @%s to %s, which is not in its declared "
          "domain; off-grid points have no session point to prime",
          def.name.c_str(), DoubleToString(valuation[i]).c_str()));
    }
    idx = idx * values.size() + pos;
  }
  return idx;
}

}  // namespace

Result<std::unique_ptr<InteractiveSession>> MakeSessionFromOutcome(
    const sql::ScriptOutcome& outcome, const std::string& column,
    const InteractiveConfig& config) {
  if (!outcome.montecarlo) {
    return Status::InvalidArgument(
        "script produced no MONTECARLO result to prime from");
  }
  const sql::MonteCarloOutcome& mc = *outcome.montecarlo;
  if (mc.master_seed != config.run.master_seed) {
    return Status::InvalidArgument(StrFormat(
        "seed namespace mismatch: the sweep drew its worlds under master "
        "seed %llu but the session would sample under %llu; world ids are "
        "only this session's sample ids when both match",
        static_cast<unsigned long long>(mc.master_seed),
        static_cast<unsigned long long>(config.run.master_seed)));
  }
  JIGSAW_ASSIGN_OR_RETURN(const ScenarioColumn* col,
                          outcome.bound.scenario.FindColumn(column));
  const ParameterSpace& space = outcome.bound.scenario.params;

  // Resolve every (enumeration index, metrics) pair before constructing
  // the session: a bad point must not leave a half-primed session behind.
  struct Prime {
    std::size_t point_index;
    const OutputMetrics* metrics;
  };
  std::vector<Prime> primes;
  if (mc.sweep_param_index) {
    std::vector<double> valuation = mc.base_valuation;
    primes.reserve(mc.points.size());
    for (const sql::MonteCarloPoint& point : mc.points) {
      valuation[*mc.sweep_param_index] = point.value;
      JIGSAW_ASSIGN_OR_RETURN(std::size_t idx,
                              EnumIndexOf(space, valuation));
      auto it = point.columns.find(column);
      if (it == point.columns.end()) {
        return Status::InvalidArgument(
            "column '" + column + "' is not in the MONTECARLO result");
      }
      primes.push_back(Prime{idx, &it->second});
    }
  } else {
    JIGSAW_ASSIGN_OR_RETURN(std::size_t idx,
                            EnumIndexOf(space, mc.base_valuation));
    auto it = mc.columns.find(column);
    if (it == mc.columns.end()) {
      return Status::InvalidArgument(
          "column '" + column + "' is not in the MONTECARLO result");
    }
    primes.push_back(Prime{idx, &it->second});
  }

  auto session =
      std::make_unique<InteractiveSession>(col->fn, space, config);
  for (const Prime& p : primes) {
    JIGSAW_RETURN_IF_ERROR(session->PrimeFromSweep(p.point_index,
                                                   *p.metrics));
  }
  return session;
}

}  // namespace jigsaw
