#pragma once

/// \file auto_prime.h
/// Bridges batch results into online exploration: builds an
/// InteractiveSession over a script outcome's scenario, pre-seeded with
/// the retained possible-worlds samples of its MONTECARLO result. The
/// user runs one `MONTECARLO OVER @p` sweep (keep_samples=true), then
/// starts exploring with every swept point already bound and estimated —
/// no cold-start ticks. Section 5's progressive refinement takes over
/// from there.

#include <memory>
#include <string>

#include "interactive/interactive_session.h"
#include "sql/script_runner.h"
#include "util/status.h"

namespace jigsaw {

/// Creates a session over `outcome`'s scenario exploring `column`, primed
/// from its MONTECARLO result via InteractiveSession::PrimeFromSweep —
/// one prime per sweep point (or one for the single valuation when the
/// statement had no OVER clause).
///
/// Soundness gate: world id k of the sweep is sample id k of the session
/// only when both draw from the same seed namespace, so
/// `config.run.master_seed` must equal the master seed the outcome ran
/// under (recorded in MonteCarloOutcome::master_seed); the session-server
/// path satisfies this by construction because a session's runs and its
/// interactive explorations share the session seed. Fails with
/// kInvalidArgument on a namespace mismatch, when the script produced no
/// MONTECARLO result, when `column` is absent from the scenario or the
/// result, when a sweep point's valuation is not on the declared
/// parameter grid (explicit OVER IN lists may sweep off-grid values,
/// which have no enumeration index to prime), or — from PrimeFromSweep —
/// when the sweep retained no samples or more than config.max_samples.
/// All points are validated before any priming, so a failed call never
/// returns a half-primed session.
Result<std::unique_ptr<InteractiveSession>> MakeSessionFromOutcome(
    const sql::ScriptOutcome& outcome, const std::string& column,
    const InteractiveConfig& config);

}  // namespace jigsaw
