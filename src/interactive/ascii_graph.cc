#include "interactive/ascii_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace jigsaw {

char GlyphForStyle(const std::string& style, std::size_t series_index) {
  const std::string lower = ToLower(style);
  if (lower.find("bold") != std::string::npos) return '#';
  if (lower.find("red") != std::string::npos) return '*';
  if (lower.find("blue") != std::string::npos) return '+';
  if (lower.find("orange") != std::string::npos) return 'o';
  if (lower.find("green") != std::string::npos) return 'x';
  static const char kDefaults[] = {'*', '+', 'o', 'x', '%', '@'};
  return kDefaults[series_index % sizeof(kDefaults)];
}

std::string RenderAsciiGraph(const std::vector<AsciiSeries>& series,
                             const AsciiGraphOptions& options) {
  const int w = std::max(options.width, 8);
  const int h = std::max(options.height, 4);

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -ymin;
  bool any = false;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
      any = true;
    }
  }
  if (!any) return "(no data)\n";
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    const char glyph = GlyphForStyle(s.style, si);
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      const int col = static_cast<int>(
          std::lround((s.x[i] - xmin) / (xmax - xmin) * (w - 1)));
      const int row = static_cast<int>(
          std::lround((s.y[i] - ymin) / (ymax - ymin) * (h - 1)));
      const int r = h - 1 - std::clamp(row, 0, h - 1);
      const int c = std::clamp(col, 0, w - 1);
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = glyph;
    }
  }

  std::string out;
  out += StrFormat("%10.4g +", ymax);
  out.append(static_cast<std::size_t>(w), '-');
  out += "\n";
  for (int r = 0; r < h; ++r) {
    out += "           |";
    out += grid[static_cast<std::size_t>(r)];
    out += "\n";
  }
  out += StrFormat("%10.4g +", ymin);
  out.append(static_cast<std::size_t>(w), '-');
  out += "\n";
  out += StrFormat("            %-10.4g%*s%10.4g\n", xmin,
                   std::max(1, w - 20), "", xmax);

  if (options.legend) {
    for (std::size_t si = 0; si < series.size(); ++si) {
      out += StrFormat("  %c %s", GlyphForStyle(series[si].style, si),
                       series[si].label.c_str());
      if (!series[si].style.empty()) {
        out += " (" + series[si].style + ")";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace jigsaw
