#pragma once

/// \file ascii_graph.h
/// Terminal rendering of GRAPH OVER results — the stand-in for the Fuzzy
/// Prophet GUI of Figure 2. Each series' WITH style picks a glyph; the
/// chart is a fixed-size character grid with axis labels and a legend.

#include <string>
#include <vector>

#include "core/graph_spec.h"

namespace jigsaw {

struct AsciiGraphOptions {
  int width = 72;    ///< plot area columns
  int height = 20;   ///< plot area rows
  bool legend = true;
};

/// One renderable series: x/y pairs plus a style hint ("bold red" -> '#').
struct AsciiSeries {
  std::string label;
  std::string style;
  std::vector<double> x;
  std::vector<double> y;
};

/// Maps a WITH-style word list to a plot glyph (stable mapping so tests
/// can assert on output).
char GlyphForStyle(const std::string& style, std::size_t series_index);

/// Renders series onto a shared chart. All series share the x scale; the
/// y scale covers the min/max across series (the paper's y2 axis hint is
/// honored by normalizing such series to the primary range).
std::string RenderAsciiGraph(const std::vector<AsciiSeries>& series,
                             const AsciiGraphOptions& options = {});

}  // namespace jigsaw
