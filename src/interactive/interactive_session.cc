#include "interactive/interactive_session.h"

#include <algorithm>

#include "core/fingerprint.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw {

const char* InteractiveTaskName(InteractiveTask task) {
  switch (task) {
    case InteractiveTask::kRefinement:
      return "refinement";
    case InteractiveTask::kValidation:
      return "validation";
    case InteractiveTask::kExploration:
      return "exploration";
  }
  return "?";
}

/// One basis distribution shared by mapped points. Samples live in the
/// basis domain; refinement inserts M^{-1}(value) for new ids.
struct InteractiveSession::BasisRecord {
  std::map<std::size_t, double> samples;  // sample id -> basis-domain value
  WelfordAccumulator acc;
  std::size_t subscribers = 0;

  void AddSample(std::size_t id, double value) {
    if (samples.emplace(id, value).second) acc.Add(value);
  }
};

struct InteractiveSession::PointState {
  std::vector<double> valuation;
  /// Own evaluations of this point (the progressively grown fingerprint).
  std::map<std::size_t, double> own;
  std::shared_ptr<BasisRecord> basis;
  MappingPtr mapping;  // basis -> point
};

InteractiveSession::InteractiveSession(SimFunctionPtr fn,
                                       ParameterSpace space,
                                       const InteractiveConfig& config)
    : fn_(std::move(fn)),
      space_(std::move(space)),
      config_(config),
      seeds_(config.run.master_seed, config.max_samples, config.run.seed_schema),
      heuristic_rng_(config.run.master_seed ^ 0x1A7EAC717E5A17ULL),
      finder_(LinearMappingFinder::Make()) {
  if (config_.run.num_threads > 1) {
    if (config_.run.shared_pool != nullptr) {
      pool_ = config_.run.shared_pool;
    } else {
      owned_pool_ = std::make_unique<ThreadPool>(config_.run.num_threads);
      pool_ = owned_pool_.get();
    }
  }
}

InteractiveSession::~InteractiveSession() = default;

std::size_t InteractiveSession::num_points() const {
  return space_.NumPoints();
}

std::size_t InteractiveSession::basis_count() const { return bases_.size(); }

Status InteractiveSession::SetFocus(std::size_t point_index) {
  if (point_index >= space_.NumPoints()) {
    return Status::OutOfRange("point index out of range");
  }
  focus_ = point_index;
  return Status::OK();
}

Status InteractiveSession::PrimeFromSweep(std::size_t point_index,
                                          const OutputMetrics& metrics) {
  if (point_index >= space_.NumPoints()) {
    return Status::OutOfRange("point index out of range");
  }
  if (metrics.samples.empty()) {
    return Status::InvalidArgument(
        "sweep metrics retained no samples; run the sweep with "
        "keep_samples");
  }
  // Silently importing a prefix would report less support than the sweep
  // produced; make the caller trim (or raise max_samples) explicitly.
  if (metrics.samples.size() > config_.max_samples) {
    return Status::InvalidArgument(StrFormat(
        "sweep retained %zu samples but the session caps sample ids at "
        "max_samples=%zu",
        metrics.samples.size(), config_.max_samples));
  }
  PointState& state = StateFor(point_index);
  // World id k of the sweep is sample id k of this session (both draw
  // sample k from seed sigma_k of the shared master seed), so the
  // imported values fold through the same path a tick's own evaluations
  // take: an already-bound point refines (or rebind-checks) its basis,
  // an unbound one binds below.
  for (std::size_t id = 0; id < metrics.samples.size(); ++id) {
    FoldSample(state, id, metrics.samples[id]);
  }
  if (state.basis == nullptr) BindPoint(point_index);
  return Status::OK();
}

InteractiveSession::PointState& InteractiveSession::StateFor(
    std::size_t point_index) {
  auto it = points_.find(point_index);
  if (it == points_.end()) {
    auto state = std::make_unique<PointState>();
    state->valuation = space_.ValuationAt(point_index);
    it = points_.emplace(point_index, std::move(state)).first;
  }
  return *it->second;
}

InteractiveTask InteractiveSession::PickTask(const PointState& state) {
  // A point without a binding always refines first (it needs a
  // fingerprint before anything else is meaningful).
  if (state.basis == nullptr) return InteractiveTask::kRefinement;
  const double r = heuristic_rng_.NextDouble();
  if (r < config_.exploration_weight) return InteractiveTask::kExploration;
  if (r < config_.exploration_weight + config_.validation_weight) {
    return InteractiveTask::kValidation;
  }
  return InteractiveTask::kRefinement;
}

std::size_t InteractiveSession::ExploreHeuristic(std::size_t point_index) {
  // Adjacent point in the (discrete) enumeration order — the paper's
  // example of "points likely to be of interest in the near future".
  const std::size_t n = space_.NumPoints();
  if (n <= 1) return point_index;
  if (heuristic_rng_.Bernoulli(0.5) && point_index + 1 < n) {
    return point_index + 1;
  }
  return point_index > 0 ? point_index - 1 : point_index + 1;
}

void InteractiveSession::EvaluateBatch(std::size_t point_index,
                                       const std::vector<std::size_t>& ids) {
  PointState& state = StateFor(point_index);

  // Evaluate first — in parallel when a pool is attached, since each
  // sample is a pure function of its id — then fold serially in id order
  // so basis updates and rebind decisions never depend on the schedule.
  std::vector<std::size_t> valid;
  valid.reserve(ids.size());
  for (std::size_t id : ids) {
    if (id < config_.max_samples) valid.push_back(id);
  }
  std::vector<double> values(valid.size());
  auto eval = [&](std::size_t i) {
    values[i] = fn_->Sample(state.valuation, valid[i], seeds_);
  };
  if (pool_ != nullptr && valid.size() >= 2) {
    pool_->ParallelFor(valid.size(), eval);
  } else {
    for (std::size_t i = 0; i < valid.size(); ++i) eval(i);
  }

  for (std::size_t i = 0; i < valid.size(); ++i) {
    ++stats_.evaluations;
    FoldSample(state, valid[i], values[i]);
  }
  if (state.basis == nullptr) BindPoint(point_index);
}

void InteractiveSession::FoldSample(PointState& state, std::size_t id,
                                    double value) {
  state.own[id] = value;
  if (state.basis == nullptr || state.mapping == nullptr) return;
  auto bit = state.basis->samples.find(id);
  if (bit != state.basis->samples.end()) {
    // Validation: the duplicate sample extends the fingerprint.
    if (!ApproxEqual(state.mapping->Apply(bit->second), value,
                     config_.run.tolerance)) {
      // Mapping no longer valid: detach and rebind below.
      --state.basis->subscribers;
      state.basis = nullptr;
      state.mapping = nullptr;
      ++stats_.rebinds;
    }
  } else if (state.mapping->Invertible()) {
    // Refinement: map the fresh sample back into the basis domain so
    // every subscriber benefits (Algorithm 5 line 21).
    state.basis->AddSample(id, state.mapping->Invert(value));
  }
}

void InteractiveSession::BindPoint(std::size_t point_index) {
  PointState& state = StateFor(point_index);
  if (state.own.size() < 2) return;  // not enough for a mapping

  // Fingerprint over this point's own sample ids.
  std::vector<double> fp_values;
  std::vector<std::size_t> fp_ids;
  for (const auto& [id, v] : state.own) {
    fp_ids.push_back(id);
    fp_values.push_back(v);
  }
  const Fingerprint theta(fp_values);

  // Try to map an existing basis onto this point over the shared ids.
  for (const auto& basis : bases_) {
    std::vector<double> basis_values;
    basis_values.reserve(fp_ids.size());
    bool complete = true;
    for (std::size_t id : fp_ids) {
      auto it = basis->samples.find(id);
      if (it == basis->samples.end()) {
        complete = false;
        break;
      }
      basis_values.push_back(it->second);
    }
    if (!complete) continue;
    MappingPtr m = finder_->Find(Fingerprint(basis_values), theta,
                                 config_.run.tolerance);
    if (m != nullptr) {
      state.basis = basis;
      state.mapping = std::move(m);
      ++basis->subscribers;
      ++stats_.borrow_hits;
      return;
    }
  }

  // No mappable basis: promote this point's own samples to a new basis.
  auto basis = std::make_shared<BasisRecord>();
  for (const auto& [id, v] : state.own) basis->AddSample(id, v);
  basis->subscribers = 1;
  bases_.push_back(basis);
  state.basis = std::move(basis);
  state.mapping = IdentityMapping::Make();
  ++stats_.basis_created;
}

InteractiveTask InteractiveSession::Tick() {
  ++stats_.ticks;
  PointState& state = StateFor(focus_);
  const InteractiveTask task = PickTask(state);
  std::size_t target = focus_;

  std::vector<std::size_t> candidate_ids;
  switch (task) {
    case InteractiveTask::kRefinement: {
      // Ids not yet in the basis (or not yet evaluated at all).
      const BasisRecord* basis = state.basis.get();
      for (std::size_t id = 0;
           id < config_.max_samples &&
           candidate_ids.size() < config_.batch_size;
           ++id) {
        const bool in_basis =
            basis != nullptr && basis->samples.count(id) > 0;
        if (!in_basis && state.own.count(id) == 0) {
          candidate_ids.push_back(id);
        }
      }
      break;
    }
    case InteractiveTask::kValidation: {
      // Ids in the basis but not in the point's own fingerprint.
      for (const auto& [id, _] : state.basis->samples) {
        if (state.own.count(id) == 0) candidate_ids.push_back(id);
        if (candidate_ids.size() >= config_.batch_size) break;
      }
      break;
    }
    case InteractiveTask::kExploration: {
      target = ExploreHeuristic(focus_);
      PointState& neighbor = StateFor(target);
      if (neighbor.own.empty()) {
        for (std::size_t id = 0; id < config_.batch_size; ++id) {
          candidate_ids.push_back(id);
        }
      } else {
        const BasisRecord* basis = neighbor.basis.get();
        for (std::size_t id = 0;
             id < config_.max_samples &&
             candidate_ids.size() < config_.batch_size;
             ++id) {
          const bool in_basis =
              basis != nullptr && basis->samples.count(id) > 0;
          if (!in_basis && neighbor.own.count(id) == 0) {
            candidate_ids.push_back(id);
          }
        }
      }
      break;
    }
  }

  if (!candidate_ids.empty()) EvaluateBatch(target, candidate_ids);
  return task;
}

void InteractiveSession::Run(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) Tick();
}

DisplayEstimate InteractiveSession::EstimateFor(
    std::size_t point_index) const {
  DisplayEstimate out;
  auto it = points_.find(point_index);
  if (it == points_.end()) return out;
  const PointState& state = *it->second;
  if (state.basis != nullptr && state.mapping != nullptr) {
    const auto affine = state.mapping->AsAffine();
    if (affine) {
      const auto [alpha, beta] = *affine;
      out.mean = alpha * state.basis->acc.mean() + beta;
      out.std_error = std::fabs(alpha) * state.basis->acc.standard_error();
      out.support = state.basis->acc.count();
      out.borrowed = state.basis->subscribers > 1;
      out.available = true;
      return out;
    }
  }
  if (!state.own.empty()) {
    WelfordAccumulator acc;
    for (const auto& [_, v] : state.own) acc.Add(v);
    out.mean = acc.mean();
    out.std_error = acc.standard_error();
    out.support = acc.count();
    out.available = true;
  }
  return out;
}

}  // namespace jigsaw
