#include "pdb/batch_program.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"

namespace jigsaw::pdb {

namespace {

constexpr std::uint32_t kNoError = 0xffffffffu;

/// Sorted-unique union of two parameter-index sets (both tiny).
std::vector<std::size_t> UnionParams(const std::vector<std::size_t>& a,
                                     const std::vector<std::size_t>& b) {
  std::vector<std::size_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

/// Walks Expr trees via ExprVisitor and emits BatchOps. Register ids are
/// SSA-ish (every node writes a fresh register except refs, which resolve
/// to the producing register directly), so alias/column references are
/// free and the interpreter's share-the-sibling-draws semantics falls out
/// of register reuse.
class BatchCompiler final : public ExprVisitor {
 public:
  Result<BatchProgramPtr> Compile(std::span<const ExprPtr> inner_exprs,
                                  std::span<const ExprPtr> outer_exprs,
                                  std::span<const std::string> outer_names) {
    JIGSAW_CHECK(outer_exprs.size() == outer_names.size());
    auto program = std::make_shared<BatchProgram>();
    program_ = program.get();

    for (const auto& e : inner_exprs) {
      JIGSAW_ASSIGN_OR_RETURN(std::uint32_t reg, Gen(*e, kBatchNoMask));
      inner_regs_.push_back(reg);
    }
    for (std::size_t j = 0; j < outer_exprs.size(); ++j) {
      JIGSAW_ASSIGN_OR_RETURN(std::uint32_t reg,
                              Gen(*outer_exprs[j], kBatchNoMask));
      alias_regs_.push_back(reg);
      BatchOp check;
      check.code = BatchOpCode::kCheckNumeric;
      check.a = reg;
      check.error = "column '" + outer_names[j] + "' is not numeric";
      program_->ops_.push_back(std::move(check));
      BatchProgram::ColumnInfo info;
      info.reg = reg;
      info.end_op = program_->ops_.size();
      info.name = outer_names[j];
      program_->columns_.push_back(std::move(info));
    }
    program_->num_regs_ = next_reg_;
    program_->num_masks_ = next_mask_;
    return BatchProgramPtr(std::move(program));
  }

 private:
  // -- visitor dispatch -----------------------------------------------------
  // Each Visit method services the innermost pending Gen call: it reads
  // mask_ and must set result_ or status_.

  Result<std::uint32_t> Gen(const Expr& expr, std::uint32_t mask) {
    const std::uint32_t saved_mask = mask_;
    mask_ = mask;
    expr.Accept(*this);
    mask_ = saved_mask;
    if (!status_.ok()) return status_;
    return result_;
  }

  void VisitLiteral(const Value& value) override {
    switch (value.type()) {
      case ValueType::kNull:
        result_ = EmitLoadNull();
        return;
      case ValueType::kDouble:
      case ValueType::kBool:
        result_ = EmitLoadConst(value.AsDouble());
        return;
      case ValueType::kInt:
        // INT+INT runs 64-bit integer arithmetic in the interpreter; a
        // double register cannot reproduce it past 2^53.
        status_ = Status::Unimplemented(
            "INT literal " + value.ToString() +
            " has 64-bit integer arithmetic semantics");
        return;
      case ValueType::kString:
        status_ = Status::Unimplemented("string literal '" +
                                        value.ToString() +
                                        "' has no numeric batch form");
        return;
    }
    status_ = Status::Internal("unhandled literal type");
  }

  void VisitColumnRef(std::size_t index, const std::string& name) override {
    if (index >= inner_regs_.size()) {
      status_ = Status::Unimplemented("column '" + name +
                                      "' resolves outside the row program");
      return;
    }
    result_ = inner_regs_[index];
  }

  void VisitAliasRef(std::size_t index, const std::string& name) override {
    if (index >= alias_regs_.size()) {
      status_ = Status::Unimplemented("alias '" + name +
                                      "' is not an earlier result column");
      return;
    }
    result_ = alias_regs_[index];
  }

  void VisitParamRef(std::size_t index, const std::string& name) override {
    BatchOp op;
    op.code = BatchOpCode::kLoadParam;
    op.dst = NewReg();
    op.a = static_cast<std::uint32_t>(index);
    op.mask = mask_;
    op.error = "parameter '@" + name + "' not bound at execution";
    const std::uint32_t dst = op.dst;
    program_->ops_.push_back(std::move(op));
    SetRegMeta(dst, {index}, /*has_model=*/false);
    result_ = dst;
  }

  void VisitBinary(BinaryOp op, const Expr& left,
                   const Expr& right) override {
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      GenLogic(op == BinaryOp::kAnd, left, right);
      return;
    }
    auto l = Gen(left, mask_);
    if (!l.ok()) {
      status_ = l.status();
      return;
    }
    auto r = Gen(right, mask_);
    if (!r.ok()) {
      status_ = r.status();
      return;
    }
    BatchOpCode code;
    switch (op) {
      case BinaryOp::kAdd:
        code = BatchOpCode::kAdd;
        break;
      case BinaryOp::kSub:
        code = BatchOpCode::kSub;
        break;
      case BinaryOp::kMul:
        code = BatchOpCode::kMul;
        break;
      case BinaryOp::kDiv:
        code = BatchOpCode::kDiv;
        break;
      case BinaryOp::kLt:
        code = BatchOpCode::kCmpLt;
        break;
      case BinaryOp::kLe:
        code = BatchOpCode::kCmpLe;
        break;
      case BinaryOp::kGt:
        code = BatchOpCode::kCmpGt;
        break;
      case BinaryOp::kGe:
        code = BatchOpCode::kCmpGe;
        break;
      case BinaryOp::kEq:
        code = BatchOpCode::kCmpEq;
        break;
      case BinaryOp::kNe:
        code = BatchOpCode::kCmpNe;
        break;
      default:
        status_ = Status::Internal("unhandled binary op");
        return;
    }
    result_ = EmitBinary(code, l.value(), r.value());
  }

  void VisitNot(const Expr& operand) override {
    auto a = Gen(operand, mask_);
    if (!a.ok()) {
      status_ = a.status();
      return;
    }
    result_ = EmitUnary(BatchOpCode::kNot, a.value());
  }

  void VisitCase(const std::vector<std::pair<ExprPtr, ExprPtr>>& branches,
                 const Expr* else_expr) override {
    const std::uint32_t outer_mask = mask_;
    // Default NULL so lanes where no branch matches reproduce the
    // interpreter's CASE-without-ELSE result.
    const std::uint32_t dst = EmitLoadNull();
    // Working mask of lanes still looking for a matching WHEN.
    const std::uint32_t remaining = NewMask();
    EmitMaskOp(BatchOpCode::kMaskCopy, remaining, outer_mask, 0);
    std::vector<std::size_t> params;
    bool has_model = false;
    for (const auto& [cond, value] : branches) {
      auto c = Gen(*cond, remaining);
      if (!c.ok()) {
        status_ = c.status();
        return;
      }
      const std::uint32_t taken = NewMask();
      EmitMaskOp(BatchOpCode::kMaskWhereTrue, taken, remaining, c.value());
      EmitMaskOp(BatchOpCode::kMaskAndNot, remaining, remaining, taken);
      auto v = Gen(*value, taken);
      if (!v.ok()) {
        status_ = v.status();
        return;
      }
      EmitCopy(dst, v.value(), taken);
      params = UnionParams(params, RegParams(c.value()));
      params = UnionParams(params, RegParams(v.value()));
      has_model = has_model || RegHasModel(c.value()) ||
                  RegHasModel(v.value());
    }
    if (else_expr != nullptr) {
      auto e = Gen(*else_expr, remaining);
      if (!e.ok()) {
        status_ = e.status();
        return;
      }
      EmitCopy(dst, e.value(), remaining);
      params = UnionParams(params, RegParams(e.value()));
      has_model = has_model || RegHasModel(e.value());
    }
    SetRegMeta(dst, std::move(params), has_model);
    result_ = dst;
  }

  void VisitModelCall(const BlackBoxPtr& model,
                      const std::vector<ExprPtr>& args,
                      std::uint64_t call_site) override {
    // Interpreter order: ModelCallExpr checks the seed vector before any
    // argument evaluates, and coerces (numeric-checks) each argument
    // before the next one runs — the emitted check ops keep that order
    // so a lane hitting several failures reports the interpreter's.
    {
      BatchOp seeds_check;
      seeds_check.code = BatchOpCode::kCheckSeeds;
      seeds_check.mask = mask_;
      seeds_check.error =
          "stochastic expression evaluated without a seed vector";
      program_->ops_.push_back(std::move(seeds_check));
    }
    BatchOp op;
    op.code = BatchOpCode::kModelCall;
    op.model = model;
    op.call_site = call_site;
    op.mask = mask_;
    op.uniform_args = true;
    for (const auto& arg : args) {
      auto a = Gen(*arg, mask_);
      if (!a.ok()) {
        status_ = a.status();
        return;
      }
      BatchOp arg_check;
      arg_check.code = BatchOpCode::kCheckArgNumeric;
      arg_check.a = a.value();
      arg_check.mask = mask_;
      arg_check.error = "non-numeric argument to " + model->name();
      program_->ops_.push_back(std::move(arg_check));
      op.args.push_back(a.value());
      op.arg_params = UnionParams(op.arg_params, RegParams(a.value()));
      op.uniform_args = op.uniform_args && !RegHasModel(a.value());
    }
    op.dst = NewReg();
    const std::uint32_t dst = op.dst;
    auto arg_params = op.arg_params;
    program_->ops_.push_back(std::move(op));
    SetRegMeta(dst, std::move(arg_params), /*has_model=*/true);
    result_ = dst;
  }

  // -- AND / OR -------------------------------------------------------------
  //
  //   dst seeded with the short-circuit value (NULL propagated from the
  //   left), then the right operand evaluates only on the lanes where the
  //   interpreter would have reached it, and overwrites dst there.

  void GenLogic(bool is_and, const Expr& left, const Expr& right) {
    auto l = Gen(left, mask_);
    if (!l.ok()) {
      status_ = l.status();
      return;
    }
    BatchOp seed;
    seed.code = BatchOpCode::kLogicSeed;
    seed.dst = NewReg();
    seed.a = l.value();
    seed.mask = mask_;
    seed.imm = is_and ? 0.0 : 1.0;  // AND: false wins; OR: true wins
    const std::uint32_t dst = seed.dst;
    program_->ops_.push_back(std::move(seed));

    const std::uint32_t continue_mask = NewMask();
    EmitMaskOp(is_and ? BatchOpCode::kMaskWhereTrue
                      : BatchOpCode::kMaskWhereFalse,
               continue_mask, mask_, l.value());
    auto r = Gen(right, continue_mask);
    if (!r.ok()) {
      status_ = r.status();
      return;
    }
    BatchOp cast;
    cast.code = BatchOpCode::kBoolCast;
    cast.dst = dst;
    cast.a = r.value();
    cast.mask = continue_mask;
    program_->ops_.push_back(std::move(cast));
    SetRegMeta(dst, UnionParams(RegParams(l.value()), RegParams(r.value())),
               RegHasModel(l.value()) || RegHasModel(r.value()));
    result_ = dst;
  }

  // -- emission helpers -----------------------------------------------------

  std::uint32_t NewReg() { return next_reg_++; }
  std::uint32_t NewMask() { return next_mask_++; }
  std::uint32_t op_dst_back() const { return program_->ops_.back().dst; }

  std::uint32_t EmitLoadConst(double value) {
    BatchOp op;
    op.code = BatchOpCode::kLoadConst;
    op.dst = NewReg();
    op.imm = value;
    op.mask = mask_;
    program_->ops_.push_back(std::move(op));
    return op_dst_back();
  }

  std::uint32_t EmitLoadNull() {
    BatchOp op;
    op.code = BatchOpCode::kLoadNull;
    op.dst = NewReg();
    op.mask = mask_;
    program_->ops_.push_back(std::move(op));
    return op_dst_back();
  }

  std::uint32_t EmitBinary(BatchOpCode code, std::uint32_t a,
                           std::uint32_t b) {
    BatchOp op;
    op.code = code;
    op.dst = NewReg();
    op.a = a;
    op.b = b;
    op.mask = mask_;
    if (code == BatchOpCode::kDiv) op.error = "division by zero";
    const std::uint32_t dst = op.dst;
    program_->ops_.push_back(std::move(op));
    SetRegMeta(dst, UnionParams(RegParams(a), RegParams(b)),
               RegHasModel(a) || RegHasModel(b));
    return dst;
  }

  std::uint32_t EmitUnary(BatchOpCode code, std::uint32_t a) {
    BatchOp op;
    op.code = code;
    op.dst = NewReg();
    op.a = a;
    op.mask = mask_;
    const std::uint32_t dst = op.dst;
    program_->ops_.push_back(std::move(op));
    SetRegMeta(dst, RegParams(a), RegHasModel(a));
    return dst;
  }

  void EmitCopy(std::uint32_t dst, std::uint32_t src, std::uint32_t mask) {
    BatchOp op;
    op.code = BatchOpCode::kCopy;
    op.dst = dst;
    op.a = src;
    op.mask = mask;
    program_->ops_.push_back(std::move(op));
  }

  void EmitMaskOp(BatchOpCode code, std::uint32_t dst, std::uint32_t a,
                  std::uint32_t b) {
    BatchOp op;
    op.code = code;
    op.dst = dst;
    op.a = a;
    op.b = b;
    program_->ops_.push_back(std::move(op));
  }

  // -- per-register metadata (drives the EvalBatch fast path) ---------------

  void SetRegMeta(std::uint32_t reg, std::vector<std::size_t> params,
                  bool has_model) {
    reg_params_.resize(std::max<std::size_t>(reg_params_.size(), reg + 1));
    reg_has_model_.resize(
        std::max<std::size_t>(reg_has_model_.size(), reg + 1));
    reg_params_[reg] = std::move(params);
    reg_has_model_[reg] = has_model;
  }

  const std::vector<std::size_t>& RegParams(std::uint32_t reg) {
    reg_params_.resize(std::max<std::size_t>(reg_params_.size(), reg + 1));
    return reg_params_[reg];
  }

  bool RegHasModel(std::uint32_t reg) {
    reg_has_model_.resize(
        std::max<std::size_t>(reg_has_model_.size(), reg + 1));
    return reg_has_model_[reg] != 0;
  }

  BatchProgram* program_ = nullptr;
  std::uint32_t next_reg_ = 0;
  std::uint32_t next_mask_ = 0;
  std::uint32_t mask_ = kBatchNoMask;
  std::uint32_t result_ = 0;
  Status status_ = Status::OK();
  std::vector<std::uint32_t> inner_regs_;
  std::vector<std::uint32_t> alias_regs_;
  std::vector<std::vector<std::size_t>> reg_params_;
  std::vector<std::uint8_t> reg_has_model_;
};

Result<BatchProgramPtr> CompileBatchProgram(
    std::span<const ExprPtr> inner_exprs, std::span<const ExprPtr> outer_exprs,
    std::span<const std::string> outer_names) {
  BatchCompiler compiler;
  return compiler.Compile(inner_exprs, outer_exprs, outer_names);
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Status BatchProgram::Exec(const Context& ctx, std::size_t n,
                          std::size_t end_op, bool run_all_checks,
                          BatchScratch& s) const {
  if (n == 0) return Status::OK();
  s.values.resize(static_cast<std::size_t>(num_regs_) * n);
  s.nulls.resize(static_cast<std::size_t>(num_regs_) * n);
  s.masks.resize(static_cast<std::size_t>(num_masks_) * n);
  s.err.assign(n, kNoError);
  s.any_error = false;

  auto val = [&](std::uint32_t reg) { return s.values.data() + reg * n; };
  auto nul = [&](std::uint32_t reg) { return s.nulls.data() + reg * n; };
  auto msk = [&](std::uint32_t m) { return s.masks.data() + m * n; };

  for (std::size_t i = 0; i < end_op; ++i) {
    const BatchOp& op = ops_[i];
    if (op.code == BatchOpCode::kCheckNumeric && !run_all_checks &&
        i + 1 != end_op) {
      continue;  // intermediate column: EvalColumn never checks it
    }

    // Runs `body(lane)` for every lane the op may touch: masked-out and
    // already-errored lanes are skipped, matching the interpreter (it
    // never reaches this op for those samples). The mask-free, error-free
    // common case is a branchless span loop.
    auto for_active = [&](auto&& body) {
      if (op.mask == kBatchNoMask && !s.any_error) {
        for (std::size_t l = 0; l < n; ++l) body(l);
        return;
      }
      const std::uint8_t* m =
          op.mask == kBatchNoMask ? nullptr : msk(op.mask);
      for (std::size_t l = 0; l < n; ++l) {
        if (s.err[l] == kNoError && (m == nullptr || m[l] != 0)) body(l);
      }
    };
    auto raise = [&](std::size_t lane) {
      if (s.err[lane] == kNoError) {
        s.err[lane] = static_cast<std::uint32_t>(i);
        s.any_error = true;
      }
    };

    switch (op.code) {
      case BatchOpCode::kLoadConst: {
        double* d = val(op.dst);
        std::uint8_t* dn = nul(op.dst);
        for_active([&](std::size_t l) {
          d[l] = op.imm;
          dn[l] = 0;
        });
        break;
      }
      case BatchOpCode::kLoadNull: {
        double* d = val(op.dst);
        std::uint8_t* dn = nul(op.dst);
        for_active([&](std::size_t l) {
          d[l] = 0.0;
          dn[l] = 1;
        });
        break;
      }
      case BatchOpCode::kLoadParam: {
        double* d = val(op.dst);
        std::uint8_t* dn = nul(op.dst);
        const LaneParam* lane_override = nullptr;
        for (const LaneParam& lp : ctx.lane_params) {
          if (lp.param_index == op.a) lane_override = &lp;
        }
        if (lane_override != nullptr) {
          JIGSAW_DCHECK(lane_override->values.size() >= n);
          const double* src = lane_override->values.data();
          for_active([&](std::size_t l) {
            d[l] = src[l];
            dn[l] = 0;
          });
        } else if (op.a >= ctx.params.size()) {
          for_active([&](std::size_t l) { raise(l); });
        } else {
          const double v = ctx.params[op.a];
          for_active([&](std::size_t l) {
            d[l] = v;
            dn[l] = 0;
          });
        }
        break;
      }
      case BatchOpCode::kAdd:
      case BatchOpCode::kSub:
      case BatchOpCode::kMul: {
        const double* x = val(op.a);
        const double* y = val(op.b);
        const std::uint8_t* xn = nul(op.a);
        const std::uint8_t* yn = nul(op.b);
        double* d = val(op.dst);
        std::uint8_t* dn = nul(op.dst);
        const BatchOpCode c = op.code;
        for_active([&](std::size_t l) {
          dn[l] = xn[l] | yn[l];
          d[l] = c == BatchOpCode::kAdd   ? x[l] + y[l]
                 : c == BatchOpCode::kSub ? x[l] - y[l]
                                          : x[l] * y[l];
        });
        break;
      }
      case BatchOpCode::kDiv: {
        const double* x = val(op.a);
        const double* y = val(op.b);
        const std::uint8_t* xn = nul(op.a);
        const std::uint8_t* yn = nul(op.b);
        double* d = val(op.dst);
        std::uint8_t* dn = nul(op.dst);
        for_active([&](std::size_t l) {
          if (xn[l] | yn[l]) {
            dn[l] = 1;
            d[l] = 0.0;
          } else if (y[l] == 0.0) {
            raise(l);
          } else {
            dn[l] = 0;
            d[l] = x[l] / y[l];
          }
        });
        break;
      }
      case BatchOpCode::kCmpLt:
      case BatchOpCode::kCmpLe:
      case BatchOpCode::kCmpGt:
      case BatchOpCode::kCmpGe:
      case BatchOpCode::kCmpEq:
      case BatchOpCode::kCmpNe: {
        const double* x = val(op.a);
        const double* y = val(op.b);
        const std::uint8_t* xn = nul(op.a);
        const std::uint8_t* yn = nul(op.b);
        double* d = val(op.dst);
        std::uint8_t* dn = nul(op.dst);
        const BatchOpCode c = op.code;
        for_active([&](std::size_t l) {
          dn[l] = xn[l] | yn[l];
          // Value::Compare's ordering exactly (NaN compares equal).
          const int cmp = x[l] < y[l] ? -1 : (x[l] > y[l] ? 1 : 0);
          bool r = false;
          switch (c) {
            case BatchOpCode::kCmpLt:
              r = cmp < 0;
              break;
            case BatchOpCode::kCmpLe:
              r = cmp <= 0;
              break;
            case BatchOpCode::kCmpGt:
              r = cmp > 0;
              break;
            case BatchOpCode::kCmpGe:
              r = cmp >= 0;
              break;
            case BatchOpCode::kCmpEq:
              r = cmp == 0;
              break;
            default:
              r = cmp != 0;
              break;
          }
          d[l] = r ? 1.0 : 0.0;
        });
        break;
      }
      case BatchOpCode::kNot: {
        const double* x = val(op.a);
        const std::uint8_t* xn = nul(op.a);
        double* d = val(op.dst);
        std::uint8_t* dn = nul(op.dst);
        for_active([&](std::size_t l) {
          dn[l] = xn[l];
          d[l] = x[l] == 0.0 ? 1.0 : 0.0;
        });
        break;
      }
      case BatchOpCode::kBoolCast: {
        const double* x = val(op.a);
        const std::uint8_t* xn = nul(op.a);
        double* d = val(op.dst);
        std::uint8_t* dn = nul(op.dst);
        for_active([&](std::size_t l) {
          dn[l] = xn[l];
          d[l] = x[l] != 0.0 ? 1.0 : 0.0;
        });
        break;
      }
      case BatchOpCode::kCopy: {
        const double* x = val(op.a);
        const std::uint8_t* xn = nul(op.a);
        double* d = val(op.dst);
        std::uint8_t* dn = nul(op.dst);
        for_active([&](std::size_t l) {
          dn[l] = xn[l];
          d[l] = x[l];
        });
        break;
      }
      case BatchOpCode::kLogicSeed: {
        const std::uint8_t* xn = nul(op.a);
        double* d = val(op.dst);
        std::uint8_t* dn = nul(op.dst);
        for_active([&](std::size_t l) {
          dn[l] = xn[l];
          d[l] = op.imm;
        });
        break;
      }
      case BatchOpCode::kMaskCopy: {
        std::uint8_t* d = msk(op.dst);
        if (op.a == kBatchNoMask) {
          std::fill(d, d + n, std::uint8_t{1});
        } else {
          const std::uint8_t* src = msk(op.a);
          std::copy(src, src + n, d);
        }
        break;
      }
      case BatchOpCode::kMaskWhereTrue:
      case BatchOpCode::kMaskWhereFalse: {
        std::uint8_t* d = msk(op.dst);
        const std::uint8_t* parent =
            op.a == kBatchNoMask ? nullptr : msk(op.a);
        const double* x = val(op.b);
        const std::uint8_t* xn = nul(op.b);
        const bool want = op.code == BatchOpCode::kMaskWhereTrue;
        for (std::size_t l = 0; l < n; ++l) {
          const bool live = parent == nullptr || parent[l] != 0;
          d[l] = (live && xn[l] == 0 && (x[l] != 0.0) == want) ? 1 : 0;
        }
        break;
      }
      case BatchOpCode::kMaskAndNot: {
        std::uint8_t* d = msk(op.dst);
        const std::uint8_t* a = op.a == kBatchNoMask ? nullptr : msk(op.a);
        const std::uint8_t* b = msk(op.b);
        for (std::size_t l = 0; l < n; ++l) {
          d[l] = ((a == nullptr || a[l] != 0) && b[l] == 0) ? 1 : 0;
        }
        break;
      }
      case BatchOpCode::kCheckSeeds: {
        // Lanes that reach a stochastic call without seeds fail exactly
        // like the interpreter; masked-out lanes stay clean.
        if (ctx.seeds == nullptr) {
          for_active([&](std::size_t l) { raise(l); });
        }
        break;
      }
      case BatchOpCode::kCheckArgNumeric: {
        const std::uint8_t* xn = nul(op.a);
        for_active([&](std::size_t l) {
          if (xn[l] != 0) raise(l);
        });
        break;
      }
      case BatchOpCode::kModelCall: {
        // The preceding kCheckSeeds errored every lane that could reach
        // this op without seeds, so no active lane dereferences them;
        // the guard only covers the degenerate everything-masked case.
        if (ctx.seeds == nullptr) break;
        double* d = val(op.dst);
        std::uint8_t* dn = nul(op.dst);
        const std::uint64_t site =
            ctx.stream_salt == 0
                ? op.call_site
                : HashCombine(ctx.stream_salt, op.call_site);
        bool lane_param_conflict = false;
        for (const LaneParam& lp : ctx.lane_params) {
          lane_param_conflict =
              lane_param_conflict ||
              std::binary_search(op.arg_params.begin(), op.arg_params.end(),
                                 lp.param_index);
        }
        if (op.mask == kBatchNoMask && !s.any_error && op.uniform_args &&
            !lane_param_conflict) {
          // Arguments are identical across lanes: one EvalBatch over the
          // whole seed span (bit-identical to per-lane InvokeSeeded by
          // the EvalBatch contract).
          s.argv.clear();
          for (std::uint32_t arg : op.args) s.argv.push_back(val(arg)[0]);
          op.model->EvalBatch(s.argv,
                              ctx.seeds->span(ctx.sample_begin, n),
                              site, std::span<double>(d, n));
          std::fill(dn, dn + n, std::uint8_t{0});
        } else {
          for_active([&](std::size_t l) {
            s.argv.clear();
            for (std::uint32_t arg : op.args) s.argv.push_back(val(arg)[l]);
            RandomStream rng =
                ctx.seeds->StreamFor(ctx.sample_begin + l, site);
            d[l] = op.model->Eval(s.argv, rng);
            dn[l] = 0;
          });
        }
        break;
      }
      case BatchOpCode::kCheckNumeric: {
        const std::uint8_t* xn = nul(op.a);
        for_active([&](std::size_t l) {
          if (xn[l] != 0) raise(l);
        });
        break;
      }
    }
  }

  if (s.any_error) {
    for (std::size_t l = 0; l < n; ++l) {
      if (s.err[l] != kNoError) {
        return Status::ExecutionError(ops_[s.err[l]].error);
      }
    }
  }
  return Status::OK();
}

Status BatchProgram::RunAll(const Context& ctx, std::size_t n,
                            std::span<double* const> out,
                            BatchScratch& scratch) const {
  JIGSAW_CHECK(out.size() == columns_.size());
  JIGSAW_RETURN_IF_ERROR(
      Exec(ctx, n, ops_.size(), /*run_all_checks=*/true, scratch));
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    const double* src = scratch.values.data() + columns_[j].reg * n;
    std::copy(src, src + n, out[j]);
  }
  return Status::OK();
}

Status BatchProgram::RunColumn(std::size_t j, const Context& ctx,
                               std::size_t n, std::span<double> out,
                               BatchScratch& scratch) const {
  JIGSAW_CHECK(j < columns_.size());
  JIGSAW_CHECK(out.size() >= n);
  JIGSAW_RETURN_IF_ERROR(Exec(ctx, n, columns_[j].end_op,
                              /*run_all_checks=*/false, scratch));
  const double* src = scratch.values.data() + columns_[j].reg * n;
  std::copy(src, src + n, out.data());
  return Status::OK();
}

}  // namespace jigsaw::pdb
