#pragma once

/// \file columnar.h
/// Contiguous typed columnar storage for possible worlds — the succinct
/// U-relations-style representation the pdb layer stands on ("Fast and
/// Simple Relational Processing of Uncertain Data"). One ColumnChunk per
/// column holds a typed contiguous buffer (double / int64 / bool, with a
/// null bitmap; strings are dictionary-coded) instead of one boxed
/// `Value` variant per cell, so realizing a million-tuple uncertain table
/// touches three flat arrays rather than a million `vector<Value>` rows.
///
/// The boxed `Table` survives only as a conversion boundary: the CSV /
/// Report interop edges and the Volcano row operators box rows on demand
/// (`BoxRow`, `ToTable`), while VG realization, estimator folds and the
/// batch-program staging path stay on raw spans. `RunConfig::
/// columnar_storage` gates the representation end to end; the boxed twin
/// is bit-identical (same draws, same metrics, same errors in the same
/// order) at every grid point.
///
/// Shard-ownership rule: a multi-world realization is sharded into
/// world-chunk extents (see WorldExtent in vg_table.h) — each
/// FoldWorlds / FoldChunkGrid pool task appends only to the extent it
/// owns, so parallel materialization needs no synchronization and no
/// cross-task writes.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdb/table.h"
#include "pdb/value.h"
#include "util/status.h"

namespace jigsaw::pdb {

/// One column's contiguous typed buffer. Exactly one of the typed
/// vectors is active (selected by `type()`); nulls occupy a value slot
/// (NaN / 0) and are marked in a word-packed bitmap, so the value buffer
/// stays dense and span-addressable. Strings are dictionary-coded: the
/// buffer holds uint32 codes into an append-only dictionary.
class ColumnChunk {
 public:
  ColumnChunk() = default;
  explicit ColumnChunk(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  std::size_t size() const { return size_; }
  std::size_t null_count() const { return null_count_; }
  bool IsNull(std::size_t i) const {
    return null_count_ != 0 && (null_words_[i >> 6] >> (i & 63) & 1) != 0;
  }

  void Reserve(std::size_t n);

  /// Typed appends — the VG-generation fast path. The caller must match
  /// the chunk's declared type (checked in debug builds).
  void AppendDouble(double v);
  void AppendInt(std::int64_t v);
  void AppendBool(bool v);
  void AppendString(const std::string& v);
  void AppendNull();

  /// Bulk append: grows the chunk by `n` value slots and returns the
  /// mutable span over them, so generators write model draws straight
  /// into the column buffer (no per-row call, no boxing).
  std::span<double> AppendDoubleSpan(std::size_t n);
  std::span<std::int64_t> AppendIntSpan(std::size_t n);
  std::span<std::uint8_t> AppendBoolSpan(std::size_t n);

  /// Interns `v` in the dictionary without appending a row and returns
  /// its code. Generators with a small closed string domain intern each
  /// value once and bulk-fill codes through AppendCodeSpan — one hash
  /// probe per distinct string instead of one per row.
  std::uint32_t InternString(const std::string& v);

  /// Bulk append of dictionary codes. Every slot must be filled with a
  /// code previously returned by InternString/AppendString on this chunk;
  /// an out-of-range code makes BoxValue/decoding undefined.
  std::span<std::uint32_t> AppendCodeSpan(std::size_t n);

  /// Boxed boundary: stores `v` if its type exactly matches the declared
  /// column type (nulls always fit). The columnar store is strictly
  /// typed — unlike the dynamically-typed boxed rows — so a mismatch is
  /// an error, never a silent coercion.
  Status AppendValue(const Value& v);

  /// Boxed view of slot `i` (the conversion boundary).
  Value BoxValue(std::size_t i) const;

  /// Zero-copy typed reads. Call only on a chunk of the matching type.
  std::span<const double> Doubles() const { return doubles_; }
  std::span<const std::int64_t> Ints() const { return ints_; }
  std::span<const std::uint8_t> Bools() const { return bools_; }
  std::span<const std::uint32_t> StringCodes() const { return codes_; }
  const std::vector<std::string>& Dictionary() const { return dict_; }

  /// Deep equality (values, nulls, decoded strings). Dictionary code
  /// assignment is insertion-ordered and therefore deterministic, but
  /// equality still compares decoded strings so two chunks built in
  /// different append orders compare by content.
  bool SameContent(const ColumnChunk& other) const;

 private:
  void MarkNull();

  ValueType type_ = ValueType::kDouble;
  std::size_t size_ = 0;
  std::vector<double> doubles_;
  std::vector<std::int64_t> ints_;
  std::vector<std::uint8_t> bools_;
  std::vector<std::uint32_t> codes_;
  std::vector<std::string> dict_;
  /// Lookup only — never iterated (deterministic code assignment comes
  /// from insertion order into dict_).
  std::unordered_map<std::string, std::uint32_t> dict_index_;
  std::vector<std::uint64_t> null_words_;
  std::size_t null_count_ = 0;
};

/// A relation stored as one ColumnChunk per schema column. Rows exist
/// only logically; `BoxRow` / `ToTable` materialize boxed rows at the
/// interop edges.
class ColumnarTable {
 public:
  ColumnarTable() = default;
  explicit ColumnarTable(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }
  const ColumnChunk& column(std::size_t i) const { return columns_[i]; }
  ColumnChunk& column(std::size_t i) { return columns_[i]; }

  void Reserve(std::size_t n);

  /// Boxed-row ingestion (validated: arity and exact per-column type).
  Status AppendRow(const Row& row);

  /// Reconciles num_rows() after a generator bulk-filled the chunks via
  /// the typed append API: every column must have grown to the same
  /// size. Internal error otherwise (a generator bug, not user input).
  Status CommitAppendedRows();

  /// Boxes row `i` into *out (reusing its capacity).
  void BoxRow(std::size_t i, Row* out) const;

  /// Conversion boundaries. FromTable requires every value to exactly
  /// match its declared column type (see ColumnChunk::AppendValue).
  static Result<ColumnarTable> FromTable(const Table& t);
  Result<Table> ToTable() const;

  /// Zero-copy numeric read of a kDouble column with no nulls — the
  /// estimator-fold fast path. Error text matches the boxed
  /// Table::NumericColumn for the same failure, so the two storage paths
  /// report identical errors in identical order.
  Result<std::span<const double>> NumericSpan(const std::string& name) const;

  /// Copying fallback (int / bool coercion to double — a widening copy
  /// is unavoidable), with boxed-identical values and errors.
  Result<std::vector<double>> NumericColumn(const std::string& name) const;

  bool SameContent(const ColumnarTable& other) const;

  std::string ToString(std::size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<ColumnChunk> columns_;
  std::size_t num_rows_ = 0;
};

}  // namespace jigsaw::pdb
