#pragma once

/// \file batch_program.h
/// The expression batch compiler: lowers a bound row program (a list of
/// Expr trees over numeric columns, aliases, parameters and model calls)
/// into a flat register-based BatchProgram whose ops evaluate whole
/// sample spans over contiguous double buffers.
///
///  * literals / column refs / alias refs / param refs become broadcast
///    (or per-lane) register loads;
///  * binary arithmetic and comparisons become span kernels;
///  * AND / OR / CASE compile to mask registers so the interpreter's
///    short-circuit rules hold per lane (untaken operands are neither
///    evaluated nor allowed to raise);
///  * model calls dispatch through BlackBox::EvalBatch when their
///    arguments are lane-uniform, and otherwise re-derive the exact
///    per-sample (seed, call_site, stream_salt) stream the interpreter
///    would have used.
///
/// The compiled program is **bit-identical** to the Expr::Eval walk: the
/// same doubles, the same draws, and — on failure — the same
/// ExecutionError the serial interpreter would have reported first (the
/// lowest erroring lane wins, and within a lane the first error in
/// evaluation order). Expressions the compiler cannot prove equivalent
/// (string-valued subtrees, INT literals with 64-bit arithmetic
/// semantics) fail to compile with a human-readable reason so callers
/// can fall back to the interpreter transparently.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "models/black_box.h"
#include "pdb/expr.h"
#include "random/seed_vector.h"
#include "util/status.h"

namespace jigsaw::pdb {

/// Opcodes of the flat batch VM. Value ops read/write double registers
/// (with a per-lane null flag); mask ops maintain the active-lane sets
/// that implement short-circuit semantics.
enum class BatchOpCode : std::uint8_t {
  kLoadConst,      ///< dst <- imm (broadcast)
  kLoadNull,       ///< dst <- NULL
  kLoadParam,      ///< dst <- params[a] or the per-lane override span
  kAdd,            ///< dst <- a + b (nulls propagate)
  kSub,            ///< dst <- a - b
  kMul,            ///< dst <- a * b
  kDiv,            ///< dst <- a / b; lane error when b == 0
  kCmpLt,          ///< dst <- bool(a < b) via Value::Compare ordering
  kCmpLe,
  kCmpGt,
  kCmpGe,
  kCmpEq,
  kCmpNe,
  kNot,            ///< dst <- !AsBool(a), null propagates
  kBoolCast,       ///< dst <- AsBool(a) as 0/1, null propagates
  kCopy,           ///< dst <- a (value + null flag)
  kLogicSeed,      ///< dst.null <- a.null; dst.value <- imm (AND/OR seed)
  kMaskCopy,       ///< mask dst <- mask a (or all-active)
  kMaskWhereTrue,  ///< mask dst <- mask a && !null(b) && AsBool(b)
  kMaskWhereFalse, ///< mask dst <- mask a && !null(b) && !AsBool(b)
  kMaskAndNot,     ///< mask dst <- mask a && !mask b
  kCheckSeeds,     ///< lane error when the context has no seed vector
  kCheckArgNumeric,///< lane error when model argument a is NULL
  kModelCall,      ///< dst <- model(args...) under per-lane streams
  kCheckNumeric,   ///< lane error when a is NULL (output column check)
};

inline constexpr std::uint32_t kBatchNoMask = 0xffffffffu;

struct BatchOp {
  BatchOpCode code = BatchOpCode::kLoadConst;
  std::uint32_t dst = 0;  ///< value register, or mask register for mask ops
  std::uint32_t a = 0;    ///< operand register / parent mask / param index
  std::uint32_t b = 0;    ///< second operand register / mask
  std::uint32_t mask = kBatchNoMask;  ///< active-lane mask (kBatchNoMask = all)
  double imm = 0.0;
  std::uint64_t call_site = 0;
  BlackBoxPtr model;
  std::vector<std::uint32_t> args;  ///< model-call argument registers
  /// True when no model call feeds the arguments (same values per lane
  /// unless a referenced parameter carries a per-lane override).
  bool uniform_args = false;
  std::vector<std::size_t> arg_params;  ///< parameter indices args read
  /// Pre-formatted ExecutionError message for error-raising ops; matches
  /// the interpreter's message for the same failure.
  std::string error;
};

/// Reusable per-thread evaluation buffers. Sized lazily by Run*; keep one
/// per worker (e.g. thread_local) to avoid per-call allocation.
class BatchScratch {
 public:
  BatchScratch() = default;

 private:
  friend class BatchProgram;
  std::vector<double> values;        ///< num_regs x n
  std::vector<std::uint8_t> nulls;   ///< num_regs x n
  std::vector<std::uint8_t> masks;   ///< num_masks x n
  std::vector<std::uint32_t> err;    ///< per lane: first erroring op index
  std::vector<double> argv;          ///< model-call argument gather
  bool any_error = false;
};

class BatchProgram {
 public:
  /// Per-lane override of one scenario parameter (the chain executor
  /// feeds each instance's state through the chain parameter).
  struct LaneParam {
    std::size_t param_index = 0;
    std::span<const double> values;  ///< one value per lane
  };

  /// Evaluation inputs shared by all lanes; lane i of a Run call is
  /// sample `sample_begin + i` under `seeds`, exactly like the
  /// interpreter's EvalContext.
  struct Context {
    std::span<const double> params;
    std::span<const LaneParam> lane_params;
    std::size_t sample_begin = 0;
    const SeedVector* seeds = nullptr;
    std::uint64_t stream_salt = 0;
  };

  std::size_t num_columns() const { return columns_.size(); }
  const std::string& column_name(std::size_t j) const {
    return columns_[j].name;
  }
  std::size_t num_ops() const { return ops_.size(); }

  /// Evaluates every output column for `n` consecutive samples; `out[j]`
  /// receives column j (n doubles). Mirrors RowProgram::EvalAllColumns:
  /// each column is checked numeric (non-NULL) before the next column's
  /// ops run.
  Status RunAll(const Context& ctx, std::size_t n,
                std::span<double* const> out, BatchScratch& scratch) const;

  /// Evaluates output column `j` (running columns 0..j, checking only
  /// column j numeric) for `n` consecutive samples. Mirrors
  /// RowProgram::EvalColumn.
  Status RunColumn(std::size_t j, const Context& ctx, std::size_t n,
                   std::span<double> out, BatchScratch& scratch) const;

 private:
  friend class BatchCompiler;

  struct ColumnInfo {
    std::uint32_t reg = 0;     ///< register holding the column value
    std::size_t end_op = 0;    ///< ops [0, end_op) produce-and-check it
    std::string name;
  };

  /// Runs ops [0, end_op). With run_all_checks, every kCheckNumeric op
  /// executes (EvalAllColumns semantics); otherwise only the final op
  /// (column j's own check) does.
  Status Exec(const Context& ctx, std::size_t n, std::size_t end_op,
              bool run_all_checks, BatchScratch& scratch) const;

  std::vector<BatchOp> ops_;
  std::vector<ColumnInfo> columns_;
  std::uint32_t num_regs_ = 0;
  std::uint32_t num_masks_ = 0;
};

using BatchProgramPtr = std::shared_ptr<const BatchProgram>;

/// Compiles a row program (inner subquery columns first, then outer
/// columns that may reference them and each other) into a BatchProgram.
/// On failure the status message is the fallback reason — the expression
/// is valid for the interpreter but has no bit-identical batch form.
Result<BatchProgramPtr> CompileBatchProgram(
    std::span<const ExprPtr> inner_exprs, std::span<const ExprPtr> outer_exprs,
    std::span<const std::string> outer_names);

}  // namespace jigsaw::pdb
