#pragma once

/// \file operators.h
/// Volcano-style (open/next/close) physical operators over boxed rows —
/// the query-execution substrate of the mini-MCDB layer. Queries over a
/// sampled possible world run through these operators; the layered engine
/// of Figure 7 additionally re-plans and re-interprets them per
/// invocation, which is precisely the overhead the paper's lightweight
/// prototype avoided.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdb/batch_program.h"
#include "pdb/expr.h"
#include "pdb/table.h"
#include "util/status.h"

namespace jigsaw::pdb {

class PlanNode {
 public:
  virtual ~PlanNode() = default;

  virtual const Schema& schema() const = 0;

  /// Prepares for iteration under `ctx` (same context drives stochastic
  /// expressions in children).
  virtual Status Open(EvalContext& ctx) = 0;

  /// Produces the next row into *out; returns false when exhausted.
  virtual Result<bool> Next(Row* out) = 0;

  virtual void Close() = 0;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// Scans a materialized (deterministic) table.
PlanNodePtr MakeTableScan(const Table* table);

/// Scans a table owned by the node (used for generated worlds).
PlanNodePtr MakeOwnedTableScan(Table table);

/// One-row, zero-column relation (SELECT without FROM — "DUAL").
PlanNodePtr MakeDualScan();

/// Computes the doubles of a one-row scan at Open time under the world's
/// EvalContext (the node guarantees a seed vector is present).
using SingleRowFn = std::function<Status(EvalContext&, std::vector<double>*)>;

/// One-row all-double leaf over a row program: `fill` evaluates the row
/// at Open; a context without a seed vector is an ExecutionError (row
/// programs are stochastic). Shared by the interpreted and compiled scan
/// variants so their contract cannot drift.
PlanNodePtr MakeSingleRowScan(Schema schema, SingleRowFn fill);

/// One-row leaf producing the output columns of a compiled BatchProgram
/// for the context's (params, sample_id, stream_salt) — batch width 1.
/// This is how compiled row programs ride inside Volcano plans (the
/// possible-worlds executors hand one plan per world); bit-identical to
/// projecting the interpreted expressions.
PlanNodePtr MakeBatchProgramScan(BatchProgramPtr program);

/// sigma(predicate).
PlanNodePtr MakeFilter(PlanNodePtr input, ExprPtr predicate);

/// pi(exprs AS names). Later expressions may reference earlier aliases of
/// the same projection (Figure 1 semantics).
PlanNodePtr MakeProject(PlanNodePtr input, std::vector<ExprPtr> exprs,
                        std::vector<std::string> names);

/// Nested-loop inner join with an arbitrary predicate over the
/// concatenated row.
PlanNodePtr MakeNestedLoopJoin(PlanNodePtr left, PlanNodePtr right,
                               ExprPtr predicate);

/// Hash equi-join: left_keys[i] == right_keys[i] (column indexes).
PlanNodePtr MakeHashJoin(PlanNodePtr left, PlanNodePtr right,
                         std::vector<std::size_t> left_keys,
                         std::vector<std::size_t> right_keys);

enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

struct AggSpec {
  AggKind kind = AggKind::kSum;
  ExprPtr arg;  ///< null for COUNT(*)
  std::string name;
};

/// Hash aggregation: GROUP BY group_exprs, computing aggs. With no group
/// expressions, produces a single global-aggregate row.
PlanNodePtr MakeHashAggregate(PlanNodePtr input,
                              std::vector<ExprPtr> group_exprs,
                              std::vector<std::string> group_names,
                              std::vector<AggSpec> aggs);

/// ORDER BY key columns (ascending per flag).
struct SortKey {
  std::size_t column = 0;
  bool ascending = true;
};
PlanNodePtr MakeSort(PlanNodePtr input, std::vector<SortKey> keys);

/// LIMIT n.
PlanNodePtr MakeLimit(PlanNodePtr input, std::size_t limit);

/// Drains a plan into a materialized table.
Result<Table> ExecuteToTable(PlanNode& plan, EvalContext& ctx);

}  // namespace jigsaw::pdb
