#include "pdb/monte_carlo.h"

#include <vector>

namespace jigsaw::pdb {

Result<MonteCarloResult> MonteCarloExecutor::Run(
    const PlanFactory& make_plan, std::span<const double> params) {
  MonteCarloResult result;
  std::vector<Estimator> estimators;
  std::vector<std::string> names;

  for (std::size_t world = 0; world < config_.num_samples; ++world) {
    JIGSAW_ASSIGN_OR_RETURN(PlanNodePtr plan, make_plan());
    EvalContext ctx;
    ctx.params = params;
    ctx.sample_id = world;
    ctx.seeds = &seeds_;
    JIGSAW_ASSIGN_OR_RETURN(Table t, ExecuteToTable(*plan, ctx));
    if (t.num_rows() != 1) {
      return Status::ExecutionError(
          "Monte Carlo world query must produce exactly one row, got " +
          std::to_string(t.num_rows()));
    }
    if (estimators.empty()) {
      for (std::size_t c = 0; c < t.schema().num_columns(); ++c) {
        names.push_back(t.schema().column(c).name);
        estimators.emplace_back(config_.keep_samples,
                                config_.histogram_bins);
      }
    }
    const Row& row = t.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].IsNumeric()) estimators[c].Add(row[c].AsDouble());
    }
    ++result.worlds;
  }

  for (std::size_t c = 0; c < estimators.size(); ++c) {
    result.columns.emplace(names[c], estimators[c].Finalize());
  }
  return result;
}

}  // namespace jigsaw::pdb
