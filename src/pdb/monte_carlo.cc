#include "pdb/monte_carlo.h"

#include <algorithm>
#include <vector>

#include "util/string_util.h"

namespace jigsaw::pdb {

namespace {

/// Output layout locked on world 0: which schema columns exist, which of
/// them are numeric, and the result name of each numeric slot.
struct WorldLayout {
  std::size_t num_columns = 0;
  std::vector<bool> numeric;        ///< per schema column
  std::vector<std::string> names;   ///< numeric columns only, in order
};

Status CheckOneRow(const Table& t) {
  if (t.num_rows() != 1) {
    return Status::ExecutionError(
        "Monte Carlo world query must produce exactly one row, got " +
        std::to_string(t.num_rows()));
  }
  return Status::OK();
}

/// Validates one world's row against the locked layout and appends its
/// numeric values (in slot order) to `buffers`.
Status FoldRow(const Table& t, std::size_t world, const WorldLayout& layout,
               std::vector<std::vector<double>>& buffers) {
  JIGSAW_RETURN_IF_ERROR(CheckOneRow(t));
  if (t.schema().num_columns() != layout.num_columns) {
    return Status::ExecutionError(StrFormat(
        "world %zu produced %zu column(s); world 0 produced %zu", world,
        t.schema().num_columns(), layout.num_columns));
  }
  const Row& row = t.row(0);
  std::size_t slot = 0;
  for (std::size_t c = 0; c < row.size(); ++c) {
    const bool numeric = row[c].IsNumeric();
    if (numeric != layout.numeric[c]) {
      return Status::ExecutionError(StrFormat(
          "column '%s' is %s in world %zu but %s in world 0; a column's "
          "type must not depend on the sampled world",
          t.schema().column(c).name.c_str(),
          numeric ? "numeric" : "non-numeric", world,
          layout.numeric[c] ? "numeric" : "non-numeric"));
    }
    if (numeric) buffers[slot++].push_back(row[c].AsDouble());
  }
  return Status::OK();
}

/// Chunk scaffold shared by FoldWorlds and FoldWorldSpans: partitions
/// [0, num_worlds) into batch_size chunks, fills each chunk's per-column
/// staging buffers via `fill_chunk` (fanned out on `pool` when present),
/// scans chunk statuses in index order — a fill stops at (and reports)
/// its lowest failing world, and every earlier world lives in an
/// earlier-or-equal chunk, so the surfaced error matches the serial
/// world-at-a-time run regardless of schedule — then merges the buffers
/// through Estimator::AddSpan in chunk order, which is bit-identical to
/// a world-at-a-time fold for any chunk partition.
Result<std::map<std::string, OutputMetrics>> FoldChunkedStages(
    std::size_t num_worlds, std::span<const std::string> column_names,
    const RunConfig& config, ThreadPool* pool,
    const std::function<Status(std::size_t chunk, std::size_t begin,
                               std::size_t end,
                               std::vector<std::vector<double>>& buffers)>&
        fill_chunk) {
  std::map<std::string, OutputMetrics> out;
  const std::size_t batch = std::max<std::size_t>(1, config.batch_size);
  const std::size_t num_chunks = (num_worlds + batch - 1) / batch;
  const std::size_t width = column_names.size();

  // stage[chunk][slot] holds chunk `chunk`'s samples of output column
  // `slot` in world order.
  std::vector<std::vector<std::vector<double>>> stage(
      num_chunks, std::vector<std::vector<double>>(width));
  std::vector<Status> chunk_status(num_chunks, Status::OK());

  auto run_chunk = [&](std::size_t chunk) {
    const std::size_t begin = chunk * batch;
    const std::size_t end = std::min(begin + batch, num_worlds);
    chunk_status[chunk] = fill_chunk(chunk, begin, end, stage[chunk]);
  };

  if (pool != nullptr && num_chunks >= 2) {
    pool->ParallelFor(num_chunks, run_chunk);
  } else {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      run_chunk(c);
      if (!chunk_status[c].ok()) break;
    }
  }

  for (Status& s : chunk_status) {
    JIGSAW_RETURN_IF_ERROR(std::move(s));
  }

  std::vector<Estimator> estimators(
      width, Estimator(config.keep_samples, config.histogram_bins));
  for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
    for (std::size_t slot = 0; slot < width; ++slot) {
      estimators[slot].AddSpan(stage[chunk][slot]);
    }
    // Release each chunk as it folds: the estimators accumulate their own
    // copy, so keeping the staging around would double peak memory.
    stage[chunk] = {};
  }
  for (std::size_t slot = 0; slot < width; ++slot) {
    out.emplace(column_names[slot], estimators[slot].Finalize());
  }
  return out;
}

}  // namespace

Result<std::map<std::string, OutputMetrics>> FoldWorlds(
    std::size_t num_worlds, const RunConfig& config, ThreadPool* pool,
    const WorldFn& run_world) {
  if (num_worlds == 0) return std::map<std::string, OutputMetrics>{};

  // World 0 runs up front to lock the column layout; every later world is
  // validated against it, so a type that flips across worlds fails loudly
  // instead of silently dropping samples from one column's statistics.
  JIGSAW_ASSIGN_OR_RETURN(Table first, run_world(0));
  JIGSAW_RETURN_IF_ERROR(CheckOneRow(first));
  WorldLayout layout;
  layout.num_columns = first.schema().num_columns();
  {
    const Row& row = first.row(0);
    for (std::size_t c = 0; c < layout.num_columns; ++c) {
      const bool numeric = row[c].IsNumeric();
      layout.numeric.push_back(numeric);
      if (numeric) layout.names.push_back(first.schema().column(c).name);
    }
  }

  // Chunk 0 starts from world 0's already-materialized row so the chunk
  // partition covers [0, num_worlds) exactly.
  auto fill_chunk = [&](std::size_t chunk, std::size_t begin,
                        std::size_t end,
                        std::vector<std::vector<double>>& buffers) {
    for (auto& b : buffers) b.reserve(end - begin);
    if (chunk == 0) JIGSAW_RETURN_IF_ERROR(FoldRow(first, 0, layout, buffers));
    for (std::size_t world = std::max<std::size_t>(begin, 1); world < end;
         ++world) {
      auto t = run_world(world);
      JIGSAW_RETURN_IF_ERROR(t.ok()
                                 ? FoldRow(t.value(), world, layout, buffers)
                                 : t.status());
    }
    return Status::OK();
  };
  return FoldChunkedStages(num_worlds, layout.names, config, pool,
                           fill_chunk);
}

Result<std::map<std::string, OutputMetrics>> FoldWorldSpans(
    std::span<const std::string> column_names, std::size_t num_worlds,
    const RunConfig& config, ThreadPool* pool, const WorldSpanFn& run_span) {
  if (num_worlds == 0) return std::map<std::string, OutputMetrics>{};
  auto fill_chunk = [&](std::size_t /*chunk*/, std::size_t begin,
                        std::size_t end,
                        std::vector<std::vector<double>>& buffers) {
    const std::size_t count = end - begin;
    std::vector<double*> columns(buffers.size());
    for (std::size_t slot = 0; slot < buffers.size(); ++slot) {
      buffers[slot].resize(count);
      columns[slot] = buffers[slot].data();
    }
    return run_span(begin, count, columns);
  };
  return FoldChunkedStages(num_worlds, column_names, config, pool,
                           fill_chunk);
}

Result<MonteCarloResult> MonteCarloExecutor::Run(
    const PlanFactory& make_plan, std::span<const double> params) {
  auto run_world = [&](std::size_t world) -> Result<Table> {
    JIGSAW_ASSIGN_OR_RETURN(PlanNodePtr plan, make_plan());
    EvalContext ctx;
    ctx.params = params;
    ctx.sample_id = world;
    ctx.seeds = &seeds_;
    return ExecuteToTable(*plan, ctx);
  };
  MonteCarloResult result;
  JIGSAW_ASSIGN_OR_RETURN(
      result.columns,
      FoldWorlds(config_.num_samples, config_, pool_.get(), run_world));
  result.worlds = config_.num_samples;
  return result;
}

Result<MonteCarloResult> MonteCarloExecutor::RunSpans(
    std::span<const std::string> column_names, const WorldSpanFn& run_span) {
  MonteCarloResult result;
  JIGSAW_ASSIGN_OR_RETURN(
      result.columns, FoldWorldSpans(column_names, config_.num_samples,
                                     config_, pool_.get(), run_span));
  result.worlds = config_.num_samples;
  return result;
}

}  // namespace jigsaw::pdb
