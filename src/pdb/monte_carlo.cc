#include "pdb/monte_carlo.h"

#include <algorithm>
#include <vector>

#include "util/string_util.h"

namespace jigsaw::pdb {

namespace {

/// Output layout locked on world 0: which schema columns exist, which of
/// them are numeric, and the result name of each numeric slot.
struct WorldLayout {
  std::size_t num_columns = 0;
  std::vector<bool> numeric;        ///< per schema column
  std::vector<std::string> names;   ///< numeric columns only, in order
};

Status CheckOneRow(const Table& t) {
  if (t.num_rows() != 1) {
    return Status::ExecutionError(
        "Monte Carlo world query must produce exactly one row, got " +
        std::to_string(t.num_rows()));
  }
  return Status::OK();
}

/// Validates one world's row against the locked layout and appends its
/// numeric values (in slot order) to `buffers`.
Status FoldRow(const Table& t, std::size_t world, const WorldLayout& layout,
               std::vector<std::vector<double>>& buffers) {
  JIGSAW_RETURN_IF_ERROR(CheckOneRow(t));
  if (t.schema().num_columns() != layout.num_columns) {
    return Status::ExecutionError(StrFormat(
        "world %zu produced %zu column(s); world 0 produced %zu", world,
        t.schema().num_columns(), layout.num_columns));
  }
  const Row& row = t.row(0);
  std::size_t slot = 0;
  for (std::size_t c = 0; c < row.size(); ++c) {
    const bool numeric = row[c].IsNumeric();
    if (numeric != layout.numeric[c]) {
      return Status::ExecutionError(StrFormat(
          "column '%s' is %s in world %zu but %s in world 0; a column's "
          "type must not depend on the sampled world",
          t.schema().column(c).name.c_str(),
          numeric ? "numeric" : "non-numeric", world,
          layout.numeric[c] ? "numeric" : "non-numeric"));
    }
    if (numeric) buffers[slot++].push_back(row[c].AsDouble());
  }
  return Status::OK();
}

}  // namespace

Result<std::map<std::string, OutputMetrics>> FoldWorlds(
    std::size_t num_worlds, const RunConfig& config, ThreadPool* pool,
    const WorldFn& run_world) {
  std::map<std::string, OutputMetrics> out;
  if (num_worlds == 0) return out;

  const std::size_t batch = std::max<std::size_t>(1, config.batch_size);
  const std::size_t num_chunks = (num_worlds + batch - 1) / batch;

  // World 0 runs up front to lock the column layout; every later world is
  // validated against it, so a type that flips across worlds fails loudly
  // instead of silently dropping samples from one column's statistics.
  JIGSAW_ASSIGN_OR_RETURN(Table first, run_world(0));
  JIGSAW_RETURN_IF_ERROR(CheckOneRow(first));
  WorldLayout layout;
  layout.num_columns = first.schema().num_columns();
  {
    const Row& row = first.row(0);
    for (std::size_t c = 0; c < layout.num_columns; ++c) {
      const bool numeric = row[c].IsNumeric();
      layout.numeric.push_back(numeric);
      if (numeric) layout.names.push_back(first.schema().column(c).name);
    }
  }
  const std::size_t width = layout.names.size();

  // stage[chunk][slot] holds chunk `chunk`'s samples of numeric column
  // `slot` in world order; chunk 0 is pre-seeded with world 0's row so
  // the chunk partition covers [0, num_worlds) exactly.
  std::vector<std::vector<std::vector<double>>> stage(
      num_chunks, std::vector<std::vector<double>>(width));
  std::vector<Status> chunk_status(num_chunks, Status::OK());
  JIGSAW_RETURN_IF_ERROR(FoldRow(first, 0, layout, stage[0]));

  auto run_chunk = [&](std::size_t chunk) {
    const std::size_t begin = chunk * batch;
    const std::size_t end = std::min(begin + batch, num_worlds);
    auto& buffers = stage[chunk];
    for (auto& b : buffers) b.reserve(end - begin);
    for (std::size_t world = std::max<std::size_t>(begin, 1); world < end;
         ++world) {
      auto t = run_world(world);
      Status s = t.ok() ? FoldRow(t.value(), world, layout, buffers)
                        : t.status();
      if (!s.ok()) {
        chunk_status[chunk] = std::move(s);
        return;
      }
    }
  };

  if (pool != nullptr && num_chunks >= 2) {
    pool->ParallelFor(num_chunks, run_chunk);
  } else {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      run_chunk(c);
      if (!chunk_status[c].ok()) break;
    }
  }

  // The first failing chunk carries the lowest failing world: chunks scan
  // their worlds in order and stop at the first error, and every world
  // before that one lives in an earlier-or-equal chunk — so the reported
  // error matches the serial run's regardless of schedule.
  for (Status& s : chunk_status) {
    JIGSAW_RETURN_IF_ERROR(std::move(s));
  }

  // Merge in chunk index order: AddSpan folds element-wise in order, so
  // any chunk partition yields the same bits as a world-at-a-time fold.
  std::vector<Estimator> estimators(
      width, Estimator(config.keep_samples, config.histogram_bins));
  for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
    for (std::size_t slot = 0; slot < width; ++slot) {
      estimators[slot].AddSpan(stage[chunk][slot]);
    }
    // Release each chunk as it folds: the estimators accumulate their own
    // copy, so keeping the staging around would double peak memory.
    stage[chunk] = {};
  }
  for (std::size_t slot = 0; slot < width; ++slot) {
    out.emplace(layout.names[slot], estimators[slot].Finalize());
  }
  return out;
}

Result<MonteCarloResult> MonteCarloExecutor::Run(
    const PlanFactory& make_plan, std::span<const double> params) {
  auto run_world = [&](std::size_t world) -> Result<Table> {
    JIGSAW_ASSIGN_OR_RETURN(PlanNodePtr plan, make_plan());
    EvalContext ctx;
    ctx.params = params;
    ctx.sample_id = world;
    ctx.seeds = &seeds_;
    return ExecuteToTable(*plan, ctx);
  };
  MonteCarloResult result;
  JIGSAW_ASSIGN_OR_RETURN(
      result.columns,
      FoldWorlds(config_.num_samples, config_, pool_.get(), run_world));
  result.worlds = config_.num_samples;
  return result;
}

}  // namespace jigsaw::pdb
