#include "pdb/monte_carlo.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "util/string_util.h"

namespace jigsaw::pdb {

namespace internal {
std::size_t g_fold_staged_budget_override = 0;

Status FoldChunkColumn(const ColumnChunk& col, std::size_t first,
                       std::size_t last, const std::string& name,
                       Estimator* est) {
  if (col.null_count() != 0) {
    for (std::size_t r = first; r < last; ++r) {
      if (col.IsNull(r)) {
        return Status::ExecutionError("column '" + name + "' is not numeric");
      }
    }
  }
  switch (col.type()) {
    case ValueType::kDouble:
      est->AddSpan(col.Doubles().subspan(first, last - first));
      return Status::OK();
    case ValueType::kInt: {
      std::vector<double> widened;
      widened.reserve(last - first);
      for (std::size_t r = first; r < last; ++r) {
        widened.push_back(static_cast<double>(col.Ints()[r]));
      }
      est->AddSpan(widened);
      return Status::OK();
    }
    case ValueType::kBool: {
      std::vector<double> widened;
      widened.reserve(last - first);
      for (std::size_t r = first; r < last; ++r) {
        widened.push_back(col.Bools()[r] != 0 ? 1.0 : 0.0);
      }
      est->AddSpan(widened);
      return Status::OK();
    }
    case ValueType::kString:
    case ValueType::kNull:
      return Status::ExecutionError("column '" + name + "' is not numeric");
  }
  return Status::OK();
}
}  // namespace internal

namespace {

/// Output layout locked on world 0: which schema columns exist, which of
/// them are numeric, and the result name of each numeric slot.
struct WorldLayout {
  std::size_t num_columns = 0;
  std::vector<bool> numeric;        ///< per schema column
  std::vector<std::string> names;   ///< numeric columns only, in order
};

Status CheckOneRow(const Table& t) {
  if (t.num_rows() != 1) {
    return Status::ExecutionError(
        "Monte Carlo world query must produce exactly one row, got " +
        std::to_string(t.num_rows()));
  }
  return Status::OK();
}

/// Validates one world's row against the locked layout and appends its
/// numeric values (in slot order) to `buffers`.
Status FoldRow(const Table& t, std::size_t world, const WorldLayout& layout,
               std::vector<std::vector<double>>& buffers) {
  JIGSAW_RETURN_IF_ERROR(CheckOneRow(t));
  if (t.schema().num_columns() != layout.num_columns) {
    return Status::ExecutionError(StrFormat(
        "world %zu produced %zu column(s); world 0 produced %zu", world,
        t.schema().num_columns(), layout.num_columns));
  }
  const Row& row = t.row(0);
  std::size_t slot = 0;
  for (std::size_t c = 0; c < row.size(); ++c) {
    const bool numeric = row[c].IsNumeric();
    if (numeric != layout.numeric[c]) {
      return Status::ExecutionError(StrFormat(
          "column '%s' is %s in world %zu but %s in world 0; a column's "
          "type must not depend on the sampled world",
          t.schema().column(c).name.c_str(),
          numeric ? "numeric" : "non-numeric", world,
          layout.numeric[c] ? "numeric" : "non-numeric"));
    }
    if (numeric) buffers[slot++].push_back(row[c].AsDouble());
  }
  return Status::OK();
}

/// One sweep point of the chunk grid: its numeric column names, or the
/// error that prevented locking its layout (a failed world-0 prepass). A
/// point with a non-OK status schedules no chunk work; its error
/// surfaces at the point's slot in the (point, chunk) scan.
struct GridPoint {
  Status status = Status::OK();
  std::vector<std::string> names;
};

/// Prefixes sweep errors with the failing point so two-axis failures name
/// both coordinates; single-axis folds pass name_points=false and keep
/// the raw message.
Status NamePoint(bool name_points, std::size_t point, Status status) {
  if (!name_points) return status;
  return NameSweepPoint(point, std::move(status));
}

/// Chunk-grid scaffold shared by every possible-worlds fold, one- and
/// two-axis: partitions each point's [0, num_worlds) into batch_size
/// chunks and fills every (point, chunk) cell's per-column staging
/// buffers via `fill_cell` — all cells fan out on `pool` at once when it
/// is present, while a serial run stops at the first failing cell in
/// (point, chunk) order. Cell statuses are then scanned in (point, chunk)
/// order — a fill stops at (and reports) its lowest failing world, and
/// every earlier world of the same point lives in an earlier-or-equal
/// chunk, so the surfaced error matches the serial point-by-point,
/// world-at-a-time loop regardless of schedule. Finally each point's
/// buffers merge through Estimator::AddSpan in chunk order, which is
/// bit-identical to a world-at-a-time fold for any chunk partition — and
/// per point bit-identical to a standalone single-point fold, since a
/// point's staging never depends on its neighbours. Points stream
/// through bounded-memory windows rather than staging the whole grid at
/// once.
Result<std::vector<std::map<std::string, OutputMetrics>>> FoldChunkGrid(
    std::vector<GridPoint>& points, std::size_t num_worlds,
    const RunConfig& config, ThreadPool* pool, bool name_points,
    const std::function<Status(std::size_t point, std::size_t begin,
                               std::size_t end,
                               std::vector<std::vector<double>>& buffers)>&
        fill_cell) {
  const std::size_t num_points = points.size();
  const std::size_t batch = std::max<std::size_t>(1, config.batch_size);
  const std::size_t num_chunks = (num_worlds + batch - 1) / batch;

  // Points are processed in windows so the staging footprint stays
  // bounded no matter how many points the sweep has: ~128 MB of staged
  // doubles in flight, never less than one point (a one-point window
  // peaks exactly like the standalone statement). Per-point results are
  // independent, windows run in point order and the first failing window
  // returns before any later one evaluates, so windowing changes neither
  // the merged values nor the surfaced error.
  std::size_t width_max = 0;
  for (const auto& p : points) {
    width_max = std::max(width_max, p.names.size());
  }
  constexpr std::size_t kStagedBudget = std::size_t{1} << 24;  // doubles
  const std::size_t budget = internal::g_fold_staged_budget_override != 0
                                 ? internal::g_fold_staged_budget_override
                                 : kStagedBudget;
  const std::size_t per_point =
      std::max<std::size_t>(1, num_worlds * std::max<std::size_t>(
                                                1, width_max));
  const std::size_t window = std::max<std::size_t>(1, budget / per_point);

  std::vector<std::map<std::string, OutputMetrics>> out;
  out.reserve(num_points);
  // stage[(point - first) * num_chunks + chunk][slot] holds that cell's
  // samples of output column `slot` in world order.
  std::vector<std::vector<std::vector<double>>> stage;
  std::vector<Status> cell_status;
  for (std::size_t first = 0; first < num_points; first += window) {
    const std::size_t last = std::min(first + window, num_points);
    const std::size_t num_cells = (last - first) * num_chunks;
    stage.assign(num_cells, {});
    for (std::size_t cell = 0; cell < num_cells; ++cell) {
      stage[cell].resize(points[first + cell / num_chunks].names.size());
    }
    cell_status.assign(num_cells, Status::OK());

    auto run_cell = [&](std::size_t cell) {
      const std::size_t point = first + cell / num_chunks;
      if (!points[point].status.ok()) return;  // layout never locked
      const std::size_t chunk = cell % num_chunks;
      const std::size_t begin = chunk * batch;
      const std::size_t end = std::min(begin + batch, num_worlds);
      cell_status[cell] = fill_cell(point, begin, end, stage[cell]);
    };

    if (pool != nullptr && num_cells >= 2) {
      pool->ParallelFor(num_cells, run_cell);
    } else {
      for (std::size_t cell = 0; cell < num_cells; ++cell) {
        if (!points[first + cell / num_chunks].status.ok()) break;
        run_cell(cell);
        if (!cell_status[cell].ok()) break;
      }
    }

    for (std::size_t point = first; point < last; ++point) {
      if (!points[point].status.ok()) {
        return NamePoint(name_points, point,
                         std::move(points[point].status));
      }
      for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
        Status& s = cell_status[(point - first) * num_chunks + chunk];
        if (!s.ok()) return NamePoint(name_points, point, std::move(s));
      }
    }
    for (std::size_t point = first; point < last; ++point) {
      const std::size_t width = points[point].names.size();
      std::vector<Estimator> estimators(
          width, Estimator(config.keep_samples, config.histogram_bins));
      for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
        const std::size_t cell = (point - first) * num_chunks + chunk;
        for (std::size_t slot = 0; slot < width; ++slot) {
          estimators[slot].AddSpan(stage[cell][slot]);
        }
        // Release each cell as it folds: the estimators accumulate their
        // own copy, so keeping the staging around would double the peak.
        stage[cell] = {};
      }
      std::map<std::string, OutputMetrics> columns;
      for (std::size_t slot = 0; slot < width; ++slot) {
        columns.emplace(points[point].names[slot],
                        estimators[slot].Finalize());
      }
      out.push_back(std::move(columns));
    }
  }
  return out;
}

/// Boxed-plan fold over the cell grid. World 0 of every point runs up
/// front (fanned out on the pool when present) to lock that point's
/// layout; chunk 0 of each point then reuses the already-materialized
/// row so the chunk partition covers [0, num_worlds) exactly.
Result<std::vector<std::map<std::string, OutputMetrics>>> FoldPointWorldsImpl(
    std::size_t num_points, std::size_t num_worlds, const RunConfig& config,
    ThreadPool* pool, const PointWorldFn& run_world, bool name_points) {
  if (num_worlds == 0) {
    return std::vector<std::map<std::string, OutputMetrics>>(num_points);
  }

  struct PointState {
    WorldLayout layout;
    std::optional<Table> first;  // world 0's materialized row
  };
  std::vector<GridPoint> points(num_points);
  std::vector<PointState> states(num_points);
  auto lock_point = [&](std::size_t point) {
    // World 0 locks this point's column layout; every later world is
    // validated against it, so a type that flips across worlds (or
    // points) fails loudly instead of silently skewing one column.
    auto first = run_world(point, 0);
    if (!first.ok()) {
      points[point].status = first.status();
      return;
    }
    if (Status s = CheckOneRow(first.value()); !s.ok()) {
      points[point].status = std::move(s);
      return;
    }
    PointState& st = states[point];
    st.first = std::move(first).value();
    st.layout.num_columns = st.first->schema().num_columns();
    const Row& row = st.first->row(0);
    for (std::size_t c = 0; c < st.layout.num_columns; ++c) {
      const bool numeric = row[c].IsNumeric();
      st.layout.numeric.push_back(numeric);
      if (numeric) {
        st.layout.names.push_back(st.first->schema().column(c).name);
      }
    }
    points[point].names = st.layout.names;
  };
  // The prepasses touch independent per-point slots and the status scan
  // in FoldChunkGrid picks the surfaced error in point order regardless
  // of schedule, so they fan out too. The serial run stops at the first
  // failure like the point-by-point loop it mirrors — the surfaced error
  // can only live at an earlier-or-equal point, and the scan returns it
  // before any never-locked point would fold.
  if (pool != nullptr && num_points >= 2) {
    pool->ParallelFor(num_points, lock_point);
  } else {
    for (std::size_t point = 0; point < num_points; ++point) {
      lock_point(point);
      if (!points[point].status.ok()) break;
    }
  }

  auto fill_cell = [&](std::size_t point, std::size_t begin, std::size_t end,
                       std::vector<std::vector<double>>& buffers) {
    const PointState& st = states[point];
    for (auto& b : buffers) b.reserve(end - begin);
    if (begin == 0) {
      JIGSAW_RETURN_IF_ERROR(FoldRow(*st.first, 0, st.layout, buffers));
    }
    for (std::size_t world = std::max<std::size_t>(begin, 1); world < end;
         ++world) {
      auto t = run_world(point, world);
      JIGSAW_RETURN_IF_ERROR(
          t.ok() ? FoldRow(t.value(), world, st.layout, buffers)
                 : t.status());
    }
    return Status::OK();
  };
  return FoldChunkGrid(points, num_worlds, config, pool, name_points,
                       fill_cell);
}

/// Span fold over the cell grid: the layout is statically known and
/// all-numeric, so there is no world-0 prepass.
Result<std::vector<std::map<std::string, OutputMetrics>>>
FoldPointWorldSpansImpl(std::span<const std::string> column_names,
                        std::size_t num_points, std::size_t num_worlds,
                        const RunConfig& config, ThreadPool* pool,
                        const PointWorldSpanFn& run_span, bool name_points) {
  if (num_worlds == 0) {
    return std::vector<std::map<std::string, OutputMetrics>>(num_points);
  }
  std::vector<GridPoint> points(num_points);
  for (auto& p : points) {
    p.names.assign(column_names.begin(), column_names.end());
  }
  auto fill_cell = [&](std::size_t point, std::size_t begin, std::size_t end,
                       std::vector<std::vector<double>>& buffers) {
    const std::size_t count = end - begin;
    std::vector<double*> columns(buffers.size());
    for (std::size_t slot = 0; slot < buffers.size(); ++slot) {
      buffers[slot].resize(count);
      columns[slot] = buffers[slot].data();
    }
    return run_span(point, begin, count, columns);
  };
  return FoldChunkGrid(points, num_worlds, config, pool, name_points,
                       fill_cell);
}

}  // namespace

Status NameSweepPoint(std::size_t point, Status status) {
  return Status(status.code(),
                StrFormat("sweep point %zu: %s", point,
                          status.message().c_str()));
}

Result<std::map<std::string, OutputMetrics>> FoldWorlds(
    std::size_t num_worlds, const RunConfig& config, ThreadPool* pool,
    const WorldFn& run_world) {
  // The single-point case of the grid fold; errors keep their raw
  // (unnamed) messages.
  JIGSAW_ASSIGN_OR_RETURN(
      auto points,
      FoldPointWorldsImpl(
          1, num_worlds, config, pool,
          [&](std::size_t, std::size_t world) { return run_world(world); },
          /*name_points=*/false));
  return std::move(points[0]);
}

Result<std::map<std::string, OutputMetrics>> FoldWorldSpans(
    std::span<const std::string> column_names, std::size_t num_worlds,
    const RunConfig& config, ThreadPool* pool, const WorldSpanFn& run_span) {
  JIGSAW_ASSIGN_OR_RETURN(
      auto points,
      FoldPointWorldSpansImpl(
          column_names, 1, num_worlds, config, pool,
          [&](std::size_t, std::size_t begin, std::size_t count,
              std::span<double* const> columns) {
            return run_span(begin, count, columns);
          },
          /*name_points=*/false));
  return std::move(points[0]);
}

Result<std::vector<std::map<std::string, OutputMetrics>>> FoldPointWorlds(
    std::size_t num_points, std::size_t num_worlds, const RunConfig& config,
    ThreadPool* pool, const PointWorldFn& run_world) {
  // A one-point sweep IS the standalone statement: its error must stay
  // byte-identical to FoldWorlds, so the coordinate prefix only appears
  // when there is more than one point to disambiguate.
  return FoldPointWorldsImpl(num_points, num_worlds, config, pool, run_world,
                             /*name_points=*/num_points > 1);
}

Result<std::vector<std::map<std::string, OutputMetrics>>>
FoldPointWorldSpans(std::span<const std::string> column_names,
                    std::size_t num_points, std::size_t num_worlds,
                    const RunConfig& config, ThreadPool* pool,
                    const PointWorldSpanFn& run_span) {
  return FoldPointWorldSpansImpl(column_names, num_points, num_worlds,
                                 config, pool, run_span,
                                 /*name_points=*/num_points > 1);
}

Result<std::map<std::string, OutputMetrics>> FoldVGColumns(
    const VGTableFunction& fn, std::span<const std::string> column_names,
    std::size_t num_worlds, const SeedVector& seeds, const RunConfig& config,
    ThreadPool* pool, WorldCache* cache) {
  // A VG table's schema is world-invariant, so requested columns resolve
  // up front — a bad name or a non-numeric column fails before any
  // realization, on both storage paths, with the boxed error text.
  const Schema& schema = fn.schema();
  std::vector<std::size_t> slots;
  slots.reserve(column_names.size());
  for (const auto& name : column_names) {
    JIGSAW_ASSIGN_OR_RETURN(std::size_t idx, schema.IndexOf(name));
    const ValueType t = schema.column(idx).type;
    if (t != ValueType::kDouble && t != ValueType::kInt &&
        t != ValueType::kBool) {
      return Status::ExecutionError("column '" + name + "' is not numeric");
    }
    slots.push_back(idx);
  }

  const std::size_t batch = std::max<std::size_t>(1, config.batch_size);
  const std::size_t num_chunks =
      num_worlds == 0 ? 0 : (num_worlds + batch - 1) / batch;
  std::vector<Estimator> estimators(
      slots.size(), Estimator(config.keep_samples, config.histogram_bins));

  // The shared tuple-level fold kernel (internal::FoldChunkColumn), bound
  // to this fold's estimator slots.
  auto fold_column = [&](const ColumnChunk& col, std::size_t first,
                         std::size_t last, std::size_t s,
                         const std::string& name) -> Status {
    return internal::FoldChunkColumn(col, first, last, name, &estimators[s]);
  };

  if (config.columnar_storage) {
    // Shard-ownership rule: cell `chunk` is the only writer of its
    // extent, so parallel realization needs no synchronization.
    struct Cell {
      WorldExtent extent;
      std::vector<const ColumnarTable*> cached;
      Status status = Status::OK();
    };
    std::vector<Cell> cells(num_chunks);
    auto run_cell = [&](std::size_t chunk) {
      Cell& cell = cells[chunk];
      const std::size_t begin = chunk * batch;
      const std::size_t end = std::min(begin + batch, num_worlds);
      if (cache != nullptr) {
        cell.cached.reserve(end - begin);
        for (std::size_t w = begin; w < end; ++w) {
          auto r = cache->GetOrGenerateColumnar(fn, w, seeds);
          if (!r.ok()) {
            cell.status = r.status();
            return;
          }
          cell.cached.push_back(r.value());
        }
      } else {
        cell.extent.world_begin = begin;
        for (std::size_t w = begin; w < end; ++w) {
          if (Status s = cell.extent.AppendWorld(fn, w, seeds); !s.ok()) {
            cell.status = std::move(s);
            return;
          }
        }
      }
    };
    if (pool != nullptr && num_chunks >= 2) {
      pool->ParallelFor(num_chunks, run_cell);
    } else {
      for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
        run_cell(chunk);
        if (!cells[chunk].status.ok()) break;
      }
    }
    // Chunk-order scan surfaces the lowest failing world's error, same
    // as the serial loop, regardless of pool schedule.
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      if (!cells[chunk].status.ok()) return std::move(cells[chunk].status);
    }
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      Cell& cell = cells[chunk];
      const std::size_t begin = chunk * batch;
      const std::size_t end = std::min(begin + batch, num_worlds);
      for (std::size_t k = 0; k < end - begin; ++k) {
        for (std::size_t s = 0; s < slots.size(); ++s) {
          if (cache != nullptr) {
            const ColumnarTable& t = *cell.cached[k];
            JIGSAW_RETURN_IF_ERROR(fold_column(t.column(slots[s]), 0,
                                               t.num_rows(), s,
                                               column_names[s]));
          } else {
            const auto [first, last] = cell.extent.WorldRows(k);
            JIGSAW_RETURN_IF_ERROR(fold_column(cell.extent.data.column(
                                                   slots[s]),
                                               first, last, s,
                                               column_names[s]));
          }
        }
      }
      // Release the shard as soon as it folds; the estimators own their
      // accumulation, so keeping extents alive would double the peak.
      cell = Cell{};
    }
  } else {
    // Boxed reference twin: whole Tables, copying NumericColumn
    // extraction, staged per cell and merged in chunk order (AddSpan of
    // a concatenation is bit-identical to per-world AddSpan).
    struct BoxCell {
      std::vector<std::vector<double>> buffers;
      Status status = Status::OK();
    };
    std::vector<BoxCell> cells(num_chunks);
    auto run_cell = [&](std::size_t chunk) {
      BoxCell& cell = cells[chunk];
      cell.buffers.resize(slots.size());
      const std::size_t begin = chunk * batch;
      const std::size_t end = std::min(begin + batch, num_worlds);
      for (std::size_t w = begin; w < end; ++w) {
        const Table* table = nullptr;
        Table local;
        if (cache != nullptr) {
          auto r = cache->GetOrGenerate(fn, w, seeds);
          if (!r.ok()) {
            cell.status = r.status();
            return;
          }
          table = r.value();
        } else {
          auto r = fn.Generate(w, seeds);
          if (!r.ok()) {
            cell.status = r.status();
            return;
          }
          local = std::move(r).value();
          table = &local;
        }
        for (std::size_t s = 0; s < slots.size(); ++s) {
          auto col = table->NumericColumn(column_names[s]);
          if (!col.ok()) {
            cell.status = col.status();
            return;
          }
          const std::vector<double>& values = col.value();
          cell.buffers[s].insert(cell.buffers[s].end(), values.begin(),
                                 values.end());
        }
      }
    };
    if (pool != nullptr && num_chunks >= 2) {
      pool->ParallelFor(num_chunks, run_cell);
    } else {
      for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
        run_cell(chunk);
        if (!cells[chunk].status.ok()) break;
      }
    }
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      if (!cells[chunk].status.ok()) return std::move(cells[chunk].status);
    }
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      for (std::size_t s = 0; s < slots.size(); ++s) {
        estimators[s].AddSpan(cells[chunk].buffers[s]);
      }
      cells[chunk] = BoxCell{};
    }
  }

  std::map<std::string, OutputMetrics> out;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    out.emplace(column_names[s], estimators[s].Finalize());
  }
  return out;
}

Result<MonteCarloResult> MonteCarloExecutor::Run(
    const PlanFactory& make_plan, std::span<const double> params) {
  auto run_world = [&](std::size_t world) -> Result<Table> {
    JIGSAW_ASSIGN_OR_RETURN(PlanNodePtr plan, make_plan());
    EvalContext ctx;
    ctx.params = params;
    ctx.sample_id = world;
    ctx.seeds = &seeds_;
    ctx.columnar_storage = config_.columnar_storage;
    return ExecuteToTable(*plan, ctx);
  };
  MonteCarloResult result;
  JIGSAW_ASSIGN_OR_RETURN(
      result.columns,
      FoldWorlds(config_.num_samples, config_, pool_, run_world));
  result.worlds = config_.num_samples;
  return result;
}

Result<MonteCarloResult> MonteCarloExecutor::RunSpans(
    std::span<const std::string> column_names, const WorldSpanFn& run_span) {
  MonteCarloResult result;
  JIGSAW_ASSIGN_OR_RETURN(
      result.columns, FoldWorldSpans(column_names, config_.num_samples,
                                     config_, pool_, run_span));
  result.worlds = config_.num_samples;
  return result;
}

Result<std::vector<MonteCarloResult>> MonteCarloExecutor::RunSweep(
    const PlanFactory& make_plan,
    std::span<const std::vector<double>> valuations) {
  auto run_world = [&](std::size_t point,
                       std::size_t world) -> Result<Table> {
    JIGSAW_ASSIGN_OR_RETURN(PlanNodePtr plan, make_plan());
    EvalContext ctx;
    ctx.params = valuations[point];
    ctx.sample_id = world;
    ctx.seeds = &seeds_;
    ctx.columnar_storage = config_.columnar_storage;
    return ExecuteToTable(*plan, ctx);
  };
  JIGSAW_ASSIGN_OR_RETURN(
      auto folded, FoldPointWorlds(valuations.size(), config_.num_samples,
                                   config_, pool_, run_world));
  std::vector<MonteCarloResult> out(folded.size());
  for (std::size_t point = 0; point < folded.size(); ++point) {
    out[point].columns = std::move(folded[point]);
    out[point].worlds = config_.num_samples;
  }
  return out;
}

Result<std::vector<MonteCarloResult>> MonteCarloExecutor::RunSweepSpans(
    std::span<const std::string> column_names, std::size_t num_points,
    const PointWorldSpanFn& run_span) {
  JIGSAW_ASSIGN_OR_RETURN(
      auto folded,
      FoldPointWorldSpans(column_names, num_points, config_.num_samples,
                          config_, pool_, run_span));
  std::vector<MonteCarloResult> out(folded.size());
  for (std::size_t point = 0; point < folded.size(); ++point) {
    out[point].columns = std::move(folded[point]);
    out[point].worlds = config_.num_samples;
  }
  return out;
}

}  // namespace jigsaw::pdb
