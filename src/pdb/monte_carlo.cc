#include "pdb/monte_carlo.h"

#include <algorithm>
#include <vector>

namespace jigsaw::pdb {

Result<MonteCarloResult> MonteCarloExecutor::Run(
    const PlanFactory& make_plan, std::span<const double> params) {
  MonteCarloResult result;
  std::vector<Estimator> estimators;
  std::vector<std::string> names;
  // Per-column staging buffers: world outputs accumulate here and fold
  // into the estimators one whole span at a time (bit-identical to
  // per-world Add — the streaming accumulator preserves index order).
  std::vector<std::vector<double>> staged;
  const std::size_t flush_at = std::max<std::size_t>(1, config_.batch_size);

  auto flush = [&](std::size_t c) {
    estimators[c].AddSpan(staged[c]);
    staged[c].clear();
  };

  for (std::size_t world = 0; world < config_.num_samples; ++world) {
    JIGSAW_ASSIGN_OR_RETURN(PlanNodePtr plan, make_plan());
    EvalContext ctx;
    ctx.params = params;
    ctx.sample_id = world;
    ctx.seeds = &seeds_;
    JIGSAW_ASSIGN_OR_RETURN(Table t, ExecuteToTable(*plan, ctx));
    if (t.num_rows() != 1) {
      return Status::ExecutionError(
          "Monte Carlo world query must produce exactly one row, got " +
          std::to_string(t.num_rows()));
    }
    if (estimators.empty()) {
      for (std::size_t c = 0; c < t.schema().num_columns(); ++c) {
        names.push_back(t.schema().column(c).name);
        estimators.emplace_back(config_.keep_samples,
                                config_.histogram_bins);
      }
      staged.resize(estimators.size());
      for (auto& s : staged) s.reserve(flush_at);
    }
    const Row& row = t.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (!row[c].IsNumeric()) continue;
      staged[c].push_back(row[c].AsDouble());
      if (staged[c].size() >= flush_at) flush(c);
    }
    ++result.worlds;
  }

  for (std::size_t c = 0; c < estimators.size(); ++c) {
    flush(c);
    result.columns.emplace(names[c], estimators[c].Finalize());
  }
  return result;
}

}  // namespace jigsaw::pdb
