#include "pdb/expr.h"

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw::pdb {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

namespace {

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : v_(std::move(v)) {}
  Result<Value> Eval(EvalContext&) const override { return v_; }
  std::string ToString() const override { return v_.ToString(); }
  void Accept(ExprVisitor& v) const override { v.VisitLiteral(v_); }

 private:
  Value v_;
};

class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(std::size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}

  Result<Value> Eval(EvalContext& ctx) const override {
    if (ctx.row == nullptr || index_ >= ctx.row->size()) {
      return Status::ExecutionError("column '" + name_ +
                                    "' unavailable in this context");
    }
    return (*ctx.row)[index_];
  }
  std::string ToString() const override { return name_; }
  void Accept(ExprVisitor& v) const override {
    v.VisitColumnRef(index_, name_);
  }

 private:
  std::size_t index_;
  std::string name_;
};

class AliasRefExpr final : public Expr {
 public:
  AliasRefExpr(std::size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}

  Result<Value> Eval(EvalContext& ctx) const override {
    if (ctx.aliases == nullptr || index_ >= ctx.aliases->size()) {
      return Status::ExecutionError("alias '" + name_ +
                                    "' not yet computed");
    }
    return (*ctx.aliases)[index_];
  }
  std::string ToString() const override { return name_; }
  void Accept(ExprVisitor& v) const override {
    v.VisitAliasRef(index_, name_);
  }

 private:
  std::size_t index_;
  std::string name_;
};

class ParamRefExpr final : public Expr {
 public:
  ParamRefExpr(std::size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}

  Result<Value> Eval(EvalContext& ctx) const override {
    if (index_ >= ctx.params.size()) {
      return Status::ExecutionError("parameter '@" + name_ +
                                    "' not bound at execution");
    }
    return Value(ctx.params[index_]);
  }
  std::string ToString() const override { return "@" + name_; }
  void Accept(ExprVisitor& v) const override {
    v.VisitParamRef(index_, name_);
  }

 private:
  std::size_t index_;
  std::string name_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Result<Value> Eval(EvalContext& ctx) const override {
    // Short-circuit logic ops.
    if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
      JIGSAW_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx));
      if (l.is_null()) return Value::Null();
      const bool lb = l.AsBool();
      if (op_ == BinaryOp::kAnd && !lb) return Value(false);
      if (op_ == BinaryOp::kOr && lb) return Value(true);
      JIGSAW_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx));
      if (r.is_null()) return Value::Null();
      return Value(r.AsBool());
    }
    JIGSAW_ASSIGN_OR_RETURN(Value l, left_->Eval(ctx));
    JIGSAW_ASSIGN_OR_RETURN(Value r, right_->Eval(ctx));
    switch (op_) {
      case BinaryOp::kAdd:
        return Add(l, r);
      case BinaryOp::kSub:
        return Subtract(l, r);
      case BinaryOp::kMul:
        return Multiply(l, r);
      case BinaryOp::kDiv:
        return Divide(l, r);
      default:
        break;
    }
    if (l.is_null() || r.is_null()) return Value::Null();
    const int cmp = Value::Compare(l, r);
    switch (op_) {
      case BinaryOp::kLt:
        return Value(cmp < 0);
      case BinaryOp::kLe:
        return Value(cmp <= 0);
      case BinaryOp::kGt:
        return Value(cmp > 0);
      case BinaryOp::kGe:
        return Value(cmp >= 0);
      case BinaryOp::kEq:
        return Value(cmp == 0);
      case BinaryOp::kNe:
        return Value(cmp != 0);
      default:
        return Status::Internal("unhandled binary op");
    }
  }

  std::string ToString() const override {
    return "(" + left_->ToString() + " " + BinaryOpName(op_) + " " +
           right_->ToString() + ")";
  }

  void Accept(ExprVisitor& v) const override {
    v.VisitBinary(op_, *left_, *right_);
  }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}

  Result<Value> Eval(EvalContext& ctx) const override {
    JIGSAW_ASSIGN_OR_RETURN(Value v, operand_->Eval(ctx));
    if (v.is_null()) return Value::Null();
    return Value(!v.AsBool());
  }
  std::string ToString() const override {
    return "NOT " + operand_->ToString();
  }
  void Accept(ExprVisitor& v) const override { v.VisitNot(*operand_); }

 private:
  ExprPtr operand_;
};

class CaseExpr final : public Expr {
 public:
  CaseExpr(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
           ExprPtr else_expr)
      : branches_(std::move(branches)), else_(std::move(else_expr)) {}

  Result<Value> Eval(EvalContext& ctx) const override {
    for (const auto& [cond, result] : branches_) {
      JIGSAW_ASSIGN_OR_RETURN(Value c, cond->Eval(ctx));
      if (!c.is_null() && c.AsBool()) return result->Eval(ctx);
    }
    if (else_) return else_->Eval(ctx);
    return Value::Null();
  }

  std::string ToString() const override {
    std::string out = "CASE";
    for (const auto& [cond, result] : branches_) {
      out += " WHEN " + cond->ToString() + " THEN " + result->ToString();
    }
    if (else_) out += " ELSE " + else_->ToString();
    return out + " END";
  }

  void Accept(ExprVisitor& v) const override {
    v.VisitCase(branches_, else_.get());
  }

 private:
  std::vector<std::pair<ExprPtr, ExprPtr>> branches_;
  ExprPtr else_;
};

class ModelCallExpr final : public Expr {
 public:
  ModelCallExpr(BlackBoxPtr model, std::vector<ExprPtr> args,
                std::uint64_t call_site)
      : model_(std::move(model)),
        args_(std::move(args)),
        call_site_(call_site) {}

  Result<Value> Eval(EvalContext& ctx) const override {
    if (ctx.seeds == nullptr) {
      return Status::ExecutionError(
          "stochastic expression evaluated without a seed vector");
    }
    std::vector<double> argv;
    argv.reserve(args_.size());
    for (const auto& a : args_) {
      JIGSAW_ASSIGN_OR_RETURN(Value v, a->Eval(ctx));
      if (!v.IsNumeric()) {
        return Status::ExecutionError("non-numeric argument to " +
                                      model_->name());
      }
      argv.push_back(v.AsDouble());
    }
    const std::uint64_t site =
        ctx.stream_salt == 0
            ? call_site_
            : HashCombine(ctx.stream_salt, call_site_);
    RandomStream rng = ctx.seeds->StreamFor(ctx.sample_id, site);
    return Value(model_->Eval(argv, rng));
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    parts.reserve(args_.size());
    for (const auto& a : args_) parts.push_back(a->ToString());
    return model_->name() + "(" + Join(parts, ", ") + ")";
  }

  void Accept(ExprVisitor& v) const override {
    v.VisitModelCall(model_, args_, call_site_);
  }

 private:
  BlackBoxPtr model_;
  std::vector<ExprPtr> args_;
  std::uint64_t call_site_;
};

}  // namespace

ExprPtr MakeLiteral(Value v) {
  return std::make_shared<LiteralExpr>(std::move(v));
}
ExprPtr MakeColumnRef(std::size_t column_index, std::string name) {
  return std::make_shared<ColumnRefExpr>(column_index, std::move(name));
}
ExprPtr MakeAliasRef(std::size_t alias_index, std::string name) {
  return std::make_shared<AliasRefExpr>(alias_index, std::move(name));
}
ExprPtr MakeParamRef(std::size_t param_index, std::string name) {
  return std::make_shared<ParamRefExpr>(param_index, std::move(name));
}
ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<BinaryExpr>(op, std::move(left), std::move(right));
}
ExprPtr MakeNot(ExprPtr operand) {
  return std::make_shared<NotExpr>(std::move(operand));
}
ExprPtr MakeCase(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                 ExprPtr else_expr) {
  return std::make_shared<CaseExpr>(std::move(branches),
                                    std::move(else_expr));
}
ExprPtr MakeModelCall(BlackBoxPtr model, std::vector<ExprPtr> args,
                      std::uint64_t call_site) {
  return std::make_shared<ModelCallExpr>(std::move(model), std::move(args),
                                         call_site);
}

}  // namespace jigsaw::pdb
