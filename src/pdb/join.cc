#include "pdb/join.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "pdb/monte_carlo.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw::pdb {

namespace {

/// One matched (left row, right row) pair of a world partition, in
/// absolute chunk row indices. The canonical output order is this list
/// sorted by (left, right) — the serial nested-loop visitation order.
using RowPair = std::pair<std::size_t, std::size_t>;

/// Boxed key equality — the oracle's match test. NULL keys never match
/// anything (not even another NULL); double NaN keys compare unequal to
/// everything via IEEE ==, so they never match either. The key type is
/// common to both sides by ResolveJoin, so no coercion happens here.
bool KeysMatch(const Value& a, const Value& b, ValueType key_type) {
  if (a.is_null() || b.is_null()) return false;
  switch (key_type) {
    case ValueType::kInt:
      return a.AsInt() == b.AsInt();
    case ValueType::kDouble:
      return a.AsDouble() == b.AsDouble();
    case ValueType::kBool:
      return a.AsBool() == b.AsBool();
    case ValueType::kString:
      return a.AsString() == b.AsString();
    case ValueType::kNull:
      return false;
  }
  return false;
}

/// Sort-merge pair kernel over one world partition. `lkey`/`rkey` read
/// the key of an absolute row index; `usable` filters rows whose key can
/// never match (double NaN). Stable sort with a key-only comparator
/// breaks ties by row index for free (indices are pushed ascending), and
/// the final (left, right) sort restores the canonical nested-loop order
/// from the key-grouped merge output.
template <typename LKey, typename RKey, typename Usable>
void SortMergePairs(const ColumnChunk& lcol, std::size_t lf, std::size_t ll,
                    const ColumnChunk& rcol, std::size_t rf, std::size_t rl,
                    LKey lkey, RKey rkey, Usable usable,
                    std::vector<RowPair>* out) {
  std::vector<std::size_t> li, ri;
  li.reserve(ll - lf);
  ri.reserve(rl - rf);
  for (std::size_t i = lf; i < ll; ++i) {
    if (!lcol.IsNull(i) && usable(lkey(i))) li.push_back(i);
  }
  for (std::size_t j = rf; j < rl; ++j) {
    if (!rcol.IsNull(j) && usable(rkey(j))) ri.push_back(j);
  }
  std::stable_sort(li.begin(), li.end(), [&](std::size_t a, std::size_t b) {
    return lkey(a) < lkey(b);
  });
  std::stable_sort(ri.begin(), ri.end(), [&](std::size_t a, std::size_t b) {
    return rkey(a) < rkey(b);
  });
  std::size_t a = 0, b = 0;
  while (a < li.size() && b < ri.size()) {
    const auto ka = lkey(li[a]);
    const auto kb = rkey(ri[b]);
    if (ka < kb) {
      ++a;
    } else if (kb < ka) {
      ++b;
    } else {
      std::size_t a2 = a;
      while (a2 < li.size() && !(ka < lkey(li[a2]))) ++a2;
      std::size_t b2 = b;
      while (b2 < ri.size() && !(kb < rkey(ri[b2]))) ++b2;
      for (std::size_t i = a; i < a2; ++i) {
        for (std::size_t j = b; j < b2; ++j) {
          out->push_back({li[i], ri[j]});
        }
      }
      a = a2;
      b = b2;
    }
  }
  std::sort(out->begin(), out->end());
}

/// Hash/index pair kernel: insertion-ordered build of the right side
/// (each key's postings list keeps right-row-ascending order), probe
/// left rows in order — canonical nested-loop order by construction.
/// `norm` canonicalizes keys whose == classes span several bit patterns
/// (doubles: -0.0 -> +0.0) so hashing agrees with key equality.
template <typename Key, typename LKey, typename RKey, typename Usable,
          typename Norm>
void HashPairs(const ColumnChunk& lcol, std::size_t lf, std::size_t ll,
               const ColumnChunk& rcol, std::size_t rf, std::size_t rl,
               LKey lkey, RKey rkey, Usable usable, Norm norm,
               std::vector<RowPair>* out) {
  std::unordered_map<Key, std::vector<std::size_t>> build;
  build.reserve(rl - rf);
  for (std::size_t j = rf; j < rl; ++j) {
    if (rcol.IsNull(j)) continue;
    const auto k = rkey(j);
    if (!usable(k)) continue;
    build[norm(k)].push_back(j);
  }
  for (std::size_t i = lf; i < ll; ++i) {
    if (lcol.IsNull(i)) continue;
    const auto k = lkey(i);
    if (!usable(k)) continue;
    auto it = build.find(norm(k));
    if (it == build.end()) continue;
    for (std::size_t j : it->second) out->push_back({i, j});
  }
}

/// Dispatches one world partition's key matching to the typed kernel.
void MatchPairs(const ColumnChunk& lcol, std::size_t lf, std::size_t ll,
                const ColumnChunk& rcol, std::size_t rf, std::size_t rl,
                ValueType key_type, JoinAlgorithm algorithm,
                std::vector<RowPair>* out) {
  const auto any = [](auto) { return true; };
  const auto id = [](auto k) { return k; };
  switch (key_type) {
    case ValueType::kInt: {
      auto lk = [&](std::size_t i) { return lcol.Ints()[i]; };
      auto rk = [&](std::size_t j) { return rcol.Ints()[j]; };
      if (algorithm == JoinAlgorithm::kSortMerge) {
        SortMergePairs(lcol, lf, ll, rcol, rf, rl, lk, rk, any, out);
      } else {
        HashPairs<std::int64_t>(lcol, lf, ll, rcol, rf, rl, lk, rk, any, id,
                                out);
      }
      return;
    }
    case ValueType::kDouble: {
      auto lk = [&](std::size_t i) { return lcol.Doubles()[i]; };
      auto rk = [&](std::size_t j) { return rcol.Doubles()[j]; };
      // NaN keys match nothing under IEEE ==, and they would poison the
      // sort ordering — both kernels drop them up front, which is
      // equivalent to the oracle's == test rejecting them pairwise.
      auto usable = [](double k) { return !std::isnan(k); };
      // -0.0 == +0.0 must land in one hash bucket even though the bit
      // patterns (and std::hash values) differ.
      auto norm = [](double k) { return k == 0.0 ? 0.0 : k; };
      if (algorithm == JoinAlgorithm::kSortMerge) {
        SortMergePairs(lcol, lf, ll, rcol, rf, rl, lk, rk, usable, out);
      } else {
        HashPairs<double>(lcol, lf, ll, rcol, rf, rl, lk, rk, usable, norm,
                          out);
      }
      return;
    }
    case ValueType::kBool: {
      auto lk = [&](std::size_t i) { return lcol.Bools()[i] != 0; };
      auto rk = [&](std::size_t j) { return rcol.Bools()[j] != 0; };
      if (algorithm == JoinAlgorithm::kSortMerge) {
        SortMergePairs(lcol, lf, ll, rcol, rf, rl, lk, rk, any, out);
      } else {
        HashPairs<bool>(lcol, lf, ll, rcol, rf, rl, lk, rk, any, id, out);
      }
      return;
    }
    case ValueType::kString: {
      // Dictionary codes are chunk-local, so keys compare as decoded
      // strings; the views point into the chunks' stable dictionaries.
      auto lk = [&](std::size_t i) {
        return std::string_view(lcol.Dictionary()[lcol.StringCodes()[i]]);
      };
      auto rk = [&](std::size_t j) {
        return std::string_view(rcol.Dictionary()[rcol.StringCodes()[j]]);
      };
      if (algorithm == JoinAlgorithm::kSortMerge) {
        SortMergePairs(lcol, lf, ll, rcol, rf, rl, lk, rk, any, out);
      } else {
        HashPairs<std::string_view>(lcol, lf, ll, rcol, rf, rl, lk, rk, any,
                                    id, out);
      }
      return;
    }
    case ValueType::kNull:
      return;  // unreachable: ResolveJoin rejects null-typed keys
  }
}

/// Gathers one source column's values at the pair rows into `*dst` —
/// typed appends straight from the chunk spans, no boxing. `from_left`
/// selects which pair coordinate indexes this column's side.
void GatherColumn(const ColumnChunk& src, std::span<const RowPair> pairs,
                  bool from_left, ColumnChunk* dst) {
  auto row_of = [&](const RowPair& p) {
    return from_left ? p.first : p.second;
  };
  switch (src.type()) {
    case ValueType::kDouble:
      for (const RowPair& p : pairs) {
        const std::size_t i = row_of(p);
        if (src.IsNull(i)) {
          dst->AppendNull();
        } else {
          dst->AppendDouble(src.Doubles()[i]);
        }
      }
      return;
    case ValueType::kInt:
      for (const RowPair& p : pairs) {
        const std::size_t i = row_of(p);
        if (src.IsNull(i)) {
          dst->AppendNull();
        } else {
          dst->AppendInt(src.Ints()[i]);
        }
      }
      return;
    case ValueType::kBool:
      for (const RowPair& p : pairs) {
        const std::size_t i = row_of(p);
        if (src.IsNull(i)) {
          dst->AppendNull();
        } else {
          dst->AppendBool(src.Bools()[i] != 0);
        }
      }
      return;
    case ValueType::kString:
      for (const RowPair& p : pairs) {
        const std::size_t i = row_of(p);
        if (src.IsNull(i)) {
          dst->AppendNull();
        } else {
          dst->AppendString(src.Dictionary()[src.StringCodes()[i]]);
        }
      }
      return;
    case ValueType::kNull:
      for (std::size_t k = 0; k < pairs.size(); ++k) dst->AppendNull();
      return;
  }
}

/// Streams the nested-loop oracle's joined relation of one world as a
/// Volcano leaf: both sides realized boxed at Open (through the cache
/// when present), rows emitted in canonical (left, right) order.
class JoinedVGScanNode final : public PlanNode {
 public:
  JoinedVGScanNode(VGTableFunctionPtr left, VGTableFunctionPtr right,
                   ResolvedJoin join, WorldCache* cache)
      : left_(std::move(left)),
        right_(std::move(right)),
        join_(std::move(join)),
        cache_(cache) {}

  const Schema& schema() const override { return join_.output; }

  Status Open(EvalContext& ctx) override {
    if (ctx.seeds == nullptr) {
      return Status::ExecutionError(
          "joined VG scan requires a seed vector");
    }
    if (cache_ != nullptr) {
      JIGSAW_ASSIGN_OR_RETURN(
          left_table_, cache_->GetOrGenerate(*left_, ctx.sample_id,
                                             *ctx.seeds));
      JIGSAW_ASSIGN_OR_RETURN(
          right_table_, cache_->GetOrGenerate(*right_, ctx.sample_id,
                                              *ctx.seeds));
    } else {
      JIGSAW_ASSIGN_OR_RETURN(owned_left_,
                              left_->Generate(ctx.sample_id, *ctx.seeds));
      JIGSAW_ASSIGN_OR_RETURN(owned_right_,
                              right_->Generate(ctx.sample_id, *ctx.seeds));
      left_table_ = &owned_left_;
      right_table_ = &owned_right_;
    }
    l_ = 0;
    r_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    while (l_ < left_table_->num_rows()) {
      const Row& lrow = left_table_->row(l_);
      while (r_ < right_table_->num_rows()) {
        const Row& rrow = right_table_->row(r_++);
        if (!KeysMatch(lrow[join_.left_slot], rrow[join_.right_slot],
                       join_.key_type)) {
          continue;
        }
        out->clear();
        out->reserve(lrow.size() + rrow.size());
        out->insert(out->end(), lrow.begin(), lrow.end());
        out->insert(out->end(), rrow.begin(), rrow.end());
        return true;
      }
      r_ = 0;
      ++l_;
    }
    return false;
  }

  void Close() override {
    owned_left_ = Table();
    owned_right_ = Table();
    left_table_ = nullptr;
    right_table_ = nullptr;
  }

 private:
  VGTableFunctionPtr left_;
  VGTableFunctionPtr right_;
  ResolvedJoin join_;
  WorldCache* cache_;
  Table owned_left_, owned_right_;
  const Table* left_table_ = nullptr;
  const Table* right_table_ = nullptr;
  std::size_t l_ = 0, r_ = 0;
};

/// Joins one world's partitions and appends the result to `*out` as the
/// next world: rows into out->data, one world-id stamp per output row,
/// and the world's starting row offset. Shared by JoinWorlds (extents)
/// and the cached-realization path (whole tables are one-world
/// partitions).
Status AppendJoinedWorld(const ColumnarTable& left, std::size_t lf,
                         std::size_t ll, const ColumnarTable& right,
                         std::size_t rf, std::size_t rl,
                         const ResolvedJoin& join, JoinAlgorithm algorithm,
                         std::size_t world_id, WorldExtent* out) {
  if (out->data.num_columns() == 0) {
    out->data = ColumnarTable(join.output);
  }
  out->row_offsets.push_back(out->data.num_rows());
  JIGSAW_RETURN_IF_ERROR(JoinPartition(left, lf, ll, right, rf, rl, join,
                                       algorithm, &out->data));
  const std::size_t appended =
      out->data.num_rows() - out->row_offsets.back();
  for (std::size_t k = 0; k < appended; ++k) {
    out->world_ids.AppendInt(static_cast<std::int64_t>(world_id));
  }
  return Status::OK();
}

}  // namespace

Result<ResolvedJoin> ResolveJoin(const Schema& left, const Schema& right,
                                 const JoinSpec& spec) {
  ResolvedJoin join;
  JIGSAW_ASSIGN_OR_RETURN(join.left_slot, left.IndexOf(spec.left_key));
  JIGSAW_ASSIGN_OR_RETURN(join.right_slot, right.IndexOf(spec.right_key));
  const ValueType lt = left.column(join.left_slot).type;
  const ValueType rt = right.column(join.right_slot).type;
  if (lt != rt || lt == ValueType::kNull) {
    // The columnar store is strictly typed, so a cross-type key match
    // would need a coercion rule; refuse it instead (the boxed oracle
    // enforces the same contract for identity).
    return Status::ExecutionError(StrFormat(
        "join keys '%s' (%s) and '%s' (%s) have mismatched types",
        spec.left_key.c_str(), ValueTypeName(lt), spec.right_key.c_str(),
        ValueTypeName(rt)));
  }
  join.key_type = lt;
  join.output = Schema::Concat(left, right);
  for (std::size_t i = 0; i < join.output.num_columns(); ++i) {
    for (std::size_t j = i + 1; j < join.output.num_columns(); ++j) {
      if (EqualsIgnoreCase(join.output.column(i).name,
                           join.output.column(j).name)) {
        return Status::ExecutionError(
            "duplicate column '" + join.output.column(j).name +
            "' in join output");
      }
    }
  }
  return join;
}

Result<Table> NestedLoopJoinOracle(const Table& left, const Table& right,
                                   const ResolvedJoin& join) {
  Table out(join.output);
  for (std::size_t i = 0; i < left.num_rows(); ++i) {
    const Row& lrow = left.row(i);
    for (std::size_t j = 0; j < right.num_rows(); ++j) {
      const Row& rrow = right.row(j);
      if (!KeysMatch(lrow[join.left_slot], rrow[join.right_slot],
                     join.key_type)) {
        continue;
      }
      Row joined;
      joined.reserve(lrow.size() + rrow.size());
      joined.insert(joined.end(), lrow.begin(), lrow.end());
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      out.AppendRowUnchecked(std::move(joined));
    }
  }
  return out;
}

Status JoinPartition(const ColumnarTable& left, std::size_t left_first,
                     std::size_t left_last, const ColumnarTable& right,
                     std::size_t right_first, std::size_t right_last,
                     const ResolvedJoin& join, JoinAlgorithm algorithm,
                     ColumnarTable* out) {
  std::vector<RowPair> pairs;
  MatchPairs(left.column(join.left_slot), left_first, left_last,
             right.column(join.right_slot), right_first, right_last,
             join.key_type, algorithm, &pairs);
  for (std::size_t c = 0; c < left.num_columns(); ++c) {
    GatherColumn(left.column(c), pairs, /*from_left=*/true,
                 &out->column(c));
  }
  const std::size_t base = left.num_columns();
  for (std::size_t c = 0; c < right.num_columns(); ++c) {
    GatherColumn(right.column(c), pairs, /*from_left=*/false,
                 &out->column(base + c));
  }
  return out->CommitAppendedRows();
}

Status JoinWorlds(const WorldExtent& left, const WorldExtent& right,
                  const ResolvedJoin& join, JoinAlgorithm algorithm,
                  WorldExtent* out) {
  if (left.world_begin != right.world_begin ||
      left.row_offsets.size() != right.row_offsets.size()) {
    return Status::InvalidArgument(
        "joined extents cover different world ranges");
  }
  out->world_begin = left.world_begin;
  for (std::size_t k = 0; k < left.row_offsets.size(); ++k) {
    const auto [lf, ll] = left.WorldRows(k);
    const auto [rf, rl] = right.WorldRows(k);
    JIGSAW_RETURN_IF_ERROR(AppendJoinedWorld(
        left.data, lf, ll, right.data, rf, rl, join, algorithm,
        left.world_begin + k, out));
  }
  return Status::OK();
}

PlanNodePtr MakeJoinedVGScan(VGTableFunctionPtr left,
                             VGTableFunctionPtr right, ResolvedJoin join,
                             WorldCache* cache) {
  return std::make_unique<JoinedVGScanNode>(std::move(left),
                                            std::move(right),
                                            std::move(join), cache);
}

Result<std::map<std::string, OutputMetrics>> FoldJoinedVGColumns(
    const VGTableFunctionPtr& left, const VGTableFunctionPtr& right,
    const JoinSpec& spec, std::span<const std::string> column_names,
    std::size_t num_worlds, const SeedVector& seeds, const RunConfig& config,
    ThreadPool* pool, WorldCache* cache) {
  // Both schemas (and therefore the joined schema) are world-invariant,
  // so the join and the requested columns resolve up front — a bad key,
  // a bad name or a non-numeric column fails before any realization, on
  // every storage x algorithm path, with identical text.
  JIGSAW_ASSIGN_OR_RETURN(
      ResolvedJoin join, ResolveJoin(left->schema(), right->schema(), spec));
  std::vector<std::size_t> slots;
  slots.reserve(column_names.size());
  for (const auto& name : column_names) {
    JIGSAW_ASSIGN_OR_RETURN(std::size_t idx, join.output.IndexOf(name));
    const ValueType t = join.output.column(idx).type;
    if (t != ValueType::kDouble && t != ValueType::kInt &&
        t != ValueType::kBool) {
      return Status::ExecutionError("column '" + name + "' is not numeric");
    }
    slots.push_back(idx);
  }

  const std::size_t batch = std::max<std::size_t>(1, config.batch_size);
  const std::size_t num_chunks =
      num_worlds == 0 ? 0 : (num_worlds + batch - 1) / batch;
  std::vector<Estimator> estimators(
      slots.size(), Estimator(config.keep_samples, config.histogram_bins));

  if (config.columnar_storage) {
    // Shard-ownership rule: cell `chunk` is the only writer of its
    // joined extent. Realization interleaves left/right per world so a
    // generator failure surfaces in the order the serial boxed loop
    // would hit it (world-major, left side first).
    struct Cell {
      WorldExtent joined;
      Status status = Status::OK();
    };
    std::vector<Cell> cells(num_chunks);
    auto run_cell = [&](std::size_t chunk) {
      Cell& cell = cells[chunk];
      const std::size_t begin = chunk * batch;
      const std::size_t end = std::min(begin + batch, num_worlds);
      if (cache != nullptr) {
        for (std::size_t w = begin; w < end; ++w) {
          auto lt = cache->GetOrGenerateColumnar(*left, w, seeds);
          if (!lt.ok()) {
            cell.status = lt.status();
            return;
          }
          auto rt = cache->GetOrGenerateColumnar(*right, w, seeds);
          if (!rt.ok()) {
            cell.status = rt.status();
            return;
          }
          cell.joined.world_begin = begin;
          if (Status s = AppendJoinedWorld(
                  *lt.value(), 0, lt.value()->num_rows(), *rt.value(), 0,
                  rt.value()->num_rows(), join, config.join_algorithm, w,
                  &cell.joined);
              !s.ok()) {
            cell.status = std::move(s);
            return;
          }
        }
      } else {
        WorldExtent lext, rext;
        lext.world_begin = begin;
        rext.world_begin = begin;
        for (std::size_t w = begin; w < end; ++w) {
          if (Status s = lext.AppendWorld(*left, w, seeds); !s.ok()) {
            cell.status = std::move(s);
            return;
          }
          if (Status s = rext.AppendWorld(*right, w, seeds); !s.ok()) {
            cell.status = std::move(s);
            return;
          }
        }
        cell.status = JoinWorlds(lext, rext, join, config.join_algorithm,
                                 &cell.joined);
      }
    };
    if (pool != nullptr && num_chunks >= 2) {
      pool->ParallelFor(num_chunks, run_cell);
    } else {
      for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
        run_cell(chunk);
        if (!cells[chunk].status.ok()) break;
      }
    }
    // Chunk-order scan surfaces the lowest failing world's error, same
    // as the serial loop, regardless of pool schedule.
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      if (!cells[chunk].status.ok()) return std::move(cells[chunk].status);
    }
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      Cell& cell = cells[chunk];
      for (std::size_t k = 0; k < cell.joined.row_offsets.size(); ++k) {
        const auto [first, last] = cell.joined.WorldRows(k);
        for (std::size_t s = 0; s < slots.size(); ++s) {
          JIGSAW_RETURN_IF_ERROR(internal::FoldChunkColumn(
              cell.joined.data.column(slots[s]), first, last,
              column_names[s], &estimators[s]));
        }
      }
      // Release the shard as soon as it folds (peak-memory discipline).
      cell = Cell{};
    }
  } else {
    // Boxed reference twin: the nested-loop oracle runs as a Volcano
    // plan per world (the same MakeJoinedVGScan leaf the SQL layer
    // lowers to), columns staged through the copying NumericColumn.
    struct BoxCell {
      std::vector<std::vector<double>> buffers;
      Status status = Status::OK();
    };
    std::vector<BoxCell> cells(num_chunks);
    auto run_cell = [&](std::size_t chunk) {
      BoxCell& cell = cells[chunk];
      cell.buffers.resize(slots.size());
      const std::size_t begin = chunk * batch;
      const std::size_t end = std::min(begin + batch, num_worlds);
      for (std::size_t w = begin; w < end; ++w) {
        PlanNodePtr plan = MakeJoinedVGScan(left, right, join, cache);
        EvalContext ctx;
        ctx.sample_id = w;
        ctx.seeds = &seeds;
        ctx.columnar_storage = false;
        auto joined = ExecuteToTable(*plan, ctx);
        if (!joined.ok()) {
          cell.status = joined.status();
          return;
        }
        for (std::size_t s = 0; s < slots.size(); ++s) {
          auto col = joined.value().NumericColumn(column_names[s]);
          if (!col.ok()) {
            cell.status = col.status();
            return;
          }
          const std::vector<double>& values = col.value();
          cell.buffers[s].insert(cell.buffers[s].end(), values.begin(),
                                 values.end());
        }
      }
    };
    if (pool != nullptr && num_chunks >= 2) {
      pool->ParallelFor(num_chunks, run_cell);
    } else {
      for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
        run_cell(chunk);
        if (!cells[chunk].status.ok()) break;
      }
    }
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      if (!cells[chunk].status.ok()) return std::move(cells[chunk].status);
    }
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
      for (std::size_t s = 0; s < slots.size(); ++s) {
        estimators[s].AddSpan(cells[chunk].buffers[s]);
      }
      cells[chunk] = BoxCell{};
    }
  }

  std::map<std::string, OutputMetrics> out;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    out.emplace(column_names[s], estimators[s].Finalize());
  }
  return out;
}

}  // namespace jigsaw::pdb
