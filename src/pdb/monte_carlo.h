#pragma once

/// \file monte_carlo.h
/// The possible-worlds executor of the mini-MCDB layer (Section 2.1):
/// "instantiates a finite set of databases by sampling randomly from the
/// set of possible worlds. Queries are run on each sampled world ... and
/// the results are aggregated into a metric or binned into a histogram."
///
/// The executor runs a caller-supplied per-world query plan n times (one
/// per sampled world), expects a single result row per world, and folds
/// each numeric output column into an OutputMetrics distribution summary.
///
/// Worlds are embarrassingly parallel: each world's randomness is a pure
/// function of its seed, so with RunConfig::num_threads > 1 the executor
/// fans batch_size-sized world chunks out on a ThreadPool and merges the
/// per-chunk staging buffers in world-index order — bit-identical to the
/// serial run at every (num_threads, batch_size) combination.

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/run_config.h"
#include "pdb/operators.h"
#include "pdb/vg_table.h"
#include "random/seed_vector.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace jigsaw::pdb {

/// Evaluates one possible world into its single-row result table. Invoked
/// concurrently from pool tasks when a ThreadPool is supplied, so the
/// callable must be thread-safe (each invocation builds its own plan and
/// evaluation state; shared caches such as WorldCache synchronize
/// internally).
using WorldFn = std::function<Result<Table>(std::size_t world)>;

/// Shared possible-worlds fold used by MonteCarloExecutor and
/// LayeredEngine. Runs `run_world` for every world in [0, num_worlds) and
/// folds each numeric output column into an OutputMetrics summary.
///
/// World 0 locks the output layout: non-numeric columns are excluded from
/// the result (they have no distribution to summarize), and a column
/// whose numeric-ness flips in a later world is an ExecutionError rather
/// than a silently skewed statistic. With a non-null `pool`, worlds are
/// partitioned into config.batch_size-sized chunks evaluated across the
/// pool into per-chunk per-column staging buffers, then merged in chunk
/// index order through Estimator::AddSpan — bit-identical to the serial
/// fold, which stages through the same buffers.
Result<std::map<std::string, OutputMetrics>> FoldWorlds(
    std::size_t num_worlds, const RunConfig& config, ThreadPool* pool,
    const WorldFn& run_world);

/// Batched world evaluator: fills `columns[slot][i]` with the value of
/// output column `slot` in world `world_begin + i`, for i in [0, count).
/// Used by compiled row programs, which evaluate a whole world chunk in
/// one BatchProgram run instead of one boxed plan per world. On error the
/// returned status must be the one the lowest failing world in the span
/// would have produced serially (BatchProgram::RunAll guarantees this).
using WorldSpanFn = std::function<Status(
    std::size_t world_begin, std::size_t count, std::span<double* const>
    columns)>;

/// Span twin of FoldWorlds for statically-known all-numeric layouts:
/// partitions [0, num_worlds) into the same batch_size chunks, evaluates
/// each chunk with one run_span call (fanned out on `pool` when present),
/// and merges the per-chunk buffers in chunk index order through
/// Estimator::AddSpan — bit-identical to FoldWorlds over the same values.
Result<std::map<std::string, OutputMetrics>> FoldWorldSpans(
    std::span<const std::string> column_names, std::size_t num_worlds,
    const RunConfig& config, ThreadPool* pool, const WorldSpanFn& run_span);

/// Per-point world evaluator for two-axis sweeps: evaluates world `world`
/// of sweep point `point` into its single-row result table. Cells are
/// evaluated concurrently from pool tasks, so the callable must be
/// thread-safe.
using PointWorldFn =
    std::function<Result<Table>(std::size_t point, std::size_t world)>;

/// Span twin for compiled programs: fills `columns[slot][i]` with output
/// column `slot` of world `world_begin + i` evaluated at sweep point
/// `point`.
using PointWorldSpanFn = std::function<Status(
    std::size_t point, std::size_t world_begin, std::size_t count,
    std::span<double* const> columns)>;

/// Prefixes a sweep-point failure with its point coordinate ("sweep
/// point k: ..."), preserving the status code. The single format every
/// sweep path uses — FoldPointWorlds/FoldPointWorldSpans and
/// LayeredEngine::RunSweep — so errors name the failing point
/// identically on both engines.
Status NameSweepPoint(std::size_t point, Status status);

/// Two-axis possible-worlds fold (MONTECARLO OVER @p): evaluates the
/// num_points x num_worlds cell grid by fanning every (point,
/// world-chunk) task out on `pool` at once, then merging chunks in world
/// order within each point and points in index order. Point k's summaries
/// are bit-identical to a standalone FoldWorlds over `run_world(k, .)` —
/// the per-point seed schema is unchanged, so point k's draws match a
/// standalone run at that valuation.
///
/// World 0 of every point runs up front (fanned out on `pool` when
/// present — prepasses touch independent per-point state) to lock that
/// point's column layout, mirroring FoldWorlds. On failure the
/// surfaced error is the one the serial point-by-point loop would report
/// — the lowest failing point's lowest failing world — prefixed (when the
/// sweep has more than one point) with "sweep point k" so two-axis
/// errors name both coordinates; a one-point sweep keeps the standalone
/// statement's raw error byte for byte.
Result<std::vector<std::map<std::string, OutputMetrics>>> FoldPointWorlds(
    std::size_t num_points, std::size_t num_worlds, const RunConfig& config,
    ThreadPool* pool, const PointWorldFn& run_world);

/// Span twin of FoldPointWorlds for statically-known all-numeric layouts:
/// per point, bit-identical to FoldWorldSpans over `run_span(k, ...)`,
/// with the same (point, world-chunk) task fan-out and error contract.
Result<std::vector<std::map<std::string, OutputMetrics>>>
FoldPointWorldSpans(std::span<const std::string> column_names,
                    std::size_t num_points, std::size_t num_worlds,
                    const RunConfig& config, ThreadPool* pool,
                    const PointWorldSpanFn& run_span);

/// Tuple-level possible-worlds fold: realizes `fn` in every world of
/// [0, num_worlds) and folds each requested numeric column's values —
/// every tuple of every world, concatenated in (world, row) order — into
/// an OutputMetrics distribution summary. This is the columnar hot loop:
/// under config.columnar_storage each batch_size world chunk is realized
/// into a WorldExtent owned by exactly one pool task (the shard-ownership
/// rule — zero cross-task writes), generators bulk-fill column spans, and
/// the merge reads the chunk buffers zero-copy through Estimator::AddSpan
/// in world order. With the gate off, the boxed twin generates `Table`s
/// and extracts columns through the copying Table::NumericColumn — same
/// draws, bit-identical metrics, identical error text and ordering (the
/// serial run stops at the first failing chunk; a parallel run surfaces
/// the same lowest failing chunk's error).
///
/// With a non-null `cache`, realizations go through the WorldCache (in
/// whichever representation the gate selects) instead of per-fold
/// extents, sharing worlds with other consumers of the same seeds.
Result<std::map<std::string, OutputMetrics>> FoldVGColumns(
    const VGTableFunction& fn, std::span<const std::string> column_names,
    std::size_t num_worlds, const SeedVector& seeds, const RunConfig& config,
    ThreadPool* pool, WorldCache* cache = nullptr);

namespace internal {
/// Folds rows [first, last) of one realized chunk column into *est —
/// the tuple-level fold kernel shared by FoldVGColumns and the join fold
/// (pdb/join.h), so both report byte-identical "column 'X' is not
/// numeric" errors. kDouble with no nulls is the zero-copy AddSpan fast
/// path; int/bool widen through a copy; a null anywhere is non-numeric,
/// as in the boxed Table::NumericColumn walk.
Status FoldChunkColumn(const ColumnChunk& col, std::size_t first,
                       std::size_t last, const std::string& name,
                       Estimator* est);

/// Test hook: when nonzero, overrides the staged-doubles budget that
/// bounds how many sweep points the chunk-grid fold keeps in flight,
/// forcing multi-window execution at unit-test sizes. Not synchronized —
/// set it before any fold runs and restore it after.
extern std::size_t g_fold_staged_budget_override;
}  // namespace internal

struct MonteCarloResult {
  /// Per-output-column distribution summaries, keyed by column name.
  /// Only columns that are numeric in world 0 appear.
  std::map<std::string, OutputMetrics> columns;
  std::size_t worlds = 0;
};

class MonteCarloExecutor {
 public:
  explicit MonteCarloExecutor(const RunConfig& config)
      : config_(config),
        seeds_(config.master_seed, config.num_samples, config.seed_schema) {
    if (config_.batch_size == 0) config_.batch_size = 1;
    if (config_.num_threads > 1) {
      // A shared pool (session server) takes precedence over a private
      // one; either way chunk scheduling cannot perturb a draw.
      if (config_.shared_pool != nullptr) {
        pool_ = config_.shared_pool;
      } else {
        owned_pool_ = std::make_unique<ThreadPool>(config_.num_threads);
        pool_ = owned_pool_.get();
      }
    }
  }

  /// `make_plan` builds the per-world query plan (the plan may embed
  /// stochastic expressions and VG scans; the world is selected through
  /// EvalContext::sample_id). The plan must produce exactly one row.
  /// With num_threads > 1 the factory is invoked concurrently from pool
  /// tasks — it must be thread-safe and every call must return an
  /// independent plan (plans carry mutable evaluation state).
  using PlanFactory = std::function<Result<PlanNodePtr>()>;

  Result<MonteCarloResult> Run(const PlanFactory& make_plan,
                               std::span<const double> params);

  /// Compiled-path twin of Run: worlds evaluate as whole spans (one
  /// BatchProgram execution per chunk task) instead of one plan per
  /// world. `column_names` fixes the output layout up front — span
  /// programs are all-numeric by construction.
  Result<MonteCarloResult> RunSpans(std::span<const std::string> column_names,
                                    const WorldSpanFn& run_span);

  /// Sweep twin of Run (MONTECARLO OVER @p): evaluates the plan at every
  /// valuation, fanning (point, world-chunk) tasks out across the shared
  /// pool via FoldPointWorlds. Entry k is bit-identical to a standalone
  /// Run at valuations[k] — same seed vector for every point.
  Result<std::vector<MonteCarloResult>> RunSweep(
      const PlanFactory& make_plan,
      std::span<const std::vector<double>> valuations);

  /// Sweep twin of RunSpans: entry k is bit-identical to a standalone
  /// RunSpans over `run_span(k, ...)`.
  Result<std::vector<MonteCarloResult>> RunSweepSpans(
      std::span<const std::string> column_names, std::size_t num_points,
      const PointWorldSpanFn& run_span);

  const SeedVector& seeds() const { return seeds_; }
  const RunConfig& config() const { return config_; }

 private:
  RunConfig config_;
  SeedVector seeds_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  ///< owned_pool_ or config_.shared_pool
};

}  // namespace jigsaw::pdb
