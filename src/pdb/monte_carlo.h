#pragma once

/// \file monte_carlo.h
/// The possible-worlds executor of the mini-MCDB layer (Section 2.1):
/// "instantiates a finite set of databases by sampling randomly from the
/// set of possible worlds. Queries are run on each sampled world ... and
/// the results are aggregated into a metric or binned into a histogram."
///
/// The executor runs a caller-supplied per-world query plan n times (one
/// per sampled world), expects a single result row per world, and folds
/// each numeric output column into an OutputMetrics distribution summary.
///
/// Worlds are embarrassingly parallel: each world's randomness is a pure
/// function of its seed, so with RunConfig::num_threads > 1 the executor
/// fans batch_size-sized world chunks out on a ThreadPool and merges the
/// per-chunk staging buffers in world-index order — bit-identical to the
/// serial run at every (num_threads, batch_size) combination.

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "core/metrics.h"
#include "core/run_config.h"
#include "pdb/operators.h"
#include "random/seed_vector.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace jigsaw::pdb {

/// Evaluates one possible world into its single-row result table. Invoked
/// concurrently from pool tasks when a ThreadPool is supplied, so the
/// callable must be thread-safe (each invocation builds its own plan and
/// evaluation state; shared caches such as WorldCache synchronize
/// internally).
using WorldFn = std::function<Result<Table>(std::size_t world)>;

/// Shared possible-worlds fold used by MonteCarloExecutor and
/// LayeredEngine. Runs `run_world` for every world in [0, num_worlds) and
/// folds each numeric output column into an OutputMetrics summary.
///
/// World 0 locks the output layout: non-numeric columns are excluded from
/// the result (they have no distribution to summarize), and a column
/// whose numeric-ness flips in a later world is an ExecutionError rather
/// than a silently skewed statistic. With a non-null `pool`, worlds are
/// partitioned into config.batch_size-sized chunks evaluated across the
/// pool into per-chunk per-column staging buffers, then merged in chunk
/// index order through Estimator::AddSpan — bit-identical to the serial
/// fold, which stages through the same buffers.
Result<std::map<std::string, OutputMetrics>> FoldWorlds(
    std::size_t num_worlds, const RunConfig& config, ThreadPool* pool,
    const WorldFn& run_world);

/// Batched world evaluator: fills `columns[slot][i]` with the value of
/// output column `slot` in world `world_begin + i`, for i in [0, count).
/// Used by compiled row programs, which evaluate a whole world chunk in
/// one BatchProgram run instead of one boxed plan per world. On error the
/// returned status must be the one the lowest failing world in the span
/// would have produced serially (BatchProgram::RunAll guarantees this).
using WorldSpanFn = std::function<Status(
    std::size_t world_begin, std::size_t count, std::span<double* const>
    columns)>;

/// Span twin of FoldWorlds for statically-known all-numeric layouts:
/// partitions [0, num_worlds) into the same batch_size chunks, evaluates
/// each chunk with one run_span call (fanned out on `pool` when present),
/// and merges the per-chunk buffers in chunk index order through
/// Estimator::AddSpan — bit-identical to FoldWorlds over the same values.
Result<std::map<std::string, OutputMetrics>> FoldWorldSpans(
    std::span<const std::string> column_names, std::size_t num_worlds,
    const RunConfig& config, ThreadPool* pool, const WorldSpanFn& run_span);

struct MonteCarloResult {
  /// Per-output-column distribution summaries, keyed by column name.
  /// Only columns that are numeric in world 0 appear.
  std::map<std::string, OutputMetrics> columns;
  std::size_t worlds = 0;
};

class MonteCarloExecutor {
 public:
  explicit MonteCarloExecutor(const RunConfig& config)
      : config_(config), seeds_(config.master_seed, config.num_samples) {
    if (config_.batch_size == 0) config_.batch_size = 1;
    if (config_.num_threads > 1) {
      pool_ = std::make_unique<ThreadPool>(config_.num_threads);
    }
  }

  /// `make_plan` builds the per-world query plan (the plan may embed
  /// stochastic expressions and VG scans; the world is selected through
  /// EvalContext::sample_id). The plan must produce exactly one row.
  /// With num_threads > 1 the factory is invoked concurrently from pool
  /// tasks — it must be thread-safe and every call must return an
  /// independent plan (plans carry mutable evaluation state).
  using PlanFactory = std::function<Result<PlanNodePtr>()>;

  Result<MonteCarloResult> Run(const PlanFactory& make_plan,
                               std::span<const double> params);

  /// Compiled-path twin of Run: worlds evaluate as whole spans (one
  /// BatchProgram execution per chunk task) instead of one plan per
  /// world. `column_names` fixes the output layout up front — span
  /// programs are all-numeric by construction.
  Result<MonteCarloResult> RunSpans(std::span<const std::string> column_names,
                                    const WorldSpanFn& run_span);

  const SeedVector& seeds() const { return seeds_; }
  const RunConfig& config() const { return config_; }

 private:
  RunConfig config_;
  SeedVector seeds_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace jigsaw::pdb
