#pragma once

/// \file monte_carlo.h
/// The possible-worlds executor of the mini-MCDB layer (Section 2.1):
/// "instantiates a finite set of databases by sampling randomly from the
/// set of possible worlds. Queries are run on each sampled world ... and
/// the results are aggregated into a metric or binned into a histogram."
///
/// The executor runs a caller-supplied per-world query plan n times (one
/// per sampled world), expects a single result row per world, and folds
/// each numeric output column into an OutputMetrics distribution summary.

#include <functional>
#include <map>
#include <string>

#include "core/metrics.h"
#include "core/run_config.h"
#include "pdb/operators.h"
#include "random/seed_vector.h"
#include "util/status.h"

namespace jigsaw::pdb {

struct MonteCarloResult {
  /// Per-output-column distribution summaries, keyed by column name.
  std::map<std::string, OutputMetrics> columns;
  std::size_t worlds = 0;
};

class MonteCarloExecutor {
 public:
  explicit MonteCarloExecutor(const RunConfig& config)
      : config_(config), seeds_(config.master_seed, config.num_samples) {}

  /// `make_plan` builds the per-world query plan (the plan may embed
  /// stochastic expressions and VG scans; the world is selected through
  /// EvalContext::sample_id). The plan must produce exactly one row.
  using PlanFactory = std::function<Result<PlanNodePtr>()>;

  Result<MonteCarloResult> Run(const PlanFactory& make_plan,
                               std::span<const double> params);

  const SeedVector& seeds() const { return seeds_; }
  const RunConfig& config() const { return config_; }

 private:
  RunConfig config_;
  SeedVector seeds_;
};

}  // namespace jigsaw::pdb
