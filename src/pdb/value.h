#pragma once

/// \file value.h
/// Typed runtime values for the mini-MCDB layer. A traditional PDB stores
/// relational data; sampled possible worlds are ordinary tables, so the
/// Volcano operators below work over boxed Values (the layered prototype
/// of Figure 7 pays for this boxing on every row — deliberately).

#include <cstdint>
#include <string>
#include <variant>

#include "util/status.h"

namespace jigsaw::pdb {

enum class ValueType { kNull, kInt, kDouble, kBool, kString };

const char* ValueTypeName(ValueType t);

class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(std::int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(bool v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  std::int64_t AsInt() const;
  double AsDouble() const;  ///< numeric coercion (int/bool/double)
  bool AsBool() const;
  const std::string& AsString() const;

  /// True if the value is int, double or bool (coercible to double).
  bool IsNumeric() const;

  /// Serialization used at the layered engine's interop boundary and by
  /// the CSV helpers.
  std::string ToString() const;
  static Result<Value> Parse(const std::string& text, ValueType as);

  bool operator==(const Value& other) const;

  /// Three-way comparison for ORDER BY / join keys: null < everything;
  /// numerics compare as double; strings lexicographically.
  static int Compare(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, std::int64_t, double, bool, std::string> v_;
};

/// Arithmetic with SQL-ish promotion (int op int -> int except '/', which
/// is double; anything with double -> double). Nulls propagate.
Result<Value> Add(const Value& a, const Value& b);
Result<Value> Subtract(const Value& a, const Value& b);
Result<Value> Multiply(const Value& a, const Value& b);
Result<Value> Divide(const Value& a, const Value& b);

}  // namespace jigsaw::pdb
