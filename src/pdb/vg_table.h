#pragma once

/// \file vg_table.h
/// VG-function tables: the MCDB mechanism by which uncertain relations are
/// realized. "Each random table ... is represented on disk by its schema,
/// together with a set of black-box functions that are used to generate
/// realizations of uncertain attribute values" (Section 2.3). A
/// VGTableFunction generates one realization (one possible world's
/// instance) of its table for a given sample; a WorldCache memoizes
/// realizations per (table, sample) so that set-oriented engines touch the
/// generator once per world — the data-management advantage the paper's
/// SQL Server prototype shows on UserSelection (Figure 7).
///
/// Realizations come in two representations: the boxed `Table` (the
/// layered / Volcano interop shape) and the contiguous `ColumnarTable`
/// (the hot-loop shape — see columnar.h). Generators that override
/// `GenerateColumnarInto` write model draws straight into column spans;
/// the default adapter boxes through `Generate`. Both must realize
/// bit-identical values from identical (seeds, sample_id): the columnar
/// path is a storage change, never a draw-sequence change.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "pdb/columnar.h"
#include "pdb/table.h"
#include "random/seed_vector.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"

namespace jigsaw::pdb {

class VGTableFunction {
 public:
  virtual ~VGTableFunction() = default;

  virtual const std::string& name() const = 0;
  virtual const Schema& schema() const = 0;

  /// Generates the realization of this table in possible world
  /// `sample_id`. Randomness must derive from (seeds, sample_id) only.
  virtual Result<Table> Generate(std::size_t sample_id,
                                 const SeedVector& seeds) const = 0;

  /// Appends this table's realization in world `sample_id` to `*out`
  /// (which must have this function's schema; existing rows are kept, so
  /// a multi-world extent accumulates realizations back to back). The
  /// default adapter calls `Generate` and boxes row by row; generators on
  /// the hot path override it to bulk-fill column spans. Overrides MUST
  /// consume the random stream exactly as `Generate` does.
  virtual Status GenerateColumnarInto(std::size_t sample_id,
                                      const SeedVector& seeds,
                                      ColumnarTable* out) const;

  /// Convenience: one realization as a fresh ColumnarTable.
  Result<ColumnarTable> GenerateColumnar(std::size_t sample_id,
                                         const SeedVector& seeds) const;
};

using VGTableFunctionPtr = std::shared_ptr<const VGTableFunction>;

/// One pool task's disjoint shard of a multi-world columnar
/// materialization. The shard-ownership rule: FoldVGColumns hands each
/// pool task one WorldExtent covering a contiguous run of worlds; only
/// that task appends to it, so parallel realization needs no
/// synchronization and no cross-task writes. `world_ids` is the parallel
/// world/sample-id column (U-relations keep the world annotation next to
/// the data); `row_offsets[k]` is the first row of the k-th appended
/// world, with `data.num_rows()` closing the last.
struct WorldExtent {
  std::size_t world_begin = 0;
  ColumnarTable data;
  ColumnChunk world_ids{ValueType::kInt};
  std::vector<std::size_t> row_offsets;

  /// Realizes world `sample_id` at the end of `data` (initializing the
  /// schema from `fn` on first use) and stamps its world-id column.
  Status AppendWorld(const VGTableFunction& fn, std::size_t sample_id,
                     const SeedVector& seeds);

  /// Row range [first, last) of the k-th appended world.
  std::pair<std::size_t, std::size_t> WorldRows(std::size_t k) const {
    const std::size_t last =
        k + 1 < row_offsets.size() ? row_offsets[k + 1] : data.num_rows();
    return {row_offsets[k], last};
  }
};

/// Memoizes realizations per (table name, seed namespace, sample id).
/// Safe to share across the pool tasks of a parallel possible-worlds run
/// AND across concurrent sessions (the session server publishes one cache
/// per catalog snapshot): lookups and inserts are mutex-guarded,
/// generation runs outside the lock, and the first insert of a key wins
/// (so generation_count stays deterministic — one generation per distinct
/// world actually realized). The key includes the seed vector's master
/// seed AND its seed schema, so sessions running under different seed
/// namespaces — or different draw derivations — realize disjoint entries
/// instead of silently reading each other's draws, while same-namespace
/// same-schema sessions share realizations.
///
/// Each entry holds up to two representations of the same realization —
/// columnar chunks (the storage of record under the columnar gate) and a
/// boxed view for the Volcano/interop consumers. Converting between the
/// two never counts as a generation: generation_count only moves when a
/// generator actually runs AND its output is the first representation
/// installed for that key, so the count is one per distinct world
/// regardless of which representation was asked for first or how racing
/// tasks interleave. Returned pointers stay valid for the cache's
/// lifetime (entries own their tables behind stable unique_ptrs).
class WorldCache {
 public:
  /// Returns the cached boxed realization, generating (or un-boxing the
  /// cached columnar realization) on first use.
  Result<const Table*> GetOrGenerate(const VGTableFunction& fn,
                                     std::size_t sample_id,
                                     const SeedVector& seeds)
      JIGSAW_EXCLUDES(mu_);

  /// Returns the cached columnar realization, generating (or converting
  /// the cached boxed realization) on first use.
  Result<const ColumnarTable*> GetOrGenerateColumnar(
      const VGTableFunction& fn, std::size_t sample_id,
      const SeedVector& seeds) JIGSAW_EXCLUDES(mu_);

  std::size_t size() const JIGSAW_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return cache_.size();
  }
  std::uint64_t generation_count() const JIGSAW_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return generations_;
  }
  void Clear() JIGSAW_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    cache_.clear();
  }

 private:
  struct WorldEntry {
    std::unique_ptr<const Table> boxed;
    std::unique_ptr<const ColumnarTable> columnar;
  };
  using Key =
      std::tuple<std::string, std::uint64_t, std::uint8_t, std::size_t>;

  static Key MakeKey(const VGTableFunction& fn, std::size_t sample_id,
                     const SeedVector& seeds);

  mutable Mutex mu_;
  /// Map nodes are stable and each representation lives behind a
  /// unique_ptr that is set once and never replaced, so pointers handed
  /// out under one lock scope stay valid after it — only the map
  /// structure and the null-ness of the slots need the guard.
  std::map<Key, WorldEntry> cache_ JIGSAW_GUARDED_BY(mu_);
  std::uint64_t generations_ JIGSAW_GUARDED_BY(mu_) = 0;
};

/// The synthetic user-population VG table behind the UserSelection
/// workload: one row per user with columns
///   (user_id INT, signup_week DOUBLE, requirement DOUBLE)
/// where `requirement` is the stochastic per-user demand draw for this
/// world (the peak of `sim_depth` intra-week usage draws) and the other
/// attributes are deterministic population data.
VGTableFunctionPtr MakeUsersVGTable(int num_users, double arrival_rate,
                                    double base_demand, double spread,
                                    int sim_depth = 16);

/// A row-count-scaling uncertain inventory table for the
/// millions-of-tuples regime (Stochastic SketchRefine's target scale):
///   (item_id INT, demand DOUBLE, cost DOUBLE, in_stock BOOL,
///    region STRING)
/// `demand` and `cost` are per-world draws (two draws per row, so storage
/// cost — not the generator — dominates at scale); `item_id`, `in_stock`
/// and the four-value `region` dictionary are deterministic attributes.
VGTableFunctionPtr MakeScalingItemsVGTable(std::size_t num_rows,
                                           double demand_mu = 1.0,
                                           double demand_sigma = 0.5,
                                           double cost_base = 10.0);

}  // namespace jigsaw::pdb
