#pragma once

/// \file vg_table.h
/// VG-function tables: the MCDB mechanism by which uncertain relations are
/// realized. "Each random table ... is represented on disk by its schema,
/// together with a set of black-box functions that are used to generate
/// realizations of uncertain attribute values" (Section 2.3). A
/// VGTableFunction generates one realization (one possible world's
/// instance) of its table for a given sample; a WorldCache memoizes
/// realizations per (table, sample) so that set-oriented engines touch the
/// generator once per world — the data-management advantage the paper's
/// SQL Server prototype shows on UserSelection (Figure 7).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "pdb/table.h"
#include "random/seed_vector.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"

namespace jigsaw::pdb {

class VGTableFunction {
 public:
  virtual ~VGTableFunction() = default;

  virtual const std::string& name() const = 0;
  virtual const Schema& schema() const = 0;

  /// Generates the realization of this table in possible world
  /// `sample_id`. Randomness must derive from (seeds, sample_id) only.
  virtual Result<Table> Generate(std::size_t sample_id,
                                 const SeedVector& seeds) const = 0;
};

using VGTableFunctionPtr = std::shared_ptr<const VGTableFunction>;

/// Memoizes realizations per (table name, seed namespace, sample id).
/// Safe to share across the pool tasks of a parallel possible-worlds run
/// AND across concurrent sessions (the session server publishes one cache
/// per catalog snapshot): lookups and inserts are mutex-guarded,
/// generation runs outside the lock, and the first insert of a key wins
/// (so generation_count stays deterministic — one generation per distinct
/// world actually realized). The key includes the seed vector's master
/// seed AND its seed schema, so sessions running under different seed
/// namespaces — or different draw derivations — realize disjoint entries
/// instead of silently reading each other's draws, while same-namespace
/// same-schema sessions share realizations. Returned pointers stay valid
/// for the cache's lifetime (map nodes are stable).
class WorldCache {
 public:
  /// Returns the cached realization, generating it on first use.
  Result<const Table*> GetOrGenerate(const VGTableFunction& fn,
                                     std::size_t sample_id,
                                     const SeedVector& seeds)
      JIGSAW_EXCLUDES(mu_);

  std::size_t size() const JIGSAW_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return cache_.size();
  }
  std::uint64_t generation_count() const JIGSAW_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return generations_;
  }
  void Clear() JIGSAW_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    cache_.clear();
  }

 private:
  mutable Mutex mu_;
  /// Map nodes are stable, so Table pointers handed out under one lock
  /// scope stay valid after it — only the map structure needs the guard.
  std::map<std::tuple<std::string, std::uint64_t, std::uint8_t, std::size_t>,
           Table>
      cache_ JIGSAW_GUARDED_BY(mu_);
  std::uint64_t generations_ JIGSAW_GUARDED_BY(mu_) = 0;
};

/// The synthetic user-population VG table behind the UserSelection
/// workload: one row per user with columns
///   (user_id INT, signup_week DOUBLE, requirement DOUBLE)
/// where `requirement` is the stochastic per-user demand draw for this
/// world (the peak of `sim_depth` intra-week usage draws) and the other
/// attributes are deterministic population data.
VGTableFunctionPtr MakeUsersVGTable(int num_users, double arrival_rate,
                                    double base_demand, double spread,
                                    int sim_depth = 16);

}  // namespace jigsaw::pdb
