#include "pdb/columnar.h"

#include <bit>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw::pdb {

namespace {

/// Null slots still occupy a lane in the value buffer so spans stay
/// dense; quiet NaN keeps an accidental read of a null double loud.
constexpr double kNullDouble = std::numeric_limits<double>::quiet_NaN();

}  // namespace

void ColumnChunk::Reserve(std::size_t n) {
  switch (type_) {
    case ValueType::kDouble:
      doubles_.reserve(n);
      break;
    case ValueType::kInt:
      ints_.reserve(n);
      break;
    case ValueType::kBool:
      bools_.reserve(n);
      break;
    case ValueType::kString:
      codes_.reserve(n);
      break;
    case ValueType::kNull:
      break;
  }
}

void ColumnChunk::MarkNull() {
  const std::size_t word = size_ >> 6;
  if (null_words_.size() <= word) null_words_.resize(word + 1, 0);
  null_words_[word] |= std::uint64_t{1} << (size_ & 63);
  ++null_count_;
}

void ColumnChunk::AppendDouble(double v) {
  JIGSAW_DCHECK(type_ == ValueType::kDouble);
  doubles_.push_back(v);
  ++size_;
}

void ColumnChunk::AppendInt(std::int64_t v) {
  JIGSAW_DCHECK(type_ == ValueType::kInt);
  ints_.push_back(v);
  ++size_;
}

void ColumnChunk::AppendBool(bool v) {
  JIGSAW_DCHECK(type_ == ValueType::kBool);
  bools_.push_back(v ? 1 : 0);
  ++size_;
}

void ColumnChunk::AppendString(const std::string& v) {
  codes_.push_back(InternString(v));
  ++size_;
}

std::uint32_t ColumnChunk::InternString(const std::string& v) {
  JIGSAW_DCHECK(type_ == ValueType::kString);
  auto [it, inserted] =
      dict_index_.try_emplace(v, static_cast<std::uint32_t>(dict_.size()));
  if (inserted) dict_.push_back(v);
  return it->second;
}

void ColumnChunk::AppendNull() {
  MarkNull();
  switch (type_) {
    case ValueType::kDouble:
      doubles_.push_back(kNullDouble);
      break;
    case ValueType::kInt:
      ints_.push_back(0);
      break;
    case ValueType::kBool:
      bools_.push_back(0);
      break;
    case ValueType::kString:
      codes_.push_back(0);
      break;
    case ValueType::kNull:
      break;
  }
  ++size_;
}

std::span<double> ColumnChunk::AppendDoubleSpan(std::size_t n) {
  JIGSAW_DCHECK(type_ == ValueType::kDouble);
  const std::size_t begin = doubles_.size();
  doubles_.resize(begin + n, 0.0);
  size_ += n;
  return std::span<double>(doubles_).subspan(begin, n);
}

std::span<std::int64_t> ColumnChunk::AppendIntSpan(std::size_t n) {
  JIGSAW_DCHECK(type_ == ValueType::kInt);
  const std::size_t begin = ints_.size();
  ints_.resize(begin + n, 0);
  size_ += n;
  return std::span<std::int64_t>(ints_).subspan(begin, n);
}

std::span<std::uint8_t> ColumnChunk::AppendBoolSpan(std::size_t n) {
  JIGSAW_DCHECK(type_ == ValueType::kBool);
  const std::size_t begin = bools_.size();
  bools_.resize(begin + n, 0);
  size_ += n;
  return std::span<std::uint8_t>(bools_).subspan(begin, n);
}

std::span<std::uint32_t> ColumnChunk::AppendCodeSpan(std::size_t n) {
  JIGSAW_DCHECK(type_ == ValueType::kString);
  const std::size_t begin = codes_.size();
  codes_.resize(begin + n, 0);
  size_ += n;
  return std::span<std::uint32_t>(codes_).subspan(begin, n);
}

Status ColumnChunk::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (v.type() != type_) {
    return Status::InvalidArgument(
        StrFormat("value of type %s does not fit column of type %s",
                  ValueTypeName(v.type()), ValueTypeName(type_)));
  }
  switch (type_) {
    case ValueType::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case ValueType::kInt:
      AppendInt(v.AsInt());
      break;
    case ValueType::kBool:
      AppendBool(v.AsBool());
      break;
    case ValueType::kString:
      AppendString(v.AsString());
      break;
    case ValueType::kNull:
      // Unreachable: a kNull chunk only ever receives nulls (handled
      // above); a non-null value cannot match type kNull.
      return Status::Internal("non-null value in null-typed column");
  }
  return Status::OK();
}

Value ColumnChunk::BoxValue(std::size_t i) const {
  JIGSAW_DCHECK(i < size_);
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case ValueType::kDouble:
      return Value(doubles_[i]);
    case ValueType::kInt:
      return Value(ints_[i]);
    case ValueType::kBool:
      return Value(bools_[i] != 0);
    case ValueType::kString:
      return Value(dict_[codes_[i]]);
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

bool ColumnChunk::SameContent(const ColumnChunk& other) const {
  if (type_ != other.type_ || size_ != other.size_ ||
      null_count_ != other.null_count_) {
    return false;
  }
  for (std::size_t i = 0; i < size_; ++i) {
    if (IsNull(i) != other.IsNull(i)) return false;
    if (IsNull(i)) continue;
    switch (type_) {
      case ValueType::kDouble:
        // Bitwise, not operator==: the determinism contract is about
        // identical bits, and NaN payloads must compare too.
        if (std::bit_cast<std::uint64_t>(doubles_[i]) !=
            std::bit_cast<std::uint64_t>(other.doubles_[i])) {
          return false;
        }
        break;
      case ValueType::kInt:
        if (ints_[i] != other.ints_[i]) return false;
        break;
      case ValueType::kBool:
        if (bools_[i] != other.bools_[i]) return false;
        break;
      case ValueType::kString:
        if (dict_[codes_[i]] != other.dict_[other.codes_[i]]) return false;
        break;
      case ValueType::kNull:
        break;
    }
  }
  return true;
}

ColumnarTable::ColumnarTable(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (std::size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.emplace_back(schema_.column(i).type);
  }
}

void ColumnarTable::Reserve(std::size_t n) {
  for (auto& c : columns_) c.Reserve(n);
}

Status ColumnarTable::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu != schema arity %zu", row.size(),
                  columns_.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (Status s = columns_[i].AppendValue(row[i]); !s.ok()) {
      // Keep the chunks aligned: roll nothing forward on failure. The
      // columns before `i` already accepted a slot, so the table is
      // poisoned for further appends — surface that loudly.
      return Status(s.code(),
                    StrFormat("column '%s': %s",
                              schema_.column(i).name.c_str(),
                              s.message().c_str()));
    }
  }
  ++num_rows_;
  return Status::OK();
}

Status ColumnarTable::CommitAppendedRows() {
  const std::size_t n = columns_.empty() ? num_rows_ : columns_[0].size();
  for (const auto& c : columns_) {
    if (c.size() != n) {
      return Status::Internal(
          StrFormat("bulk append left columns ragged (%zu vs %zu rows)",
                    c.size(), n));
    }
  }
  num_rows_ = n;
  return Status::OK();
}

void ColumnarTable::BoxRow(std::size_t i, Row* out) const {
  out->clear();
  out->reserve(columns_.size());
  for (const auto& c : columns_) out->push_back(c.BoxValue(i));
}

Result<ColumnarTable> ColumnarTable::FromTable(const Table& t) {
  ColumnarTable out(t.schema());
  out.Reserve(t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    JIGSAW_RETURN_IF_ERROR(out.AppendRow(t.row(r)));
  }
  return out;
}

Result<Table> ColumnarTable::ToTable() const {
  Table out(schema_);
  out.Reserve(num_rows_);
  Row row;
  for (std::size_t r = 0; r < num_rows_; ++r) {
    BoxRow(r, &row);
    // Values come straight out of typed chunks, so they match the
    // declared schema by construction; skip re-validation.
    out.AppendRowUnchecked(std::move(row));
    row = Row{};
  }
  return out;
}

Result<std::span<const double>> ColumnarTable::NumericSpan(
    const std::string& name) const {
  JIGSAW_ASSIGN_OR_RETURN(std::size_t idx, schema_.IndexOf(name));
  const ColumnChunk& c = columns_[idx];
  if (c.type() != ValueType::kDouble || c.null_count() != 0) {
    if (c.type() == ValueType::kInt || c.type() == ValueType::kBool) {
      return Status::ExecutionError(
          "column '" + name + "' is not span-addressable; use NumericColumn");
    }
    // Identical text to the boxed Table::NumericColumn failure so the
    // two storage paths surface the same error.
    return Status::ExecutionError("column '" + name + "' is not numeric");
  }
  return c.Doubles();
}

Result<std::vector<double>> ColumnarTable::NumericColumn(
    const std::string& name) const {
  JIGSAW_ASSIGN_OR_RETURN(std::size_t idx, schema_.IndexOf(name));
  const ColumnChunk& c = columns_[idx];
  std::vector<double> out;
  out.reserve(num_rows_);
  switch (c.type()) {
    case ValueType::kDouble: {
      if (c.null_count() == 0) {
        const auto span = c.Doubles();
        out.assign(span.begin(), span.end());
        return out;
      }
      break;  // nulls: fall through to the boxed-identical error below
    }
    case ValueType::kInt: {
      if (c.null_count() == 0) {
        for (std::int64_t v : c.Ints()) {
          out.push_back(static_cast<double>(v));
        }
        return out;
      }
      break;
    }
    case ValueType::kBool: {
      if (c.null_count() == 0) {
        for (std::uint8_t v : c.Bools()) out.push_back(v ? 1.0 : 0.0);
        return out;
      }
      break;
    }
    case ValueType::kString:
    case ValueType::kNull:
      break;
  }
  return Status::ExecutionError("column '" + name + "' is not numeric");
}

bool ColumnarTable::SameContent(const ColumnarTable& other) const {
  if (num_rows_ != other.num_rows_ ||
      columns_.size() != other.columns_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (schema_.column(i).name != other.schema_.column(i).name) return false;
    if (!columns_[i].SameContent(other.columns_[i])) return false;
  }
  return true;
}

std::string ColumnarTable::ToString(std::size_t max_rows) const {
  std::string out = schema_.ToString() + " [columnar]\n";
  Row row;
  for (std::size_t i = 0; i < num_rows_ && i < max_rows; ++i) {
    BoxRow(i, &row);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += " | ";
      out += row[c].ToString();
    }
    out += '\n';
  }
  if (num_rows_ > max_rows) {
    out += StrFormat("... (%zu rows total)\n", num_rows_);
  }
  return out;
}

}  // namespace jigsaw::pdb
