#pragma once

/// \file expr.h
/// Boxed-value expression trees — the interpreted evaluation path of the
/// mini-MCDB layer. The SQL front end compiles SELECT items into these;
/// the layered (Figure 7) engine interprets them row-at-a-time, while the
/// core engine wraps them into SimFunctions evaluated over raw doubles.
///
/// Stochastic model calls are expressions too: a ModelCallExpr draws from
/// the deterministic stream derived from (sample seed, call site), which
/// is how query-level fingerprints stay comparable across parameter
/// values (Section 3.1).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "models/black_box.h"
#include "pdb/table.h"
#include "random/seed_vector.h"
#include "util/status.h"

namespace jigsaw::pdb {

struct EvalContext {
  /// Current input row (null for table-less SELECTs).
  const Row* row = nullptr;
  /// Values of SELECT aliases already computed for this row; Figure 1's
  /// `overload` references its sibling aliases `capacity` and `demand`.
  const std::vector<Value>* aliases = nullptr;
  /// Scenario parameter valuation (positional, binder-resolved).
  std::span<const double> params;
  /// Monte Carlo sample (possible world) being evaluated.
  std::size_t sample_id = 0;
  const SeedVector* seeds = nullptr;
  /// Extra salt mixed into every stochastic call site; the Markov
  /// executor sets this per chain step so each step draws fresh (but
  /// deterministic) randomness. 0 for ordinary scenarios.
  std::uint64_t stream_salt = 0;
  /// Mirror of RunConfig::columnar_storage: scan nodes realize VG tables
  /// as column chunks (boxing rows on demand at Next) when set, through
  /// the boxed WorldCache path when clear. Representation only — draws,
  /// values and errors are bit-identical either way.
  bool columnar_storage = true;
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;
class ExprVisitor;

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

const char* BinaryOpName(BinaryOp op);

class Expr {
 public:
  virtual ~Expr() = default;
  virtual Result<Value> Eval(EvalContext& ctx) const = 0;
  virtual std::string ToString() const = 0;

  /// Structural double-dispatch used by tree consumers that are not
  /// evaluators (the batch compiler, printers, analyzers). Each concrete
  /// node calls exactly one ExprVisitor method with its fields.
  virtual void Accept(ExprVisitor& visitor) const = 0;
};

/// One Visit method per concrete node shape. Child expressions are handed
/// back as Expr references (or ExprPtr spans) so visitors can recurse
/// without knowing the private node classes in expr.cc.
class ExprVisitor {
 public:
  virtual ~ExprVisitor() = default;

  virtual void VisitLiteral(const Value& value) = 0;
  virtual void VisitColumnRef(std::size_t index, const std::string& name) = 0;
  virtual void VisitAliasRef(std::size_t index, const std::string& name) = 0;
  virtual void VisitParamRef(std::size_t index, const std::string& name) = 0;
  virtual void VisitBinary(BinaryOp op, const Expr& left,
                           const Expr& right) = 0;
  virtual void VisitNot(const Expr& operand) = 0;
  /// `else_expr` is null when the CASE has no ELSE branch.
  virtual void VisitCase(
      const std::vector<std::pair<ExprPtr, ExprPtr>>& branches,
      const Expr* else_expr) = 0;
  virtual void VisitModelCall(const BlackBoxPtr& model,
                              const std::vector<ExprPtr>& args,
                              std::uint64_t call_site) = 0;
};

/// Constructors.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::size_t column_index, std::string name);
ExprPtr MakeAliasRef(std::size_t alias_index, std::string name);
ExprPtr MakeParamRef(std::size_t param_index, std::string name);
ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeNot(ExprPtr operand);
/// CASE WHEN c1 THEN v1 [WHEN c2 THEN v2 ...] [ELSE e] END.
ExprPtr MakeCase(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                 ExprPtr else_expr);
/// Stochastic black-box invocation; `call_site` must be unique per lexical
/// occurrence within a scenario.
ExprPtr MakeModelCall(BlackBoxPtr model, std::vector<ExprPtr> args,
                      std::uint64_t call_site);

}  // namespace jigsaw::pdb
