#include "pdb/vg_table.h"

#include "models/cloud_models.h"
#include "util/hash.h"

namespace jigsaw::pdb {

Result<const Table*> WorldCache::GetOrGenerate(const VGTableFunction& fn,
                                               std::size_t sample_id,
                                               const SeedVector& seeds) {
  const auto key =
      std::make_tuple(fn.name(), seeds.master_seed(),
                      static_cast<std::uint8_t>(seeds.schema()), sample_id);
  {
    MutexLock lock(&mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return &it->second;
  }
  // Generate outside the lock so distinct worlds realize concurrently.
  // Realizations are pure functions of (seeds, sample_id), so if two
  // tasks race on the same key both produce the identical table and the
  // losing copy is discarded without counting a generation.
  JIGSAW_ASSIGN_OR_RETURN(Table t, fn.Generate(sample_id, seeds));
  MutexLock lock(&mu_);
  auto [it, inserted] = cache_.try_emplace(key, std::move(t));
  if (inserted) ++generations_;
  return &it->second;
}

namespace {

constexpr std::uint64_t kUsersTableSalt = 0x75736572732d7667ULL;  // users-vg

class UsersVGTable final : public VGTableFunction {
 public:
  UsersVGTable(int num_users, double arrival_rate, double base_demand,
               double spread, int sim_depth)
      : num_users_(num_users),
        arrival_rate_(arrival_rate),
        base_demand_(base_demand),
        spread_(spread),
        sim_depth_(sim_depth),
        name_("users"),
        schema_(std::vector<Column>{{"user_id", ValueType::kInt},
                                    {"signup_week", ValueType::kDouble},
                                    {"requirement", ValueType::kDouble}}) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<Table> Generate(std::size_t sample_id,
                         const SeedVector& seeds) const override {
    Table out(schema_);
    out.Reserve(static_cast<std::size_t>(num_users_));
    RandomStream rng = seeds.StreamFor(sample_id, kUsersTableSalt);
    for (int u = 0; u < num_users_; ++u) {
      double signup = 0.0, base = 0.0;
      // Same deterministic population as the UserSelection black box, so
      // both engines of Figure 7 simulate the same scenario.
      jigsaw::DeriveUserProfile(u, arrival_rate_, base_demand_, &signup,
                                &base);
      double peak = 0.0;
      for (int d = 0; d < sim_depth_; ++d) {
        peak = std::max(peak, rng.LogNormal(0.0, spread_));
      }
      const double requirement = base * peak;
      Row row;
      row.reserve(3);
      row.emplace_back(static_cast<std::int64_t>(u));
      row.emplace_back(signup);
      row.emplace_back(requirement);
      out.AddRow(std::move(row));
    }
    return out;
  }

 private:
  int num_users_;
  double arrival_rate_;
  double base_demand_;
  double spread_;
  int sim_depth_;
  std::string name_;
  Schema schema_;
};

}  // namespace

VGTableFunctionPtr MakeUsersVGTable(int num_users, double arrival_rate,
                                    double base_demand, double spread,
                                    int sim_depth) {
  return std::make_shared<UsersVGTable>(num_users, arrival_rate, base_demand,
                                        spread, sim_depth);
}

}  // namespace jigsaw::pdb
