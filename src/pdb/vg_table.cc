#include "pdb/vg_table.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "models/cloud_models.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace jigsaw::pdb {

Status VGTableFunction::GenerateColumnarInto(std::size_t sample_id,
                                             const SeedVector& seeds,
                                             ColumnarTable* out) const {
  // Boxing adapter for generators that predate the columnar store: one
  // realization through the boxed path, row-appended into the chunks.
  JIGSAW_ASSIGN_OR_RETURN(Table t, Generate(sample_id, seeds));
  out->Reserve(out->num_rows() + t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    JIGSAW_RETURN_IF_ERROR(out->AppendRow(t.row(r)));
  }
  return Status::OK();
}

Result<ColumnarTable> VGTableFunction::GenerateColumnar(
    std::size_t sample_id, const SeedVector& seeds) const {
  ColumnarTable out(schema());
  JIGSAW_RETURN_IF_ERROR(GenerateColumnarInto(sample_id, seeds, &out));
  return out;
}

Status WorldExtent::AppendWorld(const VGTableFunction& fn,
                                std::size_t sample_id,
                                const SeedVector& seeds) {
  if (data.num_columns() == 0) data = ColumnarTable(fn.schema());
  const std::size_t first_row = data.num_rows();
  row_offsets.push_back(first_row);
  JIGSAW_RETURN_IF_ERROR(fn.GenerateColumnarInto(sample_id, seeds, &data));
  for (std::int64_t& w : world_ids.AppendIntSpan(data.num_rows() - first_row)) {
    w = static_cast<std::int64_t>(sample_id);
  }
  return Status::OK();
}

WorldCache::Key WorldCache::MakeKey(const VGTableFunction& fn,
                                    std::size_t sample_id,
                                    const SeedVector& seeds) {
  return std::make_tuple(fn.name(), seeds.master_seed(),
                         static_cast<std::uint8_t>(seeds.schema()), sample_id);
}

Result<const Table*> WorldCache::GetOrGenerate(const VGTableFunction& fn,
                                               std::size_t sample_id,
                                               const SeedVector& seeds) {
  const Key key = MakeKey(fn, sample_id, seeds);
  const ColumnarTable* columnar = nullptr;
  {
    MutexLock lock(&mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (it->second.boxed) return it->second.boxed.get();
      // The realization exists in columnar form; un-box it outside the
      // lock (the pointee is immutable and never replaced once set).
      columnar = it->second.columnar.get();
    }
  }
  std::unique_ptr<const Table> boxed;
  bool generated = false;
  if (columnar != nullptr) {
    JIGSAW_ASSIGN_OR_RETURN(Table t, columnar->ToTable());
    boxed = std::make_unique<const Table>(std::move(t));
  } else {
    // Generate outside the lock so distinct worlds realize concurrently.
    // Realizations are pure functions of (seeds, sample_id), so if two
    // tasks race on the same key both produce the identical table and the
    // losing copy is discarded without counting a generation.
    JIGSAW_ASSIGN_OR_RETURN(Table t, fn.Generate(sample_id, seeds));
    boxed = std::make_unique<const Table>(std::move(t));
    generated = true;
  }
  MutexLock lock(&mu_);
  WorldEntry& entry = cache_[key];
  if (!entry.boxed) {
    // A generation is counted only when a generator ran AND this install
    // is the entry's first representation — conversions and race losers
    // never move the count, so it stays one per distinct world.
    if (generated && !entry.columnar) ++generations_;
    entry.boxed = std::move(boxed);
  }
  return entry.boxed.get();
}

Result<const ColumnarTable*> WorldCache::GetOrGenerateColumnar(
    const VGTableFunction& fn, std::size_t sample_id,
    const SeedVector& seeds) {
  const Key key = MakeKey(fn, sample_id, seeds);
  const Table* boxed = nullptr;
  {
    MutexLock lock(&mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (it->second.columnar) return it->second.columnar.get();
      boxed = it->second.boxed.get();
    }
  }
  std::unique_ptr<const ColumnarTable> columnar;
  bool generated = false;
  if (boxed != nullptr) {
    JIGSAW_ASSIGN_OR_RETURN(ColumnarTable t, ColumnarTable::FromTable(*boxed));
    columnar = std::make_unique<const ColumnarTable>(std::move(t));
  } else {
    JIGSAW_ASSIGN_OR_RETURN(ColumnarTable t,
                            fn.GenerateColumnar(sample_id, seeds));
    columnar = std::make_unique<const ColumnarTable>(std::move(t));
    generated = true;
  }
  MutexLock lock(&mu_);
  WorldEntry& entry = cache_[key];
  if (!entry.columnar) {
    if (generated && !entry.boxed) ++generations_;
    entry.columnar = std::move(columnar);
  }
  return entry.columnar.get();
}

namespace {

constexpr std::uint64_t kUsersTableSalt = 0x75736572732d7667ULL;  // users-vg
constexpr std::uint64_t kItemsTableSalt = 0x6974656d732d7667ULL;  // items-vg

class UsersVGTable final : public VGTableFunction {
 public:
  UsersVGTable(int num_users, double arrival_rate, double base_demand,
               double spread, int sim_depth)
      : num_users_(num_users),
        arrival_rate_(arrival_rate),
        base_demand_(base_demand),
        spread_(spread),
        sim_depth_(sim_depth),
        name_("users"),
        schema_(std::vector<Column>{{"user_id", ValueType::kInt},
                                    {"signup_week", ValueType::kDouble},
                                    {"requirement", ValueType::kDouble}}) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<Table> Generate(std::size_t sample_id,
                         const SeedVector& seeds) const override {
    Table out(schema_);
    out.Reserve(static_cast<std::size_t>(num_users_));
    RandomStream rng = seeds.StreamFor(sample_id, kUsersTableSalt);
    for (int u = 0; u < num_users_; ++u) {
      double signup = 0.0, requirement = 0.0;
      RealizeUser(u, &rng, &signup, &requirement);
      Row row;
      row.reserve(3);
      row.emplace_back(static_cast<std::int64_t>(u));
      row.emplace_back(signup);
      row.emplace_back(requirement);
      JIGSAW_RETURN_IF_ERROR(out.AddRow(std::move(row)));
    }
    return out;
  }

  Status GenerateColumnarInto(std::size_t sample_id, const SeedVector& seeds,
                              ColumnarTable* out) const override {
    // The hot path: draws land straight in the column buffers. Shares
    // RealizeUser with Generate so both representations consume the
    // stream identically and realize bit-identical values.
    const std::size_t n = static_cast<std::size_t>(num_users_);
    std::span<std::int64_t> user_ids = out->column(0).AppendIntSpan(n);
    std::span<double> signups = out->column(1).AppendDoubleSpan(n);
    std::span<double> requirements = out->column(2).AppendDoubleSpan(n);
    RandomStream rng = seeds.StreamFor(sample_id, kUsersTableSalt);
    for (int u = 0; u < num_users_; ++u) {
      user_ids[u] = u;
      RealizeUser(u, &rng, &signups[u], &requirements[u]);
    }
    return out->CommitAppendedRows();
  }

 private:
  void RealizeUser(int u, RandomStream* rng, double* signup,
                   double* requirement) const {
    double base = 0.0;
    // Same deterministic population as the UserSelection black box, so
    // both engines of Figure 7 simulate the same scenario.
    jigsaw::DeriveUserProfile(u, arrival_rate_, base_demand_, signup, &base);
    double peak = 0.0;
    for (int d = 0; d < sim_depth_; ++d) {
      peak = std::max(peak, rng->LogNormal(0.0, spread_));
    }
    *requirement = base * peak;
  }

  int num_users_;
  double arrival_rate_;
  double base_demand_;
  double spread_;
  int sim_depth_;
  std::string name_;
  Schema schema_;
};

/// Deterministic (non-random) per-item attributes for the scaling table.
/// Knuth-style multiplicative mixing keeps them varied without touching
/// the random stream.
bool ItemInStock(std::size_t i) {
  return (i * 2654435761ULL) % 10 != 0;  // ~90% in stock
}

const char* ItemRegion(std::size_t i) {
  static constexpr const char* kRegions[4] = {"north", "south", "east",
                                              "west"};
  return kRegions[i & 3];
}

class ScalingItemsVGTable final : public VGTableFunction {
 public:
  ScalingItemsVGTable(std::size_t num_rows, double demand_mu,
                      double demand_sigma, double cost_base)
      : num_rows_(num_rows),
        demand_mu_(demand_mu),
        demand_sigma_(demand_sigma),
        cost_base_(cost_base),
        name_("items"),
        schema_(std::vector<Column>{{"item_id", ValueType::kInt},
                                    {"demand", ValueType::kDouble},
                                    {"cost", ValueType::kDouble},
                                    {"in_stock", ValueType::kBool},
                                    {"region", ValueType::kString}}) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<Table> Generate(std::size_t sample_id,
                         const SeedVector& seeds) const override {
    Table out(schema_);
    out.Reserve(num_rows_);
    RandomStream rng = seeds.StreamFor(sample_id, kItemsTableSalt);
    for (std::size_t i = 0; i < num_rows_; ++i) {
      double demand = 0.0, cost = 0.0;
      RealizeItem(&rng, &demand, &cost);
      Row row;
      row.reserve(5);
      row.emplace_back(static_cast<std::int64_t>(i));
      row.emplace_back(demand);
      row.emplace_back(cost);
      row.emplace_back(ItemInStock(i));
      row.emplace_back(std::string(ItemRegion(i)));
      JIGSAW_RETURN_IF_ERROR(out.AddRow(std::move(row)));
    }
    return out;
  }

  Status GenerateColumnarInto(std::size_t sample_id, const SeedVector& seeds,
                              ColumnarTable* out) const override {
    std::span<std::int64_t> item_ids = out->column(0).AppendIntSpan(num_rows_);
    std::span<double> demands = out->column(1).AppendDoubleSpan(num_rows_);
    std::span<double> costs = out->column(2).AppendDoubleSpan(num_rows_);
    std::span<std::uint8_t> in_stock = out->column(3).AppendBoolSpan(num_rows_);
    // The region domain is closed (4 names cycling by i&3): intern each
    // name once, in the same first-appearance order the boxed rows
    // produce, and bulk-fill codes — no per-row dictionary probe.
    ColumnChunk& region = out->column(4);
    std::uint32_t region_codes[4];
    for (std::size_t r = 0; r < 4; ++r) {
      region_codes[r] = region.InternString(ItemRegion(r));
    }
    std::span<std::uint32_t> regions = region.AppendCodeSpan(num_rows_);
    RandomStream rng = seeds.StreamFor(sample_id, kItemsTableSalt);
    for (std::size_t i = 0; i < num_rows_; ++i) {
      item_ids[i] = static_cast<std::int64_t>(i);
      RealizeItem(&rng, &demands[i], &costs[i]);
      in_stock[i] = ItemInStock(i) ? 1 : 0;
      regions[i] = region_codes[i & 3];
    }
    return out->CommitAppendedRows();
  }

 private:
  void RealizeItem(RandomStream* rng, double* demand, double* cost) const {
    // Two draws per row: cheap enough that storage representation — not
    // the generator — dominates the cost at millions of tuples.
    *demand = rng->LogNormal(demand_mu_, demand_sigma_);
    *cost = cost_base_ * rng->Uniform(0.8, 1.2);
  }

  std::size_t num_rows_;
  double demand_mu_;
  double demand_sigma_;
  double cost_base_;
  std::string name_;
  Schema schema_;
};

}  // namespace

VGTableFunctionPtr MakeUsersVGTable(int num_users, double arrival_rate,
                                    double base_demand, double spread,
                                    int sim_depth) {
  return std::make_shared<UsersVGTable>(num_users, arrival_rate, base_demand,
                                        spread, sim_depth);
}

VGTableFunctionPtr MakeScalingItemsVGTable(std::size_t num_rows,
                                           double demand_mu,
                                           double demand_sigma,
                                           double cost_base) {
  return std::make_shared<ScalingItemsVGTable>(num_rows, demand_mu,
                                               demand_sigma, cost_base);
}

}  // namespace jigsaw::pdb
