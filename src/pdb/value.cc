#include "pdb/value.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw::pdb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  switch (v_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kBool;
    case 4:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

std::int64_t Value::AsInt() const {
  JIGSAW_CHECK_MSG(std::holds_alternative<std::int64_t>(v_),
                   "Value is not INT");
  return std::get<std::int64_t>(v_);
}

double Value::AsDouble() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  if (const auto* b = std::get_if<bool>(&v_)) return *b ? 1.0 : 0.0;
  JIGSAW_CHECK_MSG(false, "Value is not numeric");
  return 0.0;
}

bool Value::AsBool() const {
  if (const auto* b = std::get_if<bool>(&v_)) return *b;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i != 0;
  if (const auto* d = std::get_if<double>(&v_)) return *d != 0.0;
  JIGSAW_CHECK_MSG(false, "Value is not coercible to BOOL");
  return false;
}

const std::string& Value::AsString() const {
  JIGSAW_CHECK_MSG(std::holds_alternative<std::string>(v_),
                   "Value is not STRING");
  return std::get<std::string>(v_);
}

bool Value::IsNumeric() const {
  const ValueType t = type();
  return t == ValueType::kInt || t == ValueType::kDouble ||
         t == ValueType::kBool;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(std::get<std::int64_t>(v_));
    case ValueType::kDouble:
      return DoubleToString(std::get<double>(v_));
    case ValueType::kBool:
      return std::get<bool>(v_) ? "true" : "false";
    case ValueType::kString:
      return std::get<std::string>(v_);
  }
  return "";
}

Result<Value> Value::Parse(const std::string& text, ValueType as) {
  switch (as) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str()) {
        return Status::ParseError("bad INT literal: " + text);
      }
      return Value(static_cast<std::int64_t>(v));
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str()) {
        return Status::ParseError("bad DOUBLE literal: " + text);
      }
      return Value(v);
    }
    case ValueType::kBool:
      if (EqualsIgnoreCase(text, "true")) return Value(true);
      if (EqualsIgnoreCase(text, "false")) return Value(false);
      return Status::ParseError("bad BOOL literal: " + text);
    case ValueType::kString:
      return Value(text);
  }
  return Status::ParseError("unknown value type");
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) {
    if (IsNumeric() && other.IsNumeric()) {
      return AsDouble() == other.AsDouble();
    }
    return false;
  }
  return v_ == other.v_;
}

int Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return a.is_null() ? -1 : 1;
  }
  if (a.IsNumeric() && b.IsNumeric()) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
    return a.AsString().compare(b.AsString()) < 0
               ? -1
               : (a.AsString() == b.AsString() ? 0 : 1);
  }
  // Mixed incomparable types: order by type id for determinism.
  return static_cast<int>(a.type()) < static_cast<int>(b.type()) ? -1 : 1;
}

namespace {
Result<Value> NumericOp(const Value& a, const Value& b, char op) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.IsNumeric() || !b.IsNumeric()) {
    return Status::ExecutionError(
        std::string("non-numeric operand to '") + op + "'");
  }
  const bool both_int =
      a.type() == ValueType::kInt && b.type() == ValueType::kInt;
  if (both_int && op != '/') {
    const std::int64_t x = a.AsInt();
    const std::int64_t y = b.AsInt();
    switch (op) {
      case '+':
        return Value(x + y);
      case '-':
        return Value(x - y);
      case '*':
        return Value(x * y);
    }
  }
  const double x = a.AsDouble();
  const double y = b.AsDouble();
  switch (op) {
    case '+':
      return Value(x + y);
    case '-':
      return Value(x - y);
    case '*':
      return Value(x * y);
    case '/':
      if (y == 0.0) return Status::ExecutionError("division by zero");
      return Value(x / y);
  }
  return Status::Internal("unknown arithmetic op");
}
}  // namespace

Result<Value> Add(const Value& a, const Value& b) {
  return NumericOp(a, b, '+');
}
Result<Value> Subtract(const Value& a, const Value& b) {
  return NumericOp(a, b, '-');
}
Result<Value> Multiply(const Value& a, const Value& b) {
  return NumericOp(a, b, '*');
}
Result<Value> Divide(const Value& a, const Value& b) {
  return NumericOp(a, b, '/');
}

}  // namespace jigsaw::pdb
