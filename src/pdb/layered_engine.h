#pragma once

/// \file layered_engine.h
/// Stand-in for the paper's original prototype — "a C# PDB layer built on
/// top of Microsoft SQL Server" whose timings were "polluted by noise from
/// interprocess communication and SQL interpretation and evaluation
/// overheads" (Section 6.1). We reproduce those structural overheads
/// honestly rather than with sleeps:
///
///  * the query plan is rebuilt for every invocation (SQL re-submission);
///  * evaluation is interpreted, row-at-a-time, over boxed Values;
///  * every result row crosses a string-serialization boundary and is
///    parsed back (the external-process interop);
///
/// and we also give it the genuine DBMS advantage: VG table realizations
/// are materialized once per world in a WorldCache and re-scanned
/// set-at-a-time, which is why this engine *wins* on the data-bound
/// UserSelection workload exactly as SQL Server beat the Ruby engine.
///
/// Compiled expressions (pdb/batch_program.h) slot in at the leaf level:
/// a plan factory may hand the engine BatchProgramScan nodes, mirroring
/// how the original DBMS baseline still ran compiled scans inside its
/// interpreted executor. The per-world re-planning and the row
/// serialization boundary — the overheads this engine exists to model —
/// apply to compiled plans unchanged, and results stay bit-identical to
/// fully interpreted plans.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/parameter_space.h"
#include "core/run_config.h"
#include "pdb/operators.h"
#include "pdb/vg_table.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace jigsaw::pdb {

struct LayeredPointResult {
  std::map<std::string, OutputMetrics> columns;
};

struct LayeredEngineStats {
  std::uint64_t plans_built = 0;
  std::uint64_t rows_serialized = 0;
  std::uint64_t worlds_generated = 0;
};

class LayeredEngine {
 public:
  /// `shared_cache`, when non-null, replaces the engine's private
  /// WorldCache — the session server publishes one cache per catalog
  /// snapshot so realizations amortize across every session that runs the
  /// script. The cache keys realizations by (table, master seed, world),
  /// so engines running under different seed namespaces never collide in
  /// it; it must outlive the engine.
  explicit LayeredEngine(const RunConfig& config,
                         WorldCache* shared_cache = nullptr)
      : config_(config),
        seeds_(config.master_seed, config.num_samples, config.seed_schema) {
    if (config_.batch_size == 0) config_.batch_size = 1;
    cache_ = shared_cache != nullptr ? shared_cache : &owned_cache_;
    if (config_.num_threads > 1) {
      if (config_.shared_pool != nullptr) {
        pool_ = config_.shared_pool;
      } else {
        owned_pool_ = std::make_unique<ThreadPool>(config_.num_threads);
        pool_ = owned_pool_.get();
      }
    }
  }

  /// Builds the per-invocation plan for one (parameter valuation, world):
  /// called once per sample per point, modeling per-query SQL submission.
  /// The factory may capture the engine's WorldCache for VG scans. With
  /// num_threads > 1 worlds evaluate concurrently (the original prototype
  /// ran its per-world queries against a multi-session DBMS, after all),
  /// so the factory must be thread-safe; WorldCache already is.
  using PlanFactory = std::function<Result<PlanNodePtr>()>;

  /// Evaluates one parameter point with n interpreted possible-world
  /// queries. The plan must yield exactly one row.
  Result<LayeredPointResult> RunPoint(const PlanFactory& make_plan,
                                      std::span<const double> params);

  /// Full sweep over a parameter space; results in enumeration order.
  Result<std::vector<LayeredPointResult>> RunSweep(
      const PlanFactory& make_plan, const ParameterSpace& space);

  /// Sweep over explicit valuations (MONTECARLO OVER @p): one RunPoint
  /// per entry, in index order — points stay serial (the prototype
  /// re-submits each point's queries to the DBMS) while each point's
  /// worlds fan out on the engine's pool, and the WorldCache amortizes
  /// realizations across points. Entry k is bit-identical to a standalone
  /// RunPoint at valuations[k]; a failing point's error is prefixed with
  /// "sweep point k" when the sweep has more than one point, matching the
  /// direct executor's sweep contract.
  Result<std::vector<LayeredPointResult>> RunSweep(
      const PlanFactory& make_plan,
      std::span<const std::vector<double>> valuations);

  WorldCache& world_cache() { return *cache_; }
  const SeedVector& seeds() const { return seeds_; }
  /// Note: with a shared cache, `worlds_generated` counts cache-wide
  /// generations observed during this engine's runs — concurrent sibling
  /// sessions inflate it. Per-session result determinism is unaffected
  /// (stats never feed back into evaluation).
  const LayeredEngineStats& stats() const { return stats_; }

 private:
  RunConfig config_;
  SeedVector seeds_;
  WorldCache owned_cache_;
  WorldCache* cache_ = nullptr;  ///< owned_cache_ or the shared snapshot
  LayeredEngineStats stats_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  ///< owned_pool_ or config_.shared_pool
};

/// A VG scan node bound to a LayeredEngine world cache: scans the cached
/// realization of `fn` for the current world, generating it on first use.
PlanNodePtr MakeCachedVGScan(VGTableFunctionPtr fn, WorldCache* cache);

}  // namespace jigsaw::pdb
