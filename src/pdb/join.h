#pragma once

/// \file join.h
/// World-partitioned equi-join over columnar possible-worlds storage —
/// the first relational operator above scan-project-fold on the
/// ColumnChunk representation. "Joining relations under discrete
/// uncertainty" compares sort- and index-based join algorithms; both map
/// directly onto our chunks, and both are offered here behind
/// RunConfig::join_algorithm:
///
///   kSortMerge — per world, stable-sort the row indices of each side by
///                key (ties broken by row index, which stable sort
///                preserves for free), merge equal-key groups, then
///                restore the canonical (left row, right row) order;
///   kHash      — per world, build an insertion-ordered hash index over
///                the right side and probe left rows in order, which
///                yields the canonical order directly.
///
/// The canonical output order is the serial boxed nested-loop order:
/// for each left row ascending, its matches with right rows ascending.
/// That nested-loop join is shipped here too (NestedLoopJoinOracle, and
/// as the MakeJoinedVGScan Volcano leaf) as the reference oracle: every
/// algorithm x storage x threads x batch combination must be
/// bit-identical to it — values, output row order, error text and error
/// ordering. NULL join keys never match anything (not even another
/// NULL), matching SQL semantics; NaN double keys likewise never match.
///
/// Worlds never mix: the join runs within each world partition of a
/// WorldExtent, so a W-world join is W independent per-world joins — the
/// U-relations view of world membership as a condition column that both
/// sides must agree on ("Fast and Simple Relational Processing of
/// Uncertain Data"). FoldJoinedVGColumns fans world-chunk cells out on
/// the shared ThreadPool under the same shard-ownership rule as
/// FoldVGColumns, and folds joined numeric kDouble columns into
/// Estimator::AddSpan zero-copy.

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "core/run_config.h"
#include "pdb/columnar.h"
#include "pdb/operators.h"
#include "pdb/table.h"
#include "pdb/vg_table.h"
#include "random/seed_vector.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace jigsaw::pdb {

/// Equi-join key specification: one key column per side, by name
/// (resolved case-insensitively, like every schema lookup).
struct JoinSpec {
  std::string left_key;
  std::string right_key;
};

/// A JoinSpec resolved against both input schemas: key slots, the common
/// key type, and the concatenated output schema. Resolution happens once
/// up front, so a bad key name, a key type mismatch or a duplicate
/// output column fails before any world is realized — with the same
/// error text and ordering on every execution path.
struct ResolvedJoin {
  std::size_t left_slot = 0;
  std::size_t right_slot = 0;
  ValueType key_type = ValueType::kDouble;
  Schema output;  ///< left columns then right columns
};

/// Resolves `spec` against the two input schemas. Errors, in resolution
/// order: unknown left key, unknown right key ("no column named 'x'"),
/// mismatched key types, duplicate output column name.
Result<ResolvedJoin> ResolveJoin(const Schema& left, const Schema& right,
                                 const JoinSpec& spec);

/// The serial boxed nested-loop reference join — the oracle every span
/// kernel is differenced against. For each left row in order, emits its
/// concatenation with each matching right row in order. NULL keys never
/// match.
Result<Table> NestedLoopJoinOracle(const Table& left, const Table& right,
                                   const ResolvedJoin& join);

/// Span-kernel join of one world partition: joins rows [left_first,
/// left_last) of `left` with rows [right_first, right_last) of `right`,
/// appending the concatenated matches to `*out` (which must have schema
/// `join.output`) in canonical nested-loop order. Both algorithms are
/// bit-identical to NestedLoopJoinOracle over the same partition.
Status JoinPartition(const ColumnarTable& left, std::size_t left_first,
                     std::size_t left_last, const ColumnarTable& right,
                     std::size_t right_first, std::size_t right_last,
                     const ResolvedJoin& join, JoinAlgorithm algorithm,
                     ColumnarTable* out);

/// World-partitioned join of two realized multi-world extents: world k
/// of `left` joins world k of `right` (both extents must cover the same
/// contiguous world range), appending each world's joined partition to
/// `*out` and stamping its world-id column — the joined relation keeps
/// the U-relations world annotation next to the data, so it can feed
/// further world-partitioned operators. `out->data` is initialized to
/// `join.output` on first use.
Status JoinWorlds(const WorldExtent& left, const WorldExtent& right,
                  const ResolvedJoin& join, JoinAlgorithm algorithm,
                  WorldExtent* out);

/// Volcano leaf over the joined relation of world `ctx.sample_id`: both
/// sides are realized boxed (through `cache` when non-null) and joined
/// by the serial nested-loop oracle, rows streaming out in canonical
/// order. This is the plan node the SQL binder lowers MONTECARLO
/// FROM ... JOIN into, and the boxed reference twin FoldJoinedVGColumns
/// runs under columnar_storage=false.
PlanNodePtr MakeJoinedVGScan(VGTableFunctionPtr left,
                             VGTableFunctionPtr right, ResolvedJoin join,
                             WorldCache* cache = nullptr);

/// Tuple-level possible-worlds join + fold, mirroring FoldVGColumns:
/// realizes both tables in every world of [0, num_worlds), joins each
/// world's partitions, and folds each requested numeric column of the
/// joined relation — every joined tuple of every world, concatenated in
/// (world, row) order — into an OutputMetrics summary.
///
/// Under config.columnar_storage each batch_size world chunk is one pool
/// task (the shard-ownership rule): the task realizes both sides into
/// its own WorldExtents (interleaving left/right per world, so
/// generator errors surface in the serial order), joins them with
/// config.join_algorithm, and the merge reads joined kDouble chunks
/// zero-copy through Estimator::AddSpan in world order. With the gate
/// off, the boxed twin executes the MakeJoinedVGScan nested-loop oracle
/// per world and extracts columns through the copying
/// Table::NumericColumn — same draws, bit-identical metrics, identical
/// error text and ordering. With a non-null `cache`, realizations go
/// through the WorldCache in whichever representation the gate selects.
Result<std::map<std::string, OutputMetrics>> FoldJoinedVGColumns(
    const VGTableFunctionPtr& left, const VGTableFunctionPtr& right,
    const JoinSpec& spec, std::span<const std::string> column_names,
    std::size_t num_worlds, const SeedVector& seeds, const RunConfig& config,
    ThreadPool* pool, WorldCache* cache = nullptr);

}  // namespace jigsaw::pdb
