#pragma once

/// \file table.h
/// Schema, Row and Table — the materialized relational primitives of the
/// mini-MCDB layer, plus a catalog mapping names to tables (deterministic
/// databases) or VG table functions (uncertain tables realized per world).

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "pdb/value.h"
#include "util/status.h"

namespace jigsaw::pdb {

struct Column {
  std::string name;
  ValueType type = ValueType::kDouble;
};

/// True if `v` may be stored in a column declared as `declared`: nulls
/// always fit, the numeric family (int/double/bool) is mutually
/// compatible, strings require a string-declared column.
bool ValueFitsColumn(const Value& v, ValueType declared);

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  std::size_t num_columns() const { return columns_.size(); }
  const Column& column(std::size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Case-insensitive column lookup.
  Result<std::size_t> IndexOf(const std::string& name) const;

  /// Concatenation (used by joins).
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

using Row = std::vector<Value>;

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return rows_.size(); }
  const Row& row(std::size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Validated ingestion: the row must match the schema's arity, and each
  /// value must fit its declared column type (nulls always fit; the
  /// numeric family int/double/bool is interchangeable into a
  /// numeric-declared column, matching Value::AsDouble coercion; a
  /// string-declared column only takes strings).
  [[nodiscard]] Status AddRow(Row row);

  /// Unvalidated ingestion for plan materialization: Volcano operators
  /// are dynamically typed (plan schemas default to kDouble even when an
  /// expression emits strings), so ExecuteToTable and the columnar
  /// un-boxing path append without the type check. Arity is still
  /// enforced in debug builds.
  void AppendRowUnchecked(Row row);

  void Reserve(std::size_t n) { rows_.reserve(n); }

  /// Extracts one numeric column as doubles (estimator input).
  Result<std::vector<double>> NumericColumn(const std::string& name) const;

  /// CSV round trip; the layered engine pushes result sets through this
  /// boundary to model the external-process interop of the C#/SQL-Server
  /// prototype.
  std::string ToCsv() const;
  static Result<Table> FromCsv(const std::string& text, const Schema& schema);

  std::string ToString(std::size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace jigsaw::pdb
