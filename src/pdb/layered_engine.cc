#include "pdb/layered_engine.h"

#include <atomic>

#include "pdb/monte_carlo.h"
#include "util/logging.h"

namespace jigsaw::pdb {

namespace {

class CachedVGScanNode final : public PlanNode {
 public:
  CachedVGScanNode(VGTableFunctionPtr fn, WorldCache* cache)
      : fn_(std::move(fn)), cache_(cache) {}

  const Schema& schema() const override { return fn_->schema(); }

  Status Open(EvalContext& ctx) override {
    JIGSAW_CHECK(ctx.seeds != nullptr);
    if (ctx.columnar_storage) {
      // Columnar store of record: the realization lives as typed chunks
      // and each Next boxes one row on demand (the Volcano interface is
      // the conversion boundary).
      JIGSAW_ASSIGN_OR_RETURN(
          columnar_,
          cache_->GetOrGenerateColumnar(*fn_, ctx.sample_id, *ctx.seeds));
      table_ = nullptr;
    } else {
      JIGSAW_ASSIGN_OR_RETURN(
          table_, cache_->GetOrGenerate(*fn_, ctx.sample_id, *ctx.seeds));
      columnar_ = nullptr;
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (columnar_ != nullptr) {
      if (pos_ >= columnar_->num_rows()) return false;
      columnar_->BoxRow(pos_++, out);
      return true;
    }
    if (pos_ >= table_->num_rows()) return false;
    *out = table_->row(pos_++);
    return true;
  }

  void Close() override {}

 private:
  VGTableFunctionPtr fn_;
  WorldCache* cache_;
  const Table* table_ = nullptr;
  const ColumnarTable* columnar_ = nullptr;
  std::size_t pos_ = 0;
};

}  // namespace

PlanNodePtr MakeCachedVGScan(VGTableFunctionPtr fn, WorldCache* cache) {
  return std::make_unique<CachedVGScanNode>(std::move(fn), cache);
}

Result<LayeredPointResult> LayeredEngine::RunPoint(
    const PlanFactory& make_plan, std::span<const double> params) {
  LayeredPointResult result;

  const std::uint64_t before = cache_->generation_count();
  // Pool tasks bump the counters concurrently; the totals are
  // deterministic on success (every world runs exactly once).
  std::atomic<std::uint64_t> plans_built{0};
  std::atomic<std::uint64_t> rows_serialized{0};

  auto run_world = [&](std::size_t world) -> Result<Table> {
    // Fresh plan per invocation: the layered prototype re-submits the
    // query to the DBMS for every sampled world.
    JIGSAW_ASSIGN_OR_RETURN(PlanNodePtr plan, make_plan());
    plans_built.fetch_add(1, std::memory_order_relaxed);

    EvalContext ctx;
    ctx.params = params;
    ctx.sample_id = world;
    ctx.seeds = &seeds_;
    ctx.columnar_storage = config_.columnar_storage;
    JIGSAW_ASSIGN_OR_RETURN(Table t, ExecuteToTable(*plan, ctx));

    // Interop boundary: the result set leaves the "DBMS" as text and is
    // parsed back in the "client".
    const std::string wire = t.ToCsv();
    JIGSAW_ASSIGN_OR_RETURN(Table parsed, Table::FromCsv(wire, t.schema()));
    rows_serialized.fetch_add(parsed.num_rows(), std::memory_order_relaxed);
    return parsed;
  };

  auto folded = FoldWorlds(config_.num_samples, config_, pool_,
                           run_world);
  // Record the work actually performed even when a world errors out —
  // the serial loop counted per world before propagating failures.
  stats_.plans_built += plans_built.load();
  stats_.rows_serialized += rows_serialized.load();
  stats_.worlds_generated += cache_->generation_count() - before;
  JIGSAW_RETURN_IF_ERROR(folded.status());
  result.columns = std::move(folded).value();
  return result;
}

Result<std::vector<LayeredPointResult>> LayeredEngine::RunSweep(
    const PlanFactory& make_plan, const ParameterSpace& space) {
  std::vector<std::vector<double>> valuations;
  const std::size_t n = space.NumPoints();
  valuations.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    valuations.push_back(space.ValuationAt(i));
  }
  return RunSweep(make_plan, valuations);
}

Result<std::vector<LayeredPointResult>> LayeredEngine::RunSweep(
    const PlanFactory& make_plan,
    std::span<const std::vector<double>> valuations) {
  std::vector<LayeredPointResult> out;
  out.reserve(valuations.size());
  for (std::size_t i = 0; i < valuations.size(); ++i) {
    auto r = RunPoint(make_plan, valuations[i]);
    if (!r.ok()) {
      // Match the direct executor's contract: multi-point failures name
      // the point, a one-point sweep keeps RunPoint's raw error.
      if (valuations.size() > 1) return NameSweepPoint(i, r.status());
      return r.status();
    }
    out.push_back(std::move(r).value());
  }
  return out;
}

}  // namespace jigsaw::pdb
