#include "pdb/layered_engine.h"

#include "util/logging.h"

namespace jigsaw::pdb {

namespace {

class CachedVGScanNode final : public PlanNode {
 public:
  CachedVGScanNode(VGTableFunctionPtr fn, WorldCache* cache)
      : fn_(std::move(fn)), cache_(cache) {}

  const Schema& schema() const override { return fn_->schema(); }

  Status Open(EvalContext& ctx) override {
    JIGSAW_CHECK(ctx.seeds != nullptr);
    JIGSAW_ASSIGN_OR_RETURN(
        table_, cache_->GetOrGenerate(*fn_, ctx.sample_id, *ctx.seeds));
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= table_->num_rows()) return false;
    *out = table_->row(pos_++);
    return true;
  }

  void Close() override {}

 private:
  VGTableFunctionPtr fn_;
  WorldCache* cache_;
  const Table* table_ = nullptr;
  std::size_t pos_ = 0;
};

}  // namespace

PlanNodePtr MakeCachedVGScan(VGTableFunctionPtr fn, WorldCache* cache) {
  return std::make_unique<CachedVGScanNode>(std::move(fn), cache);
}

Result<LayeredPointResult> LayeredEngine::RunPoint(
    const PlanFactory& make_plan, std::span<const double> params) {
  LayeredPointResult result;
  std::vector<Estimator> estimators;
  std::vector<std::string> names;

  const std::uint64_t before = world_cache_.generation_count();
  for (std::size_t world = 0; world < config_.num_samples; ++world) {
    // Fresh plan per invocation: the layered prototype re-submits the
    // query to the DBMS for every sampled world.
    JIGSAW_ASSIGN_OR_RETURN(PlanNodePtr plan, make_plan());
    ++stats_.plans_built;

    EvalContext ctx;
    ctx.params = params;
    ctx.sample_id = world;
    ctx.seeds = &seeds_;
    JIGSAW_ASSIGN_OR_RETURN(Table t, ExecuteToTable(*plan, ctx));
    if (t.num_rows() != 1) {
      return Status::ExecutionError(
          "layered query must produce exactly one row per world");
    }

    // Interop boundary: the result set leaves the "DBMS" as text and is
    // parsed back in the "client".
    const std::string wire = t.ToCsv();
    JIGSAW_ASSIGN_OR_RETURN(Table parsed,
                            Table::FromCsv(wire, t.schema()));
    stats_.rows_serialized += parsed.num_rows();

    if (estimators.empty()) {
      for (std::size_t c = 0; c < parsed.schema().num_columns(); ++c) {
        names.push_back(parsed.schema().column(c).name);
        estimators.emplace_back(config_.keep_samples,
                                config_.histogram_bins);
      }
    }
    const Row& row = parsed.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].IsNumeric()) estimators[c].Add(row[c].AsDouble());
    }
  }
  stats_.worlds_generated += world_cache_.generation_count() - before;

  for (std::size_t c = 0; c < estimators.size(); ++c) {
    result.columns.emplace(names[c], estimators[c].Finalize());
  }
  return result;
}

Result<std::vector<LayeredPointResult>> LayeredEngine::RunSweep(
    const PlanFactory& make_plan, const ParameterSpace& space) {
  std::vector<LayeredPointResult> out;
  const std::size_t n = space.NumPoints();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto valuation = space.ValuationAt(i);
    JIGSAW_ASSIGN_OR_RETURN(LayeredPointResult r,
                            RunPoint(make_plan, valuation));
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace jigsaw::pdb
