#include "pdb/table.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw::pdb {

Result<std::size_t> Schema::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns();
  cols.insert(cols.end(), right.columns().begin(), right.columns().end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(c.name + ":" + ValueTypeName(c.type));
  }
  return "(" + Join(parts, ", ") + ")";
}

bool ValueFitsColumn(const Value& v, ValueType declared) {
  if (v.is_null()) return true;
  switch (declared) {
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kBool:
      return v.IsNumeric();
    case ValueType::kString:
      return v.type() == ValueType::kString;
    case ValueType::kNull:
      return false;
  }
  return false;
}

Status Table::AddRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu != schema arity %zu", row.size(),
                  schema_.num_columns()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!ValueFitsColumn(row[i], schema_.column(i).type)) {
      return Status::InvalidArgument(StrFormat(
          "column '%s': value of type %s does not fit declared type %s",
          schema_.column(i).name.c_str(), ValueTypeName(row[i].type()),
          ValueTypeName(schema_.column(i).type)));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::AppendRowUnchecked(Row row) {
  JIGSAW_DCHECK(row.size() == schema_.num_columns());
  rows_.push_back(std::move(row));
}

Result<std::vector<double>> Table::NumericColumn(
    const std::string& name) const {
  JIGSAW_ASSIGN_OR_RETURN(std::size_t idx, schema_.IndexOf(name));
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) {
    if (!r[idx].IsNumeric()) {
      return Status::ExecutionError("column '" + name + "' is not numeric");
    }
    out.push_back(r[idx].AsDouble());
  }
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  for (std::size_t i = 0; i < schema_.num_columns(); ++i) {
    if (i > 0) out += ',';
    out += schema_.column(i).name;
  }
  out += '\n';
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i > 0) out += ',';
      out += r[i].ToString();
    }
    out += '\n';
  }
  return out;
}

Result<Table> Table::FromCsv(const std::string& text, const Schema& schema) {
  Table out(schema);
  const auto lines = Split(text, '\n');
  bool first = true;
  for (const auto& line : lines) {
    if (first) {
      first = false;  // header
      continue;
    }
    if (Trim(line).empty()) continue;
    const auto fields = Split(line, ',');
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError("csv arity mismatch: " + line);
    }
    Row row;
    row.reserve(fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i) {
      JIGSAW_ASSIGN_OR_RETURN(
          Value v, Value::Parse(fields[i], schema.column(i).type));
      row.push_back(std::move(v));
    }
    JIGSAW_RETURN_IF_ERROR(out.AddRow(std::move(row)));
  }
  return out;
}

std::string Table::ToString(std::size_t max_rows) const {
  std::string out = schema_.ToString() + "\n";
  for (std::size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    for (std::size_t c = 0; c < rows_[i].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows_[i][c].ToString();
    }
    out += '\n';
  }
  if (rows_.size() > max_rows) {
    out += StrFormat("... (%zu rows total)\n", rows_.size());
  }
  return out;
}

}  // namespace jigsaw::pdb
