#include "pdb/operators.h"

#include <algorithm>
#include <limits>

#include "util/hash.h"
#include "util/logging.h"

namespace jigsaw::pdb {

namespace {

std::uint64_t HashRowKey(const Row& row, const std::vector<std::size_t>& keys) {
  std::uint64_t h = 0x12345678abcdef01ULL;
  for (std::size_t k : keys) {
    h = HashCombine(h, Fnv1a64(row[k].ToString()));
  }
  return h;
}

bool RowKeysEqual(const Row& a, const std::vector<std::size_t>& ka,
                  const Row& b, const std::vector<std::size_t>& kb) {
  for (std::size_t i = 0; i < ka.size(); ++i) {
    if (!(a[ka[i]] == b[kb[i]])) return false;
  }
  return true;
}

class TableScanNode final : public PlanNode {
 public:
  explicit TableScanNode(const Table* table) : table_(table) {}
  TableScanNode(Table owned, bool)
      : owned_(std::move(owned)), table_(&*owned_) {}

  const Schema& schema() const override { return table_->schema(); }

  Status Open(EvalContext&) override {
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= table_->num_rows()) return false;
    *out = table_->row(pos_++);
    return true;
  }

  void Close() override {}

 private:
  std::optional<Table> owned_;
  const Table* table_;
  std::size_t pos_ = 0;
};

class DualScanNode final : public PlanNode {
 public:
  DualScanNode() : schema_(std::vector<Column>{}) {}

  const Schema& schema() const override { return schema_; }
  Status Open(EvalContext&) override {
    emitted_ = false;
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    if (emitted_) return false;
    emitted_ = true;
    out->clear();
    return true;
  }
  void Close() override {}

 private:
  Schema schema_;
  bool emitted_ = false;
};

class SingleRowScanNode final : public PlanNode {
 public:
  SingleRowScanNode(Schema schema, SingleRowFn fill)
      : schema_(std::move(schema)), fill_(std::move(fill)) {}

  const Schema& schema() const override { return schema_; }

  Status Open(EvalContext& ctx) override {
    if (ctx.seeds == nullptr) {
      return Status::ExecutionError(
          "row program evaluated without a seed vector");
    }
    values_.clear();
    JIGSAW_RETURN_IF_ERROR(fill_(ctx, &values_));
    done_ = false;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (done_) return false;
    done_ = true;
    Row row;
    row.reserve(values_.size());
    for (double v : values_) row.emplace_back(v);
    *out = std::move(row);
    return true;
  }

  void Close() override {}

 private:
  Schema schema_;
  SingleRowFn fill_;
  std::vector<double> values_;
  bool done_ = true;
};

class FilterNode final : public PlanNode {
 public:
  FilterNode(PlanNodePtr input, ExprPtr predicate)
      : input_(std::move(input)), predicate_(std::move(predicate)) {}

  const Schema& schema() const override { return input_->schema(); }

  Status Open(EvalContext& ctx) override {
    ctx_ = &ctx;
    return input_->Open(ctx);
  }

  Result<bool> Next(Row* out) override {
    for (;;) {
      JIGSAW_ASSIGN_OR_RETURN(bool has, input_->Next(out));
      if (!has) return false;
      EvalContext local = *ctx_;
      local.row = out;
      JIGSAW_ASSIGN_OR_RETURN(Value v, predicate_->Eval(local));
      if (!v.is_null() && v.AsBool()) return true;
    }
  }

  void Close() override { input_->Close(); }

 private:
  PlanNodePtr input_;
  ExprPtr predicate_;
  EvalContext* ctx_ = nullptr;
};

class ProjectNode final : public PlanNode {
 public:
  ProjectNode(PlanNodePtr input, std::vector<ExprPtr> exprs,
              std::vector<std::string> names)
      : input_(std::move(input)), exprs_(std::move(exprs)) {
    std::vector<Column> cols;
    cols.reserve(names.size());
    for (auto& n : names) cols.push_back(Column{std::move(n)});
    schema_ = Schema(std::move(cols));
  }

  const Schema& schema() const override { return schema_; }

  Status Open(EvalContext& ctx) override {
    ctx_ = &ctx;
    return input_->Open(ctx);
  }

  Result<bool> Next(Row* out) override {
    Row in;
    JIGSAW_ASSIGN_OR_RETURN(bool has, input_->Next(&in));
    if (!has) return false;
    std::vector<Value> aliases;
    aliases.reserve(exprs_.size());
    EvalContext local = *ctx_;
    local.row = &in;
    local.aliases = &aliases;
    for (const auto& e : exprs_) {
      JIGSAW_ASSIGN_OR_RETURN(Value v, e->Eval(local));
      aliases.push_back(std::move(v));
    }
    *out = std::move(aliases);
    return true;
  }

  void Close() override { input_->Close(); }

 private:
  PlanNodePtr input_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
  EvalContext* ctx_ = nullptr;
};

class NestedLoopJoinNode final : public PlanNode {
 public:
  NestedLoopJoinNode(PlanNodePtr left, PlanNodePtr right, ExprPtr predicate)
      : left_(std::move(left)),
        right_(std::move(right)),
        predicate_(std::move(predicate)),
        schema_(Schema::Concat(left_->schema(), right_->schema())) {}

  const Schema& schema() const override { return schema_; }

  Status Open(EvalContext& ctx) override {
    ctx_ = &ctx;
    JIGSAW_RETURN_IF_ERROR(right_->Open(ctx));
    // Materialize the inner side once.
    right_rows_.clear();
    Row r;
    for (;;) {
      auto has = right_->Next(&r);
      if (!has.ok()) return has.status();
      if (!has.value()) break;
      right_rows_.push_back(r);
    }
    right_->Close();
    JIGSAW_RETURN_IF_ERROR(left_->Open(ctx));
    have_left_ = false;
    right_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    for (;;) {
      if (!have_left_) {
        JIGSAW_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
        if (!has) return false;
        have_left_ = true;
        right_pos_ = 0;
      }
      while (right_pos_ < right_rows_.size()) {
        Row combined = left_row_;
        const Row& rr = right_rows_[right_pos_++];
        combined.insert(combined.end(), rr.begin(), rr.end());
        EvalContext local = *ctx_;
        local.row = &combined;
        JIGSAW_ASSIGN_OR_RETURN(Value v, predicate_->Eval(local));
        if (!v.is_null() && v.AsBool()) {
          *out = std::move(combined);
          return true;
        }
      }
      have_left_ = false;
    }
  }

  void Close() override { left_->Close(); }

 private:
  PlanNodePtr left_;
  PlanNodePtr right_;
  ExprPtr predicate_;
  Schema schema_;
  EvalContext* ctx_ = nullptr;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool have_left_ = false;
  std::size_t right_pos_ = 0;
};

class HashJoinNode final : public PlanNode {
 public:
  HashJoinNode(PlanNodePtr left, PlanNodePtr right,
               std::vector<std::size_t> left_keys,
               std::vector<std::size_t> right_keys)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        schema_(Schema::Concat(left_->schema(), right_->schema())) {
    JIGSAW_CHECK(left_keys_.size() == right_keys_.size());
  }

  const Schema& schema() const override { return schema_; }

  Status Open(EvalContext& ctx) override {
    // Build side: right input.
    JIGSAW_RETURN_IF_ERROR(right_->Open(ctx));
    build_.clear();
    Row r;
    for (;;) {
      auto has = right_->Next(&r);
      if (!has.ok()) return has.status();
      if (!has.value()) break;
      build_[HashRowKey(r, right_keys_)].push_back(r);
    }
    right_->Close();
    JIGSAW_RETURN_IF_ERROR(left_->Open(ctx));
    have_left_ = false;
    bucket_ = nullptr;
    bucket_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    for (;;) {
      if (!have_left_) {
        JIGSAW_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
        if (!has) return false;
        have_left_ = true;
        auto it = build_.find(HashRowKey(left_row_, left_keys_));
        bucket_ = it == build_.end() ? nullptr : &it->second;
        bucket_pos_ = 0;
      }
      if (bucket_ != nullptr) {
        while (bucket_pos_ < bucket_->size()) {
          const Row& rr = (*bucket_)[bucket_pos_++];
          if (!RowKeysEqual(left_row_, left_keys_, rr, right_keys_)) {
            continue;  // hash collision
          }
          *out = left_row_;
          out->insert(out->end(), rr.begin(), rr.end());
          return true;
        }
      }
      have_left_ = false;
    }
  }

  void Close() override { left_->Close(); }

 private:
  PlanNodePtr left_;
  PlanNodePtr right_;
  std::vector<std::size_t> left_keys_;
  std::vector<std::size_t> right_keys_;
  Schema schema_;
  std::unordered_map<std::uint64_t, std::vector<Row>> build_;
  Row left_row_;
  bool have_left_ = false;
  const std::vector<Row>* bucket_ = nullptr;
  std::size_t bucket_pos_ = 0;
};

struct AggState {
  double sum = 0.0;
  std::int64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

class HashAggregateNode final : public PlanNode {
 public:
  HashAggregateNode(PlanNodePtr input, std::vector<ExprPtr> group_exprs,
                    std::vector<std::string> group_names,
                    std::vector<AggSpec> aggs)
      : input_(std::move(input)),
        group_exprs_(std::move(group_exprs)),
        aggs_(std::move(aggs)) {
    std::vector<Column> cols;
    for (auto& n : group_names) cols.push_back(Column{std::move(n)});
    for (const auto& a : aggs_) cols.push_back(Column{a.name});
    schema_ = Schema(std::move(cols));
  }

  const Schema& schema() const override { return schema_; }

  Status Open(EvalContext& ctx) override {
    JIGSAW_RETURN_IF_ERROR(input_->Open(ctx));
    groups_.clear();
    order_.clear();
    Row in;
    for (;;) {
      auto has = input_->Next(&in);
      if (!has.ok()) return has.status();
      if (!has.value()) break;
      EvalContext local = ctx;
      local.row = &in;
      Row key;
      key.reserve(group_exprs_.size());
      for (const auto& g : group_exprs_) {
        auto v = g->Eval(local);
        if (!v.ok()) return v.status();
        key.push_back(std::move(v).value());
      }
      std::string key_str;
      for (const auto& k : key) {
        key_str += k.ToString();
        key_str += '\x1f';
      }
      auto [it, inserted] = groups_.try_emplace(key_str);
      if (inserted) {
        it->second.key = std::move(key);
        it->second.states.resize(aggs_.size());
        order_.push_back(&it->second);
      }
      for (std::size_t i = 0; i < aggs_.size(); ++i) {
        AggState& st = it->second.states[i];
        double x = 1.0;
        if (aggs_[i].arg) {
          auto v = aggs_[i].arg->Eval(local);
          if (!v.ok()) return v.status();
          if (v.value().is_null()) continue;
          x = v.value().AsDouble();
        }
        st.sum += x;
        ++st.count;
        st.min = std::min(st.min, x);
        st.max = std::max(st.max, x);
      }
    }
    input_->Close();
    // Global aggregate over empty input still yields one row.
    if (group_exprs_.empty() && groups_.empty()) {
      auto [it, _] = groups_.try_emplace("");
      it->second.states.resize(aggs_.size());
      order_.push_back(&it->second);
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= order_.size()) return false;
    const Group& g = *order_[pos_++];
    *out = g.key;
    for (std::size_t i = 0; i < aggs_.size(); ++i) {
      const AggState& st = g.states[i];
      switch (aggs_[i].kind) {
        case AggKind::kCount:
          out->push_back(Value(st.count));
          break;
        case AggKind::kSum:
          out->push_back(Value(st.sum));
          break;
        case AggKind::kAvg:
          out->push_back(st.count ? Value(st.sum / st.count) : Value::Null());
          break;
        case AggKind::kMin:
          out->push_back(st.count ? Value(st.min) : Value::Null());
          break;
        case AggKind::kMax:
          out->push_back(st.count ? Value(st.max) : Value::Null());
          break;
      }
    }
    return true;
  }

  void Close() override {}

 private:
  struct Group {
    Row key;
    std::vector<AggState> states;
  };

  PlanNodePtr input_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  std::unordered_map<std::string, Group> groups_;
  std::vector<const Group*> order_;
  std::size_t pos_ = 0;
};

class SortNode final : public PlanNode {
 public:
  SortNode(PlanNodePtr input, std::vector<SortKey> keys)
      : input_(std::move(input)), keys_(std::move(keys)) {}

  const Schema& schema() const override { return input_->schema(); }

  Status Open(EvalContext& ctx) override {
    JIGSAW_RETURN_IF_ERROR(input_->Open(ctx));
    rows_.clear();
    Row r;
    for (;;) {
      auto has = input_->Next(&r);
      if (!has.ok()) return has.status();
      if (!has.value()) break;
      rows_.push_back(std::move(r));
      r = Row{};
    }
    input_->Close();
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       for (const auto& k : keys_) {
                         const int c = Value::Compare(a[k.column], b[k.column]);
                         if (c != 0) return k.ascending ? c < 0 : c > 0;
                       }
                       return false;
                     });
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

  void Close() override {}

 private:
  PlanNodePtr input_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  std::size_t pos_ = 0;
};

class LimitNode final : public PlanNode {
 public:
  LimitNode(PlanNodePtr input, std::size_t limit)
      : input_(std::move(input)), limit_(limit) {}

  const Schema& schema() const override { return input_->schema(); }

  Status Open(EvalContext& ctx) override {
    produced_ = 0;
    return input_->Open(ctx);
  }

  Result<bool> Next(Row* out) override {
    if (produced_ >= limit_) return false;
    JIGSAW_ASSIGN_OR_RETURN(bool has, input_->Next(out));
    if (!has) return false;
    ++produced_;
    return true;
  }

  void Close() override { input_->Close(); }

 private:
  PlanNodePtr input_;
  std::size_t limit_;
  std::size_t produced_ = 0;
};

}  // namespace

PlanNodePtr MakeTableScan(const Table* table) {
  return std::make_unique<TableScanNode>(table);
}
PlanNodePtr MakeOwnedTableScan(Table table) {
  return std::make_unique<TableScanNode>(std::move(table), true);
}
PlanNodePtr MakeDualScan() { return std::make_unique<DualScanNode>(); }

PlanNodePtr MakeSingleRowScan(Schema schema, SingleRowFn fill) {
  return std::make_unique<SingleRowScanNode>(std::move(schema),
                                             std::move(fill));
}

PlanNodePtr MakeBatchProgramScan(BatchProgramPtr program) {
  std::vector<Column> cols;
  cols.reserve(program->num_columns());
  for (std::size_t j = 0; j < program->num_columns(); ++j) {
    cols.push_back({program->column_name(j), ValueType::kDouble});
  }
  auto fill = [program = std::move(program)](
                  EvalContext& ctx, std::vector<double>* out) -> Status {
    BatchProgram::Context bctx;
    bctx.params = ctx.params;
    bctx.sample_begin = ctx.sample_id;
    bctx.seeds = ctx.seeds;
    bctx.stream_salt = ctx.stream_salt;
    out->resize(program->num_columns());
    std::vector<double*> columns(program->num_columns());
    for (std::size_t j = 0; j < columns.size(); ++j) {
      columns[j] = &(*out)[j];
    }
    thread_local BatchScratch scratch;
    return program->RunAll(bctx, 1, columns, scratch);
  };
  return std::make_unique<SingleRowScanNode>(Schema(std::move(cols)),
                                             std::move(fill));
}
PlanNodePtr MakeFilter(PlanNodePtr input, ExprPtr predicate) {
  return std::make_unique<FilterNode>(std::move(input), std::move(predicate));
}
PlanNodePtr MakeProject(PlanNodePtr input, std::vector<ExprPtr> exprs,
                        std::vector<std::string> names) {
  return std::make_unique<ProjectNode>(std::move(input), std::move(exprs),
                                       std::move(names));
}
PlanNodePtr MakeNestedLoopJoin(PlanNodePtr left, PlanNodePtr right,
                               ExprPtr predicate) {
  return std::make_unique<NestedLoopJoinNode>(
      std::move(left), std::move(right), std::move(predicate));
}
PlanNodePtr MakeHashJoin(PlanNodePtr left, PlanNodePtr right,
                         std::vector<std::size_t> left_keys,
                         std::vector<std::size_t> right_keys) {
  return std::make_unique<HashJoinNode>(std::move(left), std::move(right),
                                        std::move(left_keys),
                                        std::move(right_keys));
}
PlanNodePtr MakeHashAggregate(PlanNodePtr input,
                              std::vector<ExprPtr> group_exprs,
                              std::vector<std::string> group_names,
                              std::vector<AggSpec> aggs) {
  return std::make_unique<HashAggregateNode>(
      std::move(input), std::move(group_exprs), std::move(group_names),
      std::move(aggs));
}
PlanNodePtr MakeSort(PlanNodePtr input, std::vector<SortKey> keys) {
  return std::make_unique<SortNode>(std::move(input), std::move(keys));
}
PlanNodePtr MakeLimit(PlanNodePtr input, std::size_t limit) {
  return std::make_unique<LimitNode>(std::move(input), limit);
}

Result<Table> ExecuteToTable(PlanNode& plan, EvalContext& ctx) {
  JIGSAW_RETURN_IF_ERROR(plan.Open(ctx));
  Table out(plan.schema());
  Row row;
  for (;;) {
    JIGSAW_ASSIGN_OR_RETURN(bool has, plan.Next(&row));
    if (!has) break;
    // Plan schemas are dynamically typed (ProjectNode declares kDouble by
    // default even when an expression emits strings), so materialization
    // bypasses AddRow's declared-type validation.
    out.AppendRowUnchecked(std::move(row));
    row = Row{};
  }
  plan.Close();
  return out;
}

}  // namespace jigsaw::pdb
