#pragma once

/// \file chain_runner.h
/// Two executors for Markov processes over n Monte Carlo instances:
///
///  - NaiveChainRunner: advances every instance through every step — the
///    baseline of Figure 12.
///  - MarkovJumpRunner: Algorithm 4. Only a fingerprint-sized subset of
///    instances is stepped honestly; at exponentially spaced checkpoints
///    the fingerprint is compared against a synthesized non-Markovian
///    estimator, and whole regions of the chain are skipped whenever the
///    estimator remains mappable. On a mismatch the runner backtracks by
///    binary search to the last mappable step, reconstructs the full
///    state there via the mapped estimator, and resumes with a fresh
///    anchor.

#include <cstdint>
#include <vector>

#include "core/mapping.h"
#include "core/metrics.h"
#include "core/run_config.h"
#include "markov/markov_process.h"
#include "random/seed_vector.h"

namespace jigsaw {

/// Accounting for the evaluation section: the per-step cost model of
/// Figure 12 is (step_invocations + estimator_invocations) / target.
struct ChainRunStats {
  std::uint64_t step_invocations = 0;       ///< true chain transitions
  std::uint64_t estimator_invocations = 0;  ///< estimator evaluations
  std::uint64_t checkpoints = 0;            ///< fingerprint comparisons
  std::uint64_t mismatches = 0;             ///< estimator invalidations
  std::uint64_t full_rebuilds = 0;          ///< full-state reconstructions
};

struct ChainResult {
  std::vector<double> final_states;  ///< one per instance, at `target`
  ChainRunStats stats;
};

/// Baseline: every instance stepped through every step.
class NaiveChainRunner {
 public:
  explicit NaiveChainRunner(const RunConfig& config);

  ChainResult Run(const MarkovProcess& process, std::int64_t target);

  const SeedVector& seeds() const { return seeds_; }

 private:
  RunConfig config_;
  SeedVector seeds_;
};

/// Algorithm 4 (MarkovJump).
class MarkovJumpRunner {
 public:
  explicit MarkovJumpRunner(const RunConfig& config,
                            MappingFinderPtr finder = nullptr);

  ChainResult Run(const MarkovProcess& process, std::int64_t target);

  const SeedVector& seeds() const { return seeds_; }

 private:
  RunConfig config_;
  MappingFinderPtr finder_;
  SeedVector seeds_;
};

/// Computes output metrics over final chain states (applies
/// MarkovProcess::Output per instance under the output salt).
OutputMetrics ChainOutputMetrics(const MarkovProcess& process,
                                 const ChainResult& result,
                                 std::int64_t target, const SeedVector& seeds,
                                 const RunConfig& config);

}  // namespace jigsaw
