#pragma once

/// \file markov_models.h
/// The Markovian workloads of Figure 6 plus helpers used in tests.
///
///  - MarkovStep: the Figure 5 scenario. State = the release week of a
///    feature. Each week, demand is forecast given the current planned
///    release; if demand crosses a threshold before the release has been
///    moved up, management pulls the release in ("sufficiently high
///    demand might convince management to allocate additional development
///    resources"). The discontinuity is infrequent and closely correlated
///    across instances — the ideal case for Markov jumps.
///
///  - MarkovBranch: the Figure 12 synthetic. State = a counter that
///    increments with probability `branching` per step; its estimator
///    "simply assumes that the state stays the same", so the expected
///    distance between estimator invalidations is 1/branching steps.

#include <memory>
#include <string>

#include "markov/markov_process.h"

namespace jigsaw {

struct MarkovStepConfig {
  double initial_release_week = 52.0;
  double demand_mean_rate = 1.0;     ///< Algorithm 1 constants
  double demand_var_rate = 0.1;
  double feature_mean_rate = 0.2;
  double feature_var_rate = 0.2;
  double demand_threshold = 26.0;    ///< demand that triggers a pull-in
  double pull_in_lead_weeks = 4.0;   ///< new release = week + lead
};

class MarkovStepProcess : public MarkovProcess {
 public:
  explicit MarkovStepProcess(const MarkovStepConfig& cfg = {}) : cfg_(cfg) {}

  const std::string& name() const override {
    static const std::string kName = "MarkovStep";
    return kName;
  }

  double initial_state() const override { return cfg_.initial_release_week; }

  /// Transition: forecast this week's demand under the current planned
  /// release, then decide whether the release moves.
  double Step(double prev_release, std::int64_t step,
              RandomStream& rng) const override;

  /// Observable: the demand forecast for `step` given the final release.
  double Output(double release, std::int64_t step,
                RandomStream& rng) const override;

  /// Demand model shared by Step/Output (Algorithm 1 with the release
  /// week as the feature date).
  double Demand(double week, double release, RandomStream& rng) const;

  /// Native batch kernels: hoist the per-step stream salt (one hash per
  /// batch instead of one per instance) around the scalar transition.
  void StepBatch(std::span<const double> prev_states, std::int64_t step,
                 std::size_t k_begin, const SeedVector& seeds,
                 std::span<double> out) const override;
  void EstimateBatch(std::span<const double> anchor_states,
                     std::int64_t anchor_step, std::int64_t step,
                     std::size_t k_begin, const SeedVector& seeds,
                     std::span<double> out) const override;
  void OutputBatch(std::span<const double> states, std::int64_t step,
                   std::size_t k_begin, const SeedVector& seeds,
                   std::span<double> out) const override;

 private:
  MarkovStepConfig cfg_;
};

struct MarkovBranchConfig {
  double branching = 0.001;  ///< per-step divergence probability
  double state_jump = 10.0;  ///< how far states diverge per branch event
};

class MarkovBranchProcess : public MarkovProcess {
 public:
  explicit MarkovBranchProcess(const MarkovBranchConfig& cfg = {})
      : cfg_(cfg) {}

  const std::string& name() const override {
    static const std::string kName = "MarkovBranch";
    return kName;
  }

  double initial_state() const override { return 0.0; }

  double Step(double prev_state, std::int64_t step,
              RandomStream& rng) const override;

  /// "The state stays the same" estimator: no randomness consumed, so
  /// estimator fingerprints never spuriously mismatch.
  double Estimate(double anchor_state, std::int64_t anchor_step,
                  std::int64_t step, RandomStream& rng) const override;

  /// Native batch kernels. StepBatch hoists the salt; EstimateBatch is a
  /// straight copy (the estimator draws nothing, so no streams are built
  /// at all — the scalar path constructs one per instance just to ignore
  /// it).
  void StepBatch(std::span<const double> prev_states, std::int64_t step,
                 std::size_t k_begin, const SeedVector& seeds,
                 std::span<double> out) const override;
  void EstimateBatch(std::span<const double> anchor_states,
                     std::int64_t anchor_step, std::int64_t step,
                     std::size_t k_begin, const SeedVector& seeds,
                     std::span<double> out) const override;

 private:
  MarkovBranchConfig cfg_;
};

/// Test helper: state advances deterministically by `drift` per step —
/// every step is estimator-mappable, so a single jump reaches any target.
class DriftProcess : public MarkovProcess {
 public:
  explicit DriftProcess(double drift) : drift_(drift) {}

  const std::string& name() const override {
    static const std::string kName = "Drift";
    return kName;
  }
  double initial_state() const override { return 0.0; }
  double Step(double prev_state, std::int64_t /*step*/,
              RandomStream& /*rng*/) const override {
    return prev_state + drift_;
  }
  /// Exact closed form; the mapping test then validates identity.
  double Estimate(double anchor_state, std::int64_t anchor_step,
                  std::int64_t step, RandomStream& /*rng*/) const override {
    return anchor_state +
           drift_ * static_cast<double>(step - anchor_step);
  }

 private:
  double drift_;
};

}  // namespace jigsaw
