#pragma once

/// \file markov_process.h
/// Markov processes (Section 4). A simulation with cyclical inter-model
/// dependencies must be evaluated in discrete steps, each step's output
/// depending on the previous step's. Jigsaw models one *instance* of such
/// a process as a scalar state trajectory:
///
///   state_i = Step(state_{i-1}, i, rng_i)
///
/// where rng_i is the deterministic stream for (instance seed, step i).
/// The estimator of Section 4.2 is synthesized by freezing the state
/// input: Fest,anchor(step) = Step(anchor_state, step, rng_step). Because
/// estimator and true chain share the per-(instance, step) stream, their
/// outputs are *identical* wherever the frozen state is still accurate,
/// and linearly mappable wherever the state drifted uniformly — which is
/// exactly what the Markov-jump fingerprint test detects.
///
/// Processes that need richer control over randomness (e.g. SQL-bound
/// chain scenarios whose expressions derive one stream per black-box call
/// site) override the *ForInstance hooks instead; the default hooks
/// derive one stream per (instance, step) and delegate to the scalar
/// virtuals.

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "random/random_stream.h"
#include "random/seed_vector.h"

namespace jigsaw {

/// Deterministic stream salt for chain step `step`; shared by honest
/// stepping and estimator evaluation so seeded comparison is meaningful.
std::uint64_t MarkovStepSalt(std::int64_t step);

/// Salt for the observable extraction at `step`.
std::uint64_t MarkovOutputSalt(std::int64_t step);

class MarkovProcess {
 public:
  virtual ~MarkovProcess() = default;

  virtual const std::string& name() const = 0;

  /// The state every instance starts from (Algorithm 4's `initial`).
  virtual double initial_state() const = 0;

  /// One transition of one instance. `step` is the absolute index of the
  /// state being produced (1-based: the first transition produces step 1).
  /// All randomness must come from `rng`. Subclasses must override either
  /// this or StepForInstance (the default of which delegates here).
  virtual double Step(double prev_state, std::int64_t step,
                      RandomStream& rng) const;

  /// Non-Markovian estimator: predicts the state at `step` assuming the
  /// state input has stayed `anchor_state` since `anchor_step` (Section
  /// 4.2: "fixing Fmkv's input state at one point in time"). The default
  /// applies one transition with the frozen input; override when a
  /// cheaper or flatter estimator exists (e.g. "the state stays the
  /// same"). Must draw from `rng` exactly as Step would, so that seeded
  /// comparison is meaningful.
  virtual double Estimate(double anchor_state, std::int64_t anchor_step,
                          std::int64_t step, RandomStream& rng) const {
    (void)anchor_step;
    return Step(anchor_state, step, rng);
  }

  /// Maps an instance's final state to the observable the caller wants
  /// metrics for (e.g. release week -> demand). Default: the state.
  virtual double Output(double state, std::int64_t step,
                        RandomStream& rng) const {
    (void)step;
    (void)rng;
    return state;
  }

  // -- instance-level hooks (used by the chain runners) --------------------

  /// Advances instance `k` one step under the global seed vector.
  virtual double StepForInstance(double prev_state, std::int64_t step,
                                 std::size_t k,
                                 const SeedVector& seeds) const;

  /// Estimator evaluation for instance `k` (same stream as the honest
  /// step at `step`, per the seeded-comparison requirement).
  virtual double EstimateForInstance(double anchor_state,
                                     std::int64_t anchor_step,
                                     std::int64_t step, std::size_t k,
                                     const SeedVector& seeds) const;

  /// Observable extraction for instance `k` at `step`.
  virtual double OutputForInstance(double state, std::int64_t step,
                                   std::size_t k,
                                   const SeedVector& seeds) const;

  // -- batch hooks (the chain runners' hot path) ---------------------------
  //
  // Entry i of each batch must equal the corresponding *ForInstance call
  // for instance k_begin + i, bit-for-bit. Defaults loop over the scalar
  // hooks; concrete processes override to hoist per-step work (salts,
  // config loads) out of the instance loop. `out` may alias the input
  // span: kernels read entry i before writing it.

  /// Advances instances [k_begin, k_begin + out.size()) one step.
  virtual void StepBatch(std::span<const double> prev_states,
                         std::int64_t step, std::size_t k_begin,
                         const SeedVector& seeds, std::span<double> out) const;

  /// Estimator evaluation for a contiguous instance range.
  virtual void EstimateBatch(std::span<const double> anchor_states,
                             std::int64_t anchor_step, std::int64_t step,
                             std::size_t k_begin, const SeedVector& seeds,
                             std::span<double> out) const;

  /// Observable extraction for a contiguous instance range.
  virtual void OutputBatch(std::span<const double> states, std::int64_t step,
                           std::size_t k_begin, const SeedVector& seeds,
                           std::span<double> out) const;
};

using MarkovProcessPtr = std::shared_ptr<const MarkovProcess>;

}  // namespace jigsaw
