#include "markov/chain_runner.h"

#include <algorithm>
#include <span>

#include "core/fingerprint.h"
#include "util/logging.h"

namespace jigsaw {

namespace {

/// Invokes fn(k, len) for consecutive chunks of at most `batch` covering
/// [begin, end) — the chain runners' batching loop.
template <typename Fn>
void ForChunks(std::size_t begin, std::size_t end, std::size_t batch,
               Fn&& fn) {
  for (std::size_t k = begin; k < end; k += batch) {
    fn(k, std::min(batch, end - k));
  }
}

}  // namespace

NaiveChainRunner::NaiveChainRunner(const RunConfig& config)
    : config_(config), seeds_(config.master_seed, config.num_samples, config.seed_schema) {}

ChainResult NaiveChainRunner::Run(const MarkovProcess& process,
                                  std::int64_t target) {
  const std::size_t n = config_.num_samples;
  const std::size_t batch = std::max<std::size_t>(1, config_.batch_size);
  ChainResult result;
  result.final_states.assign(n, process.initial_state());
  for (std::int64_t step = 1; step <= target; ++step) {
    // In-place batch advance: StepBatch reads entry i before writing it.
    ForChunks(0, n, batch, [&](std::size_t k, std::size_t len) {
      const std::span<double> chunk(result.final_states.data() + k, len);
      process.StepBatch(chunk, step, k, seeds_, chunk);
    });
    result.stats.step_invocations += n;
  }
  return result;
}

MarkovJumpRunner::MarkovJumpRunner(const RunConfig& config,
                                   MappingFinderPtr finder)
    : config_(config),
      finder_(finder ? std::move(finder) : LinearMappingFinder::Make()),
      seeds_(config.master_seed, config.num_samples, config.seed_schema) {}

ChainResult MarkovJumpRunner::Run(const MarkovProcess& process,
                                  std::int64_t target) {
  const std::size_t n = config_.num_samples;
  const std::size_t m = std::min(config_.fingerprint_size, n);
  JIGSAW_CHECK_MSG(m >= 2, "fingerprint size must be >= 2");

  const std::size_t batch = std::max<std::size_t>(1, config_.batch_size);

  ChainResult result;
  result.final_states.assign(n, process.initial_state());
  std::vector<double>& state = result.final_states;
  ChainRunStats& stats = result.stats;

  std::int64_t anchor = 0;  // absolute step the full state is valid at

  // Rebuilds instances [m, n) through the estimator (in place, batched)
  // and maps each prediction into the true chain's domain.
  auto rebuild_tail = [&](std::int64_t abs_step, const MappingFunction& map) {
    ForChunks(m, n, batch, [&](std::size_t k, std::size_t len) {
      const std::span<double> chunk(state.data() + k, len);
      process.EstimateBatch(chunk, anchor, abs_step, k, seeds_, chunk);
      for (double& v : chunk) v = map.Apply(v);
    });
    stats.estimator_invocations += n - m;
  };

  // Estimator fingerprint at an absolute step, anchored at the current
  // full state.
  auto estimator_fp = [&](std::int64_t step) {
    std::vector<double> values(m);
    process.EstimateBatch(std::span<const double>(state.data(), m), anchor,
                          step, 0, seeds_, values);
    stats.estimator_invocations += m;
    return Fingerprint(std::move(values));
  };

  while (anchor < target) {
    // Honest fingerprint trajectory from the anchor; traj[i] holds the m
    // instance states at absolute step anchor + i + 1.
    std::vector<std::vector<double>> traj;
    std::vector<double> fp_cursor(state.begin(),
                                  state.begin() + static_cast<long>(m));

    auto advance_fp_to = [&](std::int64_t rel) {
      while (static_cast<std::int64_t>(traj.size()) < rel) {
        const std::int64_t abs_step =
            anchor + static_cast<std::int64_t>(traj.size()) + 1;
        process.StepBatch(fp_cursor, abs_step, 0, seeds_, fp_cursor);
        stats.step_invocations += m;
        traj.push_back(fp_cursor);
      }
    };

    // Does the estimator map onto the honest fingerprint at relative
    // offset `rel`? Returns the mapping or nullptr.
    auto mapping_at = [&](std::int64_t rel) -> MappingPtr {
      advance_fp_to(rel);
      ++stats.checkpoints;
      const Fingerprint est = estimator_fp(anchor + rel);
      const Fingerprint real(traj[static_cast<std::size_t>(rel - 1)]);
      return finder_->Find(est, real, config_.tolerance);
    };

    const std::int64_t remaining = target - anchor;

    // Exponential ramp: double the checkpoint distance while the
    // estimator stays mappable (Algorithm 4 lines 3-9).
    std::int64_t last_valid = 0;
    MappingPtr last_valid_mapping;
    std::int64_t probe = 1;
    std::int64_t first_invalid = -1;
    while (probe < remaining) {
      MappingPtr mapping = mapping_at(probe);
      if (mapping != nullptr) {
        last_valid = probe;
        last_valid_mapping = std::move(mapping);
        probe *= 2;
      } else {
        ++stats.mismatches;
        first_invalid = probe;
        break;
      }
    }
    if (first_invalid < 0) {
      // Ramp reached the target without a mismatch: validate the target
      // itself and finish with one mapped-estimator rebuild (Algorithm 4
      // lines 6-7).
      MappingPtr mapping = mapping_at(remaining);
      if (mapping != nullptr) {
        for (std::size_t k = 0; k < m; ++k) {
          state[k] = traj[static_cast<std::size_t>(remaining - 1)][k];
        }
        rebuild_tail(target, *mapping);
        ++stats.full_rebuilds;
        return result;
      }
      ++stats.mismatches;
      first_invalid = remaining;
    }

    // Binary search for the last mappable step in (last_valid,
    // first_invalid) (Algorithm 4 line 11).
    std::int64_t lo = last_valid;
    std::int64_t hi = first_invalid;
    while (hi - lo > 1) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      MappingPtr mapping = mapping_at(mid);
      if (mapping != nullptr) {
        lo = mid;
        last_valid_mapping = std::move(mapping);
      } else {
        hi = mid;
      }
    }

    if (lo == 0) {
      // The estimator fails immediately: advance the full state by one
      // honest step (Algorithm 4 line 12) and re-anchor.
      const std::int64_t abs_step = anchor + 1;
      for (std::size_t k = 0; k < m; ++k) {
        state[k] = traj[0][k];  // already stepped honestly
      }
      ForChunks(m, n, batch, [&](std::size_t k, std::size_t len) {
        const std::span<double> chunk(state.data() + k, len);
        process.StepBatch(chunk, abs_step, k, seeds_, chunk);
      });
      stats.step_invocations += n - m;
      anchor = abs_step;
    } else {
      // Jump: rebuild the full state at anchor+lo via the mapped
      // estimator (Algorithm 4 line 13) and re-anchor there.
      const std::int64_t abs_step = anchor + lo;
      for (std::size_t k = 0; k < m; ++k) {
        state[k] = traj[static_cast<std::size_t>(lo - 1)][k];
      }
      rebuild_tail(abs_step, *last_valid_mapping);
      ++stats.full_rebuilds;
      anchor = abs_step;
    }
  }
  return result;
}

OutputMetrics ChainOutputMetrics(const MarkovProcess& process,
                                 const ChainResult& result,
                                 std::int64_t target, const SeedVector& seeds,
                                 const RunConfig& config) {
  const std::size_t batch = std::max<std::size_t>(1, config.batch_size);
  Estimator est(config.keep_samples, config.histogram_bins);
  std::vector<double> buf(std::min(batch, result.final_states.size()));
  ForChunks(0, result.final_states.size(), batch,
            [&](std::size_t k, std::size_t len) {
              const std::span<double> chunk(buf.data(), len);
              process.OutputBatch(
                  std::span<const double>(result.final_states.data() + k,
                                          len),
                  target, k, seeds, chunk);
              est.AddSpan(chunk);
            });
  return est.Finalize();
}

}  // namespace jigsaw
