#include "markov/markov_process.h"

#include "util/hash.h"
#include "util/logging.h"

namespace jigsaw {

namespace {
constexpr std::uint64_t kStepTag = 0x6d61726b6f762d73ULL;    // "markov-s"
constexpr std::uint64_t kOutputTag = 0x6d61726b6f762d6fULL;  // "markov-o"
}  // namespace

std::uint64_t MarkovStepSalt(std::int64_t step) {
  return HashCombine(kStepTag, static_cast<std::uint64_t>(step));
}

std::uint64_t MarkovOutputSalt(std::int64_t step) {
  return HashCombine(kOutputTag, static_cast<std::uint64_t>(step));
}

double MarkovProcess::Step(double /*prev_state*/, std::int64_t /*step*/,
                           RandomStream& /*rng*/) const {
  JIGSAW_CHECK_MSG(false, "MarkovProcess '"
                              << name()
                              << "' overrides neither Step nor "
                                 "StepForInstance");
  return 0.0;
}

double MarkovProcess::StepForInstance(double prev_state, std::int64_t step,
                                      std::size_t k,
                                      const SeedVector& seeds) const {
  RandomStream rng = seeds.StreamFor(k, MarkovStepSalt(step));
  return Step(prev_state, step, rng);
}

double MarkovProcess::EstimateForInstance(double anchor_state,
                                          std::int64_t anchor_step,
                                          std::int64_t step, std::size_t k,
                                          const SeedVector& seeds) const {
  RandomStream rng = seeds.StreamFor(k, MarkovStepSalt(step));
  return Estimate(anchor_state, anchor_step, step, rng);
}

double MarkovProcess::OutputForInstance(double state, std::int64_t step,
                                        std::size_t k,
                                        const SeedVector& seeds) const {
  RandomStream rng = seeds.StreamFor(k, MarkovOutputSalt(step));
  return Output(state, step, rng);
}

void MarkovProcess::StepBatch(std::span<const double> prev_states,
                              std::int64_t step, std::size_t k_begin,
                              const SeedVector& seeds,
                              std::span<double> out) const {
  JIGSAW_DCHECK(prev_states.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = StepForInstance(prev_states[i], step, k_begin + i, seeds);
  }
}

void MarkovProcess::EstimateBatch(std::span<const double> anchor_states,
                                  std::int64_t anchor_step, std::int64_t step,
                                  std::size_t k_begin, const SeedVector& seeds,
                                  std::span<double> out) const {
  JIGSAW_DCHECK(anchor_states.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = EstimateForInstance(anchor_states[i], anchor_step, step,
                                 k_begin + i, seeds);
  }
}

void MarkovProcess::OutputBatch(std::span<const double> states,
                                std::int64_t step, std::size_t k_begin,
                                const SeedVector& seeds,
                                std::span<double> out) const {
  JIGSAW_DCHECK(states.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = OutputForInstance(states[i], step, k_begin + i, seeds);
  }
}

}  // namespace jigsaw
