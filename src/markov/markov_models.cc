#include "markov/markov_models.h"

#include <algorithm>
#include <cmath>

#include "random/draw_plane.h"

namespace jigsaw {

namespace {

/// Stack-buffer chunk for the v2 plane kernels (out may alias the state
/// span, so the standard-normal plane lands in a scratch buffer first).
constexpr std::size_t kPlaneChunk = 256;

/// MarkovStepProcess::Demand with the standard-normal draw supplied.
/// Expression-identical to Demand's `rng.Normal(mean, std::sqrt(var))`
/// (= mean + std::sqrt(var) * Gaussian()), so the plane kernels stay
/// bit-for-bit equal to their scalar twins.
double DemandFromGaussian(const MarkovStepConfig& cfg, double week,
                          double release, double g) {
  double mean = cfg.demand_mean_rate * week;
  double var = cfg.demand_var_rate * week;
  if (week > release) {
    const double dt = week - release;
    mean += cfg.feature_mean_rate * dt;
    var += cfg.feature_var_rate * dt;
  }
  return mean + std::sqrt(var) * g;
}

}  // namespace

double MarkovStepProcess::Demand(double week, double release,
                                 RandomStream& rng) const {
  // One combined normal draw (see DemandModel in cloud_models.cc): the
  // sum-of-normals is sampled in a single draw so released/unreleased
  // regimes stay linearly mappable under shared seeds.
  double mean = cfg_.demand_mean_rate * week;
  double var = cfg_.demand_var_rate * week;
  if (week > release) {
    const double dt = week - release;
    mean += cfg_.feature_mean_rate * dt;
    var += cfg_.feature_var_rate * dt;
  }
  return rng.Normal(mean, std::sqrt(var));
}

double MarkovStepProcess::Step(double prev_release, std::int64_t step,
                               RandomStream& rng) const {
  const double week = static_cast<double>(step);
  const double demand = Demand(week, prev_release, rng);
  // Management pulls the release in the first time demand crosses the
  // threshold while the release is still in the future.
  if (demand > cfg_.demand_threshold &&
      week + cfg_.pull_in_lead_weeks < prev_release) {
    return week + cfg_.pull_in_lead_weeks;
  }
  return prev_release;
}

double MarkovStepProcess::Output(double release, std::int64_t step,
                                 RandomStream& rng) const {
  return Demand(static_cast<double>(step), release, rng);
}

void MarkovStepProcess::StepBatch(std::span<const double> prev_states,
                                  std::int64_t step, std::size_t k_begin,
                                  const SeedVector& seeds,
                                  std::span<double> out) const {
  const std::uint64_t salt = MarkovStepSalt(step);
  if (seeds.schema() == SeedSchema::kV2) {
    // v2 draw layout: one gaussian at draws 0-1 (the combined demand
    // normal); the pull-in decision draws nothing.
    const std::uint64_t key = seeds.draw_key(salt);
    const double week = static_cast<double>(step);
    double g[kPlaneChunk];
    for (std::size_t base = 0; base < out.size(); base += kPlaneChunk) {
      const std::size_t n = std::min(kPlaneChunk, out.size() - base);
      GaussianPlane(std::span<double>(g, n), k_begin + base, key, 0);
      for (std::size_t i = 0; i < n; ++i) {
        const double prev = prev_states[base + i];
        const double demand = DemandFromGaussian(cfg_, week, prev, g[i]);
        out[base + i] = (demand > cfg_.demand_threshold &&
                         week + cfg_.pull_in_lead_weeks < prev)
                            ? week + cfg_.pull_in_lead_weeks
                            : prev;
      }
    }
    return;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    RandomStream rng = seeds.StreamFor(k_begin + i, salt);
    out[i] = Step(prev_states[i], step, rng);
  }
}

void MarkovStepProcess::EstimateBatch(std::span<const double> anchor_states,
                                      std::int64_t anchor_step,
                                      std::int64_t step, std::size_t k_begin,
                                      const SeedVector& seeds,
                                      std::span<double> out) const {
  const std::uint64_t salt = MarkovStepSalt(step);
  if (seeds.schema() == SeedSchema::kV2) {
    // The default Estimate is one Step with the frozen state, so the
    // plane kernel is StepBatch's with prev := anchor.
    const std::uint64_t key = seeds.draw_key(salt);
    const double week = static_cast<double>(step);
    double g[kPlaneChunk];
    for (std::size_t base = 0; base < out.size(); base += kPlaneChunk) {
      const std::size_t n = std::min(kPlaneChunk, out.size() - base);
      GaussianPlane(std::span<double>(g, n), k_begin + base, key, 0);
      for (std::size_t i = 0; i < n; ++i) {
        const double anchor = anchor_states[base + i];
        const double demand = DemandFromGaussian(cfg_, week, anchor, g[i]);
        out[base + i] = (demand > cfg_.demand_threshold &&
                         week + cfg_.pull_in_lead_weeks < anchor)
                            ? week + cfg_.pull_in_lead_weeks
                            : anchor;
      }
    }
    return;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    RandomStream rng = seeds.StreamFor(k_begin + i, salt);
    out[i] = Estimate(anchor_states[i], anchor_step, step, rng);
  }
}

void MarkovStepProcess::OutputBatch(std::span<const double> states,
                                    std::int64_t step, std::size_t k_begin,
                                    const SeedVector& seeds,
                                    std::span<double> out) const {
  const std::uint64_t salt = MarkovOutputSalt(step);
  if (seeds.schema() == SeedSchema::kV2) {
    const std::uint64_t key = seeds.draw_key(salt);
    const double week = static_cast<double>(step);
    double g[kPlaneChunk];
    for (std::size_t base = 0; base < out.size(); base += kPlaneChunk) {
      const std::size_t n = std::min(kPlaneChunk, out.size() - base);
      GaussianPlane(std::span<double>(g, n), k_begin + base, key, 0);
      for (std::size_t i = 0; i < n; ++i) {
        out[base + i] =
            DemandFromGaussian(cfg_, week, states[base + i], g[i]);
      }
    }
    return;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    RandomStream rng = seeds.StreamFor(k_begin + i, salt);
    out[i] = Output(states[i], step, rng);
  }
}

double MarkovBranchProcess::Step(double prev_state, std::int64_t /*step*/,
                                 RandomStream& rng) const {
  if (rng.Bernoulli(cfg_.branching)) {
    return prev_state + cfg_.state_jump;
  }
  return prev_state;
}

double MarkovBranchProcess::Estimate(double anchor_state,
                                     std::int64_t /*anchor_step*/,
                                     std::int64_t /*step*/,
                                     RandomStream& /*rng*/) const {
  return anchor_state;
}

void MarkovBranchProcess::StepBatch(std::span<const double> prev_states,
                                    std::int64_t step, std::size_t k_begin,
                                    const SeedVector& seeds,
                                    std::span<double> out) const {
  const std::uint64_t salt = MarkovStepSalt(step);
  if (seeds.schema() == SeedSchema::kV2) {
    // v2 draw layout: one uniform at draw 0 (the Bernoulli trial).
    const std::uint64_t key = seeds.draw_key(salt);
    double u[kPlaneChunk];
    for (std::size_t base = 0; base < out.size(); base += kPlaneChunk) {
      const std::size_t n = std::min(kPlaneChunk, out.size() - base);
      DrawSpan(std::span<double>(u, n), k_begin + base, key, 0);
      for (std::size_t i = 0; i < n; ++i) {
        const double prev = prev_states[base + i];
        out[base + i] =
            u[i] < cfg_.branching ? prev + cfg_.state_jump : prev;
      }
    }
    return;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    RandomStream rng = seeds.StreamFor(k_begin + i, salt);
    out[i] = Step(prev_states[i], step, rng);
  }
}

void MarkovBranchProcess::EstimateBatch(std::span<const double> anchor_states,
                                        std::int64_t /*anchor_step*/,
                                        std::int64_t /*step*/,
                                        std::size_t /*k_begin*/,
                                        const SeedVector& /*seeds*/,
                                        std::span<double> out) const {
  // The chain runner rebuilds in place (out aliases anchor_states), in
  // which case the copy is a no-op rather than a std::copy overlap.
  if (out.data() != anchor_states.data()) {
    std::copy(anchor_states.begin(), anchor_states.end(), out.begin());
  }
}

}  // namespace jigsaw
