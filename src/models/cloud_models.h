#pragma once

/// \file cloud_models.h
/// The black-box workload models of the paper's evaluation (Figure 6).
/// "Specific numbers ... have been replaced by ad-hoc values, but the
/// structure of these models remains intact" — we implement exactly those
/// structures:
///
///  - Demand(current_week, feature_release): Algorithm 1. Linearly growing
///    gaussian demand whose growth rate changes at the feature release.
///  - Capacity(current_week, purchase1, purchase2): a series of purchases,
///    each adding capacity after an exponentially distributed delay,
///    minus an accumulated failure process.
///  - Overload(current_week, purchase1, purchase2): 1 if Demand > Capacity
///    (feature release ignored), else 0.
///  - UserSelection(current_week): per-user requirement simulation over a
///    synthetic user population (the data-heavy workload).
///  - SynthBasis(point): Demand-like model engineered to produce an exact,
///    configurable number of basis distributions (indexing experiments).
///
/// The Markovian models (MarkovStep, MarkovBranch) live in src/markov.

#include <cstdint>
#include <memory>

#include "models/black_box.h"

namespace jigsaw {

/// Tunable constants for the cloud scenario models. Defaults follow the
/// paper's narrative: a cluster measured in CPU cores, weekly timesteps,
/// purchases that settle over a few weeks.
struct CloudModelConfig {
  // Demand (Algorithm 1 of the paper, verbatim structure).
  double demand_mean_rate = 1.0;    ///< mu = rate * current_week
  double demand_var_rate = 0.1;     ///< sigma^2 = var_rate * current_week
  double feature_mean_rate = 0.2;   ///< extra growth after feature release
  double feature_var_rate = 0.2;

  // Capacity. Defaults are calibrated so the Figure 1 scenario has real
  // tension over a 52-week horizon: demand (mean ~ week, plus feature
  // growth) starts below the base capacity of 40 cores, crosses it around
  // week 35-40, and needs both purchases settled to stay safe - so late
  // purchase dates genuinely risk overload.
  double base_capacity = 40.0;      ///< cores online at week 0
  double purchase_volume = 18.0;    ///< cores added per purchase order
  double settle_weeks = 2.0;        ///< mean of the exponential online delay
  double failure_rate = 0.02;       ///< per-week per-100-cores failure rate
  double failure_cores = 1.0;       ///< cores lost per failure event

  // UserSelection.
  int num_users = 2000;             ///< synthetic user population size
  double user_arrival_rate = 0.05;  ///< per-week probability a user joined
  double user_base_demand = 0.05;   ///< cores per active user (mean)
  double user_demand_spread = 0.3;  ///< lognormal sigma of per-user demand
  /// Sub-draws per user per sample: each user's weekly requirement is the
  /// peak of `user_sim_depth` intra-week usage draws. This is what makes
  /// UserSelection generation-bound — the workload where set-oriented
  /// engines win Figure 7 by materializing each sampled population once.
  int user_sim_depth = 16;

  // SynthBasis.
  int synth_num_basis = 10;         ///< exact number of basis classes
};

/// Demand(current_week, feature_release) — Algorithm 1.
BlackBoxPtr MakeDemandModel(const CloudModelConfig& cfg = {});

/// Capacity(current_week, purchase1, purchase2).
BlackBoxPtr MakeCapacityModel(const CloudModelConfig& cfg = {});

/// Overload(current_week, purchase1, purchase2) — composed of Demand and
/// Capacity; returns a boolean (0/1) sample.
BlackBoxPtr MakeOverloadModel(const CloudModelConfig& cfg = {});

/// UserSelection(current_week) — sums simulated per-user requirements over
/// the whole synthetic population; cost is O(num_users) per sample, which
/// is what makes it the data-bound workload of Figure 7.
BlackBoxPtr MakeUserSelectionModel(const CloudModelConfig& cfg = {});

/// SynthBasis(point) — partitions its parameter domain into exactly
/// `synth_num_basis` equivalence classes. Points within a class are
/// linearly mappable (alpha = (p+1)/(q+1)); points across classes draw
/// from differently-shaped mixtures and are not.
BlackBoxPtr MakeSynthBasisModel(const CloudModelConfig& cfg = {});

/// Extra models used by the examples (not part of Figure 6):
/// seasonal demand with weekly periodicity and a long-term trend.
BlackBoxPtr MakeSeasonalDemandModel(const CloudModelConfig& cfg = {});

/// Outage model: number of concurrently failed racks in a given week.
BlackBoxPtr MakeOutageModel(const CloudModelConfig& cfg = {});

/// Registers every model above into `registry` (used by examples, the SQL
/// front end and the benchmark harness).
Status RegisterCloudModels(ModelRegistry* registry,
                           const CloudModelConfig& cfg = {});

/// Deterministic per-user population attributes shared by the
/// UserSelection black box and the `users` VG table (both engines of
/// Figure 7 must simulate the same population). Attributes are data, not
/// randomness: they derive from the user id alone.
void DeriveUserProfile(int user, double arrival_rate, double base_demand,
                       double* signup_week, double* base);

}  // namespace jigsaw
