#include "models/cloud_models.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "random/draw_plane.h"
#include "random/philox.h"
#include "util/logging.h"

namespace jigsaw {

namespace {

/// The per-sample v1 stream used by every native batch kernel below.
/// Batch kernels must reproduce the scalar Eval path bit-for-bit, so the
/// stream derivation is identical — only the parameter-dependent
/// arithmetic around the draws gets hoisted out of the sample loop.
///
/// Under seed-schema v2 each kernel instead takes the draw-plane fast
/// path: no per-sample stream at all, whole planes of draw d filled with
/// one Philox block per four lanes. Every plane transform is
/// expression-identical to the RandomStream distribution it replaces, so
/// the plane path is bit-identical to a per-lane CounterStream loop.
inline RandomStream StreamForSigma(std::uint64_t sigma,
                                   std::uint64_t call_site) {
  return RandomStream(DeriveStreamSeed(sigma, call_site));
}

/// Stack scratch granularity for multi-plane kernels: planes are drawn
/// chunk-wise so scratch stays in L1 regardless of batch size.
constexpr std::size_t kPlaneChunk = 256;

/// Demand(current_week, feature_release): Algorithm 1 of the paper.
///
///   demand  = Normal(mu = 1 * w,             sigma^2 = 0.1 * w)
///   if w > feature:
///     demand += Normal(mu = 0.2 * (w - f),   sigma^2 = 0.2 * (w - f))
class DemandModel : public BlackBox {
 public:
  explicit DemandModel(const CloudModelConfig& cfg)
      : cfg_(cfg), name_("DemandModel"),
        params_{"current_week", "feature_release"} {}

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& param_names() const override {
    return params_;
  }

  double Eval(std::span<const double> p, RandomStream& rng) const override {
    JIGSAW_DCHECK(p.size() == 2);
    const double week = p[0];
    const double feature = p[1];
    // The sum of the two independent normals of Algorithm 1 is sampled as
    // one combined normal draw (identical distribution). Sampling it in
    // one draw is what makes every (week, feature) point linearly
    // mappable onto every other — the paper reports "only one basis
    // distribution for its entire ~5000 point parameter space", which
    // requires this draw structure. See DESIGN.md.
    double mean = cfg_.demand_mean_rate * week;
    double var = cfg_.demand_var_rate * week;
    if (week > feature) {
      const double dt = week - feature;
      mean += cfg_.feature_mean_rate * dt;
      var += cfg_.feature_var_rate * dt;
    }
    return rng.Normal(mean, std::sqrt(var));
  }

  /// Native kernel: mean/stddev and the feature branch are functions of
  /// the parameter point only, so the sample loop reduces to one seeded
  /// gaussian draw per seed (v1) or one gaussian plane (v2; draws 0-1).
  void EvalBatch(std::span<const double> p, SeedSpan seeds,
                 std::uint64_t call_site, std::span<double> out) const override {
    JIGSAW_DCHECK(p.size() == 2);
    const double week = p[0];
    const double feature = p[1];
    double mean = cfg_.demand_mean_rate * week;
    double var = cfg_.demand_var_rate * week;
    if (week > feature) {
      const double dt = week - feature;
      mean += cfg_.feature_mean_rate * dt;
      var += cfg_.feature_var_rate * dt;
    }
    const double sd = std::sqrt(var);
    if (seeds.schema() == SeedSchema::kV2) {
      GaussianPlane(out, seeds.k_begin(), seeds.draw_key(call_site), 0);
      for (double& x : out) x = mean + sd * x;
      return;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      RandomStream rng = StreamForSigma(seeds.sigma(i), call_site);
      out[i] = rng.Normal(mean, sd);
    }
  }

 private:
  CloudModelConfig cfg_;
  std::string name_;
  std::vector<std::string> params_;
};

/// Capacity(current_week, purchase1, purchase2): Figure 6 — "simulates a
/// series of purchases. Each purchase increases the capacity of the server
/// cluster after an exponentially distributed delay."
///
/// Both delays are always drawn (even for inactive purchases) so that the
/// draw order is independent of the activity pattern; the output then
/// depends only on the per-purchase deltas (w - p_i), which is what lets
/// many parameter points share a basis distribution ("four weeks after one
/// purchase" looks identical no matter when the purchase happened).
class CapacityModel : public BlackBox {
 public:
  explicit CapacityModel(const CloudModelConfig& cfg)
      : cfg_(cfg), name_("CapacityModel"),
        params_{"current_week", "purchase1", "purchase2"} {}

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& param_names() const override {
    return params_;
  }

  double Eval(std::span<const double> p, RandomStream& rng) const override {
    JIGSAW_DCHECK(p.size() == 3);
    const double week = p[0];
    double capacity = cfg_.base_capacity;
    for (std::size_t i = 1; i <= 2; ++i) {
      const double delay = rng.Exponential(1.0 / cfg_.settle_weeks);
      const double delta = week - p[i];
      if (delta >= 0.0 && delay <= delta) capacity += cfg_.purchase_volume;
    }
    return capacity;
  }

  /// Native kernel: the purchase deltas depend only on the parameter
  /// point; each sample draws the two settle delays and compares. v2
  /// draw layout: delay 1 at draw 0, delay 2 at draw 1.
  void EvalBatch(std::span<const double> p, SeedSpan seeds,
                 std::uint64_t call_site, std::span<double> out) const override {
    JIGSAW_DCHECK(p.size() == 3);
    const double week = p[0];
    const double delta1 = week - p[1];
    const double delta2 = week - p[2];
    const double lambda = 1.0 / cfg_.settle_weeks;
    if (seeds.schema() == SeedSchema::kV2) {
      const std::uint64_t key = seeds.draw_key(call_site);
      double e1[kPlaneChunk], e2[kPlaneChunk];
      for (std::size_t base = 0; base < out.size(); base += kPlaneChunk) {
        const std::size_t n = std::min(kPlaneChunk, out.size() - base);
        const std::size_t k0 = seeds.k_begin() + base;
        ExponentialPlane({e1, n}, k0, key, 0, lambda);
        ExponentialPlane({e2, n}, k0, key, 1, lambda);
        for (std::size_t i = 0; i < n; ++i) {
          double capacity = cfg_.base_capacity;
          if (delta1 >= 0.0 && e1[i] <= delta1) capacity += cfg_.purchase_volume;
          if (delta2 >= 0.0 && e2[i] <= delta2) capacity += cfg_.purchase_volume;
          out[base + i] = capacity;
        }
      }
      return;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      RandomStream rng = StreamForSigma(seeds.sigma(i), call_site);
      double capacity = cfg_.base_capacity;
      const double d1 = rng.Exponential(lambda);
      if (delta1 >= 0.0 && d1 <= delta1) capacity += cfg_.purchase_volume;
      const double d2 = rng.Exponential(lambda);
      if (delta2 >= 0.0 && d2 <= delta2) capacity += cfg_.purchase_volume;
      out[i] = capacity;
    }
  }

 private:
  CloudModelConfig cfg_;
  std::string name_;
  std::vector<std::string> params_;
};

/// Overload(current_week, purchase1, purchase2): Figure 6 — synthesized
/// from Capacity and Demand (the feature release is ignored, i.e. demand
/// never gets the post-release growth term). Returns 1 if demand exceeds
/// capacity. The boolean output discards the magnitudes, which is exactly
/// why fingerprint remapping helps Overload far less than its parents
/// (discussed with Figure 8 in the paper).
class OverloadModel : public BlackBox {
 public:
  explicit OverloadModel(const CloudModelConfig& cfg)
      : cfg_(cfg), name_("OverloadModel"),
        params_{"current_week", "purchase1", "purchase2"} {}

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& param_names() const override {
    return params_;
  }

  double Eval(std::span<const double> p, RandomStream& rng) const override {
    JIGSAW_DCHECK(p.size() == 3);
    const double week = p[0];
    const double demand = rng.Normal(
        cfg_.demand_mean_rate * week, std::sqrt(cfg_.demand_var_rate * week));
    double capacity = cfg_.base_capacity;
    for (std::size_t i = 1; i <= 2; ++i) {
      const double delay = rng.Exponential(1.0 / cfg_.settle_weeks);
      const double delta = week - p[i];
      if (delta >= 0.0 && delay <= delta) capacity += cfg_.purchase_volume;
    }
    return capacity < demand ? 1.0 : 0.0;
  }

  /// Native kernel: demand mean/stddev and purchase deltas hoisted; each
  /// sample is one gaussian plus two exponential draws and a compare.
  /// v2 draw layout: gaussian at draws 0-1, delays at draws 2 and 3.
  void EvalBatch(std::span<const double> p, SeedSpan seeds,
                 std::uint64_t call_site, std::span<double> out) const override {
    JIGSAW_DCHECK(p.size() == 3);
    const double week = p[0];
    const double mean = cfg_.demand_mean_rate * week;
    const double sd = std::sqrt(cfg_.demand_var_rate * week);
    const double delta1 = week - p[1];
    const double delta2 = week - p[2];
    const double lambda = 1.0 / cfg_.settle_weeks;
    if (seeds.schema() == SeedSchema::kV2) {
      const std::uint64_t key = seeds.draw_key(call_site);
      double g[kPlaneChunk], e1[kPlaneChunk], e2[kPlaneChunk];
      for (std::size_t base = 0; base < out.size(); base += kPlaneChunk) {
        const std::size_t n = std::min(kPlaneChunk, out.size() - base);
        const std::size_t k0 = seeds.k_begin() + base;
        GaussianPlane({g, n}, k0, key, 0);
        ExponentialPlane({e1, n}, k0, key, 2, lambda);
        ExponentialPlane({e2, n}, k0, key, 3, lambda);
        for (std::size_t i = 0; i < n; ++i) {
          const double demand = mean + sd * g[i];
          double capacity = cfg_.base_capacity;
          if (delta1 >= 0.0 && e1[i] <= delta1) capacity += cfg_.purchase_volume;
          if (delta2 >= 0.0 && e2[i] <= delta2) capacity += cfg_.purchase_volume;
          out[base + i] = capacity < demand ? 1.0 : 0.0;
        }
      }
      return;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      RandomStream rng = StreamForSigma(seeds.sigma(i), call_site);
      const double demand = rng.Normal(mean, sd);
      double capacity = cfg_.base_capacity;
      const double d1 = rng.Exponential(lambda);
      if (delta1 >= 0.0 && d1 <= delta1) capacity += cfg_.purchase_volume;
      const double d2 = rng.Exponential(lambda);
      if (delta2 >= 0.0 && d2 <= delta2) capacity += cfg_.purchase_volume;
      out[i] = capacity < demand ? 1.0 : 0.0;
    }
  }

 private:
  CloudModelConfig cfg_;
  std::string name_;
  std::vector<std::string> params_;
};

/// UserSelection(current_week): Figure 6 — "simulates the per-user
/// requirements of each of a set of users". The user population itself is
/// data, not randomness: per-user attributes (signup week, base demand)
/// derive deterministically from the user id, so every sample sees the
/// same population. Each sample then draws one lognormal requirement
/// multiplier per active user; cost is O(num_users), making this the
/// data-bound workload of Figure 7.
class UserSelectionModel : public BlackBox {
 public:
  explicit UserSelectionModel(const CloudModelConfig& cfg)
      : cfg_(cfg), name_("UserSelectionModel"), params_{"current_week"} {}

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& param_names() const override {
    return params_;
  }

  double Eval(std::span<const double> p, RandomStream& rng) const override {
    JIGSAW_DCHECK(p.size() == 1);
    const double week = p[0];
    double total = 0.0;
    for (int u = 0; u < cfg_.num_users; ++u) {
      double signup = 0.0, base = 0.0;
      DeriveUserProfile(u, cfg_.user_arrival_rate, cfg_.user_base_demand,
                        &signup, &base);
      if (signup > week) continue;
      double peak = 0.0;
      for (int d = 0; d < cfg_.user_sim_depth; ++d) {
        peak = std::max(peak, rng.LogNormal(0.0, cfg_.user_demand_spread));
      }
      total += base * peak;
    }
    return total;
  }

  /// Native kernel: the active-user roster is data (a pure function of
  /// the parameter point), so it is derived once per batch instead of
  /// once per sample — the scalar path burns O(num_users) Philox blocks
  /// per sample just to re-skip inactive users. Draw order is preserved:
  /// the scalar loop skips a user *before* drawing, so the seeded draws
  /// happen for active users in id order, exactly as replayed here.
  void EvalBatch(std::span<const double> p, SeedSpan seeds,
                 std::uint64_t call_site, std::span<double> out) const override {
    JIGSAW_DCHECK(p.size() == 1);
    const double week = p[0];
    std::vector<double> active_bases;
    active_bases.reserve(static_cast<std::size_t>(cfg_.num_users));
    for (int u = 0; u < cfg_.num_users; ++u) {
      double signup = 0.0, base = 0.0;
      DeriveUserProfile(u, cfg_.user_arrival_rate, cfg_.user_base_demand,
                        &signup, &base);
      if (signup <= week) active_bases.push_back(base);
    }
    const double spread = cfg_.user_demand_spread;
    const int depth = cfg_.user_sim_depth;
    if (seeds.schema() == SeedSchema::kV2) {
      // The scalar stream consumes two draws per (active-user ordinal,
      // depth) pair in roster order, so the plane for pair (a, d) starts
      // at draw index 2 * (a * depth + d).
      const std::uint64_t key = seeds.draw_key(call_site);
      double g[kPlaneChunk], peak[kPlaneChunk], total[kPlaneChunk];
      for (std::size_t base_i = 0; base_i < out.size();
           base_i += kPlaneChunk) {
        const std::size_t n = std::min(kPlaneChunk, out.size() - base_i);
        const std::size_t k0 = seeds.k_begin() + base_i;
        std::fill(total, total + n, 0.0);
        for (std::size_t a = 0; a < active_bases.size(); ++a) {
          std::fill(peak, peak + n, 0.0);
          for (int d = 0; d < depth; ++d) {
            const std::uint64_t draw =
                2 * (a * static_cast<std::uint64_t>(depth) +
                     static_cast<std::uint64_t>(d));
            GaussianPlane({g, n}, k0, key, draw);
            for (std::size_t i = 0; i < n; ++i) {
              peak[i] = std::max(peak[i], std::exp(0.0 + spread * g[i]));
            }
          }
          const double user_base = active_bases[a];
          for (std::size_t i = 0; i < n; ++i) {
            total[i] += user_base * peak[i];
          }
        }
        std::copy(total, total + n, out.begin() + base_i);
      }
      return;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      RandomStream rng = StreamForSigma(seeds.sigma(i), call_site);
      double total = 0.0;
      for (double base : active_bases) {
        double peak = 0.0;
        for (int d = 0; d < depth; ++d) {
          peak = std::max(peak, rng.LogNormal(0.0, spread));
        }
        total += base * peak;
      }
      out[i] = total;
    }
  }

 private:
  CloudModelConfig cfg_;
  std::string name_;
  std::vector<std::string> params_;
};

/// SynthBasis(point): Figure 6 — "a synthetic black box based on Demand,
/// but with a deterministic number of basis distributions". The domain is
/// partitioned into classes by point % num_basis. Every class consumes
/// exactly two gaussian draws (constant per-invocation cost, so index
/// benchmarks are not polluted by model-cost growth) but mixes them at a
/// class-specific angle: z(c) = z1*cos(phi_c) + z2*sin(phi_c). Two points
/// in the same class relate by an exact linear map; across classes the
/// mixtures are linearly independent of each other and of the constant
/// vector, so no affine mapping exists (angles are distinct modulo pi).
class SynthBasisModel : public BlackBox {
 public:
  explicit SynthBasisModel(const CloudModelConfig& cfg)
      : cfg_(cfg), name_("SynthBasisModel"), params_{"point"} {}

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& param_names() const override {
    return params_;
  }

  double Eval(std::span<const double> p, RandomStream& rng) const override {
    JIGSAW_DCHECK(p.size() == 1);
    const auto point = static_cast<std::int64_t>(p[0]);
    const int cls = static_cast<int>(
        point % static_cast<std::int64_t>(cfg_.synth_num_basis));
    const double phi = M_PI * (cls + 0.5) /
                       (static_cast<double>(cfg_.synth_num_basis) + 1.0);
    const double z1 = rng.Gaussian();
    const double z2 = rng.Gaussian();
    const double z = z1 * std::cos(phi) + z2 * std::sin(phi);
    return static_cast<double>(point + 1) * z + static_cast<double>(point);
  }

  /// Native kernel: class angle (and its cos/sin) plus the affine scale
  /// are per-point; the loop is two gaussians and a fused mix per seed.
  /// v2 draw layout: z1 at draws 0-1, z2 at draws 2-3.
  void EvalBatch(std::span<const double> p, SeedSpan seeds,
                 std::uint64_t call_site, std::span<double> out) const override {
    JIGSAW_DCHECK(p.size() == 1);
    const auto point = static_cast<std::int64_t>(p[0]);
    const int cls = static_cast<int>(
        point % static_cast<std::int64_t>(cfg_.synth_num_basis));
    const double phi = M_PI * (cls + 0.5) /
                       (static_cast<double>(cfg_.synth_num_basis) + 1.0);
    const double cos_phi = std::cos(phi);
    const double sin_phi = std::sin(phi);
    const double scale = static_cast<double>(point + 1);
    const double offset = static_cast<double>(point);
    if (seeds.schema() == SeedSchema::kV2) {
      const std::uint64_t key = seeds.draw_key(call_site);
      double z1[kPlaneChunk], z2[kPlaneChunk];
      for (std::size_t base = 0; base < out.size(); base += kPlaneChunk) {
        const std::size_t n = std::min(kPlaneChunk, out.size() - base);
        const std::size_t k0 = seeds.k_begin() + base;
        GaussianPlane({z1, n}, k0, key, 0);
        GaussianPlane({z2, n}, k0, key, 2);
        for (std::size_t i = 0; i < n; ++i) {
          out[base + i] = scale * (z1[i] * cos_phi + z2[i] * sin_phi) + offset;
        }
      }
      return;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      RandomStream rng = StreamForSigma(seeds.sigma(i), call_site);
      const double z1 = rng.Gaussian();
      const double z2 = rng.Gaussian();
      out[i] = scale * (z1 * cos_phi + z2 * sin_phi) + offset;
    }
  }

 private:
  CloudModelConfig cfg_;
  std::string name_;
  std::vector<std::string> params_;
};

/// SeasonalDemand(current_week): example-only model — long-term growth
/// modulated by annual seasonality plus week-scaled gaussian noise.
class SeasonalDemandModel : public BlackBox {
 public:
  explicit SeasonalDemandModel(const CloudModelConfig& cfg)
      : cfg_(cfg), name_("SeasonalDemandModel"), params_{"current_week"} {}

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& param_names() const override {
    return params_;
  }

  double Eval(std::span<const double> p, RandomStream& rng) const override {
    JIGSAW_DCHECK(p.size() == 1);
    const double week = p[0];
    const double trend = cfg_.demand_mean_rate * week;
    const double season = 1.0 + 0.25 * std::sin(week * 2.0 * M_PI / 52.0);
    return trend * season +
           rng.Normal(0.0, std::sqrt(cfg_.demand_var_rate * (week + 1.0)));
  }

  /// Native kernel: trend/seasonality and the noise stddev are per-point.
  /// v2 draw layout: one gaussian at draws 0-1.
  void EvalBatch(std::span<const double> p, SeedSpan seeds,
                 std::uint64_t call_site, std::span<double> out) const override {
    JIGSAW_DCHECK(p.size() == 1);
    const double week = p[0];
    const double level = cfg_.demand_mean_rate * week *
                         (1.0 + 0.25 * std::sin(week * 2.0 * M_PI / 52.0));
    const double sd = std::sqrt(cfg_.demand_var_rate * (week + 1.0));
    if (seeds.schema() == SeedSchema::kV2) {
      GaussianPlane(out, seeds.k_begin(), seeds.draw_key(call_site), 0);
      // Written as level + (0.0 + sd*g): the literal Normal(0.0, sd)
      // expression, so the plane stays bit-identical to the scalar twin.
      for (double& x : out) x = level + (0.0 + sd * x);
      return;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      RandomStream rng = StreamForSigma(seeds.sigma(i), call_site);
      out[i] = level + rng.Normal(0.0, sd);
    }
  }

 private:
  CloudModelConfig cfg_;
  std::string name_;
  std::vector<std::string> params_;
};

/// Outage(current_week): example-only model — count of concurrently failed
/// racks, Poisson with slowly increasing rate as the fleet ages.
class OutageModel : public BlackBox {
 public:
  explicit OutageModel(const CloudModelConfig& cfg)
      : cfg_(cfg), name_("OutageModel"), params_{"current_week"} {}

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& param_names() const override {
    return params_;
  }

  double Eval(std::span<const double> p, RandomStream& rng) const override {
    JIGSAW_DCHECK(p.size() == 1);
    const double week = p[0];
    const double rate =
        cfg_.failure_rate * (cfg_.base_capacity / 100.0) * (1.0 + week / 52.0);
    return static_cast<double>(rng.Poisson(rate)) * cfg_.failure_cores;
  }

  /// Native kernel: the Poisson rate is per-point. Poisson consumes a
  /// variable number of uniforms, so no draw plane exists; under v2 the
  /// per-lane counter stream already skips all table/engine setup, which
  /// is the bulk of the per-sample cost here.
  void EvalBatch(std::span<const double> p, SeedSpan seeds,
                 std::uint64_t call_site, std::span<double> out) const override {
    JIGSAW_DCHECK(p.size() == 1);
    const double week = p[0];
    const double rate =
        cfg_.failure_rate * (cfg_.base_capacity / 100.0) * (1.0 + week / 52.0);
    if (seeds.schema() == SeedSchema::kV2) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        RandomStream rng = seeds.StreamAt(i, call_site);
        out[i] = static_cast<double>(rng.Poisson(rate)) * cfg_.failure_cores;
      }
      return;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      RandomStream rng = StreamForSigma(seeds.sigma(i), call_site);
      out[i] = static_cast<double>(rng.Poisson(rate)) * cfg_.failure_cores;
    }
  }

 private:
  CloudModelConfig cfg_;
  std::string name_;
  std::vector<std::string> params_;
};

}  // namespace

BlackBoxPtr MakeDemandModel(const CloudModelConfig& cfg) {
  return std::make_shared<DemandModel>(cfg);
}
BlackBoxPtr MakeCapacityModel(const CloudModelConfig& cfg) {
  return std::make_shared<CapacityModel>(cfg);
}
BlackBoxPtr MakeOverloadModel(const CloudModelConfig& cfg) {
  return std::make_shared<OverloadModel>(cfg);
}
BlackBoxPtr MakeUserSelectionModel(const CloudModelConfig& cfg) {
  return std::make_shared<UserSelectionModel>(cfg);
}
BlackBoxPtr MakeSynthBasisModel(const CloudModelConfig& cfg) {
  return std::make_shared<SynthBasisModel>(cfg);
}
BlackBoxPtr MakeSeasonalDemandModel(const CloudModelConfig& cfg) {
  return std::make_shared<SeasonalDemandModel>(cfg);
}
BlackBoxPtr MakeOutageModel(const CloudModelConfig& cfg) {
  return std::make_shared<OutageModel>(cfg);
}

void DeriveUserProfile(int user, double arrival_rate, double base_demand,
                       double* signup_week, double* base) {
  std::uint64_t a = 0, b = 0;
  Philox4x32::Block64(static_cast<std::uint64_t>(user), 0,
                      /*key=*/0x5851f42d4c957f2dULL, &a, &b);
  const double u1 = static_cast<double>(a >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;
  // Geometric-ish arrival: most users joined early, a tail keeps arriving.
  *signup_week =
      std::floor(-std::log(1.0 - u1 * 0.999999) / arrival_rate / 4.0);
  *base = base_demand * (0.5 + u2);
}

Status RegisterCloudModels(ModelRegistry* registry,
                           const CloudModelConfig& cfg) {
  JIGSAW_RETURN_IF_ERROR(registry->Register(MakeDemandModel(cfg)));
  JIGSAW_RETURN_IF_ERROR(registry->Register(MakeCapacityModel(cfg)));
  JIGSAW_RETURN_IF_ERROR(registry->Register(MakeOverloadModel(cfg)));
  JIGSAW_RETURN_IF_ERROR(registry->Register(MakeUserSelectionModel(cfg)));
  JIGSAW_RETURN_IF_ERROR(registry->Register(MakeSynthBasisModel(cfg)));
  JIGSAW_RETURN_IF_ERROR(registry->Register(MakeSeasonalDemandModel(cfg)));
  JIGSAW_RETURN_IF_ERROR(registry->Register(MakeOutageModel(cfg)));
  return Status::OK();
}

}  // namespace jigsaw
