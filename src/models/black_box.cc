#include "models/black_box.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw {

void BlackBox::EvalBatch(std::span<const double> params, SeedSpan seeds,
                         std::uint64_t call_site,
                         std::span<double> out) const {
  JIGSAW_DCHECK(seeds.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    RandomStream rng = seeds.StreamAt(i, call_site);
    out[i] = Eval(params, rng);
  }
}

Status ModelRegistry::Register(BlackBoxPtr model) {
  if (Contains(model->name())) {
    return Status::AlreadyExists("model already registered: " +
                                 model->name());
  }
  models_.push_back(std::move(model));
  return Status::OK();
}

void ModelRegistry::RegisterOrReplace(BlackBoxPtr model) {
  for (auto& m : models_) {
    if (EqualsIgnoreCase(m->name(), model->name())) {
      m = std::move(model);
      return;
    }
  }
  models_.push_back(std::move(model));
}

Result<BlackBoxPtr> ModelRegistry::Lookup(const std::string& name) const {
  for (const auto& m : models_) {
    if (EqualsIgnoreCase(m->name(), name)) return m;
  }
  return Status::NotFound("no model named '" + name + "'");
}

bool ModelRegistry::Contains(const std::string& name) const {
  for (const auto& m : models_) {
    if (EqualsIgnoreCase(m->name(), name)) return true;
  }
  return false;
}

std::vector<std::string> ModelRegistry::ModelNames() const {
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& m : models_) names.push_back(m->name());
  return names;
}

}  // namespace jigsaw
