#pragma once

/// \file black_box.h
/// The stochastic black-box function abstraction of Section 2.2. A black
/// box takes a vector of (discrete, finite-domain) parameters plus a
/// RandomStream and returns one sample of its output distribution. Jigsaw
/// never inspects a black box's internals — only its sampled outputs —
/// which is what makes the fingerprinting technique necessary.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "random/random_stream.h"
#include "random/seed_vector.h"
#include "util/status.h"

namespace jigsaw {

class BlackBox {
 public:
  virtual ~BlackBox() = default;

  /// Registry name used by the SQL front end (case-insensitive lookup).
  virtual const std::string& name() const = 0;

  /// Parameter names, in positional order.
  virtual const std::vector<std::string>& param_names() const = 0;

  std::size_t arity() const { return param_names().size(); }

  /// Draws one sample of the output distribution for `params`. All
  /// randomness must come from `rng` (the seed-substitution requirement of
  /// Section 3.1).
  virtual double Eval(std::span<const double> params,
                      RandomStream& rng) const = 0;

  /// Draws `out.size()` samples, one per entry of `seeds`, into `out`.
  /// Sample i must equal Eval(params, seeds.StreamAt(i, call_site))
  /// bit-for-bit — batching may hoist parameter-dependent work out of the
  /// per-sample loop but never changes any draw. (Under seed-schema v1
  /// that scalar twin is exactly the historical InvokeSeeded; under v2 it
  /// is the counter-based stream, which native kernels reproduce with
  /// draw planes.) The default loops over Eval, so scalar-only models
  /// work unchanged; hot models override this with a native kernel (see
  /// cloud_models.cc). A raw sigma span converts implicitly to a v1
  /// SeedSpan, so pre-v2 call sites keep their shape.
  virtual void EvalBatch(std::span<const double> params, SeedSpan seeds,
                         std::uint64_t call_site,
                         std::span<double> out) const;
};

using BlackBoxPtr = std::shared_ptr<const BlackBox>;

/// Evaluates `f` once under a specific sample seed, as F(P, sigma).
/// `call_site` distinguishes multiple uses of black boxes within one query
/// so their streams stay independent.
inline double InvokeSeeded(const BlackBox& f, std::span<const double> params,
                           std::uint64_t sigma, std::uint64_t call_site = 0) {
  RandomStream rng(DeriveStreamSeed(sigma, call_site));
  return f.Eval(params, rng);
}

/// Adapts a lambda / std::function as a BlackBox (used heavily in tests).
class CallableBlackBox : public BlackBox {
 public:
  using Fn = std::function<double(std::span<const double>, RandomStream&)>;

  CallableBlackBox(std::string name, std::vector<std::string> param_names,
                   Fn fn)
      : name_(std::move(name)),
        param_names_(std::move(param_names)),
        fn_(std::move(fn)) {}

  const std::string& name() const override { return name_; }
  const std::vector<std::string>& param_names() const override {
    return param_names_;
  }
  double Eval(std::span<const double> params,
              RandomStream& rng) const override {
    return fn_(params, rng);
  }

 private:
  std::string name_;
  std::vector<std::string> param_names_;
  Fn fn_;
};

/// Name-keyed registry the SQL binder resolves model calls against.
class ModelRegistry {
 public:
  /// Registers a model; fails on duplicate (case-insensitive) names.
  Status Register(BlackBoxPtr model);

  /// Replaces or inserts.
  void RegisterOrReplace(BlackBoxPtr model);

  /// Case-insensitive lookup.
  Result<BlackBoxPtr> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const;

  std::vector<std::string> ModelNames() const;

 private:
  // Few models; linear scan keeps iteration order deterministic.
  std::vector<BlackBoxPtr> models_;
};

}  // namespace jigsaw
