#pragma once

/// \file fingerprint_index.h
/// Fingerprint indexing (Section 3.2). Given a probe fingerprint, an index
/// returns a candidate set of basis ids that must contain every mappable
/// basis (no false negatives for the index's declared mapping class) and
/// may contain false positives, which the caller filters with FindMapping
/// (Algorithm 3).
///
/// Strategies:
///  - Array:         no index; every basis is a candidate (the baseline
///                   the paper plots indexes against in Figures 10/11).
///  - Normalization: hash of the mapping class's canonical normal form.
///  - Sorted SID:    hash of the sample-identifier permutation obtained by
///                   sorting the fingerprint values; valid for monotone
///                   mapping classes. Decreasing maps are handled by also
///                   probing the reversed permutation.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fingerprint.h"
#include "core/mapping.h"

namespace jigsaw {

using BasisId = std::uint32_t;

enum class IndexKind { kArray, kNormalization, kSortedSid };

const char* IndexKindName(IndexKind kind);

class FingerprintIndex {
 public:
  virtual ~FingerprintIndex() = default;

  virtual const std::string& name() const = 0;

  /// Registers a basis fingerprint under `id`.
  virtual void Insert(BasisId id, const Fingerprint& fp) = 0;

  /// Appends candidate basis ids for `probe` to `out` (cleared first).
  virtual void GetCandidates(const Fingerprint& probe,
                             std::vector<BasisId>* out) const = 0;

  virtual std::size_t size() const = 0;
};

/// Factory. `finder` supplies the normal form for kNormalization; `tol`
/// and `quantum` control distinctness testing and hash quantization.
std::unique_ptr<FingerprintIndex> MakeFingerprintIndex(
    IndexKind kind, MappingFinderPtr finder, double tol, double quantum);

/// Computes the sorted sample-identifier sequence of a fingerprint:
/// argsort of the values (ties broken by SID for determinism). Exposed for
/// tests of the monotone-invariance property.
std::vector<std::uint32_t> SortedSidKey(const Fingerprint& fp);

}  // namespace jigsaw
