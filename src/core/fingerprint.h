#pragma once

/// \file fingerprint.h
/// The fingerprint of Section 3.1: for a parameterized stochastic function
/// F(P) and the global seed vector {sigma_k},
///
///   fingerprint({sigma_k}, F(P)) = { F(P, sigma_k) | 0 <= k < m }.
///
/// Because every parameter point is fingerprinted under the *same* seeds,
/// points whose output distributions are related by a mapping function
/// produce fingerprints related by that same mapping, deterministically.

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/sim_function.h"
#include "random/seed_vector.h"

namespace jigsaw {

class Fingerprint {
 public:
  Fingerprint() = default;
  explicit Fingerprint(std::vector<double> values)
      : values_(std::move(values)) {}

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double operator[](std::size_t i) const { return values_[i]; }
  const std::vector<double>& values() const { return values_; }

  /// Appends one more entry (interactive mode grows fingerprints lazily).
  void Append(double v) { values_.push_back(v); }

  /// Indices of the first two entries that differ by more than `tol`
  /// (relative), or nullopt if the fingerprint is constant. Used both by
  /// FindLinearMapping and by the normalization index.
  std::optional<std::pair<std::size_t, std::size_t>> FirstTwoDistinct(
      double tol) const;

  /// True if every entry equals the first within tolerance.
  bool IsConstant(double tol) const { return !FirstTwoDistinct(tol); }

  std::string ToString() const;

 private:
  std::vector<double> values_;
};

/// Evaluates the first `m` seeded samples of `fn` at `params` — the
/// fingerprint doubles as the first m rounds of the full simulation, so
/// this work is never wasted (Section 3.1, "Using Fingerprints").
Fingerprint ComputeFingerprint(const SimFunction& fn,
                               std::span<const double> params,
                               const SeedVector& seeds, std::size_t m);

}  // namespace jigsaw
