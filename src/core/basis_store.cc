#include "core/basis_store.h"

#include <utility>

#include "util/logging.h"

namespace jigsaw {

namespace {

/// Locked on the thread-safe path, disengaged (no atomic ops at all) on
/// the single-threaded one.
std::unique_lock<std::mutex> MaybeLock(std::mutex& mu, bool enabled) {
  return enabled ? std::unique_lock<std::mutex>(mu)
                 : std::unique_lock<std::mutex>(mu, std::defer_lock);
}

}  // namespace

std::optional<BasisMatch> BasisStore::FindMatch(const Fingerprint& probe) {
  const auto lock = MaybeLock(mu_, thread_safe_);
  ++stats_.lookups;
  index_->GetCandidates(probe, &candidate_buffer_);
  for (BasisId id : candidate_buffer_) {
    ++stats_.candidates_tested;
    MappingPtr m = finder_->Find(bases_[id].fingerprint, probe, tol_);
    if (m != nullptr) {
      ++stats_.hits;
      ++bases_[id].reuse_count;
      return BasisMatch{id, std::move(m)};
    }
    ++stats_.false_positive_candidates;
  }
  ++stats_.misses;
  return std::nullopt;
}

const BasisDistribution& BasisStore::Insert(Fingerprint fp,
                                            OutputMetrics metrics) {
  const auto lock = MaybeLock(mu_, thread_safe_);
  const auto id = static_cast<BasisId>(bases_.size());
  index_->Insert(id, fp);
  bases_.push_back(BasisDistribution{id, std::move(fp), std::move(metrics),
                                     /*reuse_count=*/0});
  return bases_.back();
}

void BasisStore::SetMetrics(BasisId id, OutputMetrics metrics) {
  const auto lock = MaybeLock(mu_, thread_safe_);
  JIGSAW_CHECK_MSG(id < bases_.size(), "SetMetrics on unknown basis");
  bases_[id].metrics = std::move(metrics);
}

}  // namespace jigsaw
