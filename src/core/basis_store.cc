#include "core/basis_store.h"

#include <utility>

#include "util/logging.h"

namespace jigsaw {

// Every method locks via MutexLockMaybe: engaged on the thread-safe path,
// disengaged (no atomic ops at all) on the single-threaded one, where the
// caller's serial contract stands in for the lock (see util/mutex.h).

std::optional<BasisMatch> BasisStore::FindMatch(const Fingerprint& probe) {
  MutexLockMaybe lock(&mu_, thread_safe_);
  ++stats_.lookups;
  index_->GetCandidates(probe, &candidate_buffer_);
  for (BasisId id : candidate_buffer_) {
    ++stats_.candidates_tested;
    MappingPtr m = finder_->Find(bases_[id].fingerprint, probe, tol_);
    if (m != nullptr) {
      ++stats_.hits;
      ++bases_[id].reuse_count;
      return BasisMatch{id, std::move(m)};
    }
    ++stats_.false_positive_candidates;
  }
  ++stats_.misses;
  return std::nullopt;
}

const BasisDistribution& BasisStore::Insert(Fingerprint fp,
                                            OutputMetrics metrics) {
  MutexLockMaybe lock(&mu_, thread_safe_);
  const auto id = static_cast<BasisId>(bases_.size());
  index_->Insert(id, fp);
  bases_.push_back(BasisDistribution{id, std::move(fp), std::move(metrics),
                                     /*reuse_count=*/0});
  return bases_.back();
}

void BasisStore::SetMetrics(BasisId id, OutputMetrics metrics) {
  MutexLockMaybe lock(&mu_, thread_safe_);
  JIGSAW_CHECK_MSG(id < bases_.size(), "SetMetrics on unknown basis");
  bases_[id].metrics = std::move(metrics);
}

const BasisDistribution& BasisStore::Get(BasisId id) const {
  MutexLockMaybe lock(&mu_, thread_safe_);
  return bases_[id];
}

std::size_t BasisStore::size() const {
  MutexLockMaybe lock(&mu_, thread_safe_);
  return bases_.size();
}

BasisStoreStats BasisStore::stats() const {
  MutexLockMaybe lock(&mu_, thread_safe_);
  return stats_;
}

const std::string& BasisStore::index_name() const {
  MutexLockMaybe lock(&mu_, thread_safe_);
  // name() returns a reference to an immutable per-class string, so the
  // reference stays valid past the lock scope.
  return index_->name();
}

}  // namespace jigsaw
