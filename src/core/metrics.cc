#include "core/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace jigsaw {

bool CanMapMetrics(const MappingFunction& m, bool has_samples) {
  return m.AsAffine().has_value() || (m.Invertible() && has_samples);
}

std::optional<OutputMetrics> OutputMetrics::MappedBy(
    const MappingFunction& m, int histogram_bins) const {
  if (!CanMapMetrics(m, !samples.empty())) return std::nullopt;
  if (auto affine = m.AsAffine()) {
    const auto [alpha, beta] = *affine;
    OutputMetrics out;
    out.count = count;
    out.mean = alpha * mean + beta;
    out.stddev = std::fabs(alpha) * stddev;
    out.std_error = std::fabs(alpha) * std_error;
    const double a = alpha * min + beta;
    const double b = alpha * max + beta;
    out.min = std::min(a, b);
    out.max = std::max(a, b);
    const double q50 = alpha * p50 + beta;
    const double q95 = alpha * p95 + beta;
    out.p50 = q50;
    out.p95 = alpha >= 0 ? q95 : q50;  // quantiles flip under alpha<0
    if (alpha < 0) {
      // p95 of the mapped distribution is the (1-0.95) quantile of the
      // original; we only cached p50/p95, so approximate with what exists.
      out.p95 = alpha * p50 + beta;
      out.p50 = q50;
    }
    if (histogram) {
      out.histogram = histogram->AffineTransformed(alpha, beta);
    }
    if (!samples.empty()) {
      out.samples.reserve(samples.size());
      for (double s : samples) out.samples.push_back(alpha * s + beta);
    }
    return out;
  }
  if (m.Invertible() && !samples.empty()) {
    std::vector<double> mapped;
    mapped.reserve(samples.size());
    for (double s : samples) mapped.push_back(m.Apply(s));
    return MetricsFromSamples(mapped, /*keep_samples=*/true, histogram_bins);
  }
  return std::nullopt;
}

std::string OutputMetrics::ToString() const {
  return StrFormat(
      "{n=%lld mean=%.6g sd=%.6g se=%.3g min=%.6g max=%.6g p50=%.6g "
      "p95=%.6g}",
      static_cast<long long>(count), mean, stddev, std_error, min, max, p50,
      p95);
}

OutputMetrics Estimator::Finalize() const {
  OutputMetrics out;
  out.count = acc_.count();
  out.mean = acc_.mean();
  out.stddev = acc_.stddev();
  out.std_error = acc_.standard_error();
  out.min = acc_.count() ? acc_.min() : 0.0;
  out.max = acc_.count() ? acc_.max() : 0.0;
  if (!all_.empty()) {
    // Quantiles are taken over the finite mass: NaNs break selection's
    // strict weak ordering, and the histogram drops them anyway.
    // QuantileSelect returns the same bits a full sort would; at millions
    // of folded tuples the O(n log n) sort, not the fold, used to
    // dominate finalization.
    std::vector<double> finite;
    finite.reserve(all_.size());
    for (double x : all_) {
      if (std::isfinite(x)) finite.push_back(x);
    }
    if (!finite.empty()) {
      out.p50 = QuantileSelect(finite, 0.50);
      out.p95 = QuantileSelect(finite, 0.95);
    }
    out.histogram = Histogram::FromSamples(all_, histogram_bins_);
  }
  if (keep_samples_) out.samples = all_;
  return out;
}

OutputMetrics MetricsFromSamples(const std::vector<double>& samples,
                                 bool keep_samples, int histogram_bins) {
  Estimator est(keep_samples, histogram_bins);
  est.AddSpan(samples);
  return est.Finalize();
}

}  // namespace jigsaw
