#include "core/symbolic.h"

#include "util/logging.h"

namespace jigsaw {

SymbolicVar::SymbolicVar(BasisId basis_id,
                         const std::vector<double>* basis_samples,
                         double alpha, double beta)
    : basis_id_(basis_id),
      samples_(basis_samples),
      alpha_(alpha),
      beta_(beta) {
  JIGSAW_CHECK(samples_ != nullptr);
}

Result<SymbolicVar> SymbolicVar::FromPoint(const BasisStore& store,
                                           const PointResult& point) {
  if (point.mapping == nullptr) {
    return Status::InvalidArgument("point result carries no mapping");
  }
  const auto affine = point.mapping->AsAffine();
  if (!affine) {
    return Status::InvalidArgument(
        "symbolic execution requires an affine mapping class");
  }
  const BasisDistribution& basis = store.Get(point.basis_id);
  if (basis.metrics.samples.empty()) {
    return Status::InvalidArgument(
        "basis samples were not retained; set RunConfig.keep_samples");
  }
  return SymbolicVar(point.basis_id, &basis.metrics.samples, affine->first,
                     affine->second);
}

Result<SymbolicVar> SymbolicVar::Combine(
    const SymbolicVar& other, double sign,
    std::vector<double>* storage) const {
  if (basis_id_ == other.basis_id_ && samples_ == other.samples_) {
    // The paper's analytic case: same underlying f(x), coefficients add.
    return SymbolicVar(basis_id_, samples_, alpha_ + sign * other.alpha_,
                       beta_ + sign * other.beta_);
  }
  if (storage == nullptr) {
    return Status::InvalidArgument(
        "cross-basis combination requires materialization storage");
  }
  if (samples_->size() != other.samples_->size()) {
    return Status::InvalidArgument(
        "cross-basis combination requires equal, seed-aligned sample "
        "counts");
  }
  storage->resize(samples_->size());
  for (std::size_t k = 0; k < samples_->size(); ++k) {
    (*storage)[k] = SampleAt(k) + sign * other.SampleAt(k);
  }
  // The materialized vector becomes its own (identity-mapped) basis.
  return SymbolicVar(basis_id_, storage, 1.0, 0.0);
}

Result<SymbolicVar> SymbolicVar::Add(
    const SymbolicVar& other, std::vector<double>* storage) const {
  return Combine(other, 1.0, storage);
}

Result<SymbolicVar> SymbolicVar::Sub(
    const SymbolicVar& other, std::vector<double>* storage) const {
  return Combine(other, -1.0, storage);
}

OutputMetrics SymbolicVar::Metrics(bool keep_samples,
                                   int histogram_bins) const {
  Estimator est(keep_samples, histogram_bins);
  for (std::size_t k = 0; k < samples_->size(); ++k) est.Add(SampleAt(k));
  return est.Finalize();
}

Result<double> SymbolicVar::ProbGreater(const SymbolicVar& other) const {
  if (basis_id_ == other.basis_id_ && samples_ == other.samples_) {
    // X - Y = (a1-a2)*B + (b1-b2): threshold on the basis itself.
    const double da = alpha_ - other.alpha_;
    const double db = beta_ - other.beta_;
    if (da == 0.0) return db > 0.0 ? 1.0 : 0.0;
    const double t = -db / da;
    std::size_t above = 0;
    for (double b : *samples_) {
      if (da > 0.0 ? b > t : b < t) ++above;
    }
    return static_cast<double>(above) /
           static_cast<double>(samples_->size());
  }
  if (samples_->size() != other.samples_->size()) {
    return Status::InvalidArgument(
        "cross-basis comparison requires equal, seed-aligned sample "
        "counts");
  }
  std::size_t above = 0;
  for (std::size_t k = 0; k < samples_->size(); ++k) {
    if (SampleAt(k) > other.SampleAt(k)) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(samples_->size());
}

double SymbolicVar::ProbGreaterThan(double threshold) const {
  std::size_t above = 0;
  for (std::size_t k = 0; k < samples_->size(); ++k) {
    if (SampleAt(k) > threshold) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(samples_->size());
}

}  // namespace jigsaw
