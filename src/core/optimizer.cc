#include "core/optimizer.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw {

const char* MetricSelectorName(MetricSelector m) {
  switch (m) {
    case MetricSelector::kExpect:
      return "EXPECT";
    case MetricSelector::kStdDev:
      return "EXPECT_STDDEV";
    case MetricSelector::kStdError:
      return "STDERR";
    case MetricSelector::kMin:
      return "MIN";
    case MetricSelector::kMax:
      return "MAX";
    case MetricSelector::kMedian:
      return "MEDIAN";
    case MetricSelector::kP95:
      return "P95";
  }
  return "?";
}

double ExtractMetric(const OutputMetrics& metrics, MetricSelector selector) {
  switch (selector) {
    case MetricSelector::kExpect:
      return metrics.mean;
    case MetricSelector::kStdDev:
      return metrics.stddev;
    case MetricSelector::kStdError:
      return metrics.std_error;
    case MetricSelector::kMin:
      return metrics.min;
    case MetricSelector::kMax:
      return metrics.max;
    case MetricSelector::kMedian:
      return metrics.p50;
    case MetricSelector::kP95:
      return metrics.p95;
  }
  return 0.0;
}

bool MetricConstraint::Compare(double lhs) const {
  switch (cmp) {
    case CmpOp::kLt:
      return lhs < threshold;
    case CmpOp::kLe:
      return lhs <= threshold;
    case CmpOp::kGt:
      return lhs > threshold;
    case CmpOp::kGe:
      return lhs >= threshold;
  }
  return false;
}

std::string OptimizeResult::ToString() const {
  if (!found) return "OPTIMIZE: no feasible parameter valuation";
  std::string out = "OPTIMIZE: best valuation {";
  for (std::size_t i = 0; i < group_param_names.size(); ++i) {
    if (i > 0) out += ", ";
    out += "@" + group_param_names[i] + "=" +
           DoubleToString(best_valuation[i]);
  }
  out += StrFormat("} (%zu/%zu groups feasible)",
                   static_cast<std::size_t>(std::count_if(
                       groups.begin(), groups.end(),
                       [](const GroupEvaluation& g) { return g.feasible; })),
                   groups.size());
  return out;
}

Selector::Selector(std::vector<ObjectiveTerm> objectives,
                   std::vector<std::string> group_param_names) {
  for (const auto& term : objectives) {
    bool found = false;
    for (std::size_t i = 0; i < group_param_names.size(); ++i) {
      if (EqualsIgnoreCase(group_param_names[i], term.param)) {
        terms_.push_back(ResolvedTerm{i, term.maximize});
        found = true;
        break;
      }
    }
    JIGSAW_CHECK_MSG(found, "objective parameter '@"
                                << term.param
                                << "' is not a GROUP BY parameter");
  }
}

bool Selector::Better(const std::vector<double>& candidate,
                      const std::vector<double>& incumbent) const {
  for (const auto& term : terms_) {
    const double c = candidate[term.index];
    const double i = incumbent[term.index];
    if (c == i) continue;
    return term.maximize ? c > i : c < i;
  }
  return false;  // tie: keep the incumbent (first found wins)
}

namespace {

/// Splits the scenario's parameters into group and sweep dimensions and
/// produces the valuation composer.
struct SpaceSplit {
  std::vector<std::size_t> group_idx;  // scenario param index per group dim
  std::vector<std::size_t> sweep_idx;  // scenario param index per sweep dim
  ParameterSpace group_space;
  ParameterSpace sweep_space;
};

Result<SpaceSplit> SplitSpace(const ParameterSpace& params,
                              const std::vector<std::string>& group_params) {
  SpaceSplit split;
  for (const auto& name : group_params) {
    auto idx = params.IndexOf(name);
    if (!idx) {
      return Status::BindError("GROUP BY references undeclared parameter '@" +
                               name + "'");
    }
    if (params.def(*idx).is_chain()) {
      return Status::BindError("GROUP BY parameter '@" + name +
                               "' is a CHAIN parameter");
    }
    split.group_idx.push_back(*idx);
    JIGSAW_RETURN_IF_ERROR(split.group_space.Add(params.def(*idx)));
  }
  for (std::size_t i = 0; i < params.num_params(); ++i) {
    if (params.def(i).is_chain()) {
      return Status::Unimplemented(
          "OPTIMIZE over CHAIN parameters requires the Markov executor; "
          "evaluate the chain scenario via MarkovJumpRunner instead");
    }
    const bool is_group =
        std::find(split.group_idx.begin(), split.group_idx.end(), i) !=
        split.group_idx.end();
    if (!is_group) {
      split.sweep_idx.push_back(i);
      JIGSAW_RETURN_IF_ERROR(split.sweep_space.Add(params.def(i)));
    }
  }
  return split;
}

double FoldInit(SweepAgg agg) {
  switch (agg) {
    case SweepAgg::kMax:
      return -std::numeric_limits<double>::infinity();
    case SweepAgg::kMin:
      return std::numeric_limits<double>::infinity();
    case SweepAgg::kAvg:
    case SweepAgg::kSum:
      return 0.0;
  }
  return 0.0;
}

double FoldStep(SweepAgg agg, double acc, double x) {
  switch (agg) {
    case SweepAgg::kMax:
      return std::max(acc, x);
    case SweepAgg::kMin:
      return std::min(acc, x);
    case SweepAgg::kAvg:
    case SweepAgg::kSum:
      return acc + x;
  }
  return acc;
}

}  // namespace

Result<OptimizeResult> Optimizer::Run(const Scenario& scenario,
                                      const OptimizeSpec& spec) {
  if (spec.group_params.empty()) {
    return Status::BindError("OPTIMIZE requires a GROUP BY parameter list");
  }
  JIGSAW_ASSIGN_OR_RETURN(SpaceSplit split,
                          SplitSpace(scenario.params, spec.group_params));

  // Resolve constraint columns up front.
  std::vector<const ScenarioColumn*> constraint_columns;
  constraint_columns.reserve(spec.constraints.size());
  for (const auto& c : spec.constraints) {
    JIGSAW_ASSIGN_OR_RETURN(const ScenarioColumn* col,
                            scenario.FindColumn(c.column));
    constraint_columns.push_back(col);
  }

  OptimizeResult result;
  result.group_param_names = spec.group_params;
  Selector selector(spec.objectives, spec.group_params);

  const std::size_t num_groups = split.group_space.NumPoints();
  const std::size_t num_sweep = std::max<std::size_t>(
      split.sweep_space.NumPoints(), 1);

  std::vector<double> full(scenario.params.num_params(), 0.0);
  for (std::size_t g = 0; g < num_groups; ++g) {
    const auto group_val = split.group_space.ValuationAt(g);
    GroupEvaluation eval;
    eval.group_valuation = group_val;
    eval.constraint_lhs.assign(spec.constraints.size(), 0.0);

    std::vector<double> acc(spec.constraints.size());
    for (std::size_t c = 0; c < acc.size(); ++c) {
      acc[c] = FoldInit(spec.constraints[c].agg);
    }

    for (std::size_t s = 0; s < num_sweep; ++s) {
      const auto sweep_val = split.sweep_space.NumPoints() > 0
                                 ? split.sweep_space.ValuationAt(s)
                                 : std::vector<double>{};
      for (std::size_t i = 0; i < split.group_idx.size(); ++i) {
        full[split.group_idx[i]] = group_val[i];
      }
      for (std::size_t i = 0; i < split.sweep_idx.size(); ++i) {
        full[split.sweep_idx[i]] = sweep_val[i];
      }
      // Evaluate each referenced column once per full valuation; the
      // runner's basis store makes repeats cheap.
      for (std::size_t c = 0; c < spec.constraints.size(); ++c) {
        const PointResult point =
            runner_->RunPoint(*constraint_columns[c]->fn, full);
        ++result.points_simulated;
        const double metric =
            ExtractMetric(point.metrics, spec.constraints[c].metric);
        acc[c] = FoldStep(spec.constraints[c].agg, acc[c], metric);
      }
    }

    eval.feasible = true;
    for (std::size_t c = 0; c < spec.constraints.size(); ++c) {
      double lhs = acc[c];
      if (spec.constraints[c].agg == SweepAgg::kAvg) {
        lhs /= static_cast<double>(num_sweep);
      }
      eval.constraint_lhs[c] = lhs;
      if (!spec.constraints[c].Compare(lhs)) eval.feasible = false;
    }

    if (eval.feasible &&
        (!result.found || selector.Better(group_val, result.best_valuation))) {
      result.found = true;
      result.best_valuation = group_val;
    }
    result.groups.push_back(std::move(eval));
  }

  return result;
}

}  // namespace jigsaw
