#pragma once

/// \file symbolic.h
/// Symbolic combination of mapped random variables — the extension the
/// paper sketches in Section 6.2: "Jigsaw's techniques can be further
/// improved by incorporating them into a database engine with a symbolic
/// execution strategy (e.g. PIP). ... consider two random variables
/// X = MX(f(x)) = 2*f(x)+2 and Y = MY(f(x)) = 3*f(x)+3. We can
/// symbolically produce X + Y = 5*f(x)+5. Similarly, given a histogram of
/// f(x) we can efficiently compute the probability that MX > MY."
///
/// A SymbolicVar is an affine view alpha*B + beta over a basis
/// distribution B whose samples were retained by the runner. Because
/// every basis is sampled under the *global* seed vector, samples of two
/// different bases are aligned world-by-world: sample k of each basis
/// belongs to the same possible world. Joint quantities — X + Y,
/// P(X > Y) — therefore reduce to one cheap pass over cached basis
/// samples, with zero further black-box invocations. This is exactly what
/// rescues Overload-style boolean queries (see bench_ablation_symbolic).
///
/// Same-basis pairs take fully analytic fast paths (the paper's example).

#include <vector>

#include "core/basis_store.h"
#include "core/metrics.h"
#include "core/sim_runner.h"
#include "util/status.h"

namespace jigsaw {

class SymbolicVar {
 public:
  /// Builds the symbolic view of a point result: the basis it was served
  /// from plus the affine mapping. Requires (a) an affine mapping (always
  /// true for the linear class) and (b) retained basis samples
  /// (RunConfig.keep_samples).
  static Result<SymbolicVar> FromPoint(const BasisStore& store,
                                       const PointResult& point);

  /// Direct constructor for tests / custom pipelines. `basis_samples`
  /// must outlive the SymbolicVar.
  SymbolicVar(BasisId basis_id, const std::vector<double>* basis_samples,
              double alpha, double beta);

  BasisId basis_id() const { return basis_id_; }
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  std::size_t num_samples() const { return samples_->size(); }

  /// The k'th aligned sample of this variable.
  double SampleAt(std::size_t k) const {
    return alpha_ * (*samples_)[k] + beta_;
  }

  /// Affine closure: scaling and shifting stay symbolic (and free).
  SymbolicVar Scale(double factor) const {
    return SymbolicVar(basis_id_, samples_, alpha_ * factor, beta_ * factor);
  }
  SymbolicVar Shift(double offset) const {
    return SymbolicVar(basis_id_, samples_, alpha_, beta_ + offset);
  }

  /// X + Y / X - Y. Same basis: purely symbolic (coefficients add), the
  /// paper's example. Different bases: requires equal, seed-aligned
  /// sample counts; the result is materialized from the aligned samples.
  Result<SymbolicVar> Add(const SymbolicVar& other,
                          std::vector<double>* materialized_storage) const;
  Result<SymbolicVar> Sub(const SymbolicVar& other,
                          std::vector<double>* materialized_storage) const;

  /// Distribution summary, computed without any model invocation.
  OutputMetrics Metrics(bool keep_samples, int histogram_bins) const;

  /// P(X > Y) over the joint (seed-aligned) distribution. Same-basis
  /// pairs reduce analytically to a threshold on B; cross-basis pairs
  /// take one pass over the aligned samples.
  Result<double> ProbGreater(const SymbolicVar& other) const;

  /// P(X > t).
  double ProbGreaterThan(double threshold) const;

 private:
  Result<SymbolicVar> Combine(const SymbolicVar& other, double sign,
                              std::vector<double>* storage) const;

  BasisId basis_id_;
  const std::vector<double>* samples_;
  double alpha_;
  double beta_;
};

}  // namespace jigsaw
