#include "core/sim_runner.h"

#include "util/logging.h"

namespace jigsaw {

SimulationRunner::SimulationRunner(const RunConfig& config,
                                   MappingFinderPtr finder)
    : config_(config),
      finder_(finder ? std::move(finder) : LinearMappingFinder::Make()),
      seeds_(config.master_seed, config.num_samples),
      basis_store_(finder_, config.index_kind, config.tolerance,
                   config.quantum) {
  JIGSAW_CHECK_MSG(config_.fingerprint_size <= config_.num_samples,
                   "fingerprint size m must be <= sample count n");
  JIGSAW_CHECK_MSG(config_.fingerprint_size >= 2,
                   "fingerprint size m must be >= 2 to fit a mapping");
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
}

void SimulationRunner::EvaluateRange(const SimFunction& fn,
                                     std::span<const double> params,
                                     std::size_t begin, std::size_t end,
                                     std::vector<double>* out) {
  out->resize(end - begin);
  if (pool_ == nullptr || end - begin < 2 * config_.num_threads) {
    for (std::size_t k = begin; k < end; ++k) {
      (*out)[k - begin] = fn.Sample(params, k, seeds_);
    }
    return;
  }
  // Samples are independent given their seeds; any schedule produces the
  // same values, and the caller folds them in index order.
  pool_->ParallelFor(end - begin, [&](std::size_t i) {
    (*out)[i] = fn.Sample(params, begin + i, seeds_);
  });
}

PointResult SimulationRunner::RunPoint(const SimFunction& fn,
                                       std::span<const double> params) {
  ++stats_.points_evaluated;
  const std::size_t n = config_.num_samples;
  const std::size_t m =
      config_.use_fingerprints ? config_.fingerprint_size : 0;

  PointResult result;
  Estimator estimator(config_.keep_samples, config_.histogram_bins);

  if (config_.use_fingerprints) {
    // The fingerprint is the first m rounds of this point's simulation.
    Fingerprint fp = ComputeFingerprint(fn, params, seeds_, m);
    stats_.blackbox_invocations += m;
    for (double v : fp.values()) estimator.Add(v);

    if (auto match = basis_store_.FindMatch(fp)) {
      // Reuse: map the basis metrics into this point's domain. The
      // Selector only ever compares mapped outputs across parameter
      // values; it never mixes their samples (Section 6.2's correctness
      // argument).
      const auto& basis = basis_store_.Get(match->basis_id);
      auto mapped =
          basis.metrics.MappedBy(*match->mapping, config_.histogram_bins);
      if (mapped.has_value()) {
        ++stats_.points_reused;
        result.metrics = std::move(*mapped);
        result.reused = true;
        result.basis_id = match->basis_id;
        result.mapping = match->mapping;
        return result;
      }
      // Mapping exists but metrics could not be transformed (exotic
      // mapping class without retained samples): fall through to full
      // simulation.
    }

    // Miss: finish the remaining rounds and register a new basis.
    std::vector<double> tail;
    EvaluateRange(fn, params, m, n, &tail);
    for (double v : tail) estimator.Add(v);
    stats_.blackbox_invocations += n - m;
    result.metrics = estimator.Finalize();
    const auto& basis = basis_store_.Insert(std::move(fp), result.metrics);
    result.reused = false;
    result.basis_id = basis.id;
    result.mapping = IdentityMapping::Make();
    return result;
  }

  // Naive baseline: generate everything.
  std::vector<double> all;
  EvaluateRange(fn, params, 0, n, &all);
  for (double v : all) estimator.Add(v);
  stats_.blackbox_invocations += n;
  result.metrics = estimator.Finalize();
  result.reused = false;
  result.mapping = IdentityMapping::Make();
  return result;
}

std::vector<PointResult> SimulationRunner::RunSweep(
    const SimFunction& fn, const ParameterSpace& space) {
  std::vector<PointResult> out;
  const std::size_t n = space.NumPoints();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto valuation = space.ValuationAt(i);
    out.push_back(RunPoint(fn, valuation));
  }
  return out;
}

}  // namespace jigsaw
