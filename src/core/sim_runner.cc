#include "core/sim_runner.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace jigsaw {

SimulationRunner::SimulationRunner(const RunConfig& config,
                                   MappingFinderPtr finder,
                                   BasisStore* published_store)
    : config_(config),
      finder_(finder ? std::move(finder) : LinearMappingFinder::Make()),
      seeds_(config.master_seed, config.num_samples, config.seed_schema),
      basis_store_(finder_, config.index_kind, config.tolerance,
                   config.quantum,
                   /*thread_safe=*/config.num_threads > 1),
      published_store_(published_store) {
  JIGSAW_CHECK_MSG(config_.fingerprint_size <= config_.num_samples,
                   "fingerprint size m must be <= sample count n");
  JIGSAW_CHECK_MSG(config_.fingerprint_size >= 2,
                   "fingerprint size m must be >= 2 to fit a mapping");
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.num_threads > 1) {
    if (config_.shared_pool != nullptr) {
      pool_ = config_.shared_pool;
    } else {
      owned_pool_ = std::make_unique<ThreadPool>(config_.num_threads);
      pool_ = owned_pool_.get();
    }
  }
}

std::optional<SimulationRunner::StoreMatch>
SimulationRunner::FindPublishedOrPrivateMatch(const Fingerprint& probe) {
  // The frozen published catalog is consulted first — its content never
  // changes, so the lookup order (and therefore every reuse decision) is
  // identical no matter how many concurrent runners share it. A probe
  // from a different seed namespace deterministically misses and falls
  // through to the private store.
  if (published_store_ != nullptr) {
    if (auto match = published_store_->FindMatch(probe)) {
      return StoreMatch{std::move(*match), published_store_};
    }
  }
  if (auto match = basis_store_.FindMatch(probe)) {
    return StoreMatch{std::move(*match), &basis_store_};
  }
  return std::nullopt;
}

void SimulationRunner::SampleRangeSerial(const SimFunction& fn,
                                         std::span<const double> params,
                                         std::size_t begin,
                                         std::span<double> out) {
  const std::size_t batch = config_.batch_size;
  for (std::size_t i = 0; i < out.size(); i += batch) {
    const std::size_t len = std::min(batch, out.size() - i);
    fn.SampleBatch(params, begin + i, seeds_, out.subspan(i, len));
  }
}

void SimulationRunner::SampleRange(const SimFunction& fn,
                                   std::span<const double> params,
                                   std::size_t begin, std::span<double> out) {
  const std::size_t batch = config_.batch_size;
  const std::size_t chunks = (out.size() + batch - 1) / batch;
  if (pool_ == nullptr || chunks < 2 ||
      out.size() < 2 * config_.num_threads) {
    SampleRangeSerial(fn, params, begin, out);
    return;
  }
  // Samples are independent given their seeds; any chunk schedule
  // produces the same values, and the caller folds them in index order.
  pool_->ParallelFor(chunks, [&](std::size_t c) {
    const std::size_t i = c * batch;
    const std::size_t len = std::min(batch, out.size() - i);
    fn.SampleBatch(params, begin + i, seeds_, out.subspan(i, len));
  });
}

PointResult SimulationRunner::RunPoint(const SimFunction& fn,
                                       std::span<const double> params) {
  ++stats_.points_evaluated;
  const std::size_t n = config_.num_samples;
  const std::size_t m =
      config_.use_fingerprints ? config_.fingerprint_size : 0;

  PointResult result;
  Estimator estimator(config_.keep_samples, config_.histogram_bins);

  if (config_.use_fingerprints) {
    // The fingerprint is the first m rounds of this point's simulation.
    Fingerprint fp = ComputeFingerprint(fn, params, seeds_, m);
    stats_.blackbox_invocations += m;
    estimator.AddSpan(fp.values());

    if (auto sm = FindPublishedOrPrivateMatch(fp)) {
      // Reuse: map the basis metrics into this point's domain. The
      // Selector only ever compares mapped outputs across parameter
      // values; it never mixes their samples (Section 6.2's correctness
      // argument).
      const auto& basis = sm->store->Get(sm->match.basis_id);
      auto mapped =
          basis.metrics.MappedBy(*sm->match.mapping, config_.histogram_bins);
      if (mapped.has_value()) {
        ++stats_.points_reused;
        result.metrics = std::move(*mapped);
        result.reused = true;
        result.basis_id = sm->match.basis_id;
        result.mapping = sm->match.mapping;
        return result;
      }
      // Mapping exists but metrics could not be transformed (exotic
      // mapping class without retained samples): fall through to full
      // simulation.
    }

    // Miss: finish the remaining rounds and register a new basis. The
    // scratch buffer is reused across points — the batched path never
    // reallocates on the hot loop.
    scratch_.resize(n - m);
    SampleRange(fn, params, m, scratch_);
    estimator.AddSpan(scratch_);
    stats_.blackbox_invocations += n - m;
    result.metrics = estimator.Finalize();
    const auto& basis = basis_store_.Insert(std::move(fp), result.metrics);
    result.reused = false;
    result.basis_id = basis.id;
    result.mapping = IdentityMapping::Make();
    return result;
  }

  // Naive baseline: generate everything.
  scratch_.resize(n);
  SampleRange(fn, params, 0, scratch_);
  estimator.AddSpan(scratch_);
  stats_.blackbox_invocations += n;
  result.metrics = estimator.Finalize();
  result.reused = false;
  result.mapping = IdentityMapping::Make();
  return result;
}

std::vector<PointResult> SimulationRunner::RunSweepSerial(
    const SimFunction& fn, const ParameterSpace& space) {
  std::vector<PointResult> out;
  const std::size_t n = space.NumPoints();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto valuation = space.ValuationAt(i);
    out.push_back(RunPoint(fn, valuation));
  }
  return out;
}

std::vector<PointResult> SimulationRunner::RunSweepParallel(
    const SimFunction& fn, const ParameterSpace& space) {
  const std::size_t n_points = space.NumPoints();
  const std::size_t n = config_.num_samples;
  std::vector<PointResult> out(n_points);

  std::vector<std::vector<double>> valuations(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    valuations[i] = space.ValuationAt(i);
  }

  if (!config_.use_fingerprints) {
    // Naive baseline: every point is independent, so the whole sweep is
    // embarrassingly parallel. Per-point sample folds stay in index
    // order, so metrics match the serial sweep bitwise. Each worker
    // reuses one thread-local sample buffer across all its points.
    pool_->ParallelFor(n_points, [&](std::size_t i) {
      thread_local std::vector<double> all;
      all.resize(n);
      Estimator estimator(config_.keep_samples, config_.histogram_bins);
      SampleRangeSerial(fn, valuations[i], 0, all);
      estimator.AddSpan(all);
      out[i].metrics = estimator.Finalize();
      out[i].reused = false;
      out[i].mapping = IdentityMapping::Make();
    });
    stats_.points_evaluated += n_points;
    stats_.blackbox_invocations += static_cast<std::uint64_t>(n_points) * n;
    return out;
  }

  const std::size_t m = config_.fingerprint_size;

  // Phase 1: fingerprints of every point, in parallel. Fingerprint
  // samples are pure functions of (params, sigma_k), so the schedule
  // cannot perturb them.
  std::vector<Fingerprint> fps(n_points);
  pool_->ParallelFor(n_points, [&](std::size_t i) {
    fps[i] = ComputeFingerprint(fn, valuations[i], seeds_, m);
  });

  // Phase 2: replay the match/miss decisions serially in point-index
  // order — the exact order the serial sweep consults the store — so
  // reuse decisions, basis ids, reuse counts and store stats coincide
  // with the serial run. Misses register their fingerprint now (making
  // it matchable by later points) with metrics deferred to phase 3.
  // CanMapMetrics makes the hit/fall-through choice without needing the
  // basis metrics: it depends only on the mapping class and on sample
  // retention, which is uniform across the run (keep_samples).
  struct Decision {
    bool hit = false;
    BasisId basis_id = 0;
    MappingPtr mapping;
    const BasisStore* store = nullptr;  ///< store the hit maps from
  };
  std::vector<Decision> decisions(n_points);
  std::vector<std::size_t> miss_points;
  for (std::size_t i = 0; i < n_points; ++i) {
    ++stats_.points_evaluated;
    stats_.blackbox_invocations += m;
    Decision& d = decisions[i];
    if (auto sm = FindPublishedOrPrivateMatch(fps[i])) {
      if (CanMapMetrics(*sm->match.mapping, config_.keep_samples)) {
        ++stats_.points_reused;
        d.hit = true;
        d.basis_id = sm->match.basis_id;
        d.mapping = sm->match.mapping;
        d.store = sm->store;
        continue;
      }
      // Mapping exists but metrics will not be transformable: the serial
      // path falls through to full simulation and inserts a new basis.
    }
    const auto& basis = basis_store_.Insert(Fingerprint(fps[i]), {});
    d.hit = false;
    d.basis_id = basis.id;
    d.mapping = IdentityMapping::Make();
    d.store = &basis_store_;
    miss_points.push_back(i);
    stats_.blackbox_invocations += n - m;
  }

  // Phase 3: full simulation of every miss point, in parallel across
  // points. Each task folds fingerprint-then-tail samples in index
  // order, matching the serial estimator exactly.
  std::vector<OutputMetrics> miss_metrics(miss_points.size());
  pool_->ParallelFor(miss_points.size(), [&](std::size_t j) {
    const std::size_t i = miss_points[j];
    thread_local std::vector<double> tail;
    tail.resize(n - m);
    Estimator estimator(config_.keep_samples, config_.histogram_bins);
    estimator.AddSpan(fps[i].values());
    SampleRangeSerial(fn, valuations[i], m, tail);
    estimator.AddSpan(tail);
    miss_metrics[j] = estimator.Finalize();
  });
  for (std::size_t j = 0; j < miss_points.size(); ++j) {
    const std::size_t i = miss_points[j];
    out[i].metrics = miss_metrics[j];
    basis_store_.SetMetrics(decisions[i].basis_id,
                            std::move(miss_metrics[j]));
  }

  // Phase 4: merge results in point-index order. Every basis a hit maps
  // from was materialized either in a previous run or in phase 3 above;
  // miss points already carry their metrics.
  for (std::size_t i = 0; i < n_points; ++i) {
    const Decision& d = decisions[i];
    out[i].reused = d.hit;
    out[i].basis_id = d.basis_id;
    out[i].mapping = d.mapping;
    if (d.hit) {
      auto mapped = d.store->Get(d.basis_id)
                        .metrics.MappedBy(*d.mapping, config_.histogram_bins);
      JIGSAW_CHECK_MSG(mapped.has_value(),
                       "CanMapMetrics accepted an unmappable basis");
      out[i].metrics = std::move(*mapped);
    }
  }
  return out;
}

std::vector<PointResult> SimulationRunner::RunSweep(
    const SimFunction& fn, const ParameterSpace& space) {
  // Few points can't keep the pool busy across points; the serial sweep
  // parallelizes *within* each point instead (SampleRange), which uses
  // the workers better there. Both paths produce identical output.
  if (pool_ == nullptr || space.NumPoints() < config_.num_threads) {
    return RunSweepSerial(fn, space);
  }
  return RunSweepParallel(fn, space);
}

}  // namespace jigsaw
