#pragma once

/// \file optimizer.h
/// Batch-mode OPTIMIZE execution (Figure 1, Figure 3). An OPTIMIZE query
///
///   OPTIMIZE SELECT @p... FROM results
///   WHERE MAX(EXPECT overload) < 0.01
///   GROUP BY p...
///   FOR MAX @purchase1, MAX @purchase2
///
/// partitions the declared parameters into *group* parameters (the GROUP
/// BY list — the decision variables) and *sweep* parameters (everything
/// else, e.g. @current_week). For every group valuation, constraint
/// aggregates (MAX/MIN/AVG/SUM) fold a metric of a result column over the
/// sweep; feasible groups are then ranked by the lexicographic FOR
/// objective and the Selector picks the winner.

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/scenario.h"
#include "core/sim_runner.h"
#include "util/status.h"

namespace jigsaw {

/// Which characteristic of an output distribution a query refers to
/// (EXPECT overload, EXPECT_STDDEV demand, ...).
enum class MetricSelector {
  kExpect,
  kStdDev,
  kStdError,
  kMin,
  kMax,
  kMedian,
  kP95,
};

const char* MetricSelectorName(MetricSelector m);

/// Extracts the selected characteristic from finalized metrics.
double ExtractMetric(const OutputMetrics& metrics, MetricSelector selector);

/// Aggregation over the sweep dimension(s).
enum class SweepAgg { kMax, kMin, kAvg, kSum };

enum class CmpOp { kLt, kLe, kGt, kGe };

/// One WHERE term: Agg(Metric(column)) Cmp threshold.
struct MetricConstraint {
  SweepAgg agg = SweepAgg::kMax;
  MetricSelector metric = MetricSelector::kExpect;
  std::string column;
  CmpOp cmp = CmpOp::kLt;
  double threshold = 0.0;

  bool Compare(double lhs) const;
};

/// One FOR term: MAX/MIN @param, evaluated lexicographically in order.
struct ObjectiveTerm {
  std::string param;
  bool maximize = true;
};

struct OptimizeSpec {
  std::vector<std::string> select_params;  ///< reported columns
  std::vector<std::string> group_params;   ///< decision variables
  std::vector<MetricConstraint> constraints;
  std::vector<ObjectiveTerm> objectives;
};

/// Evaluation record for one group valuation (kept for reporting and the
/// exploration views in the examples).
struct GroupEvaluation {
  std::vector<double> group_valuation;
  std::vector<double> constraint_lhs;  ///< aggregated left-hand sides
  bool feasible = false;
};

struct OptimizeResult {
  bool found = false;
  std::vector<std::string> group_param_names;
  std::vector<double> best_valuation;
  std::vector<GroupEvaluation> groups;
  std::uint64_t points_simulated = 0;
  std::string ToString() const;
};

/// The Selector of Figure 3: ranks feasible valuations lexicographically
/// by the FOR objectives. Exposed separately so tests can exercise it.
class Selector {
 public:
  Selector(std::vector<ObjectiveTerm> objectives,
           std::vector<std::string> group_param_names);

  /// Returns true if `candidate` beats `incumbent`.
  bool Better(const std::vector<double>& candidate,
              const std::vector<double>& incumbent) const;

 private:
  struct ResolvedTerm {
    std::size_t index;
    bool maximize;
  };
  std::vector<ResolvedTerm> terms_;
};

class Optimizer {
 public:
  explicit Optimizer(SimulationRunner* runner) : runner_(runner) {}

  /// Exhaustively explores the group space ("brute force ... necessary to
  /// guarantee the optimization converges to the global maximum for an
  /// arbitrary black-box", Section 2.3). Fingerprint reuse inside the
  /// runner is what makes this affordable.
  Result<OptimizeResult> Run(const Scenario& scenario,
                             const OptimizeSpec& spec);

 private:
  SimulationRunner* runner_;
};

}  // namespace jigsaw
