#include "core/scenario.h"

#include "util/string_util.h"

namespace jigsaw {

Result<const ScenarioColumn*> Scenario::FindColumn(
    const std::string& name) const {
  for (const auto& col : columns) {
    if (EqualsIgnoreCase(col.name, name)) return &col;
  }
  return Status::NotFound("result table has no column '" + name + "'");
}

}  // namespace jigsaw
