#pragma once

/// \file sim_function.h
/// SimFunction is the unit of Monte Carlo evaluation that fingerprints are
/// computed over. The paper observes that F may be a single black box *or*
/// "the entire Monte Carlo simulation shown inside the dashed box" of its
/// Figure 3; both are SimFunctions here: sample k of parameter point P is
/// a pure function of (P, sigma_k), evaluated under the global seed vector.

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "models/black_box.h"
#include "random/seed_vector.h"

namespace jigsaw {

class SimFunction {
 public:
  virtual ~SimFunction() = default;

  /// Diagnostic label (model name, or scenario column name).
  virtual const std::string& label() const = 0;

  /// Returns sample `sample_id` of the output distribution at `params`.
  /// Must be a pure function of (params, seeds.seed(sample_id)).
  virtual double Sample(std::span<const double> params,
                        std::size_t sample_id,
                        const SeedVector& seeds) const = 0;

  /// Evaluates samples [sample_begin, sample_begin + out.size()) into
  /// `out`. Entry i must equal Sample(params, sample_begin + i, seeds)
  /// bit-for-bit; overrides may hoist per-point work out of the sample
  /// loop but never perturb a draw. The default loops over Sample, so
  /// scalar-only SimFunctions keep working.
  virtual void SampleBatch(std::span<const double> params,
                           std::size_t sample_begin, const SeedVector& seeds,
                           std::span<double> out) const {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = Sample(params, sample_begin + i, seeds);
    }
  }
};

using SimFunctionPtr = std::shared_ptr<const SimFunction>;

/// Adapts a single stochastic black box as a SimFunction.
class BlackBoxSimFunction : public SimFunction {
 public:
  explicit BlackBoxSimFunction(BlackBoxPtr model, std::uint64_t call_site = 0)
      : model_(std::move(model)), call_site_(call_site) {}

  const std::string& label() const override { return model_->name(); }

  double Sample(std::span<const double> params, std::size_t sample_id,
                const SeedVector& seeds) const override {
    // StreamFor dispatches on the seed schema; under v1 this is exactly
    // the historical InvokeSeeded(model, params, sigma_k, call_site).
    RandomStream rng = seeds.StreamFor(sample_id, call_site_);
    return model_->Eval(params, rng);
  }

  /// One virtual hop into the model's batch kernel (native or the scalar
  /// fallback loop) instead of out.size() virtual Sample calls.
  void SampleBatch(std::span<const double> params, std::size_t sample_begin,
                   const SeedVector& seeds,
                   std::span<double> out) const override {
    model_->EvalBatch(params, seeds.span(sample_begin, out.size()),
                      call_site_, out);
  }

  const BlackBox& model() const { return *model_; }

 private:
  BlackBoxPtr model_;
  std::uint64_t call_site_;
};

/// Adapts a callable (used by tests and the SQL expression compiler).
class CallableSimFunction : public SimFunction {
 public:
  using Fn = std::function<double(std::span<const double>, std::size_t,
                                  const SeedVector&)>;

  CallableSimFunction(std::string label, Fn fn)
      : label_(std::move(label)), fn_(std::move(fn)) {}

  const std::string& label() const override { return label_; }

  double Sample(std::span<const double> params, std::size_t sample_id,
                const SeedVector& seeds) const override {
    return fn_(params, sample_id, seeds);
  }

 private:
  std::string label_;
  Fn fn_;
};

}  // namespace jigsaw
