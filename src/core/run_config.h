#pragma once

/// \file run_config.h
/// Knobs shared by the batch runner, the Markov-jump runner and the
/// interactive engine. Defaults mirror the paper's experimental setup
/// (Section 6): 1000 sample instances per parameter point, fingerprint
/// size 10.

#include <cstddef>
#include <cstdint>

#include "core/fingerprint_index.h"
#include "random/draw_plane.h"

namespace jigsaw {

class ThreadPool;

/// Physical algorithm for the world-partitioned columnar equi-join
/// (pdb/join.h). Both are bit-identical — values, output row order,
/// errors — to the serial boxed nested-loop oracle, so the knob only
/// trades sort locality against hash build cost; it can never change a
/// result.
enum class JoinAlgorithm : std::uint8_t {
  kSortMerge,  ///< per-world stable sort of row indices by key
  kHash,       ///< per-world insertion-ordered hash build of the right side
};

struct RunConfig {
  /// n: Monte Carlo sample instances per parameter point.
  std::size_t num_samples = 1000;

  /// m: fingerprint size (the first m of the n samples).
  std::size_t fingerprint_size = 10;

  /// Master toggle: false reproduces the naive "generate everything"
  /// baseline of Figure 8.
  bool use_fingerprints = true;

  /// Index strategy over the basis fingerprints (Section 3.2).
  IndexKind index_kind = IndexKind::kNormalization;

  /// Relative tolerance used when validating candidate mappings
  /// (Algorithm 2's equality test, adapted to IEEE doubles).
  double tolerance = 1e-9;

  /// Quantization grid for index hash keys.
  double quantum = 1e-6;

  /// Seed of the global seed vector {sigma_k}.
  std::uint64_t master_seed = 0x5160534A00000001ULL;  // "JIGSAW"-ish tag

  /// Versioned draw-sequence derivation (the determinism contract's
  /// seed-schema gate). kV1 is the original seed-table derivation and
  /// stays byte-exact across releases; kV2 derives draws counter-based
  /// (draw planes, no per-sample setup) and therefore produces a
  /// *different but equally deterministic* draw sequence. Everything
  /// seeded by this config — runners, kernels, world caches, serve
  /// snapshots — must agree on the schema.
  SeedSchema seed_schema = SeedSchema::kV1;

  /// Estimator output shape.
  int histogram_bins = 20;
  bool keep_samples = false;

  /// Worker threads for sample evaluation (MCDB runs sampled worlds in
  /// parallel). Results are bit-identical regardless of thread count:
  /// each sample depends only on its seed, and samples are folded into
  /// the estimator in index order.
  std::size_t num_threads = 1;

  /// Samples per SampleBatch call on the hot path. Batching never changes
  /// any draw (sample k always comes from seed sigma_k), so results are
  /// bit-identical at every batch size; the knob only trades per-call
  /// overhead against buffer locality. 0 is treated as 1 (pure scalar).
  std::size_t batch_size = 64;

  /// Worker pool to fan work out on instead of constructing a private
  /// one. Non-owning; must outlive every component handed this config.
  /// When null (the default) and num_threads > 1, each executor creates
  /// its own pool — the standalone behavior. The session server sets it
  /// so every concurrent session submits world-chunk cells to one shared
  /// pool; scheduling never changes a draw, so results stay bit-identical
  /// either way.
  ThreadPool* shared_pool = nullptr;

  /// Store possible-world realizations as contiguous typed column chunks
  /// (ColumnarTable) instead of boxed Value rows: VG generators bulk-fill
  /// column spans, estimator folds read them zero-copy, and boxed rows
  /// materialize only at the Report/CSV interop edges. The boxed path is
  /// the bit-identity reference twin (same draws, same metrics, same
  /// errors in the same order); false forces it everywhere.
  bool columnar_storage = true;

  /// Algorithm for the columnar world-partitioned equi-join. Interchangeable
  /// by contract: every algorithm (and the boxed oracle behind
  /// columnar_storage=false) produces bit-identical joined relations.
  JoinAlgorithm join_algorithm = JoinAlgorithm::kSortMerge;

  /// Run SQL-bound expressions through the compiled BatchProgram path
  /// when the binder produced one. The compiled path is bit-identical to
  /// the interpreted Expr::Eval walk; false forces the interpreter
  /// everywhere (the reference twin tests and benches diff against).
  bool compile_expressions = true;
};

}  // namespace jigsaw
