#pragma once

/// \file scenario.h
/// A bound what-if scenario: the executable form of the DEFINITION block
/// of a Jigsaw query (Figure 1). Parameters plus named result columns,
/// each column being a SimFunction over the full parameter vector. The SQL
/// binder produces Scenarios; the batch optimizer, the graph renderer and
/// the interactive engine consume them.

#include <memory>
#include <string>
#include <vector>

#include "core/parameter_space.h"
#include "core/sim_function.h"
#include "util/status.h"

namespace jigsaw {

struct ScenarioColumn {
  std::string name;
  SimFunctionPtr fn;
};

struct Scenario {
  ParameterSpace params;
  std::vector<ScenarioColumn> columns;
  std::string into_table;  ///< SELECT ... INTO <table>

  /// Column lookup by (case-insensitive) name.
  Result<const ScenarioColumn*> FindColumn(const std::string& name) const;
};

}  // namespace jigsaw
