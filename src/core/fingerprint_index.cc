#include "core/fingerprint_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/hash.h"
#include "util/logging.h"

namespace jigsaw {

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kArray:
      return "Array";
    case IndexKind::kNormalization:
      return "Normalization";
    case IndexKind::kSortedSid:
      return "SortedSID";
  }
  return "?";
}

std::vector<std::uint32_t> SortedSidKey(const Fingerprint& fp) {
  std::vector<std::uint32_t> sids(fp.size());
  std::iota(sids.begin(), sids.end(), 0);
  // NaN entries sort last (by SID) so the comparator remains a strict
  // weak ordering even for fingerprints of misbehaving models.
  std::stable_sort(sids.begin(), sids.end(),
                   [&fp](std::uint32_t a, std::uint32_t b) {
                     const bool na = std::isnan(fp[a]);
                     const bool nb = std::isnan(fp[b]);
                     if (na || nb) {
                       if (na != nb) return nb;  // non-NaN first
                       return a < b;
                     }
                     if (fp[a] != fp[b]) return fp[a] < fp[b];
                     return a < b;
                   });
  return sids;
}

namespace {

/// Baseline: candidates = every basis, in insertion order.
class ArrayIndex final : public FingerprintIndex {
 public:
  const std::string& name() const override {
    static const std::string kName = "Array";
    return kName;
  }

  void Insert(BasisId id, const Fingerprint&) override {
    ids_.push_back(id);
  }

  void GetCandidates(const Fingerprint&,
                     std::vector<BasisId>* out) const override {
    *out = ids_;
  }

  std::size_t size() const override { return ids_.size(); }

 private:
  std::vector<BasisId> ids_;
};

/// Hash of the mapping class's canonical normal form; one lookup returns
/// exactly the bases whose normal form matches.
class NormalizationIndex final : public FingerprintIndex {
 public:
  NormalizationIndex(MappingFinderPtr finder, double tol, double quantum)
      : finder_(std::move(finder)), tol_(tol), quantum_(quantum) {
    JIGSAW_CHECK_MSG(finder_->SupportsNormalization(),
                     "mapping class '" << finder_->class_name()
                                       << "' has no normal form");
  }

  const std::string& name() const override {
    static const std::string kName = "Normalization";
    return kName;
  }

  void Insert(BasisId id, const Fingerprint& fp) override {
    buckets_[KeyOf(fp)].push_back(id);
    ++size_;
  }

  void GetCandidates(const Fingerprint& probe,
                     std::vector<BasisId>* out) const override {
    out->clear();
    auto it = buckets_.find(KeyOf(probe));
    if (it != buckets_.end()) *out = it->second;
  }

  std::size_t size() const override { return size_; }

 private:
  std::uint64_t KeyOf(const Fingerprint& fp) const {
    auto nf = finder_->NormalForm(fp, tol_, quantum_);
    JIGSAW_CHECK(nf.has_value());
    return HashWords(*nf);
  }

  MappingFinderPtr finder_;
  double tol_;
  double quantum_;
  std::unordered_map<std::uint64_t, std::vector<BasisId>> buckets_;
  std::size_t size_ = 0;
};

/// Hash of the sorted sample-identifier permutation. Monotone increasing
/// maps preserve the permutation; decreasing maps reverse it, so probes
/// also consult the reversed key ("comparing both the SID sequence and its
/// inverse", Section 3.2).
class SortedSidIndex final : public FingerprintIndex {
 public:
  const std::string& name() const override {
    static const std::string kName = "SortedSID";
    return kName;
  }

  void Insert(BasisId id, const Fingerprint& fp) override {
    buckets_[HashIds(SortedSidKey(fp))].push_back(id);
    ++size_;
  }

  void GetCandidates(const Fingerprint& probe,
                     std::vector<BasisId>* out) const override {
    out->clear();
    auto key = SortedSidKey(probe);
    if (auto it = buckets_.find(HashIds(key)); it != buckets_.end()) {
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
    std::reverse(key.begin(), key.end());
    if (auto it = buckets_.find(HashIds(key)); it != buckets_.end()) {
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
  }

  std::size_t size() const override { return size_; }

 private:
  std::unordered_map<std::uint64_t, std::vector<BasisId>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace

std::unique_ptr<FingerprintIndex> MakeFingerprintIndex(
    IndexKind kind, MappingFinderPtr finder, double tol, double quantum) {
  switch (kind) {
    case IndexKind::kArray:
      return std::make_unique<ArrayIndex>();
    case IndexKind::kNormalization:
      return std::make_unique<NormalizationIndex>(std::move(finder), tol,
                                                  quantum);
    case IndexKind::kSortedSid:
      return std::make_unique<SortedSidIndex>();
  }
  JIGSAW_CHECK_MSG(false, "unknown index kind");
  return nullptr;
}

}  // namespace jigsaw
