#pragma once

/// \file mapping.h
/// Mapping functions (Section 3): closed-form maps M between the output
/// domains of two instantiations of a stochastic function. Jigsaw ships the
/// linear class M(x) = alpha*x + beta (Algorithm 2) and lets users register
/// their own classes ("the notion of similarity between two signatures is
/// application dependent").
///
/// A MappingFinder embodies one class: it discovers a mapping between two
/// fingerprints, reports whether the class is monotone (enables Sorted-SID
/// indexing) and whether it admits a normal form (enables the
/// Normalization index).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fingerprint.h"

namespace jigsaw {

class MappingFunction {
 public:
  virtual ~MappingFunction() = default;

  /// Maps one sample value from the basis domain to the target domain.
  virtual double Apply(double x) const = 0;

  /// Inverse map (target -> basis). Only valid when Invertible().
  virtual double Invert(double y) const = 0;
  virtual bool Invertible() const = 0;

  virtual bool IsIdentity() const { return false; }

  /// If this mapping is affine (y = alpha*x + beta), returns (alpha, beta).
  /// Affine mappings transform aggregate metrics analytically: the
  /// "M_expect derived from M" of Section 3.
  virtual std::optional<std::pair<double, double>> AsAffine() const {
    return std::nullopt;
  }

  virtual std::string ToString() const = 0;
};

using MappingPtr = std::shared_ptr<const MappingFunction>;

/// M(x) = x.
class IdentityMapping final : public MappingFunction {
 public:
  double Apply(double x) const override { return x; }
  double Invert(double y) const override { return y; }
  bool Invertible() const override { return true; }
  bool IsIdentity() const override { return true; }
  std::optional<std::pair<double, double>> AsAffine() const override {
    return std::make_pair(1.0, 0.0);
  }
  std::string ToString() const override { return "M(x) = x"; }

  static MappingPtr Make();
};

/// M(x) = alpha*x + beta. alpha == 0 is a legal degenerate (constant)
/// mapping but is not invertible.
class LinearMapping final : public MappingFunction {
 public:
  LinearMapping(double alpha, double beta) : alpha_(alpha), beta_(beta) {}

  double Apply(double x) const override { return alpha_ * x + beta_; }
  double Invert(double y) const override;
  bool Invertible() const override { return alpha_ != 0.0; }
  bool IsIdentity() const override { return alpha_ == 1.0 && beta_ == 0.0; }
  std::optional<std::pair<double, double>> AsAffine() const override {
    return std::make_pair(alpha_, beta_);
  }
  std::string ToString() const override;

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

 private:
  double alpha_;
  double beta_;
};

/// One user-extensible class of mapping functions.
class MappingFinder {
 public:
  virtual ~MappingFinder() = default;

  virtual const std::string& class_name() const = 0;

  /// Algorithm 2 generalized: returns M with M(from[i]) ~= to[i] for every
  /// i (within relative tolerance `tol`), or nullptr if no member of this
  /// class fits.
  virtual MappingPtr Find(const Fingerprint& from, const Fingerprint& to,
                          double tol) const = 0;

  /// True if every member of the class is monotone (Sorted-SID indexing is
  /// sound for the class, Section 3.2).
  virtual bool IsMonotone() const = 0;

  /// True if the class admits a canonical normal form.
  virtual bool SupportsNormalization() const = 0;

  /// Normal form of a fingerprint, quantized to a `quantum` grid for use
  /// as a hash key: two fingerprints related by a mapping of this class
  /// share a normal form. nullopt when unsupported.
  virtual std::optional<std::vector<std::uint64_t>> NormalForm(
      const Fingerprint& fp, double tol, double quantum) const = 0;
};

using MappingFinderPtr = std::shared_ptr<const MappingFinder>;

/// The linear class of Algorithm 2. Normal form: affinely send the first
/// two distinct entries to 0 and 1 — invariant under any M(x)=alpha*x+beta
/// with alpha != 0, because such maps preserve *which* positions hold the
/// first two distinct values.
///
/// Constant fingerprints: the paper's Algorithm 2 literally computes
/// alpha = (x-x)/(y-y) on them and finds nothing. We extend the class
/// with the translation mapping between constant fingerprints (important
/// for boolean outputs like Overload, whose zero-risk regions are all
/// constant-zero). Make() returns the extended finder; MakeStrict()
/// reproduces the paper's literal behaviour for A/B comparison (see
/// bench_fig8_baseline).
class LinearMappingFinder final : public MappingFinder {
 public:
  explicit LinearMappingFinder(bool allow_constant_reuse = true)
      : allow_constant_reuse_(allow_constant_reuse) {}

  const std::string& class_name() const override;
  MappingPtr Find(const Fingerprint& from, const Fingerprint& to,
                  double tol) const override;
  bool IsMonotone() const override { return true; }
  bool SupportsNormalization() const override { return true; }
  std::optional<std::vector<std::uint64_t>> NormalForm(
      const Fingerprint& fp, double tol, double quantum) const override;

  static MappingFinderPtr Make();
  static MappingFinderPtr MakeStrict();

 private:
  bool allow_constant_reuse_;
};

/// Free-function form of Algorithm 2 (FindLinearMapping), with the
/// constant-translation extension. Exposed for tests and documentation
/// symmetry with the paper.
MappingPtr FindLinearMapping(const Fingerprint& theta1,
                             const Fingerprint& theta2, double tol);

}  // namespace jigsaw
