#pragma once

/// \file sim_runner.h
/// The fingerprint-accelerated Monte Carlo driver — Algorithm 3
/// (FindMatch) embedded in the simulation loop of Figure 3. For each
/// parameter point the runner:
///
///   1. evaluates the first m seeded samples (the fingerprint);
///   2. asks the BasisStore for a mappable basis distribution;
///   3. on a hit, returns M_est(basis.metrics) — no further sampling;
///   4. on a miss, completes the remaining n-m samples, registers the new
///      basis, and returns the freshly-estimated metrics.
///
/// With use_fingerprints=false it degrades to the naive generate-
/// everything baseline the paper compares against.
///
/// When num_threads > 1, RunSweep fans the sweep out across parameter
/// points on the worker pool while staying bit-identical to the serial
/// sweep (see RunSweep below for the phase protocol).

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "util/thread_pool.h"

#include "core/basis_store.h"
#include "core/metrics.h"
#include "core/parameter_space.h"
#include "core/run_config.h"
#include "core/sim_function.h"
#include "random/seed_vector.h"

namespace jigsaw {

/// Per-point accounting, aggregated into the evaluation's reported
/// invocation counts and reuse rates.
struct RunnerStats {
  std::uint64_t points_evaluated = 0;
  std::uint64_t points_reused = 0;
  std::uint64_t blackbox_invocations = 0;
};

struct PointResult {
  OutputMetrics metrics;
  bool reused = false;          ///< true if served from a mapped basis
  BasisId basis_id = 0;         ///< basis that served (or was created)
  MappingPtr mapping;           ///< mapping used (identity for new bases)
};

class SimulationRunner {
 public:
  /// `published_store`, when non-null, is a frozen basis catalog shared
  /// read-only with other runners (the session server publishes one per
  /// script snapshot, warmed at publish time). RunPoint consults it
  /// before the runner's private store; hits map the published metrics,
  /// misses fall through to the normal private match/insert path. The
  /// published store must be thread-safe, must never be inserted into
  /// after publication, and must outlive the runner. Because its content
  /// is frozen, consulting it is deterministic no matter how many
  /// concurrent runners share it — and a probe whose draws come from a
  /// different seed namespace simply never matches (fingerprints are
  /// namespace-specific draws).
  explicit SimulationRunner(const RunConfig& config,
                            MappingFinderPtr finder = nullptr,
                            BasisStore* published_store = nullptr);

  /// Evaluates one parameter point of `fn` (Algorithm 3 + estimator).
  PointResult RunPoint(const SimFunction& fn,
                       std::span<const double> params);

  /// Sweeps an entire parameter space; returns metrics per valuation in
  /// row-major enumeration order.
  ///
  /// With num_threads > 1 the sweep runs as a deterministic phase
  /// pipeline that is bit-identical to the serial sweep at any thread
  /// count:
  ///
  ///   1. fingerprints of all points evaluate in parallel (each sample is
  ///      a pure function of its seed, so scheduling cannot perturb it);
  ///   2. match/miss decisions replay serially in point-index order
  ///      against the basis store — exactly the order the serial sweep
  ///      uses, so reuse decisions, basis ids and store stats coincide;
  ///      misses insert their fingerprint immediately (metrics deferred);
  ///   3. the expensive full simulations of all miss points fan out
  ///      across the pool, folding samples in index order per point;
  ///   4. results merge in point-index order: misses publish their
  ///      metrics, hits map their basis' now-materialized metrics.
  std::vector<PointResult> RunSweep(const SimFunction& fn,
                                    const ParameterSpace& space);

  const RunConfig& config() const { return config_; }
  const SeedVector& seeds() const { return seeds_; }
  BasisStore& basis_store() { return basis_store_; }
  const BasisStore& basis_store() const { return basis_store_; }
  const RunnerStats& stats() const { return stats_; }

 private:
  /// Evaluates samples [begin, begin + out.size()) of `fn` into `out`,
  /// driving SampleBatch over batch_size chunks and fanning the chunks
  /// out across the pool when configured. Chunk boundaries never change
  /// a draw (sample k always comes from seed sigma_k), so output is
  /// bit-identical at every batch size and thread count.
  void SampleRange(const SimFunction& fn, std::span<const double> params,
                   std::size_t begin, std::span<double> out);

  /// Serial SampleRange. Used inside pool tasks, where nesting a
  /// ParallelFor would deadlock (a worker blocked in WaitIdle still
  /// counts as in-flight).
  void SampleRangeSerial(const SimFunction& fn,
                         std::span<const double> params, std::size_t begin,
                         std::span<double> out);

  std::vector<PointResult> RunSweepSerial(const SimFunction& fn,
                                          const ParameterSpace& space);
  std::vector<PointResult> RunSweepParallel(const SimFunction& fn,
                                            const ParameterSpace& space);

  /// Consults the frozen published store (if any) before the private one.
  /// Returns the match plus the store it came from, so the caller maps
  /// metrics out of the right store.
  struct StoreMatch {
    BasisMatch match;
    const BasisStore* store = nullptr;
  };
  std::optional<StoreMatch> FindPublishedOrPrivateMatch(
      const Fingerprint& probe);

  RunConfig config_;
  MappingFinderPtr finder_;
  SeedVector seeds_;
  BasisStore basis_store_;
  BasisStore* published_store_ = nullptr;
  RunnerStats stats_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  ///< owned_pool_ or config_.shared_pool
  /// Reusable sample buffer for the serial per-point path (the parallel
  /// sweep uses per-worker thread-local buffers instead).
  std::vector<double> scratch_;
};

}  // namespace jigsaw
