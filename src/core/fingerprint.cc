#include "core/fingerprint.h"

#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace jigsaw {

std::optional<std::pair<std::size_t, std::size_t>>
Fingerprint::FirstTwoDistinct(double tol) const {
  if (values_.size() < 2) return std::nullopt;
  const double first = values_[0];
  for (std::size_t i = 1; i < values_.size(); ++i) {
    if (!ApproxEqual(values_[i], first, tol)) return std::make_pair(0UL, i);
  }
  return std::nullopt;
}

std::string Fingerprint::ToString() const {
  std::string out = "[";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += DoubleToString(values_[i]);
  }
  out += "]";
  return out;
}

Fingerprint ComputeFingerprint(const SimFunction& fn,
                               std::span<const double> params,
                               const SeedVector& seeds, std::size_t m) {
  JIGSAW_CHECK_MSG(m <= seeds.size(),
                   "fingerprint size " << m << " exceeds seed vector size "
                                       << seeds.size());
  std::vector<double> values(m);
  fn.SampleBatch(params, 0, seeds, values);
  return Fingerprint(std::move(values));
}

}  // namespace jigsaw
