#pragma once

/// \file graph_spec.h
/// Presentation spec for the interactive mode's GRAPH OVER query (Section
/// 2.2): which parameter drives the X axis and which metric of which
/// result column each series plots. The style words are carried verbatim
/// (the paper's GUI interprets "bold red", "blue y2", ...; our ASCII
/// renderer maps them to glyphs).

#include <string>
#include <vector>

#include "core/optimizer.h"

namespace jigsaw {

struct GraphSeries {
  MetricSelector metric = MetricSelector::kExpect;
  std::string column;
  std::string style;  ///< e.g. "bold red", "blue y2"
};

struct GraphSpec {
  std::string x_param;
  std::vector<GraphSeries> series;
};

}  // namespace jigsaw
