#pragma once

/// \file basis_store.h
/// The set of basis distributions maintained during execution (Section
/// 3.1, "Using Fingerprints"): tuples (theta_i, o_i) recording that the
/// output metrics o_i were fully computed for a simulation whose
/// fingerprint was theta_i. FindMatch implements lines 2-6 of Algorithm 3:
/// prune with the index, then validate candidates with FindMapping.
///
/// Thread-safety (annotated; machine-checked under Clang): FindMatch,
/// Insert, SetMetrics, size() and stats() serialize on mu_ whenever the
/// store was constructed thread-safe. A store constructed with
/// thread_safe=false skips the mutex entirely (serial sweeps pay no lock
/// overhead) and must never see concurrency — that runtime contract is
/// the one thing the static analysis cannot see, so the serial trampolines
/// are the only JIGSAW_NO_THREAD_SAFETY_ANALYSIS sites in this class.
/// Get() returns a reference into the deque — stable across Inserts —
/// but dereferencing .metrics still requires writers to have quiesced
/// (the parallel sweep reads exclusively between its phases; published
/// serving stores are frozen at publish time). The parallel sweep
/// exploits the deferred-metrics protocol — Insert registers a
/// fingerprint (making it matchable) before its expensive full simulation
/// has produced metrics, which SetMetrics fills in later.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/fingerprint.h"
#include "core/fingerprint_index.h"
#include "core/mapping.h"
#include "core/metrics.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace jigsaw {

struct BasisDistribution {
  BasisId id = 0;
  Fingerprint fingerprint;
  OutputMetrics metrics;
  /// How many parameter points have reused this basis.
  std::uint64_t reuse_count = 0;
};

struct BasisMatch {
  BasisId basis_id;
  MappingPtr mapping;  ///< maps basis domain -> probe domain
};

/// Counters used by the evaluation (basis counts in Figures 9-11, reuse
/// rates in Figure 8).
struct BasisStoreStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t candidates_tested = 0;
  std::uint64_t false_positive_candidates = 0;
};

class BasisStore {
 public:
  /// `thread_safe = false` elides the mutex on every operation — the
  /// single-threaded sweep path pays no lock overhead. Callers that run
  /// serially (RunConfig::num_threads <= 1) own that guarantee.
  BasisStore(MappingFinderPtr finder, IndexKind index_kind, double tol,
             double quantum, bool thread_safe = true)
      : finder_(std::move(finder)),
        tol_(tol),
        index_(MakeFingerprintIndex(index_kind, finder_, tol, quantum)),
        thread_safe_(thread_safe) {}

  /// Finds a basis whose fingerprint maps onto `probe` (basis -> probe
  /// direction, so basis metrics mapped by the result describe the probe).
  std::optional<BasisMatch> FindMatch(const Fingerprint& probe)
      JIGSAW_EXCLUDES(mu_);

  /// Registers a fully-simulated distribution as a new basis.
  const BasisDistribution& Insert(Fingerprint fp, OutputMetrics metrics)
      JIGSAW_EXCLUDES(mu_);

  /// Fills in the metrics of a basis inserted with placeholder metrics.
  /// Matching consults only fingerprints, so a basis may serve as a match
  /// target while its full simulation is still in flight; callers must
  /// SetMetrics before reading Get(id).metrics.
  void SetMetrics(BasisId id, OutputMetrics metrics) JIGSAW_EXCLUDES(mu_);

  /// Reference into the deque — stable across Inserts. The reference
  /// itself is race-free to obtain (locked on the thread-safe path), but
  /// reading .metrics through it requires writers to have quiesced; the
  /// analysis cannot track a returned reference, so the locked accessor
  /// is the whole static story here.
  const BasisDistribution& Get(BasisId id) const JIGSAW_EXCLUDES(mu_);

  /// Locked on the thread-safe path: safe to call while writers are
  /// active (e.g. probing a shared store's growth mid-run).
  std::size_t size() const JIGSAW_EXCLUDES(mu_);

  /// Snapshot of the counters, taken under the lock on the thread-safe
  /// path (returns by value: a reference into concurrently-mutated
  /// counters would race with FindMatch's increments).
  BasisStoreStats stats() const JIGSAW_EXCLUDES(mu_);

  const std::string& index_name() const JIGSAW_EXCLUDES(mu_);

 private:
  MappingFinderPtr finder_;
  double tol_;
  /// Index structure itself is only mutated under mu_; the pointer is set
  /// once in the constructor.
  std::unique_ptr<FingerprintIndex> index_ JIGSAW_PT_GUARDED_BY(mu_);
  /// Deque, not vector: Insert must not invalidate outstanding references.
  std::deque<BasisDistribution> bases_ JIGSAW_GUARDED_BY(mu_);
  std::vector<BasisId> candidate_buffer_ JIGSAW_GUARDED_BY(mu_);
  BasisStoreStats stats_ JIGSAW_GUARDED_BY(mu_);
  mutable Mutex mu_;
  bool thread_safe_ = true;
};

}  // namespace jigsaw
