#pragma once

/// \file basis_store.h
/// The set of basis distributions maintained during execution (Section
/// 3.1, "Using Fingerprints"): tuples (theta_i, o_i) recording that the
/// output metrics o_i were fully computed for a simulation whose
/// fingerprint was theta_i. FindMatch implements lines 2-6 of Algorithm 3:
/// prune with the index, then validate candidates with FindMapping.
///
/// Thread-safety: FindMatch, Insert and SetMetrics serialize on an
/// internal mutex and are the only operations safe to call concurrently.
/// A store constructed with thread_safe=false skips the mutex entirely
/// (serial sweeps pay no lock overhead) and must never see concurrency.
/// Get()/GetMutable()/size()/stats() are unsynchronized reads — call them
/// only while no writer is active (the parallel sweep reads exclusively
/// between its phases). Bases live in a deque so references returned by
/// Get()/Insert() are not invalidated by later Inserts, but dereferencing
/// them still requires the writers to have quiesced. The parallel sweep
/// exploits the deferred-metrics protocol — Insert registers a
/// fingerprint (making it matchable) before its expensive full simulation
/// has produced metrics, which SetMetrics fills in later.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/fingerprint.h"
#include "core/fingerprint_index.h"
#include "core/mapping.h"
#include "core/metrics.h"

namespace jigsaw {

struct BasisDistribution {
  BasisId id = 0;
  Fingerprint fingerprint;
  OutputMetrics metrics;
  /// How many parameter points have reused this basis.
  std::uint64_t reuse_count = 0;
};

struct BasisMatch {
  BasisId basis_id;
  MappingPtr mapping;  ///< maps basis domain -> probe domain
};

/// Counters used by the evaluation (basis counts in Figures 9-11, reuse
/// rates in Figure 8).
struct BasisStoreStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t candidates_tested = 0;
  std::uint64_t false_positive_candidates = 0;
};

class BasisStore {
 public:
  /// `thread_safe = false` elides the mutex on every operation — the
  /// single-threaded sweep path pays no lock overhead. Callers that run
  /// serially (RunConfig::num_threads <= 1) own that guarantee.
  BasisStore(MappingFinderPtr finder, IndexKind index_kind, double tol,
             double quantum, bool thread_safe = true)
      : finder_(std::move(finder)),
        tol_(tol),
        index_(MakeFingerprintIndex(index_kind, finder_, tol, quantum)),
        thread_safe_(thread_safe) {}

  /// Finds a basis whose fingerprint maps onto `probe` (basis -> probe
  /// direction, so basis metrics mapped by the result describe the probe).
  std::optional<BasisMatch> FindMatch(const Fingerprint& probe);

  /// Registers a fully-simulated distribution as a new basis.
  const BasisDistribution& Insert(Fingerprint fp, OutputMetrics metrics);

  /// Fills in the metrics of a basis inserted with placeholder metrics.
  /// Matching consults only fingerprints, so a basis may serve as a match
  /// target while its full simulation is still in flight; callers must
  /// SetMetrics before reading Get(id).metrics.
  void SetMetrics(BasisId id, OutputMetrics metrics);

  const BasisDistribution& Get(BasisId id) const { return bases_[id]; }
  BasisDistribution& GetMutable(BasisId id) { return bases_[id]; }
  std::size_t size() const { return bases_.size(); }
  const BasisStoreStats& stats() const { return stats_; }
  const std::string& index_name() const { return index_->name(); }

 private:
  MappingFinderPtr finder_;
  double tol_;
  std::unique_ptr<FingerprintIndex> index_;
  /// Deque, not vector: Insert must not invalidate outstanding references.
  std::deque<BasisDistribution> bases_;
  std::vector<BasisId> candidate_buffer_;
  BasisStoreStats stats_;
  std::mutex mu_;
  bool thread_safe_ = true;
};

}  // namespace jigsaw
