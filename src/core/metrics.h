#pragma once

/// \file metrics.h
/// The Estimator of Figure 3: aggregates i.i.d. samples of a query-result
/// distribution into the "characteristics of interest (mean, standard
/// deviation, etc.)". OutputMetrics is the value cached per basis
/// distribution; MappedBy() is the M_est of Section 3 — it re-derives the
/// metrics of a mapped parameter point without re-simulation.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/mapping.h"
#include "util/histogram.h"
#include "util/math_util.h"

namespace jigsaw {

struct OutputMetrics {
  std::int64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;       ///< population stddev
  double std_error = 0.0;    ///< standard error of the mean
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  std::optional<Histogram> histogram;
  /// Raw samples, retained only when RunConfig.keep_samples is set (needed
  /// by symbolic post-processing and some tests; costs memory).
  std::vector<double> samples;

  /// Applies a mapping function to every derived value. Affine mappings
  /// transform analytically (exactly); non-affine invertible mappings fall
  /// back to element-wise transformation of retained samples. Returns
  /// nullopt if neither path is possible.
  std::optional<OutputMetrics> MappedBy(const MappingFunction& m,
                                        int histogram_bins) const;

  std::string ToString() const;
};

/// True iff MappedBy(m, ...) would produce a value for metrics whose
/// retained-sample vector is non-empty iff `has_samples`. The decision
/// depends only on the mapping class and sample retention — never on the
/// metric values — which lets the parallel sweep commit to a reuse
/// decision before the basis metrics have been materialized.
bool CanMapMetrics(const MappingFunction& m, bool has_samples);

/// Streaming estimator used by both the naive path and the fingerprint
/// path (fingerprint samples are the first m simulation rounds and feed
/// the same accumulator). Moments stream through a Welford accumulator;
/// whole sample batches fold via AddSpan, which is bit-identical to
/// element-wise Add — the batched engine's correctness contract.
class Estimator {
 public:
  explicit Estimator(bool keep_samples = false, int histogram_bins = 20)
      : keep_samples_(keep_samples), histogram_bins_(histogram_bins) {}

  void Add(double x) {
    acc_.Add(x);
    all_.push_back(x);
  }

  /// Folds a whole batch in index order (same result, bit-for-bit, as
  /// adding each element individually).
  void AddSpan(std::span<const double> xs) {
    acc_.AddSpan(xs);
    all_.insert(all_.end(), xs.begin(), xs.end());
  }

  std::int64_t count() const { return acc_.count(); }

  /// Finalizes metrics over everything added so far.
  OutputMetrics Finalize() const;

 private:
  WelfordAccumulator acc_;
  bool keep_samples_;
  int histogram_bins_;
  // Kept internally for quantiles/histogram; copied into the result only
  // when keep_samples_ is set.
  std::vector<double> all_;
};

/// Convenience: metrics of a sample vector.
OutputMetrics MetricsFromSamples(const std::vector<double>& samples,
                                 bool keep_samples, int histogram_bins);

}  // namespace jigsaw
