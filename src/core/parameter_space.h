#pragma once

/// \file parameter_space.h
/// Parameter declarations and enumeration (Figure 1 / Figure 3). Each
/// query parameter has a discrete finite domain — a RANGE with a step, an
/// explicit SET, or a CHAIN (Figure 5's Markovian feedback parameter,
/// which is not enumerated but driven by the chain executor). The
/// Parameter Enumerator walks the cartesian product of the non-chain
/// domains; "this brute force approach is necessary to guarantee that the
/// optimization converges to the global maximum for an arbitrary
/// black-box" (Section 2.3).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace jigsaw {

/// RANGE lo TO hi STEP BY step (inclusive of hi when it lies on the grid).
struct RangeDomain {
  double lo = 0.0;
  double hi = 0.0;
  double step = 1.0;
};

/// SET (v1, v2, ...).
struct SetDomain {
  std::vector<double> values;
};

/// CHAIN col FROM @driver : <expr> INITIAL VALUE v — the parameter takes
/// the previous step's value of result column `column` as the driver
/// parameter advances (Section 4, Figure 5).
struct ChainDomain {
  std::string column;        ///< result column fed back into the parameter
  std::string driver_param;  ///< the step parameter (e.g. @current_week)
  double initial = 0.0;
};

struct ParameterDef {
  std::string name;  // without the '@'
  std::variant<RangeDomain, SetDomain, ChainDomain> domain;

  bool is_chain() const {
    return std::holds_alternative<ChainDomain>(domain);
  }

  /// Materializes the discrete domain (empty for CHAIN parameters).
  std::vector<double> Values() const;

  std::size_t cardinality() const { return Values().size(); }
};

/// An ordered collection of parameters plus cartesian-product enumeration.
class ParameterSpace {
 public:
  Status Add(ParameterDef def);

  std::size_t num_params() const { return defs_.size(); }
  const ParameterDef& def(std::size_t i) const { return defs_[i]; }
  const std::vector<ParameterDef>& defs() const { return defs_; }

  /// Index of a parameter by name, or nullopt.
  std::optional<std::size_t> IndexOf(const std::string& name) const;

  /// Total number of points in the cartesian product of non-chain
  /// domains (chain parameters contribute a factor of 1).
  std::size_t NumPoints() const;

  /// The idx'th valuation in row-major order (last parameter varies
  /// fastest). Chain parameters receive their INITIAL VALUE.
  std::vector<double> ValuationAt(std::size_t idx) const;

  /// Enumerates all valuations. For large spaces prefer ValuationAt with a
  /// streaming loop; this materializes everything (tests, small sweeps).
  std::vector<std::vector<double>> EnumerateAll() const;

 private:
  std::vector<ParameterDef> defs_;
};

}  // namespace jigsaw
