#include "core/parameter_space.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw {

std::vector<double> ParameterDef::Values() const {
  if (const auto* range = std::get_if<RangeDomain>(&domain)) {
    std::vector<double> out;
    JIGSAW_CHECK_MSG(range->step > 0.0, "non-positive RANGE step");
    // Tolerate floating point drift at the upper bound.
    const double eps = range->step * 1e-9;
    for (double v = range->lo; v <= range->hi + eps; v += range->step) {
      out.push_back(v);
    }
    return out;
  }
  if (const auto* set = std::get_if<SetDomain>(&domain)) {
    return set->values;
  }
  return {};  // CHAIN: not enumerated
}

Status ParameterSpace::Add(ParameterDef def) {
  if (IndexOf(def.name)) {
    return Status::AlreadyExists("parameter '@" + def.name +
                                 "' declared twice");
  }
  if (const auto* range = std::get_if<RangeDomain>(&def.domain)) {
    if (range->step <= 0.0) {
      return Status::InvalidArgument("parameter '@" + def.name +
                                     "' has non-positive STEP");
    }
    if (range->hi < range->lo) {
      return Status::InvalidArgument("parameter '@" + def.name +
                                     "' has empty RANGE");
    }
  }
  if (const auto* set = std::get_if<SetDomain>(&def.domain)) {
    if (set->values.empty()) {
      return Status::InvalidArgument("parameter '@" + def.name +
                                     "' has empty SET");
    }
  }
  defs_.push_back(std::move(def));
  return Status::OK();
}

std::optional<std::size_t> ParameterSpace::IndexOf(
    const std::string& name) const {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (EqualsIgnoreCase(defs_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::size_t ParameterSpace::NumPoints() const {
  std::size_t n = 1;
  for (const auto& d : defs_) {
    if (d.is_chain()) continue;
    n *= d.cardinality();
  }
  return n;
}

std::vector<double> ParameterSpace::ValuationAt(std::size_t idx) const {
  std::vector<double> out(defs_.size(), 0.0);
  // Row-major: last non-chain parameter varies fastest.
  std::size_t remaining = idx;
  for (std::size_t i = defs_.size(); i-- > 0;) {
    const auto& d = defs_[i];
    if (d.is_chain()) {
      out[i] = std::get<ChainDomain>(d.domain).initial;
      continue;
    }
    const auto values = d.Values();
    const std::size_t card = values.size();
    out[i] = values[remaining % card];
    remaining /= card;
  }
  JIGSAW_CHECK_MSG(remaining == 0, "valuation index out of range");
  return out;
}

std::vector<std::vector<double>> ParameterSpace::EnumerateAll() const {
  std::vector<std::vector<double>> out;
  const std::size_t n = NumPoints();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(ValuationAt(i));
  return out;
}

}  // namespace jigsaw
