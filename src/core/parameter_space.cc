#include "core/parameter_space.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace jigsaw {

std::vector<double> ParameterDef::Values() const {
  if (const auto* range = std::get_if<RangeDomain>(&domain)) {
    std::vector<double> out;
    JIGSAW_CHECK_MSG(range->step > 0.0, "non-positive RANGE step");
    // Tolerate floating point drift at the upper bound. Values are
    // index-stepped (lo + i*step) rather than accumulated (v += step):
    // accumulation never terminates when lo + step rounds back to lo
    // (e.g. lo=1e16, step=1) and drifts over long fractional-step grids.
    const double eps = range->step * 1e-9;
    const double span = (range->hi + eps - range->lo) / range->step;
    if (!std::isfinite(span) || span < 0.0) return out;  // empty/degenerate
    // ParameterSpace::Add and the MONTECARLO OVER binder bound the span
    // with clean errors; a directly-constructed def violating it is a
    // programming bug (the cast below is UB past SIZE_MAX).
    JIGSAW_CHECK_MSG(span < 1e15, "RANGE spans too many values");
    const auto count = static_cast<std::size_t>(span) + 1;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(range->lo + static_cast<double>(i) * range->step);
    }
    return out;
  }
  if (const auto* set = std::get_if<SetDomain>(&domain)) {
    return set->values;
  }
  return {};  // CHAIN: not enumerated
}

Status ParameterSpace::Add(ParameterDef def) {
  if (IndexOf(def.name)) {
    return Status::AlreadyExists("parameter '@" + def.name +
                                 "' declared twice");
  }
  if (const auto* range = std::get_if<RangeDomain>(&def.domain)) {
    if (range->step <= 0.0) {
      return Status::InvalidArgument("parameter '@" + def.name +
                                     "' has non-positive STEP");
    }
    if (range->hi < range->lo) {
      return Status::InvalidArgument("parameter '@" + def.name +
                                     "' has empty RANGE");
    }
    // Bound the materialized grid: Values() enumerates the whole range
    // into a vector, so a non-finite bound or an absurd span must fail
    // here with a clean error rather than abort (or overflow a size_t)
    // at enumeration time.
    if (!std::isfinite(range->lo) || !std::isfinite(range->hi) ||
        !std::isfinite(range->step)) {
      return Status::InvalidArgument("parameter '@" + def.name +
                                     "' has non-finite RANGE bounds");
    }
    if ((range->hi - range->lo) / range->step >= 1e8) {
      return Status::InvalidArgument("parameter '@" + def.name +
                                     "' RANGE spans more than 100000000 "
                                     "values");
    }
  }
  if (const auto* set = std::get_if<SetDomain>(&def.domain)) {
    if (set->values.empty()) {
      return Status::InvalidArgument("parameter '@" + def.name +
                                     "' has empty SET");
    }
  }
  defs_.push_back(std::move(def));
  return Status::OK();
}

std::optional<std::size_t> ParameterSpace::IndexOf(
    const std::string& name) const {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (EqualsIgnoreCase(defs_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::size_t ParameterSpace::NumPoints() const {
  std::size_t n = 1;
  for (const auto& d : defs_) {
    if (d.is_chain()) continue;
    n *= d.cardinality();
  }
  return n;
}

std::vector<double> ParameterSpace::ValuationAt(std::size_t idx) const {
  std::vector<double> out(defs_.size(), 0.0);
  // Row-major: last non-chain parameter varies fastest.
  std::size_t remaining = idx;
  for (std::size_t i = defs_.size(); i-- > 0;) {
    const auto& d = defs_[i];
    if (d.is_chain()) {
      out[i] = std::get<ChainDomain>(d.domain).initial;
      continue;
    }
    const auto values = d.Values();
    const std::size_t card = values.size();
    out[i] = values[remaining % card];
    remaining /= card;
  }
  JIGSAW_CHECK_MSG(remaining == 0, "valuation index out of range");
  return out;
}

std::vector<std::vector<double>> ParameterSpace::EnumerateAll() const {
  std::vector<std::vector<double>> out;
  const std::size_t n = NumPoints();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(ValuationAt(i));
  return out;
}

}  // namespace jigsaw
