#include "core/mapping.h"

#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace jigsaw {

MappingPtr IdentityMapping::Make() {
  static const MappingPtr kInstance = std::make_shared<IdentityMapping>();
  return kInstance;
}

double LinearMapping::Invert(double y) const {
  JIGSAW_CHECK_MSG(alpha_ != 0.0, "constant mapping is not invertible");
  return (y - beta_) / alpha_;
}

std::string LinearMapping::ToString() const {
  return StrFormat("M(x) = %.9g*x + %.9g", alpha_, beta_);
}

const std::string& LinearMappingFinder::class_name() const {
  static const std::string kName = "linear";
  return kName;
}

MappingPtr FindLinearMapping(const Fingerprint& theta1,
                             const Fingerprint& theta2, double tol) {
  if (theta1.size() != theta2.size() || theta1.empty()) return nullptr;

  const auto distinct = theta1.FirstTwoDistinct(tol);
  if (!distinct) {
    // theta1 is constant: a function can only map one input value to one
    // output value, so theta2 must be constant too. Use the translation
    // M(x) = x + (theta2[0] - theta1[0]).
    if (!theta2.IsConstant(tol)) return nullptr;
    return std::make_shared<LinearMapping>(1.0, theta2[0] - theta1[0]);
  }

  const auto [i0, i1] = *distinct;
  const double alpha =
      (theta2[i1] - theta2[i0]) / (theta1[i1] - theta1[i0]);
  const double beta = theta2[i0] - alpha * theta1[i0];

  // Validate the remaining entries (Algorithm 2, lines 3-6), with a
  // relative tolerance in place of the paper's exact equality.
  for (std::size_t i = 0; i < theta1.size(); ++i) {
    if (!ApproxEqual(alpha * theta1[i] + beta, theta2[i], tol)) {
      return nullptr;
    }
  }
  if (alpha == 1.0 && beta == 0.0) return IdentityMapping::Make();
  return std::make_shared<LinearMapping>(alpha, beta);
}

MappingPtr LinearMappingFinder::Find(const Fingerprint& from,
                                     const Fingerprint& to,
                                     double tol) const {
  if (!allow_constant_reuse_ && from.IsConstant(tol)) {
    // Paper-literal Algorithm 2: alpha is indeterminate on constant
    // fingerprints, so no mapping is ever found.
    return nullptr;
  }
  return FindLinearMapping(from, to, tol);
}

std::optional<std::vector<std::uint64_t>> LinearMappingFinder::NormalForm(
    const Fingerprint& fp, double tol, double quantum) const {
  std::vector<std::uint64_t> key;
  key.reserve(fp.size() + 1);

  const auto distinct = fp.FirstTwoDistinct(tol);
  if (!distinct) {
    // All constant fingerprints share one bucket: every pair is mappable
    // by translation.
    key.push_back(0xC0115741'00000000ULL);  // "constant" tag
    key.insert(key.end(), fp.size(), 0);
    return key;
  }

  const auto [i0, i1] = *distinct;
  const double a = fp[i0];
  const double b = fp[i1];
  key.push_back(0x401A'0000'0000'0000ULL ^ fp.size());
  for (std::size_t i = 0; i < fp.size(); ++i) {
    const double normalized = (fp[i] - a) / (b - a);
    // Quantize for hashing. Candidates from a shared bucket are always
    // re-validated by FindMapping, so quantization can only cause (rare)
    // extra bases, never incorrect reuse. Non-finite entries (a model
    // returned NaN/Inf) get a sentinel: such fingerprints never map, but
    // they must not poison the hash (llround on NaN is undefined).
    const double scaled = normalized / quantum;
    const std::uint64_t q =
        std::isfinite(scaled) && std::fabs(scaled) < 9.0e18
            ? static_cast<std::uint64_t>(std::llround(scaled))
            : 0x7FF0DEAD00000000ULL ^ i;
    key.push_back(q);
  }
  return key;
}

MappingFinderPtr LinearMappingFinder::Make() {
  static const MappingFinderPtr kInstance =
      std::make_shared<LinearMappingFinder>();
  return kInstance;
}

MappingFinderPtr LinearMappingFinder::MakeStrict() {
  static const MappingFinderPtr kInstance =
      std::make_shared<LinearMappingFinder>(/*allow_constant_reuse=*/false);
  return kInstance;
}

}  // namespace jigsaw
