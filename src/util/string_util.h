#pragma once

/// \file string_util.h
/// Small string helpers for the SQL front end and report printers.

#include <string>
#include <string_view>
#include <vector>

namespace jigsaw {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into std::string (GCC 12 lacks std::format).
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a double with %g-style minimal digits.
std::string DoubleToString(double v);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace jigsaw
