#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace jigsaw {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    JIGSAW_CHECK_MSG(!stop_, "submit on stopped pool");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, num_threads() * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;

  // Per-call completion state, on the caller's stack: when the pool is
  // shared by several client threads, a caller must wait for exactly its
  // own chunks — WaitIdle would block on every other client's in-flight
  // work too (and with another session continuously submitting, might
  // never return). The tasks reference these locals; the wait below keeps
  // them alive until the last chunk has signalled.
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t pending = 0;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, count);
    if (begin >= end) break;
    {
      std::unique_lock<std::mutex> lock(done_mu);
      ++pending;
    }
    Submit([&fn, &done_mu, &done_cv, &pending, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      std::unique_lock<std::mutex> lock(done_mu);
      if (--pending == 0) done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&pending] { return pending == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace jigsaw
