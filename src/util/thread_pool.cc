#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace jigsaw {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_task_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    JIGSAW_CHECK_MSG(!stop_, "submit on stopped pool");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) cv_idle_.Wait(&mu_);
}

namespace {

/// Per-ParallelFor-call completion state, owned by the caller's stack:
/// when the pool is shared by several client threads, a caller must wait
/// for exactly its own chunks — WaitIdle would block on every other
/// client's in-flight work too (and with another session continuously
/// submitting, might never return). The tasks reference this struct; the
/// wait in ParallelFor keeps it alive until the last chunk has signalled.
/// `pending` is guarded by the per-call mutex so the analysis checks the
/// chunk tasks' decrements the same way it checks pool-wide state.
struct Completion {
  Mutex mu;
  CondVar cv;
  std::size_t pending JIGSAW_GUARDED_BY(mu) = 0;
};

}  // namespace

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, num_threads() * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;

  Completion done;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, count);
    if (begin >= end) break;
    {
      MutexLock lock(&done.mu);
      ++done.pending;
    }
    Submit([&fn, &done, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      MutexLock lock(&done.mu);
      if (--done.pending == 0) done.cv.NotifyAll();
    });
  }

  MutexLock lock(&done.mu);
  while (done.pending != 0) done.cv.Wait(&done.mu);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_task_.Wait(&mu_);
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.NotifyAll();
    }
  }
}

}  // namespace jigsaw
