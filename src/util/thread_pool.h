#pragma once

/// \file thread_pool.h
/// A fixed-size worker pool used for optional parallel Monte Carlo
/// evaluation (MCDB evaluates sampled worlds in parallel). Determinism is
/// preserved because each sample's randomness depends only on its seed, not
/// on scheduling; reductions merge per-worker accumulators in index order.
///
/// One pool may be shared by many concurrent clients (the session server
/// hands every session the same pool): ParallelFor tracks completion per
/// call, so a caller waits only for its own tasks — never for work another
/// client enqueued — and concurrent ParallelFor calls simply interleave
/// their chunks in the submission queue.
///
/// Lock discipline (machine-checked by the Clang thread-safety analysis,
/// see util/annotations.h): mu_ guards the submission queue, the in-flight
/// count and the stop flag; cv_task_ wakes workers on submission or stop,
/// cv_idle_ wakes WaitIdle when the pool drains. workers_ is written only
/// in the constructor and joined in the destructor, so it needs no guard.
/// The per-call ParallelFor completion state is a stack-owned Completion
/// whose pending count is guarded by its own per-call mutex — see the
/// struct in thread_pool.cc.

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace jigsaw {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task) JIGSAW_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished — pool-wide, across
  /// all clients. Prefer ParallelFor, whose wait is scoped to its own
  /// tasks, when the pool is shared.
  void WaitIdle() JIGSAW_EXCLUDES(mu_);

  /// Runs fn(i) for i in [0, count) across the pool and waits. Chunked to
  /// keep queue overhead low for fine-grained bodies. Completion is
  /// tracked per call: safe to invoke from several client threads on the
  /// same pool concurrently (each call returns as soon as its own chunks
  /// finish). Must not be called from inside a pool task — a worker
  /// blocked here would deadlock the pool it is supposed to drain.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn)
      JIGSAW_EXCLUDES(mu_);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() JIGSAW_EXCLUDES(mu_);

  /// Immutable after construction (ctor spawns, dtor joins): safe to read
  /// from any thread without mu_.
  std::vector<std::thread> workers_;

  Mutex mu_;
  std::queue<std::function<void()>> queue_ JIGSAW_GUARDED_BY(mu_);
  /// Tasks submitted but not yet finished (queued + executing).
  std::size_t in_flight_ JIGSAW_GUARDED_BY(mu_) = 0;
  bool stop_ JIGSAW_GUARDED_BY(mu_) = false;
  CondVar cv_task_;  ///< signalled on Submit and on stop
  CondVar cv_idle_;  ///< signalled when in_flight_ reaches 0
};

}  // namespace jigsaw
