#pragma once

/// \file thread_pool.h
/// A fixed-size worker pool used for optional parallel Monte Carlo
/// evaluation (MCDB evaluates sampled worlds in parallel). Determinism is
/// preserved because each sample's randomness depends only on its seed, not
/// on scheduling; reductions merge per-worker accumulators in index order.
///
/// One pool may be shared by many concurrent clients (the session server
/// hands every session the same pool): ParallelFor tracks completion per
/// call, so a caller waits only for its own tasks — never for work another
/// client enqueued — and concurrent ParallelFor calls simply interleave
/// their chunks in the submission queue.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jigsaw {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished — pool-wide, across
  /// all clients. Prefer ParallelFor, whose wait is scoped to its own
  /// tasks, when the pool is shared.
  void WaitIdle();

  /// Runs fn(i) for i in [0, count) across the pool and waits. Chunked to
  /// keep queue overhead low for fine-grained bodies. Completion is
  /// tracked per call: safe to invoke from several client threads on the
  /// same pool concurrently (each call returns as soon as its own chunks
  /// finish). Must not be called from inside a pool task — a worker
  /// blocked here would deadlock the pool it is supposed to drain.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace jigsaw
