#pragma once

/// \file math_util.h
/// Numerically stable streaming statistics and small math helpers shared by
/// the estimator, fingerprint tolerance checks, and benchmarks.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace jigsaw {

/// Welford's online algorithm for mean and variance. Single pass, stable.
class WelfordAccumulator {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Adds a whole span in index order. Exactly equivalent to calling
  /// Add element-wise (bit-for-bit), but keeps the update loop tight for
  /// the batched sampling path.
  void AddSpan(std::span<const double> xs) {
    for (double x : xs) Add(x);
  }

  /// Merges another accumulator (parallel reduction; Chan et al.).
  /// Numerically stable but not bit-identical to sequential Add order —
  /// use for statistics where last-bit determinism is not required.
  void Merge(const WelfordAccumulator& other);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divide by n).
  double variance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  /// Sample variance (divide by n-1).
  double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double sample_stddev() const { return std::sqrt(sample_variance()); }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Standard error of the mean (uses sample stddev).
  double standard_error() const {
    return count_ > 1 ? sample_stddev() / std::sqrt(static_cast<double>(count_))
                      : std::numeric_limits<double>::infinity();
  }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Kahan compensated summation.
class KahanSum {
 public:
  void Add(double x) {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }
  double sum() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) of `sorted` using linear
/// interpolation between closest ranks. `sorted` must be ascending.
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Convenience: copies, sorts, and computes a quantile.
double Quantile(std::vector<double> values, double q);

/// Bit-identical to `QuantileSorted(sorted(values), q)` but computed by
/// selection (nth_element + a tail scan) in O(n) instead of a full
/// O(n log n) sort — order statistics are unique multiset values, so the
/// interpolated result carries the exact same bits. Partially reorders
/// `values`; elements must be totally ordered (no NaNs).
double QuantileSelect(std::vector<double>& values, double q);

/// True if |a-b| <= atol + rtol*max(|a|,|b|). The fingerprint-matching
/// tolerance test used throughout the core.
inline bool ApproxEqual(double a, double b, double rtol = 1e-9,
                        double atol = 1e-12) {
  const double diff = std::fabs(a - b);
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= atol + rtol * scale;
}

/// Integer ceil division for non-negative values.
inline std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace jigsaw
