#pragma once

/// \file histogram.h
/// Fixed-bin-count histogram over doubles. Supports the affine transform
/// needed when a basis distribution's histogram is reused for a linearly
/// mapped parameter point (Section 3 of the paper: mapping functions are
/// "easily applied to simple aggregate properties").

#include <cstdint>
#include <string>
#include <vector>

namespace jigsaw {

class Histogram {
 public:
  /// Builds a histogram with `num_bins` equal-width bins over [lo, hi].
  /// Observations outside the range are clamped into the edge bins.
  Histogram(double lo, double hi, int num_bins);

  /// Builds from samples, choosing [min, max] of the data as range.
  static Histogram FromSamples(const std::vector<double>& samples,
                               int num_bins);

  /// Bins a finite observation. Non-finite observations (NaN, ±inf) have
  /// no bin; they are skipped and tallied in dropped_count().
  void Add(double x);

  /// Applies M(x) = alpha*x + beta to the bin boundaries. A negative alpha
  /// reverses bin order. Counts are preserved exactly, which is the key
  /// property that makes histogram reuse free of resampling error.
  /// alpha == 0 collapses the distribution to the point beta: all mass
  /// moves into the single bin containing beta.
  Histogram AffineTransformed(double alpha, double beta) const;

  int num_bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::int64_t total_count() const { return total_; }
  /// Non-finite observations rejected by Add.
  std::int64_t dropped_count() const { return dropped_; }
  std::int64_t bin_count(int i) const { return counts_[i]; }
  double bin_lo(int i) const;
  double bin_hi(int i) const;

  /// Probability mass at or below x (inclusive of the full bin containing
  /// x). An approximation suitable for threshold probabilities.
  double CdfAt(double x) const;

  /// Mean of bin midpoints weighted by counts.
  double ApproxMean() const;

  /// Renders a short ASCII sparkline-style dump (used by examples).
  std::string ToAscii(int width = 40) const;

  bool operator==(const Histogram& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ && total_ == other.total_ &&
           dropped_ == other.dropped_ && counts_ == other.counts_;
  }

 private:
  double lo_;
  double hi_;
  double width_;
  std::int64_t total_ = 0;
  std::int64_t dropped_ = 0;
  std::vector<std::int64_t> counts_;
};

}  // namespace jigsaw
