#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace jigsaw {
namespace internal {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel MinLogLevel() { return g_min_level; }

void SetMinLogLevel(LogLevel level) { g_min_level = level; }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < g_min_level) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               message.c_str());
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s %s\n", file, line,
               expr, message.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace jigsaw
