#pragma once

/// \file timer.h
/// Wall-clock timing used by the benchmark harness and the interactive
/// mode's latency budgeting.

#include <chrono>
#include <cstdint>

namespace jigsaw {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace jigsaw
