#pragma once

/// \file status.h
/// Lightweight Status / Result<T> error propagation, modeled after the
/// Status idiom used by database engines (Arrow, LevelDB). The Jigsaw
/// public API never throws across module boundaries; fallible operations
/// return Status (or Result<T> when they produce a value).

#include <optional>
#include <string>
#include <utility>

namespace jigsaw {

/// Error taxonomy for the whole library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kBindError,
  kExecutionError,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome. Cheap to copy on the success path (no
/// allocation); error path carries a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error outcome. Access to value() on an error is a programming
/// bug and aborts (checked via JIGSAW_CHECK in the .cc of logging).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {}  // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value or a default if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate an error Status from an expression: `JIGSAW_RETURN_IF_ERROR(s)`.
#define JIGSAW_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::jigsaw::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Bind a Result value or propagate its error:
/// `JIGSAW_ASSIGN_OR_RETURN(auto x, ComputeX());`
#define JIGSAW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define JIGSAW_ASSIGN_OR_RETURN(lhs, rexpr) \
  JIGSAW_ASSIGN_OR_RETURN_IMPL(             \
      JIGSAW_CONCAT_(_jigsaw_result_, __LINE__), lhs, rexpr)

#define JIGSAW_CONCAT_INNER_(a, b) a##b
#define JIGSAW_CONCAT_(a, b) JIGSAW_CONCAT_INNER_(a, b)

}  // namespace jigsaw
