#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace jigsaw {

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(num_bins), 0) {
  JIGSAW_CHECK_MSG(num_bins > 0, "histogram needs at least one bin");
  if (hi_ <= lo_) hi_ = lo_ + 1.0;  // degenerate range; widen to unit width
  width_ = (hi_ - lo_) / num_bins;
}

Histogram Histogram::FromSamples(const std::vector<double>& samples,
                                 int num_bins) {
  // Range over the finite samples only: a single NaN/inf must not poison
  // every bin boundary (non-finite samples are dropped by Add below).
  double lo = 0.0, hi = 1.0;
  bool seen_finite = false;
  for (double s : samples) {
    if (!std::isfinite(s)) continue;
    lo = seen_finite ? std::min(lo, s) : s;
    hi = seen_finite ? std::max(hi, s) : s;
    seen_finite = true;
  }
  Histogram h(lo, hi, num_bins);
  for (double s : samples) h.Add(s);
  return h;
}

void Histogram::Add(double x) {
  if (!std::isfinite(x)) {
    // floor() of NaN/±inf is non-finite and casting it to int is UB; a
    // non-finite observation has no bin, so count it as dropped instead.
    ++dropped_;
    return;
  }
  int bin = static_cast<int>(std::floor((x - lo_) / width_));
  bin = std::max(0, std::min(bin, num_bins() - 1));
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

Histogram Histogram::AffineTransformed(double alpha, double beta) const {
  if (alpha == 0.0) {
    // M collapses every sample to beta; copying the old bin layout would
    // pretend the original spread survived. All mass lands in the single
    // bin containing beta (unit-width range centered there). A non-finite
    // beta has no bin, exactly like a non-finite Add: everything drops.
    if (!std::isfinite(beta)) {
      Histogram out(0.0, 1.0, num_bins());
      out.dropped_ = dropped_ + total_;
      return out;
    }
    Histogram out(beta - 0.5, beta + 0.5, num_bins());
    out.total_ = total_;
    out.dropped_ = dropped_;
    if (total_ > 0) {
      int bin = static_cast<int>(std::floor((beta - out.lo_) / out.width_));
      bin = std::max(0, std::min(bin, num_bins() - 1));
      out.counts_[static_cast<std::size_t>(bin)] = total_;
    }
    return out;
  }
  const double a = lo_ * alpha + beta;
  const double b = hi_ * alpha + beta;
  Histogram out(std::min(a, b), std::max(a, b), num_bins());
  out.total_ = total_;
  out.dropped_ = dropped_;
  if (alpha >= 0) {
    out.counts_ = counts_;
  } else {
    out.counts_.assign(counts_.rbegin(), counts_.rend());
  }
  return out;
}

double Histogram::bin_lo(int i) const { return lo_ + width_ * i; }
double Histogram::bin_hi(int i) const { return lo_ + width_ * (i + 1); }

double Histogram::CdfAt(double x) const {
  if (total_ == 0) return 0.0;
  std::int64_t below = 0;
  for (int i = 0; i < num_bins(); ++i) {
    if (bin_hi(i) <= x) {
      below += counts_[static_cast<std::size_t>(i)];
    } else if (bin_lo(i) <= x) {
      // Partial bin: assume uniform density inside the bin.
      const double frac = (x - bin_lo(i)) / width_;
      below += static_cast<std::int64_t>(
          frac * static_cast<double>(counts_[static_cast<std::size_t>(i)]));
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double Histogram::ApproxMean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (int i = 0; i < num_bins(); ++i) {
    const double mid = 0.5 * (bin_lo(i) + bin_hi(i));
    acc += mid * static_cast<double>(counts_[static_cast<std::size_t>(i)]);
  }
  return acc / static_cast<double>(total_);
}

std::string Histogram::ToAscii(int width) const {
  std::int64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (int i = 0; i < num_bins(); ++i) {
    const auto c = counts_[static_cast<std::size_t>(i)];
    const int bar =
        static_cast<int>(static_cast<double>(c) / static_cast<double>(peak) *
                         width);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%10.3f] ", bin_lo(i));
    out += buf;
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace jigsaw
