#pragma once

/// \file mutex.h
/// Annotated mutex primitives: thin zero-overhead wrappers over
/// std::mutex / std::condition_variable that carry the Clang thread-safety
/// capability attributes of annotations.h. Every locked component in the
/// tree (ThreadPool, BasisStore, pdb::WorldCache, serve::SessionServer)
/// uses these instead of the raw std types so the guard relationships are
/// machine-checked at compile time under Clang.
///
/// Conventions:
///  * Declare guarded fields right after their Mutex with
///    JIGSAW_GUARDED_BY(mu_); private helpers that assume the lock take
///    JIGSAW_REQUIRES(mu_).
///  * Prefer MutexLock scopes over manual Lock/Unlock pairs.
///  * CondVar::Wait requires the mutex held (it releases and reacquires
///    internally, like std::condition_variable::wait) — spell waits as
///    explicit `while (!pred) cv_.Wait(&mu_);` loops rather than lambda
///    predicates so the analysis sees the guarded reads under the lock.

#include <condition_variable>
#include <mutex>

#include "util/annotations.h"

namespace jigsaw {

class CondVar;

/// A std::mutex carrying the "mutex" capability.
class JIGSAW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() JIGSAW_ACQUIRE() { raw_.lock(); }
  void Unlock() JIGSAW_RELEASE() { raw_.unlock(); }
  bool TryLock() JIGSAW_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex raw_;
};

/// RAII scope: acquires in the constructor, releases in the destructor.
class JIGSAW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) JIGSAW_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() JIGSAW_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Conditionally-locking scope (the absl::MutexLockMaybe shape): acquires
/// `mu` only when `enabled`. Annotated as if it always acquires — the one
/// caller of the disabled form (BasisStore with thread_safe=false) has a
/// documented contract that no concurrency exists at all, so the
/// capability is vacuously held; encoding that here keeps every method
/// body fully analyzed instead of opted out via
/// JIGSAW_NO_THREAD_SAFETY_ANALYSIS.
class JIGSAW_SCOPED_CAPABILITY MutexLockMaybe {
 public:
  MutexLockMaybe(Mutex* mu, bool enabled) JIGSAW_ACQUIRE(mu)
      : mu_(enabled ? mu : nullptr) {
    if (mu_ != nullptr) mu_->Lock();
  }
  ~MutexLockMaybe() JIGSAW_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }

  MutexLockMaybe(const MutexLockMaybe&) = delete;
  MutexLockMaybe& operator=(const MutexLockMaybe&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with jigsaw::Mutex. Wait atomically releases
/// the mutex and reacquires it before returning, so from the analysis's
/// point of view the capability is held across the call — hence
/// JIGSAW_REQUIRES rather than release/acquire, matching how
/// std::condition_variable composes with a surrounding lock scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) JIGSAW_REQUIRES(mu) {
    // Adopt the already-held mutex for the duration of the wait, then
    // release the unique_lock's ownership claim without unlocking — the
    // caller's MutexLock scope still owns the capability.
    std::unique_lock<std::mutex> lock(mu->raw_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace jigsaw
