#include "util/math_util.h"

#include <algorithm>

#include "util/logging.h"

namespace jigsaw {

void WelfordAccumulator::Merge(const WelfordAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  JIGSAW_CHECK_MSG(!sorted.empty(), "quantile of empty vector");
  JIGSAW_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q out of range: " << q);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

}  // namespace jigsaw
