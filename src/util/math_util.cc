#include "util/math_util.h"

#include <algorithm>

#include "util/logging.h"

namespace jigsaw {

void WelfordAccumulator::Merge(const WelfordAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  JIGSAW_CHECK_MSG(!sorted.empty(), "quantile of empty vector");
  JIGSAW_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q out of range: " << q);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

double QuantileSelect(std::vector<double>& values, double q) {
  JIGSAW_CHECK_MSG(!values.empty(), "quantile of empty vector");
  JIGSAW_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q out of range: " << q);
  if (values.size() == 1) return values[0];
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  const auto lo_it = values.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(values.begin(), lo_it, values.end());
  const double a = values[lo];
  // After the selection every element right of `lo` is >= values[lo], so
  // the order statistic at rank hi = lo+1 is the minimum of that tail.
  // The interpolation below mirrors QuantileSorted term for term —
  // including the degenerate hi == lo endpoint — so the bits match.
  const double b = hi == lo ? a : *std::min_element(lo_it + 1, values.end());
  return a * (1.0 - frac) + b * frac;
}

}  // namespace jigsaw
