#pragma once

/// \file hash.h
/// Hashing helpers used by the fingerprint indexes. FNV-1a for byte
/// sequences plus a 64-bit mix (Stafford variant 13) for combining.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace jigsaw {

/// 64-bit FNV-1a over a byte range.
inline std::uint64_t Fnv1a64(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// Stafford variant-13 finalizer; a strong 64->64 bit mixer.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Order-dependent combiner.
inline std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v) {
  return Mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// Hashes a vector of 64-bit words (e.g. quantized fingerprint entries).
inline std::uint64_t HashWords(const std::vector<std::uint64_t>& words) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (auto w : words) h = HashCombine(h, w);
  return h;
}

/// Hashes a vector of 32-bit ids (e.g. sorted sample-identifier sequences).
inline std::uint64_t HashIds(const std::vector<std::uint32_t>& ids) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (auto id : ids) h = HashCombine(h, id);
  return h;
}

}  // namespace jigsaw
