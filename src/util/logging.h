#pragma once

/// \file logging.h
/// Minimal logging and invariant-checking macros. JIGSAW_CHECK is used for
/// internal invariants (programming bugs) and aborts with file:line; user
/// input errors flow through Status instead.

#include <sstream>
#include <string>

namespace jigsaw {
namespace internal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level actually emitted.
LogLevel MinLogLevel();

/// Sets the process-wide minimum log level (not thread-safe; call at init).
void SetMinLogLevel(LogLevel level);

/// Emits one log line to stderr.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Stream-style collector used by the macros below.
class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogCapture& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace jigsaw

#define JIGSAW_LOG(level)                                              \
  ::jigsaw::internal::LogCapture(::jigsaw::internal::LogLevel::level,  \
                                 __FILE__, __LINE__)

#define JIGSAW_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::jigsaw::internal::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                                   \
  } while (0)

#define JIGSAW_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream _oss;                                          \
      _oss << msg;                                                      \
      ::jigsaw::internal::CheckFailed(__FILE__, __LINE__, #expr,        \
                                      _oss.str());                      \
    }                                                                   \
  } while (0)

#define JIGSAW_DCHECK(expr) JIGSAW_CHECK(expr)
