#pragma once

/// \file annotations.h
/// Clang thread-safety analysis attributes behind JIGSAW_ macros.
///
/// The determinism contract (bit-identical parallel/serial twins) rests on
/// a lock discipline: every field shared across pool tasks or sessions is
/// guarded by exactly one mutex, and every access happens with that mutex
/// held. TSan verifies the interleavings the tests happen to exercise;
/// these annotations make the discipline a *compile-time* property — the
/// clang-analysis CI job builds with `-Wthread-safety -Werror=thread-safety`,
/// so an unguarded access or a lock-order bug is a build break on every
/// push, not a probabilistic test failure.
///
/// Usage (see util/mutex.h for the annotated primitives):
///
///   jigsaw::Mutex mu_;
///   std::vector<int> items_ JIGSAW_GUARDED_BY(mu_);
///   void AppendLocked(int v) JIGSAW_REQUIRES(mu_);
///
/// Under GCC (the container toolchain) and MSVC every macro expands to
/// nothing, so the annotations are zero-cost documentation off-Clang.

#if defined(__clang__) && (!defined(SWIG))
#define JIGSAW_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define JIGSAW_THREAD_ANNOTATION_(x)  // no-op off-Clang
#endif

/// Declares a class to be a lockable capability ("mutex" by convention).
#define JIGSAW_CAPABILITY(x) JIGSAW_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define JIGSAW_SCOPED_CAPABILITY JIGSAW_THREAD_ANNOTATION_(scoped_lockable)

/// Field `x` may only be read or written while the named mutex is held.
#define JIGSAW_GUARDED_BY(x) JIGSAW_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the *pointee* may only be dereferenced under the mutex
/// (the pointer itself is unguarded).
#define JIGSAW_PT_GUARDED_BY(x) JIGSAW_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while the listed capabilities are held
/// by the caller (and they stay held — it neither acquires nor releases).
#define JIGSAW_REQUIRES(...) \
  JIGSAW_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function may only be called while the listed capabilities are NOT
/// held (guards against self-deadlock on non-reentrant mutexes).
#define JIGSAW_EXCLUDES(...) \
  JIGSAW_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define JIGSAW_ACQUIRE(...) \
  JIGSAW_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases a held capability.
#define JIGSAW_RELEASE(...) \
  JIGSAW_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function attempts the acquisition; `b` is the success return value.
#define JIGSAW_TRY_ACQUIRE(...) \
  JIGSAW_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Runtime assertion that the capability is held (AssertHeld patterns).
#define JIGSAW_ASSERT_CAPABILITY(x) \
  JIGSAW_THREAD_ANNOTATION_(assert_capability(x))

/// Documents lock-ordering: this mutex must be acquired after/before the
/// named ones, turning an ABBA inversion into a compile error.
#define JIGSAW_ACQUIRED_AFTER(...) \
  JIGSAW_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define JIGSAW_ACQUIRED_BEFORE(...) \
  JIGSAW_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define JIGSAW_RETURN_CAPABILITY(x) \
  JIGSAW_THREAD_ANNOTATION_(lock_returned(x))

/// Opts a function out of the analysis. Use ONLY for contracts the
/// analysis cannot see (e.g. BasisStore's thread_safe=false serial mode,
/// where the caller guarantees no concurrency exists at all), and say why
/// at the use site.
#define JIGSAW_NO_THREAD_SAFETY_ANALYSIS \
  JIGSAW_THREAD_ANNOTATION_(no_thread_safety_analysis)
