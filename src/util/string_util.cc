#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace jigsaw {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string DoubleToString(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace jigsaw
