#!/usr/bin/env python3
"""Determinism lint for the Jigsaw source tree.

Jigsaw's contract is bit-identical replay: every draw is a pure function of
(master_seed, call_site/salt, sample, draw index), so any nondeterminism
source that sneaks into src/ — a stray rand(), a wall-clock read feeding a
result, two draw sites sharing a salt — silently breaks reproducibility in
a way the bit-identity test grid only catches if the divergent path is
exercised. This lint makes the draw discipline a static property of every
build (it runs as the `determinism_lint` CTest and in the clang-analysis
CI job).

Rules
-----
duplicate-salt
    Named draw-site constants (constexpr std::uint64_t whose name contains
    Salt, Site, or Tag) must be unique by VALUE across src/: two sites
    sharing a salt would alias their draw streams, correlating draws that
    the models assume independent. Also rejects the same name declared
    twice in one file.

banned-nondeterminism
    rand()/srand(), std::random_device, time(nullptr)/time(0)/time(NULL),
    and std::chrono ...clock::now() are forbidden in src/. Clock reads are
    allowed only in util/timer.h (the one sanctioned timing wrapper —
    bench/ and tools/ are outside the scanned tree). A line may opt out
    with `// lint:allow-nondeterminism <reason>`, which should be rare and
    reviewed.

unordered-iteration
    Range-for over a std::unordered_{map,set} member/local declared in the
    same file: iteration order is libstdc++-version- and hash-seed-
    dependent, so anything folded or emitted in that order (estimator
    folds, Report tables) is silently irreproducible. Deterministic
    patterns (collect-then-sort, insertion-order side vectors like
    HashAggregateNode::order_, point lookups) do not trigger it. Opt out
    with `// lint:allow-unordered-iteration <reason>` when the fold is
    genuinely order-insensitive.

Usage
-----
    lint_determinism.py [--root DIR] [FILE...]

With no FILE arguments, scans every .h/.cc under <root>/src. Exit status 0
when clean, 1 on findings, 2 on usage errors.
"""

import argparse
import os
import re
import sys

# Named 64-bit constants that key draw streams. Name filter keeps mixing
# constants (golden ratios, FNV primes) out of the salt namespace.
SALT_DECL = re.compile(
    r"constexpr\s+(?:std::)?uint64_t\s+(?P<name>k\w*(?:Salt|Site|Tag)\w*)\s*=\s*"
    r"(?P<value>0[xX][0-9a-fA-F]+|\d+)\s*(?:ULL|ull|UL|ul|U|u)?\s*;"
)

BANNED = [
    # (rule-id, regex, message)
    ("rand", re.compile(r"\b(?:s)?rand\s*\("),
     "rand()/srand() is nondeterministic across libcs; use RandomStream/"
     "CounterStream seeded from the seed schema"),
    ("random-device", re.compile(r"std::random_device"),
     "std::random_device draws entropy outside the seed schema"),
    ("time", re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "wall-clock time can never feed a deterministic result"),
    ("clock-now", re.compile(
        r"(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\s*\("),
     "clock reads belong in util/timer.h (benchmarking), not in result "
     "paths"),
]

# Files where clock reads are the point.
CLOCK_ALLOWED = {os.path.join("util", "timer.h")}

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{}]*?>\s+(?P<name>\w+)\s*(?:;|=|\{)"
)

ALLOW_NONDET = "lint:allow-nondeterminism"
ALLOW_UNORDERED = "lint:allow-unordered-iteration"


def strip_comments_and_strings(line):
    """Blanks out string/char literals and // comments so banned tokens in
    documentation or messages don't trigger. Keeps lint: markers visible to
    the caller (checked on the raw line)."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is comment
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path, rel, salts, findings):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
    except OSError as e:
        findings.append((rel, 0, "io", str(e)))
        return

    local_salt_names = {}
    unordered_names = {}

    for lineno, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)

        m = SALT_DECL.search(line)
        if m:
            name, value = m.group("name"), int(m.group("value"), 0)
            if name in local_salt_names:
                findings.append((
                    rel, lineno, "duplicate-salt",
                    f"{name} already declared at line "
                    f"{local_salt_names[name]} of this file"))
            local_salt_names[name] = lineno
            prev = salts.get(value)
            if prev is not None and prev[2] != name:
                findings.append((
                    rel, lineno, "duplicate-salt",
                    f"{name} = {hex(value)} collides with {prev[2]} at "
                    f"{prev[0]}:{prev[1]} — aliased draw streams"))
            else:
                salts[value] = (rel, lineno, name)

        for rule, rx, msg in BANNED:
            if not rx.search(line):
                continue
            if rule == "clock-now" and rel in CLOCK_ALLOWED:
                continue
            if ALLOW_NONDET in raw:
                continue
            findings.append((rel, lineno, f"banned-{rule}", msg))

        dm = UNORDERED_DECL.search(line)
        if dm:
            unordered_names[dm.group("name")] = lineno

    # Second pass: range-for over any name declared unordered in this file.
    if unordered_names:
        names = "|".join(re.escape(n) for n in unordered_names)
        range_for = re.compile(
            r"for\s*\([^;)]*?:\s*(?:this->)?(?P<name>" + names + r")\s*\)")
        for lineno, raw in enumerate(lines, 1):
            line = strip_comments_and_strings(raw)
            fm = range_for.search(line)
            if fm and ALLOW_UNORDERED not in raw:
                findings.append((
                    rel, lineno, "unordered-iteration",
                    f"range-for over std::unordered container "
                    f"'{fm.group('name')}' (declared line "
                    f"{unordered_names[fm.group('name')]}): iteration order "
                    f"is not deterministic — sort first or keep an "
                    f"insertion-order side vector"))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("files", nargs="*",
                    help="specific files to lint (default: all of src/)")
    args = ap.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.files:
        targets = [(f, os.path.relpath(f, root) if os.path.isabs(f) else f)
                   for f in args.files]
    else:
        src = os.path.join(root, "src")
        if not os.path.isdir(src):
            print(f"lint_determinism: no src/ under {root}", file=sys.stderr)
            return 2
        targets = []
        for dirpath, _, names in sorted(os.walk(src)):
            for name in sorted(names):
                if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                    full = os.path.join(dirpath, name)
                    targets.append((full, os.path.relpath(full, src)))

    findings = []
    salts = {}
    for path, rel in targets:
        lint_file(path, rel, salts, findings)

    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    n_files = len(targets)
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s) in {n_files} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"lint_determinism: {n_files} file(s) clean "
          f"({len(salts)} draw-site constants, all distinct)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
