#!/usr/bin/env bash
# Diff-aware clang-tidy driver.
#
# Usage:
#   tools/run_clang_tidy.sh [BUILD_DIR] [BASE_REF]
#
#   BUILD_DIR  build tree with compile_commands.json (default: build).
#              Configured automatically if missing.
#   BASE_REF   git ref to diff against; only .cc files changed since the
#              merge-base with it are linted (headers pull in the .cc files
#              of their directory, since headers are only checked through
#              an including TU). Default: origin/main if it exists, else
#              HEAD~1. Pass "all" to lint every .cc under src/.
#
# Environment:
#   CLANG_TIDY       binary to use (default: first of clang-tidy,
#                    clang-tidy-{19..14} on PATH)
#   JIGSAW_TIDY_WERROR=0  downgrade findings to warnings (exit 0). Default
#                    is gating: any finding exits nonzero.
#
# Exits 0 when clean or when there is nothing to lint; 3 when clang-tidy
# is not installed (so callers can distinguish "clean" from "not run").

set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BASE_REF="${2:-}"

# --- locate clang-tidy ------------------------------------------------------
TIDY="${CLANG_TIDY:-}"
if [ -z "${TIDY}" ]; then
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
              clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${cand}" > /dev/null 2>&1; then
      TIDY="${cand}"
      break
    fi
  done
fi
if [ -z "${TIDY}" ]; then
  echo "run_clang_tidy: no clang-tidy on PATH (set CLANG_TIDY=...); " \
       "skipping — install clang-tidy or rely on the clang-analysis CI job" >&2
  exit 3
fi

# --- ensure a compilation database -----------------------------------------
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "run_clang_tidy: configuring ${BUILD_DIR} for compile_commands.json"
  cmake -B "${BUILD_DIR}" -S . > /dev/null || exit 1
fi

# --- pick files -------------------------------------------------------------
declare -a files=()
if [ "${BASE_REF}" = "all" ]; then
  while IFS= read -r f; do files+=("$f"); done \
    < <(git ls-files 'src/*.cc')
else
  if [ -z "${BASE_REF}" ]; then
    if git rev-parse --verify -q origin/main > /dev/null; then
      BASE_REF="origin/main"
    else
      BASE_REF="HEAD~1"
    fi
  fi
  base="$(git merge-base "${BASE_REF}" HEAD 2> /dev/null || echo "${BASE_REF}")"
  changed="$(git diff --name-only "${base}" -- 'src/*.cc' 'src/*.h' \
             2> /dev/null)"
  if [ -z "${changed}" ]; then
    echo "run_clang_tidy: no src/ changes since ${base}; nothing to lint"
    exit 0
  fi
  # Headers are analyzed through including TUs: a changed .h adds every
  # .cc in its directory to the lint set.
  declare -A seen=()
  while IFS= read -r f; do
    case "$f" in
      *.cc)
        [ -f "$f" ] && seen["$f"]=1
        ;;
      *.h)
        for sib in "$(dirname "$f")"/*.cc; do
          [ -f "$sib" ] && seen["$sib"]=1
        done
        ;;
    esac
  done <<< "${changed}"
  for f in "${!seen[@]}"; do files+=("$f"); done
fi

if [ "${#files[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no lintable .cc files; nothing to do"
  exit 0
fi

# --- run --------------------------------------------------------------------
WERROR_FLAG="--warnings-as-errors=*"
if [ "${JIGSAW_TIDY_WERROR:-1}" = "0" ]; then
  WERROR_FLAG="--warnings-as-errors="
fi

echo "run_clang_tidy: ${TIDY} over ${#files[@]} file(s)" \
     "(db: ${BUILD_DIR}/compile_commands.json)"
status=0
# Sorted for stable output; sequential keeps diagnostics readable and the
# changed-file sets small enough that parallelism isn't worth the
# interleaving.
while IFS= read -r f; do
  echo "--- ${f}"
  "${TIDY}" -p "${BUILD_DIR}" --quiet "${WERROR_FLAG}" "${f}" || status=1
done < <(printf '%s\n' "${files[@]}" | sort)

if [ "${status}" -ne 0 ]; then
  echo "run_clang_tidy: findings above (gate: JIGSAW_TIDY_WERROR=1)" >&2
else
  echo "run_clang_tidy: clean"
fi
exit "${status}"
