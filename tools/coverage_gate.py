#!/usr/bin/env python3
"""Per-module line-coverage gate for the Jigsaw source tree.

Reads gcov's JSON intermediate output for every object built from src/,
aggregates executed/executable line counts per module (the directory
directly under src/), and fails if any module's line coverage falls below
the floor recorded in tools/coverage_baseline.json. The baseline is the
coverage the seeded test suite achieves; the gate makes "new code ships
with tests" a machine property — untested additions dilute their module's
percentage below the floor and break the job.

Workflow (the coverage CI job, or locally):

    cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug -DJIGSAW_COVERAGE=ON
    cmake --build build-cov -j && (cd build-cov && ctest -j)
    python3 tools/coverage_gate.py --build build-cov

Maintaining the baseline:

    python3 tools/coverage_gate.py --build build-cov --write-baseline

Raise the floors when coverage genuinely improves; never lower them to
make a failing PR pass — add tests instead. A small slack (default 0.25
points) absorbs compiler-version jitter in executable-line accounting.

Only gcc/gcov is supported (clang writes a different profile format);
gcov ships with gcc, so the gate needs no extra packages. gcovr, when
installed, renders a nicer human report — see the CI job — but the gate
itself parses `gcov --json-format --stdout` directly.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from collections import defaultdict
from pathlib import Path

SLACK_POINTS = 0.25


def find_gcda(build_dir: Path) -> list[Path]:
    """Coverage data for objects compiled from src/ (tests/bench/fuzz
    binaries instrument too, but the gate measures the shipped tree)."""
    out = []
    for gcda in build_dir.rglob("*.gcda"):
        rel = gcda.relative_to(build_dir).as_posix()
        if rel.startswith("src/"):
            out.append(gcda)
    return sorted(out)


def gcov_json(gcda: Path, build_dir: Path) -> dict:
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", str(gcda)],
        cwd=build_dir,
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"gcov failed on {gcda}: {proc.stderr.strip()[:200]}")
    # --stdout emits one JSON document per input file; we pass exactly one.
    return json.loads(proc.stdout)


def module_of(source: str, repo: Path) -> str | None:
    """src/pdb/table.cc -> 'pdb'; files outside src/ (system headers,
    gtest) don't count against any module."""
    path = Path(source)
    if not path.is_absolute():
        path = (repo / source).resolve()
    try:
        rel = path.resolve().relative_to((repo / "src").resolve())
    except ValueError:
        return None
    parts = rel.parts
    return parts[0] if len(parts) > 1 else "(top)"


def collect(build_dir: Path, repo: Path) -> dict[str, tuple[int, int]]:
    """module -> (covered_lines, executable_lines), deduplicated by
    (source, line): a header inlined into many objects counts once, as
    covered if any inclusion executed it."""
    line_hits: dict[tuple[str, int], int] = defaultdict(int)
    modules: dict[str, set[tuple[str, int]]] = defaultdict(set)
    for gcda in find_gcda(build_dir):
        doc = gcov_json(gcda, build_dir)
        for f in doc.get("files", []):
            mod = module_of(f["file"], repo)
            if mod is None:
                continue
            for line in f.get("lines", []):
                key = (f["file"], line["line_number"])
                modules[mod].add(key)
                line_hits[key] += line["count"]
    out = {}
    for mod, keys in modules.items():
        covered = sum(1 for k in keys if line_hits[k] > 0)
        out[mod] = (covered, len(keys))
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build", default="build-cov",
                    help="coverage build directory (JIGSAW_COVERAGE=ON)")
    ap.add_argument("--baseline",
                    default=str(Path(__file__).with_name(
                        "coverage_baseline.json")))
    ap.add_argument("--write-baseline", action="store_true",
                    help="record current coverage as the new floor")
    ap.add_argument("--slack", type=float, default=SLACK_POINTS,
                    help="allowed drop below baseline, in points")
    args = ap.parse_args()

    repo = Path(__file__).resolve().parent.parent
    build_dir = Path(args.build)
    if not build_dir.is_absolute():
        build_dir = repo / build_dir
    if not build_dir.is_dir():
        print(f"error: build dir {build_dir} not found", file=sys.stderr)
        return 2
    stats = collect(build_dir, repo)
    if not stats:
        print("error: no .gcda files under src/ — build with "
              "-DJIGSAW_COVERAGE=ON and run ctest first", file=sys.stderr)
        return 2

    percents = {m: 100.0 * c / t for m, (c, t) in stats.items() if t}
    width = max(len(m) for m in percents)
    for mod in sorted(percents):
        covered, total = stats[mod]
        print(f"{mod:<{width}}  {percents[mod]:6.2f}%  "
              f"({covered}/{total} lines)")

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        recorded = {m: round(p, 2) for m, p in sorted(percents.items())}
        baseline_path.write_text(json.dumps(recorded, indent=2) + "\n")
        print(f"baseline written: {baseline_path}")
        return 0

    if not baseline_path.is_file():
        print(f"error: baseline {baseline_path} missing — run with "
              "--write-baseline once", file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for mod, floor in sorted(baseline.items()):
        got = percents.get(mod)
        if got is None:
            failures.append(f"{mod}: no coverage data (baseline {floor}%)")
        elif got + args.slack < floor:
            failures.append(
                f"{mod}: {got:.2f}% < baseline {floor}% (slack "
                f"{args.slack})")
    if failures:
        print("\nCOVERAGE GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\ncoverage gate passed "
          f"({len(baseline)} module floors held)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
