// Tests for the interactive online mode (Section 5, Algorithm 5) and the
// ASCII graph renderer that stands in for the Fuzzy Prophet GUI.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "interactive/ascii_graph.h"
#include "interactive/interactive_session.h"
#include "models/cloud_models.h"

namespace jigsaw {
namespace {

InteractiveConfig SmallConfig() {
  InteractiveConfig cfg;
  cfg.run.num_samples = 1000;
  cfg.run.fingerprint_size = 10;
  cfg.max_samples = 1000;
  cfg.batch_size = 10;
  return cfg;
}

ParameterSpace DemandSpace() {
  ParameterSpace space;
  EXPECT_TRUE(space.Add({"week", RangeDomain{1, 30, 1}}).ok());
  EXPECT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());
  return space;
}

SimFunctionPtr DemandFn() {
  CloudModelConfig cfg;
  return std::make_shared<BlackBoxSimFunction>(MakeDemandModel(cfg));
}

TEST(InteractiveTest, FirstTickProducesAnEstimate) {
  InteractiveSession session(DemandFn(), DemandSpace(), SmallConfig());
  ASSERT_TRUE(session.SetFocus(9).ok());  // week 10
  EXPECT_FALSE(session.EstimateFor(9).available);
  session.Tick();
  const DisplayEstimate est = session.EstimateFor(9);
  ASSERT_TRUE(est.available);
  EXPECT_GT(est.support, 0);
  // Even a 10-sample estimate should be in the right ballpark (week 10
  // demand has mean 10, sd ~1).
  EXPECT_NEAR(est.mean, 10.0, 3.0);
}

TEST(InteractiveTest, EstimateConvergesWithTicks) {
  InteractiveSession session(DemandFn(), DemandSpace(), SmallConfig());
  ASSERT_TRUE(session.SetFocus(19).ok());  // week 20
  session.Run(200);
  const DisplayEstimate est = session.EstimateFor(19);
  ASSERT_TRUE(est.available);
  EXPECT_GT(est.support, 100);
  EXPECT_NEAR(est.mean, 20.0, 0.8);
  EXPECT_LT(est.std_error, 0.5);
}

TEST(InteractiveTest, NeighborsBorrowThroughMappedBasis) {
  InteractiveSession session(DemandFn(), DemandSpace(), SmallConfig());
  ASSERT_TRUE(session.SetFocus(9).ok());
  session.Run(300);
  // Exploration has touched neighbors; mapped estimates come for free.
  EXPECT_GT(session.stats().borrow_hits, 0u);
  // All demand weeks are linearly mappable: few bases for many touched
  // points.
  EXPECT_LE(session.basis_count(), 3u);
  // A neighbor estimate is available and correct despite never being the
  // focus.
  const DisplayEstimate n8 = session.EstimateFor(8);
  if (n8.available) {
    EXPECT_NEAR(n8.mean, 9.0, 2.0);
  }
}

TEST(InteractiveTest, RefinementSharpensSharedBasis) {
  InteractiveSession session(DemandFn(), DemandSpace(), SmallConfig());
  ASSERT_TRUE(session.SetFocus(4).ok());
  session.Run(20);
  const double se_early = session.EstimateFor(4).std_error;
  session.Run(400);
  const double se_late = session.EstimateFor(4).std_error;
  EXPECT_LT(se_late, se_early);
}

TEST(InteractiveTest, TaskMixIncludesAllKinds) {
  InteractiveSession session(DemandFn(), DemandSpace(), SmallConfig());
  ASSERT_TRUE(session.SetFocus(9).ok());
  bool saw_refine = false, saw_validate = false, saw_explore = false;
  for (int i = 0; i < 300; ++i) {
    switch (session.Tick()) {
      case InteractiveTask::kRefinement:
        saw_refine = true;
        break;
      case InteractiveTask::kValidation:
        saw_validate = true;
        break;
      case InteractiveTask::kExploration:
        saw_explore = true;
        break;
    }
  }
  EXPECT_TRUE(saw_refine);
  EXPECT_TRUE(saw_validate);
  EXPECT_TRUE(saw_explore);
}

TEST(InteractiveTest, ValidationDetectsFalseSharingAndRebinds) {
  // A function engineered to fool a 10-sample fingerprint: points 0 and 1
  // agree on sample ids < 12 but diverge beyond. Validation must catch
  // the bad mapping and rebind.
  auto fn = std::make_shared<CallableSimFunction>(
      "trap",
      [](std::span<const double> p, std::size_t k, const SeedVector& seeds) {
        RandomStream rng(DeriveStreamSeed(seeds.seed(k), 7));
        const double base = rng.Gaussian();
        if (p[0] > 0.5 && k >= 12) return base * 3.0 + 100.0;
        return base;
      });
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"p", SetDomain{{0.0, 1.0}}}).ok());

  InteractiveConfig cfg = SmallConfig();
  cfg.validation_weight = 0.5;
  InteractiveSession session(fn, space, cfg);

  ASSERT_TRUE(session.SetFocus(0).ok());
  session.Run(50);
  ASSERT_TRUE(session.SetFocus(1).ok());
  session.Run(200);
  // The trap point must eventually detach from point 0's basis...
  EXPECT_GT(session.stats().rebinds, 0u);
  // ...and its estimate must reflect the true (shifted) distribution.
  const DisplayEstimate est = session.EstimateFor(1);
  ASSERT_TRUE(est.available);
  EXPECT_GT(est.mean, 50.0);
}

TEST(InteractiveTest, ThreadedSessionIsBitIdenticalToSerial) {
  // num_threads only parallelizes sample evaluation inside a tick; the
  // fold into basis/point state stays serial in id order, so the whole
  // trajectory — estimates and stats — must match the serial session.
  auto run = [](std::size_t threads) {
    InteractiveConfig cfg = SmallConfig();
    cfg.run.num_threads = threads;
    auto session = std::make_unique<InteractiveSession>(
        DemandFn(), DemandSpace(), cfg);
    EXPECT_TRUE(session->SetFocus(14).ok());
    session->Run(150);
    return session;
  };
  auto serial = run(1);
  for (std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    auto parallel = run(threads);
    EXPECT_EQ(serial->stats().evaluations, parallel->stats().evaluations);
    EXPECT_EQ(serial->stats().rebinds, parallel->stats().rebinds);
    EXPECT_EQ(serial->stats().basis_created,
              parallel->stats().basis_created);
    EXPECT_EQ(serial->stats().borrow_hits, parallel->stats().borrow_hits);
    EXPECT_EQ(serial->basis_count(), parallel->basis_count());
    for (std::size_t point : {13u, 14u, 15u}) {
      const DisplayEstimate a = serial->EstimateFor(point);
      const DisplayEstimate b = parallel->EstimateFor(point);
      EXPECT_EQ(a.available, b.available);
      EXPECT_EQ(a.mean, b.mean);
      EXPECT_EQ(a.std_error, b.std_error);
      EXPECT_EQ(a.support, b.support);
    }
  }
}

TEST(InteractiveTest, SetFocusValidatesRange) {
  InteractiveSession session(DemandFn(), DemandSpace(), SmallConfig());
  EXPECT_TRUE(session.SetFocus(0).ok());
  EXPECT_EQ(session.SetFocus(10000).code(), StatusCode::kOutOfRange);
}

TEST(InteractiveTest, PrimeFromSweepServesEstimateBeforeAnyTick) {
  // A MONTECARLO OVER sweep's per-point summaries (keep_samples, same
  // master seed) are addressable from the session: priming a point makes
  // its estimate available with the sweep's full support, bit-identical
  // to the sweep's own accumulator, before a single tick has run.
  const InteractiveConfig cfg = SmallConfig();
  auto fn = DemandFn();
  const ParameterSpace space = DemandSpace();
  const std::size_t kPoint = 9;  // week 10
  const std::size_t kWorlds = 120;

  // Stand-in for one sweep point's output: sample k from seed sigma_k at
  // the point's valuation — exactly what the possible-worlds executor
  // evaluates for world k.
  const SeedVector seeds(cfg.run.master_seed, kWorlds);
  const auto valuation = space.ValuationAt(kPoint);
  std::vector<double> samples;
  for (std::size_t k = 0; k < kWorlds; ++k) {
    samples.push_back(fn->Sample(valuation, k, seeds));
  }
  const OutputMetrics metrics =
      MetricsFromSamples(samples, /*keep_samples=*/true, 20);

  InteractiveSession session(fn, space, cfg);
  EXPECT_FALSE(session.EstimateFor(kPoint).available);
  ASSERT_TRUE(session.PrimeFromSweep(kPoint, metrics).ok());

  const DisplayEstimate primed = session.EstimateFor(kPoint);
  ASSERT_TRUE(primed.available);
  EXPECT_EQ(primed.support, static_cast<std::int64_t>(kWorlds));
  WelfordAccumulator acc;
  acc.AddSpan(samples);
  EXPECT_EQ(primed.mean, acc.mean());
  EXPECT_EQ(primed.std_error, acc.standard_error());

  // Ticks build on the primed state: the imported values are the fn's own
  // draws, so validation never rebinds, and refinement keeps growing the
  // support.
  ASSERT_TRUE(session.SetFocus(kPoint).ok());
  session.Run(100);
  EXPECT_EQ(session.stats().rebinds, 0u);
  EXPECT_GE(session.EstimateFor(kPoint).support,
            static_cast<std::int64_t>(kWorlds));
}

TEST(InteractiveTest, PrimeFromSweepRefinesAnAlreadyBoundPoint) {
  // Priming a point that ticks have already bound must not discard the
  // sweep data: imported ids the basis lacks refine it through the same
  // fold a refinement tick uses, so the support grows to the sweep's.
  const InteractiveConfig cfg = SmallConfig();
  auto fn = DemandFn();
  const ParameterSpace space = DemandSpace();
  const std::size_t kPoint = 4;
  const std::size_t kWorlds = 200;

  InteractiveSession session(fn, space, cfg);
  ASSERT_TRUE(session.SetFocus(kPoint).ok());
  session.Run(3);  // bind with a handful of tick batches
  const DisplayEstimate before = session.EstimateFor(kPoint);
  ASSERT_TRUE(before.available);
  ASSERT_LT(before.support, static_cast<std::int64_t>(kWorlds));

  const SeedVector seeds(cfg.run.master_seed, kWorlds);
  const auto valuation = space.ValuationAt(kPoint);
  std::vector<double> samples;
  for (std::size_t k = 0; k < kWorlds; ++k) {
    samples.push_back(fn->Sample(valuation, k, seeds));
  }
  ASSERT_TRUE(
      session
          .PrimeFromSweep(kPoint, MetricsFromSamples(samples, true, 20))
          .ok());
  // Own draws agree with the mapping, so nothing rebinds and every
  // imported id now backs the estimate.
  EXPECT_EQ(session.stats().rebinds, 0u);
  EXPECT_EQ(session.EstimateFor(kPoint).support,
            static_cast<std::int64_t>(kWorlds));
}

TEST(InteractiveTest, PrimeFromSweepValidatesInput) {
  InteractiveSession session(DemandFn(), DemandSpace(), SmallConfig());
  OutputMetrics no_samples;
  no_samples.count = 10;  // summaries alone are not addressable state
  EXPECT_EQ(session.PrimeFromSweep(0, no_samples).code(),
            StatusCode::kInvalidArgument);
  OutputMetrics with_samples;
  with_samples.samples = {1.0, 2.0};
  EXPECT_EQ(session.PrimeFromSweep(10000, with_samples).code(),
            StatusCode::kOutOfRange);

  // More retained samples than the session has sample ids for must fail
  // loudly rather than silently import a prefix.
  OutputMetrics oversized;
  oversized.samples.assign(SmallConfig().max_samples + 1, 1.0);
  const Status s = session.PrimeFromSweep(0, oversized);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("max_samples"), std::string::npos);
}

TEST(InteractiveTest, StatsCountEvaluations) {
  InteractiveSession session(DemandFn(), DemandSpace(), SmallConfig());
  ASSERT_TRUE(session.SetFocus(3).ok());
  session.Run(10);
  EXPECT_EQ(session.stats().ticks, 10u);
  EXPECT_GT(session.stats().evaluations, 0u);
  EXPECT_LE(session.stats().evaluations, 10u * 10u);
}

// ---------------------------------------------------------------------------
// ASCII graph renderer
// ---------------------------------------------------------------------------

TEST(AsciiGraphTest, GlyphMappingIsStable) {
  EXPECT_EQ(GlyphForStyle("bold red", 0), '#');
  EXPECT_EQ(GlyphForStyle("red", 0), '*');
  EXPECT_EQ(GlyphForStyle("blue y2", 0), '+');
  EXPECT_EQ(GlyphForStyle("orange y2", 0), 'o');
  EXPECT_EQ(GlyphForStyle("", 0), '*');
  EXPECT_EQ(GlyphForStyle("", 1), '+');
}

TEST(AsciiGraphTest, RendersSeriesPointsAndLegend) {
  AsciiSeries s;
  s.label = "demand";
  s.style = "bold red";
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(i * 2.0);
  }
  const std::string out = RenderAsciiGraph({s});
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("demand"), std::string::npos);
  EXPECT_NE(out.find("bold red"), std::string::npos);
  // Axis labels include the y range.
  EXPECT_NE(out.find("20"), std::string::npos);
}

TEST(AsciiGraphTest, EmptyDataHandledGracefully) {
  EXPECT_EQ(RenderAsciiGraph({}), "(no data)\n");
  AsciiSeries s;
  s.label = "empty";
  EXPECT_EQ(RenderAsciiGraph({s}), "(no data)\n");
}

TEST(AsciiGraphTest, ConstantSeriesDoesNotDivideByZero) {
  AsciiSeries s;
  s.label = "flat";
  s.x = {0, 1, 2};
  s.y = {5, 5, 5};
  const std::string out = RenderAsciiGraph({s});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiGraphTest, MultipleSeriesShareScale) {
  AsciiSeries a, b;
  a.label = "low";
  a.x = {0, 1};
  a.y = {0, 1};
  b.label = "high";
  b.x = {0, 1};
  b.y = {9, 10};
  const std::string out = RenderAsciiGraph({a, b});
  EXPECT_NE(out.find("low"), std::string::npos);
  EXPECT_NE(out.find("high"), std::string::npos);
}

}  // namespace
}  // namespace jigsaw
