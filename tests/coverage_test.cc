// Focused tests for behaviours not covered by the per-module suites:
// optimizer degenerate forms, selector-less optimization, graph rendering
// geometry, layered-engine failure paths, chain-scenario output salts,
// and SQL report formatting.

#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.h"
#include "core/sim_runner.h"
#include "interactive/ascii_graph.h"
#include "markov/markov_models.h"
#include "models/cloud_models.h"
#include "pdb/layered_engine.h"
#include "sql/script_runner.h"

namespace jigsaw {
namespace {

// ---------------------------------------------------------------------------
// Optimizer degenerate forms
// ---------------------------------------------------------------------------

Scenario TinyScenario() {
  Scenario scenario;
  EXPECT_TRUE(scenario.params.Add({"p", SetDomain{{1.0, 2.0, 3.0}}}).ok());
  auto model = MakeDemandModel({});
  scenario.columns.push_back(ScenarioColumn{
      "d", std::make_shared<CallableSimFunction>(
               "d", [model](std::span<const double> v, std::size_t k,
                            const SeedVector& seeds) {
                 const std::vector<double> args = {v[0] * 10.0, 52.0};
                 return InvokeSeeded(*model, args, seeds.seed(k));
               })});
  return scenario;
}

TEST(OptimizerEdgeTest, NoObjectivesFirstFeasibleWins) {
  Scenario scenario = TinyScenario();
  OptimizeSpec spec;
  spec.group_params = {"p"};
  spec.constraints.push_back(MetricConstraint{
      SweepAgg::kMax, MetricSelector::kExpect, "d", CmpOp::kGt, 5.0});
  // No FOR clause: the selector has no terms and the first feasible group
  // is kept.
  RunConfig cfg;
  cfg.num_samples = 100;
  SimulationRunner runner(cfg);
  Optimizer optimizer(&runner);
  auto result = optimizer.Run(scenario, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.value().found);
  // p=1 -> demand mean 10 > 5: the first group already qualifies.
  EXPECT_DOUBLE_EQ(result.value().best_valuation[0], 1.0);
}

TEST(OptimizerEdgeTest, AllParamsGrouped_NoSweepDimension) {
  Scenario scenario = TinyScenario();
  OptimizeSpec spec;
  spec.group_params = {"p"};  // the only parameter
  spec.constraints.push_back(MetricConstraint{
      SweepAgg::kAvg, MetricSelector::kExpect, "d", CmpOp::kGe, 0.0});
  spec.objectives.push_back(ObjectiveTerm{"p", false});  // FOR MIN @p
  RunConfig cfg;
  cfg.num_samples = 50;
  SimulationRunner runner(cfg);
  Optimizer optimizer(&runner);
  auto result = optimizer.Run(scenario, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().found);
  EXPECT_DOUBLE_EQ(result.value().best_valuation[0], 1.0);  // minimized
  // Each group evaluated exactly one sweep point (the empty sweep).
  EXPECT_EQ(result.value().points_simulated, 3u);
}

TEST(OptimizerEdgeTest, SumAggregateAccumulatesOverSweep) {
  Scenario scenario;
  ASSERT_TRUE(scenario.params.Add({"g", SetDomain{{1.0}}}).ok());
  ASSERT_TRUE(scenario.params.Add({"s", SetDomain{{1.0, 2.0, 3.0}}}).ok());
  scenario.columns.push_back(ScenarioColumn{
      "x", std::make_shared<CallableSimFunction>(
               "x", [](std::span<const double> v, std::size_t,
                       const SeedVector&) { return v[1]; })});
  OptimizeSpec spec;
  spec.group_params = {"g"};
  spec.constraints.push_back(MetricConstraint{
      SweepAgg::kSum, MetricSelector::kExpect, "x", CmpOp::kGe, 5.9});
  RunConfig cfg;
  cfg.num_samples = 10;
  SimulationRunner runner(cfg);
  Optimizer optimizer(&runner);
  auto result = optimizer.Run(scenario, spec);
  ASSERT_TRUE(result.ok());
  // Sum over sweep = 1+2+3 = 6 >= 5.9.
  EXPECT_TRUE(result.value().found);
  EXPECT_NEAR(result.value().groups[0].constraint_lhs[0], 6.0, 1e-9);
}

// ---------------------------------------------------------------------------
// ASCII graph geometry
// ---------------------------------------------------------------------------

TEST(AsciiGraphGeometryTest, RespectsRequestedDimensions) {
  AsciiSeries s;
  s.label = "line";
  for (int i = 0; i < 50; ++i) {
    s.x.push_back(i);
    s.y.push_back(i);
  }
  AsciiGraphOptions opts;
  opts.width = 40;
  opts.height = 10;
  opts.legend = false;
  const std::string out = RenderAsciiGraph({s}, opts);
  // Plot rows = height, plus two border rows and the x-label row.
  int rows = 0;
  for (char c : out) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, 10 + 3);
  EXPECT_EQ(out.find("line"), std::string::npos);  // legend disabled
}

TEST(AsciiGraphGeometryTest, MinimumSizeClamped) {
  AsciiSeries s;
  s.label = "dot";
  s.x = {0.0};
  s.y = {1.0};
  AsciiGraphOptions opts;
  opts.width = 1;   // clamped to 8
  opts.height = 1;  // clamped to 4
  const std::string out = RenderAsciiGraph({s}, opts);
  EXPECT_NE(out.find('*'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Layered engine failure paths
// ---------------------------------------------------------------------------

TEST(LayeredEngineEdgeTest, PlanFactoryErrorPropagates) {
  RunConfig cfg;
  cfg.num_samples = 3;
  pdb::LayeredEngine engine(cfg);
  auto r = engine.RunPoint(
      []() -> Result<pdb::PlanNodePtr> {
        return Status::Internal("boom");
      },
      std::vector<double>{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(LayeredEngineEdgeTest, MultiRowPlanRejected) {
  RunConfig cfg;
  cfg.num_samples = 1;
  pdb::LayeredEngine engine(cfg);
  auto r = engine.RunPoint(
      []() -> Result<pdb::PlanNodePtr> {
        pdb::Table t(pdb::Schema(
            std::vector<pdb::Column>{{"x", pdb::ValueType::kDouble}}));
        JIGSAW_RETURN_IF_ERROR(t.AddRow({pdb::Value(1.0)}));
        JIGSAW_RETURN_IF_ERROR(t.AddRow({pdb::Value(2.0)}));
        return pdb::MakeOwnedTableScan(std::move(t));
      },
      std::vector<double>{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

// ---------------------------------------------------------------------------
// Chain scenario: output salt independence
// ---------------------------------------------------------------------------

TEST(ChainOutputTest, OutputDrawsIndependentOfStepDraws) {
  // The observable extraction at a step must not perturb (or reuse) the
  // transition randomness of that step: output salts differ from step
  // salts.
  MarkovStepProcess process((MarkovStepConfig()));
  SeedVector seeds(99, 4);
  const double out1 = process.OutputForInstance(52.0, 10, 0, seeds);
  const double out2 = process.OutputForInstance(52.0, 10, 0, seeds);
  EXPECT_EQ(out1, out2);  // deterministic
  const double step = process.StepForInstance(52.0, 10, 0, seeds);
  // Same (instance, step) but different purpose: with overwhelming
  // probability the draws differ (distinct salts).
  EXPECT_NE(out1, step);
}

// ---------------------------------------------------------------------------
// Script report formatting
// ---------------------------------------------------------------------------

TEST(ReportTest, MentionsReuseAndBases) {
  ModelRegistry registry;
  ASSERT_TRUE(RegisterCloudModels(&registry).ok());
  RunConfig cfg;
  cfg.num_samples = 100;
  sql::ScriptRunner runner(&registry, cfg);
  auto outcome = runner.Run(
      "DECLARE PARAMETER @w AS RANGE 1 TO 20 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "GRAPH OVER @w EXPECT d;");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const std::string report = outcome.value().Report();
  EXPECT_NE(report.find("GRAPH over @w"), std::string::npos);
  EXPECT_NE(report.find("reused"), std::string::npos);
  EXPECT_NE(report.find("basis"), std::string::npos);
}

TEST(ReportTest, OptimizeResultNamesParameters) {
  OptimizeResult r;
  r.found = true;
  r.group_param_names = {"purchase1", "purchase2"};
  r.best_valuation = {36.0, 44.0};
  r.groups.resize(2);
  r.groups[0].feasible = true;
  const std::string s = r.ToString();
  EXPECT_NE(s.find("@purchase1=36"), std::string::npos);
  EXPECT_NE(s.find("@purchase2=44"), std::string::npos);
  EXPECT_NE(s.find("1/2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Estimator reuse statistics surface in PointResult
// ---------------------------------------------------------------------------

TEST(PointResultTest, ReusedPointRecordsMappingAndBasis) {
  BlackBoxSimFunction fn(MakeDemandModel({}));
  RunConfig cfg;
  cfg.num_samples = 120;
  SimulationRunner runner(cfg);
  const auto first = runner.RunPoint(fn, std::vector<double>{5.0, 52.0});
  EXPECT_FALSE(first.reused);
  ASSERT_NE(first.mapping, nullptr);
  EXPECT_TRUE(first.mapping->IsIdentity());

  const auto second = runner.RunPoint(fn, std::vector<double>{20.0, 52.0});
  ASSERT_TRUE(second.reused);
  EXPECT_EQ(second.basis_id, first.basis_id);
  const auto affine = second.mapping->AsAffine();
  ASSERT_TRUE(affine.has_value());
  // Mapping week 5 (sd = sqrt(0.5)) to week 20 (sd = 2): alpha = 2.
  EXPECT_NEAR(affine->first, std::sqrt(0.1 * 20.0) / std::sqrt(0.1 * 5.0),
              1e-9);
  EXPECT_EQ(runner.basis_store().Get(first.basis_id).reuse_count, 1u);
}

}  // namespace
}  // namespace jigsaw
