#pragma once

/// \file grid_test_util.h
/// The acceptance grid every parallel/batched surface is verified on:
/// batch sizes {1, 7, 64} x thread counts {1, 2, 8}. The suites that
/// claim "bit-identical at every (num_threads, batch_size) combination"
/// (pdb_test, sql_test, batched_sampling_test) all walk this one grid so
/// a new surface cannot quietly test a narrower one.

#include <gtest/gtest.h>

#include <array>
#include <cstddef>

namespace jigsaw::test {

/// Batch sizes covering the degenerate (1), straddling-remainder (7) and
/// default (64) chunkings.
inline constexpr std::array<std::size_t, 3> kGridBatchSizes = {1u, 7u, 64u};

/// Thread counts covering serial (1), minimal contention (2) and
/// oversubscription (8; the dev container may have fewer cores).
inline constexpr std::array<std::size_t, 3> kGridThreadCounts = {1u, 2u, 8u};

/// Parallel-only thread counts, for tests whose reference IS the
/// single-threaded run.
inline constexpr std::array<std::size_t, 2> kGridParallelThreadCounts = {2u,
                                                                        8u};

inline const std::array<std::size_t, 3>& GridBatchSizes() {
  return kGridBatchSizes;
}
inline const std::array<std::size_t, 3>& GridThreadCounts() {
  return kGridThreadCounts;
}
inline const std::array<std::size_t, 2>& GridParallelThreadCounts() {
  return kGridParallelThreadCounts;
}

/// Invokes fn(threads, batch) at every grid point, each call wrapped in a
/// SCOPED_TRACE naming the coordinates.
template <typename Fn>
void ForEachGridPoint(Fn&& fn) {
  for (std::size_t threads : GridThreadCounts()) {
    for (std::size_t batch : GridBatchSizes()) {
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " batch=" << batch);
      fn(threads, batch);
    }
  }
}

/// Grid walk without threads=1, for suites that diff against the serial
/// run itself.
template <typename Fn>
void ForEachParallelGridPoint(Fn&& fn) {
  for (std::size_t threads : GridParallelThreadCounts()) {
    for (std::size_t batch : GridBatchSizes()) {
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " batch=" << batch);
      fn(threads, batch);
    }
  }
}

/// Batch-axis walk at a fixed thread count (the chain runner and other
/// serial-only surfaces still verify every chunking).
template <typename Fn>
void ForEachGridBatch(Fn&& fn) {
  for (std::size_t batch : GridBatchSizes()) {
    SCOPED_TRACE(::testing::Message() << "batch=" << batch);
    fn(batch);
  }
}

/// Session counts for the serving-layer grid: single tenant (1), modest
/// concurrency (4), and far more sessions than the widest pool (16 —
/// saturation, every session contending for the same workers).
inline constexpr std::array<std::size_t, 3> kGridSessionCounts = {1u, 4u,
                                                                  16u};

inline const std::array<std::size_t, 3>& GridSessionCounts() {
  return kGridSessionCounts;
}

/// Invokes fn(sessions, threads) at every (session count x pool width)
/// point — the acceptance grid of serve_test: every concurrency shape a
/// deployment can take, from one serial tenant to 16 sessions fighting
/// over 2 workers.
template <typename Fn>
void ForEachSessionGridPoint(Fn&& fn) {
  for (std::size_t sessions : GridSessionCounts()) {
    for (std::size_t threads : GridThreadCounts()) {
      SCOPED_TRACE(::testing::Message()
                   << "sessions=" << sessions << " threads=" << threads);
      fn(sessions, threads);
    }
  }
}

}  // namespace jigsaw::test
