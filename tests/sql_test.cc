// Tests for the Jigsaw query language: lexer, parser (Figure 1 / Figure 5
// syntax), binder (name resolution, call-site assignment, chain
// validation) and the end-to-end script runner.

#include <gtest/gtest.h>

#include <map>
#include <span>
#include <string>
#include <vector>

#include "grid_test_util.h"
#include "models/cloud_models.h"
#include "sql/binder.h"
#include "sql/chain_process.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/script_runner.h"
#include "util/string_util.h"

namespace jigsaw::sql {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, TokenizesBasicQuery) {
  auto tokens = Lex("SELECT a, @p FROM t;");
  ASSERT_TRUE(tokens.ok());
  const auto& ts = tokens.value();
  ASSERT_EQ(ts.size(), 8u);  // SELECT a , @p FROM t ; <end>
  EXPECT_EQ(ts[0].kind, TokenKind::kIdent);
  EXPECT_EQ(ts[0].text, "SELECT");
  EXPECT_EQ(ts[2].kind, TokenKind::kSymbol);
  EXPECT_EQ(ts[3].kind, TokenKind::kParam);
  EXPECT_EQ(ts[3].text, "p");
  EXPECT_EQ(ts.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Lex("42 2.5 1e3 'hi there'");
  ASSERT_TRUE(tokens.ok());
  const auto& ts = tokens.value();
  EXPECT_DOUBLE_EQ(ts[0].number, 42.0);
  EXPECT_DOUBLE_EQ(ts[1].number, 2.5);
  EXPECT_DOUBLE_EQ(ts[2].number, 1000.0);
  EXPECT_EQ(ts[3].kind, TokenKind::kString);
  EXPECT_EQ(ts[3].text, "hi there");
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Lex("-- DEFINITION --\nSELECT x -- trailing\n");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens.value().size(), 3u);  // SELECT x <end>
}

TEST(LexerTest, MultiCharOperators) {
  auto tokens = Lex("a <= b >= c <> d != e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[1].text, "<=");
  EXPECT_EQ(tokens.value()[3].text, ">=");
  EXPECT_EQ(tokens.value()[5].text, "<>");
  EXPECT_EQ(tokens.value()[7].text, "!=");
}

TEST(LexerTest, TracksLinePositions) {
  auto tokens = Lex("a\nbb\n  c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].line, 1u);
  EXPECT_EQ(tokens.value()[1].line, 2u);
  EXPECT_EQ(tokens.value()[2].line, 3u);
  EXPECT_EQ(tokens.value()[2].column, 3u);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("@ x").ok());       // bare @
  EXPECT_FALSE(Lex("'unclosed").ok());  // unterminated string
  EXPECT_FALSE(Lex("a $ b").ok());      // stray character
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, DeclareRange) {
  auto script = ParseScript(
      "DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script.value().statements.size(), 1u);
  const auto& d = *script.value().statements[0].declare;
  EXPECT_EQ(d.param, "current_week");
  ASSERT_TRUE(d.range.has_value());
  EXPECT_DOUBLE_EQ(d.range->lo, 0);
  EXPECT_DOUBLE_EQ(d.range->hi, 52);
  EXPECT_DOUBLE_EQ(d.range->step, 1);
}

TEST(ParserTest, DeclareSetAndNegativeNumbers) {
  auto script =
      ParseScript("DECLARE PARAMETER @f AS SET (12, -36, 44.5);");
  ASSERT_TRUE(script.ok());
  const auto& d = *script.value().statements[0].declare;
  ASSERT_TRUE(d.set.has_value());
  ASSERT_EQ(d.set->values.size(), 3u);
  EXPECT_DOUBLE_EQ(d.set->values[1], -36.0);
}

TEST(ParserTest, DeclareChainFigure5Syntax) {
  auto script = ParseScript(
      "DECLARE PARAMETER @release_week AS CHAIN release_week "
      "FROM @current_week : @current_week - 1 INITIAL VALUE 52;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  const auto& d = *script.value().statements[0].declare;
  ASSERT_TRUE(d.chain.has_value());
  EXPECT_EQ(d.chain->column, "release_week");
  EXPECT_EQ(d.chain->driver_param, "current_week");
  EXPECT_DOUBLE_EQ(d.chain->initial, 52.0);
  EXPECT_EQ(d.chain->source_step->ToString(), "(@current_week - 1)");
}

TEST(ParserTest, Figure1QueryParses) {
  // The batch-mode query of the paper's Figure 1, verbatim modulo model
  // names.
  const char* kQuery = R"(
-- DEFINITION --
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @feature_release AS SET (12,36,44);
SELECT DemandModel(@current_week, @feature_release)
         AS demand,
       CapacityModel(@current_week, @purchase1, @purchase2)
         AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END
         AS overload
INTO results;
-- BATCH MODE --
OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.01
GROUP BY feature_release, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
)";
  auto script = ParseScript(kQuery);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script.value().statements.size(), 6u);

  const auto& sel = *script.value().statements[4].select;
  ASSERT_EQ(sel.items.size(), 3u);
  EXPECT_EQ(sel.items[0].alias, "demand");
  EXPECT_EQ(sel.items[2].alias, "overload");
  EXPECT_EQ(sel.into_table, "results");

  const auto& opt = *script.value().statements[5].optimize;
  EXPECT_EQ(opt.select_params.size(), 3u);
  EXPECT_EQ(opt.from_table, "results");
  ASSERT_EQ(opt.constraints.size(), 1u);
  EXPECT_EQ(opt.constraints[0].sweep_agg, "MAX");
  EXPECT_EQ(opt.constraints[0].metric, "EXPECT");
  EXPECT_EQ(opt.constraints[0].column, "overload");
  EXPECT_EQ(opt.constraints[0].cmp, "<");
  EXPECT_DOUBLE_EQ(opt.constraints[0].threshold, 0.01);
  ASSERT_EQ(opt.group_by.size(), 3u);
  ASSERT_EQ(opt.objectives.size(), 2u);
  EXPECT_TRUE(opt.objectives[0].maximize);
  EXPECT_EQ(opt.objectives[0].param, "purchase1");
}

TEST(ParserTest, GraphQueryParses) {
  auto script = ParseScript(
      "DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;"
      "SELECT 1 AS overload, 2 AS capacity, 3 AS demand INTO results;"
      "GRAPH OVER @current_week "
      "EXPECT overload WITH bold red, "
      "EXPECT capacity WITH blue y2, "
      "EXPECT_STDDEV demand WITH orange y2");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  const auto& g = *script.value().statements[2].graph;
  EXPECT_EQ(g.x_param, "current_week");
  ASSERT_EQ(g.series.size(), 3u);
  EXPECT_EQ(g.series[0].metric, "EXPECT");
  EXPECT_EQ(g.series[0].column, "overload");
  EXPECT_EQ(g.series[0].style, (std::vector<std::string>{"bold", "red"}));
  EXPECT_EQ(g.series[2].metric, "EXPECT_STDDEV");
}

TEST(ParserTest, SubqueryFromClause) {
  auto script = ParseScript(
      "SELECT ReleaseWeekModel(demand) AS release_week, demand "
      "FROM (SELECT DemandModel(@w, @r) AS demand) INTO results;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  const auto& sel = *script.value().statements[0].select;
  ASSERT_NE(sel.from_subquery, nullptr);
  ASSERT_EQ(sel.from_subquery->items.size(), 1u);
  EXPECT_EQ(sel.from_subquery->items[0].alias, "demand");
  // `demand` without AS keeps its own name as alias.
  EXPECT_EQ(sel.items[1].alias, "demand");
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 < 10 - 2");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->ToString(), "((1 + (2 * 3)) < (10 - 2))");
  auto e2 = ParseExpression("(1 + 2) * 3");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2.value()->ToString(), "((1 + 2) * 3)");
  auto e3 = ParseExpression("NOT a AND b OR c");
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(e3.value()->ToString(), "((NOT a AND b) OR c)");
  auto e4 = ParseExpression("-x * 2");
  ASSERT_TRUE(e4.ok());
  EXPECT_EQ(e4.value()->ToString(), "(-x * 2)");
}

TEST(ParserTest, ErrorsCarryPositions) {
  auto bad = ParseScript("DECLARE PARAMETER current_week AS RANGE 0 TO 5;");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(bad.status().message().find("@parameter"), std::string::npos);
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseScript("SELECT;").ok());
  EXPECT_FALSE(ParseScript("DECLARE PARAMETER @p AS TRIANGLE 1;").ok());
  EXPECT_FALSE(ParseScript("OPTIMIZE SELECT @p FROM t GROUP BY;").ok());
  EXPECT_FALSE(ParseScript("GRAPH OVER @p BOGUS col;").ok());
  EXPECT_FALSE(ParseScript("SELECT CASE END;").ok());
  EXPECT_FALSE(ParseScript("FROB x;").ok());
}

// ---------------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------------

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(RegisterCloudModels(&registry_).ok());
  }
  ModelRegistry registry_;
};

constexpr const char* kFigure1 = R"(
DECLARE PARAMETER @current_week AS RANGE 0 TO 20 STEP BY 2;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 16 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 16 STEP BY 8;
DECLARE PARAMETER @feature_release AS SET (12,36,44);
SELECT DemandModel(@current_week, @feature_release) AS demand,
       CapacityModel(@current_week, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.5
GROUP BY feature_release, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
)";

TEST_F(BinderTest, BindsFigure1Scenario) {
  auto bound = ParseAndBind(kFigure1, registry_);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const auto& b = bound.value();
  EXPECT_EQ(b.scenario.params.num_params(), 4u);
  ASSERT_EQ(b.scenario.columns.size(), 3u);
  EXPECT_EQ(b.scenario.columns[2].name, "overload");
  EXPECT_EQ(b.scenario.into_table, "results");
  ASSERT_TRUE(b.optimize.has_value());
  EXPECT_EQ(b.optimize->group_params.size(), 3u);
  EXPECT_FALSE(b.chain.has_value());

  // The overload column must be evaluable and boolean.
  SeedVector seeds(42, 4);
  const auto v = b.scenario.params.ValuationAt(0);
  const double overload = b.scenario.columns[2].fn->Sample(v, 0, seeds);
  EXPECT_TRUE(overload == 0.0 || overload == 1.0);
}

TEST_F(BinderTest, AliasReferenceCrossColumnIsConsistent) {
  // `overload` recomputes demand and capacity through alias refs; the
  // values must be the same draws the sibling columns produced (same
  // call sites, same world).
  auto bound = ParseAndBind(kFigure1, registry_);
  ASSERT_TRUE(bound.ok());
  const auto& b = bound.value();
  SeedVector seeds(43, 8);
  const auto v = b.scenario.params.ValuationAt(5);
  for (std::size_t k = 0; k < 8; ++k) {
    const double demand = b.scenario.columns[0].fn->Sample(v, k, seeds);
    const double capacity = b.scenario.columns[1].fn->Sample(v, k, seeds);
    const double overload = b.scenario.columns[2].fn->Sample(v, k, seeds);
    EXPECT_DOUBLE_EQ(overload, capacity < demand ? 1.0 : 0.0);
  }
}

TEST_F(BinderTest, BindsFigure5ChainScenario) {
  const char* kFigure5 = R"(
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @release_week AS CHAIN release_week
  FROM @current_week : @current_week - 1 INITIAL VALUE 52;
SELECT CASE WHEN demand > 26 AND @current_week + 4 < @release_week
            THEN @current_week + 4 ELSE @release_week END AS release_week,
       demand
FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
INTO results;
)";
  auto bound = ParseAndBind(kFigure5, registry_);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const auto& b = bound.value();
  ASSERT_TRUE(b.chain.has_value());
  EXPECT_EQ(b.chain->chain_param_index, 1u);
  EXPECT_EQ(b.chain->driver_param_index, 0u);
  EXPECT_EQ(b.chain->source_column_index, 0u);
  EXPECT_DOUBLE_EQ(b.chain->initial, 52.0);
  ASSERT_EQ(b.program->inner_names.size(), 1u);
  EXPECT_EQ(b.program->inner_names[0], "demand");
}

TEST_F(BinderTest, ErrorUnknownModel) {
  auto bound = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT GhostModel(@w) AS g INTO r;",
      registry_);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kNotFound);
}

TEST_F(BinderTest, ErrorWrongArity) {
  auto bound = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w) AS d INTO r;",
      registry_);
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("2 argument"),
            std::string::npos);
}

TEST_F(BinderTest, ErrorUndeclaredParameter) {
  auto bound = ParseAndBind("SELECT DemandModel(@w, 52) AS d INTO r;",
                            registry_);
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("undeclared"), std::string::npos);
}

TEST_F(BinderTest, ErrorUnresolvedColumn) {
  auto bound = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT mystery + 1 AS x INTO r;",
      registry_);
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("unresolved column"),
            std::string::npos);
}

TEST_F(BinderTest, ErrorForwardAliasReference) {
  // Aliases resolve strictly left to right (Figure 1 semantics).
  auto bound = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT later + 1 AS x, 2 AS later INTO r;",
      registry_);
  EXPECT_FALSE(bound.ok());
}

TEST_F(BinderTest, ErrorOptimizeTableMismatch) {
  auto bound = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 4 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO results;"
      "OPTIMIZE SELECT @w FROM other GROUP BY w FOR MAX @w;",
      registry_);
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("INTO"), std::string::npos);
}

TEST_F(BinderTest, ErrorChainUnsupportedLag) {
  auto bound = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "DECLARE PARAMETER @r AS CHAIN d FROM @w : @w - 2 INITIAL VALUE 9;"
      "SELECT DemandModel(@w, @r) AS d INTO results;",
      registry_);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kUnimplemented);
}

TEST_F(BinderTest, ErrorNoSelect) {
  auto bound = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;", registry_);
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("no SELECT"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ScriptRunner end-to-end
// ---------------------------------------------------------------------------

TEST_F(BinderTest, ScriptRunnerExecutesFigure1Optimize) {
  RunConfig cfg;
  cfg.num_samples = 200;
  cfg.fingerprint_size = 10;
  ScriptRunner runner(&registry_, cfg);
  auto outcome = runner.Run(kFigure1);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const auto& o = outcome.value();
  ASSERT_TRUE(o.optimize.has_value());
  // 3 features x 3 purchase1 x 3 purchase2 = 27 groups.
  EXPECT_EQ(o.optimize->groups.size(), 27u);
  EXPECT_GT(o.runner_stats.points_evaluated, 0u);
  // Fingerprint reuse must have kicked in across the sweep.
  EXPECT_GT(o.runner_stats.points_reused, 0u);
  EXPECT_NE(o.Report().find("points evaluated"), std::string::npos);
}

TEST_F(BinderTest, ScriptRunnerProducesGraphData) {
  const char* kGraph = R"(
DECLARE PARAMETER @current_week AS RANGE 0 TO 20 STEP BY 1;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 16 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 16 STEP BY 8;
SELECT DemandModel(@current_week, 52) AS demand,
       CapacityModel(@current_week, @purchase1, @purchase2) AS capacity
INTO results;
GRAPH OVER @current_week
  EXPECT demand WITH bold red,
  EXPECT capacity WITH blue y2
)";
  RunConfig cfg;
  cfg.num_samples = 100;
  ScriptRunner runner(&registry_, cfg);
  auto outcome = runner.Run(kGraph, {{"purchase1", 8.0}});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const auto& g = outcome.value().graph;
  ASSERT_TRUE(g.has_value());
  ASSERT_EQ(g->points.size(), 21u);
  ASSERT_EQ(g->points[0].y.size(), 2u);
  // Demand at week 20 ~ 20; capacity starts at the base of 40 cores.
  EXPECT_NEAR(g->points[20].y[0], 20.0, 2.0);
  EXPECT_GE(g->points[0].y[1], 39.0);
}

TEST_F(BinderTest, ScriptRunnerRejectsOverrideOfUnknownParam) {
  const char* kGraph =
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "GRAPH OVER @w EXPECT d;";
  RunConfig cfg;
  cfg.num_samples = 50;
  ScriptRunner runner(&registry_, cfg);
  EXPECT_FALSE(runner.Run(kGraph, {{"ghost", 1.0}}).ok());
}

// ---------------------------------------------------------------------------
// MONTECARLO statement (possible-worlds execution from SQL)
// ---------------------------------------------------------------------------

TEST(ParserTest, MonteCarloStatementParses) {
  auto script = ParseScript(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "MONTECARLO;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_NE(script.value().statements[2].montecarlo, nullptr);
  EXPECT_FALSE(script.value().statements[2].montecarlo->layered);

  auto layered = ParseScript("MONTECARLO USING LAYERED;");
  ASSERT_TRUE(layered.ok()) << layered.status().ToString();
  EXPECT_TRUE(layered.value().statements[0].montecarlo->layered);

  auto direct = ParseScript("MONTECARLO USING DIRECT;");
  ASSERT_TRUE(direct.ok());
  EXPECT_FALSE(direct.value().statements[0].montecarlo->layered);

  EXPECT_FALSE(ParseScript("MONTECARLO USING GHOST;").ok());
}

TEST_F(BinderTest, RejectsMultipleMonteCarloStatements) {
  auto bound = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "MONTECARLO; MONTECARLO USING LAYERED;",
      registry_);
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("multiple MONTECARLO"),
            std::string::npos);
}

constexpr const char* kMonteCarloScript =
    "DECLARE PARAMETER @w AS RANGE 10 TO 30 STEP BY 10;"
    "SELECT DemandModel(@w, 52) AS demand,"
    "       2 * demand AS doubled INTO r;"
    "MONTECARLO;";

TEST_F(BinderTest, ScriptRunnerExecutesMonteCarlo) {
  RunConfig cfg;
  cfg.num_samples = 300;
  ScriptRunner runner(&registry_, cfg);
  auto outcome = runner.Run(kMonteCarloScript);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const auto& mc = outcome.value().montecarlo;
  ASSERT_TRUE(mc.has_value());
  EXPECT_FALSE(mc->layered);
  EXPECT_EQ(mc->worlds, 300u);
  ASSERT_EQ(mc->columns.size(), 2u);
  const auto& demand = mc->columns.at("demand");
  EXPECT_EQ(demand.count, 300);
  // Valuation fixes @w at the first domain value (10).
  EXPECT_NEAR(demand.mean, 10.0, 0.5);
  EXPECT_NEAR(mc->columns.at("doubled").mean, 2.0 * demand.mean, 1e-12);
  EXPECT_NE(outcome.value().Report().find("MONTECARLO"), std::string::npos);

  // Overrides pin the valuation like they do for GRAPH sweeps.
  auto overridden = runner.Run(kMonteCarloScript, {{"w", 30.0}});
  ASSERT_TRUE(overridden.ok()) << overridden.status().ToString();
  EXPECT_NEAR(overridden.value().montecarlo->columns.at("demand").mean,
              30.0, 1.0);
}

TEST_F(BinderTest, MonteCarloLayeredAgreesWithDirect) {
  RunConfig cfg;
  cfg.num_samples = 200;
  ScriptRunner runner(&registry_, cfg);
  auto direct = runner.Run(kMonteCarloScript);
  auto layered = runner.Run(
      "DECLARE PARAMETER @w AS RANGE 10 TO 30 STEP BY 10;"
      "SELECT DemandModel(@w, 52) AS demand,"
      "       2 * demand AS doubled INTO r;"
      "MONTECARLO USING LAYERED;");
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(layered.ok()) << layered.status().ToString();
  EXPECT_TRUE(layered.value().montecarlo->layered);
  // Identical seeds and plans; the layered path only adds the CSV
  // round-trip, so the means agree to text precision.
  EXPECT_NEAR(direct.value().montecarlo->columns.at("demand").mean,
              layered.value().montecarlo->columns.at("demand").mean, 1e-9);
}

TEST_F(BinderTest, MonteCarloThreadedIsBitIdenticalToSerial) {
  auto run = [&](std::size_t threads, std::size_t batch) {
    RunConfig cfg;
    cfg.num_samples = 200;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    ScriptRunner runner(&registry_, cfg);
    auto outcome = runner.Run(kMonteCarloScript);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return std::move(outcome).value();
  };
  const auto reference = run(1, 64);
  test::ForEachParallelGridPoint([&](std::size_t threads,
                                     std::size_t batch) {
    const auto parallel = run(threads, batch);
    ASSERT_TRUE(parallel.montecarlo.has_value());
    EXPECT_EQ(parallel.montecarlo->num_threads, threads);
    for (const auto& [name, m] : reference.montecarlo->columns) {
      const auto& p = parallel.montecarlo->columns.at(name);
      EXPECT_EQ(m.mean, p.mean) << name;
      EXPECT_EQ(m.stddev, p.stddev) << name;
      EXPECT_EQ(m.p50, p.p50) << name;
      EXPECT_EQ(m.p95, p.p95) << name;
      EXPECT_EQ(m.min, p.min) << name;
      EXPECT_EQ(m.max, p.max) << name;
    }
  });
}

// ---------------------------------------------------------------------------
// Compiled expressions: the BatchProgram path must be bit-identical to
// the interpreter at every batch_size x num_threads grid point, and must
// fall back (visibly) when an expression has no batch form.
// ---------------------------------------------------------------------------

class CompiledExprTest : public BinderTest {
 protected:
  void SetUp() override {
    BinderTest::SetUp();
    // Bernoulli helper: sample-dependent 0/1 so error paths (division by
    // zero, NULL columns) trigger on some worlds but not world 0.
    registry_.RegisterOrReplace(std::make_shared<CallableBlackBox>(
        "CoinFlip", std::vector<std::string>{"p"},
        [](std::span<const double> params, RandomStream& rng) {
          return rng.NextDouble() < params[0] ? 1.0 : 0.0;
        }));
  }

  Result<ScriptOutcome> RunScript(const std::string& text, bool compiled,
                                  std::size_t threads, std::size_t batch,
                                  std::size_t samples = 200) {
    RunConfig cfg;
    cfg.num_samples = samples;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    cfg.compile_expressions = compiled;
    ScriptRunner runner(&registry_, cfg);
    return runner.Run(text);
  }

  static void ExpectSameMetrics(
      const std::map<std::string, OutputMetrics>& expected,
      const std::map<std::string, OutputMetrics>& actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (const auto& [name, m] : expected) {
      const auto& a = actual.at(name);
      EXPECT_EQ(m.count, a.count) << name;
      EXPECT_EQ(m.mean, a.mean) << name;
      EXPECT_EQ(m.stddev, a.stddev) << name;
      EXPECT_EQ(m.std_error, a.std_error) << name;
      EXPECT_EQ(m.p50, a.p50) << name;
      EXPECT_EQ(m.p95, a.p95) << name;
      EXPECT_EQ(m.min, a.min) << name;
      EXPECT_EQ(m.max, a.max) << name;
    }
  }
};

constexpr const char* kCompiledMonteCarloScript = R"(
DECLARE PARAMETER @w AS RANGE 10 TO 30 STEP BY 10;
SELECT DemandModel(@w, 52) AS demand,
       CapacityModel(@w, 8, 8) AS capacity,
       CASE WHEN capacity < demand AND @w > 0 THEN 1 ELSE 0 END AS overload,
       (demand + 1) / (capacity + 1) AS ratio
INTO r;
MONTECARLO;
)";

TEST_F(CompiledExprTest, MonteCarloBitIdenticalToInterpreterAcrossGrid) {
  auto reference = RunScript(kCompiledMonteCarloScript, /*compiled=*/false,
                             /*threads=*/1, /*batch=*/64);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_FALSE(reference.value().bound.program->compiled());
  test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
    auto compiled = RunScript(kCompiledMonteCarloScript, /*compiled=*/true,
                              threads, batch);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    ASSERT_TRUE(compiled.value().bound.program->compiled())
        << compiled.value().bound.program->batch_fallback_reason;
    ExpectSameMetrics(reference.value().montecarlo->columns,
                      compiled.value().montecarlo->columns);
  });
}

TEST_F(CompiledExprTest, LayeredMonteCarloBitIdenticalToInterpreter) {
  const std::string script =
      std::string(kCompiledMonteCarloScript).substr(0, std::string(
          kCompiledMonteCarloScript).rfind("MONTECARLO;")) +
      "MONTECARLO USING LAYERED;";
  auto interpreted = RunScript(script, /*compiled=*/false, 2, 7);
  auto compiled = RunScript(script, /*compiled=*/true, 2, 7);
  ASSERT_TRUE(interpreted.ok()) << interpreted.status().ToString();
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ExpectSameMetrics(interpreted.value().montecarlo->columns,
                    compiled.value().montecarlo->columns);
}

TEST_F(CompiledExprTest, ChainBitIdenticalToInterpreterAcrossBatches) {
  const char* kFigure5 = R"(
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @release_week AS CHAIN release_week
  FROM @current_week : @current_week - 1 INITIAL VALUE 52;
SELECT CASE WHEN demand > 26 AND @current_week + 4 < @release_week
            THEN @current_week + 4 ELSE @release_week END AS release_week,
       demand
FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
INTO results;
)";
  auto bound = ParseAndBind(kFigure5, registry_);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_TRUE(bound.value().program->compiled())
      << bound.value().program->batch_fallback_reason;

  for (bool use_jump : {false, true}) {
    RunConfig ref_cfg;
    ref_cfg.num_samples = 150;
    ref_cfg.fingerprint_size = 10;
    ref_cfg.compile_expressions = false;
    ChainRunStats ref_stats;
    auto reference = RunChainScenario(bound.value(), "demand", 30, ref_cfg,
                                      use_jump, &ref_stats);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    for (std::size_t batch : test::GridBatchSizes()) {
      SCOPED_TRACE(testing::Message()
                   << "jump=" << use_jump << " batch=" << batch);
      RunConfig cfg = ref_cfg;
      cfg.batch_size = batch;
      cfg.compile_expressions = true;
      ChainRunStats stats;
      auto compiled =
          RunChainScenario(bound.value(), "demand", 30, cfg, use_jump,
                           &stats);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      EXPECT_EQ(reference.value().mean, compiled.value().mean);
      EXPECT_EQ(reference.value().stddev, compiled.value().stddev);
      EXPECT_EQ(reference.value().p50, compiled.value().p50);
      EXPECT_EQ(reference.value().p95, compiled.value().p95);
      EXPECT_EQ(reference.value().min, compiled.value().min);
      EXPECT_EQ(reference.value().max, compiled.value().max);
      EXPECT_EQ(ref_stats.step_invocations, stats.step_invocations);
      EXPECT_EQ(ref_stats.estimator_invocations,
                stats.estimator_invocations);
      EXPECT_EQ(ref_stats.mismatches, stats.mismatches);
    }
  }
}

TEST_F(CompiledExprTest, CompiledSampleBatchMatchesScalarSample) {
  // The core engine's fingerprint/tail/sweep phases ride
  // ColumnSimFunction::SampleBatch; every span must reproduce the scalar
  // interpreter walk bit-for-bit, including cross-column alias draws.
  auto bound = ParseAndBind(kFigure1, registry_);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_TRUE(bound.value().program->compiled());
  const std::size_t kSamples = 40;
  SeedVector seeds(0x5EED, kSamples);
  const auto valuation = bound.value().scenario.params.ValuationAt(3);
  for (const auto& col : bound.value().scenario.columns) {
    for (std::size_t batch : test::GridBatchSizes()) {
      std::vector<double> got(kSamples);
      for (std::size_t begin = 0; begin < kSamples; begin += batch) {
        const std::size_t n = std::min(batch, kSamples - begin);
        col.fn->SampleBatch(valuation, begin, seeds,
                            std::span<double>(got.data() + begin, n));
      }
      for (std::size_t k = 0; k < kSamples; ++k) {
        EXPECT_EQ(got[k], col.fn->Sample(valuation, k, seeds))
            << col.name << " batch " << batch << " sample " << k;
      }
    }
  }
}

TEST_F(CompiledExprTest, DivisionByZeroParityWithInterpreter) {
  // CoinFlip lands 0 on some world > 0 (world 0 and the bind probe pass
  // at p = 0.97), so both paths must fail with the interpreter's
  // division-by-zero error.
  const char* script = "SELECT 1 / CoinFlip(0.97) AS q INTO r; MONTECARLO;";
  auto interpreted = RunScript(script, /*compiled=*/false, 1, 64, 400);
  auto compiled = RunScript(script, /*compiled=*/true, 1, 64, 400);
  EXPECT_EQ(interpreted.status(), compiled.status());
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("division by zero"),
            std::string::npos);
  // The grid must agree on the reported error too (lowest failing world).
  test::ForEachParallelGridPoint([&](std::size_t threads,
                                     std::size_t batch) {
    auto parallel = RunScript(script, /*compiled=*/true, threads, batch,
                              400);
    EXPECT_EQ(interpreted.status(), parallel.status());
  });
}

TEST_F(CompiledExprTest, ShortCircuitGuardsErroringOperandsLikeInterpreter) {
  // has == 0 lanes short-circuit the AND before 1/has runs; both paths
  // must succeed and agree bit-for-bit.
  const char* script =
      "SELECT CoinFlip(0.5) AS has,"
      "       CASE WHEN has > 0 AND 1 / has > 0 THEN 1 ELSE 0 END AS safe "
      "INTO r; MONTECARLO;";
  auto interpreted = RunScript(script, /*compiled=*/false, 1, 64);
  ASSERT_TRUE(interpreted.ok()) << interpreted.status().ToString();
  auto compiled = RunScript(script, /*compiled=*/true, 2, 7);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_TRUE(compiled.value().bound.program->compiled());
  ExpectSameMetrics(interpreted.value().montecarlo->columns,
                    compiled.value().montecarlo->columns);
  // Sanity: both coin faces actually occurred.
  EXPECT_GT(compiled.value().montecarlo->columns.at("has").mean, 0.0);
  EXPECT_LT(compiled.value().montecarlo->columns.at("has").mean, 1.0);
}

TEST_F(CompiledExprTest, CaseWithoutElseParityWithInterpreter) {
  // Worlds whose WHEN misses produce NULL -> "not numeric", exactly as
  // interpreted (the bind probe passes because world-0-probe flips 1).
  const char* script =
      "SELECT CASE WHEN CoinFlip(0.9) > 0 THEN 1 END AS maybe "
      "INTO r; MONTECARLO;";
  auto interpreted = RunScript(script, /*compiled=*/false, 1, 64, 400);
  auto compiled = RunScript(script, /*compiled=*/true, 1, 64, 400);
  EXPECT_EQ(interpreted.status(), compiled.status());
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("'maybe' is not numeric"),
            std::string::npos);
}

TEST_F(CompiledExprTest, UncompilableScriptFallsBackWithVisibleReason) {
  // String comparisons are interpreter-only; the script must still run,
  // and the de-optimization must be queryable from the outcome report.
  const char* script =
      "SELECT CASE WHEN 'a' = 'b' THEN 1 ELSE 2 END AS x INTO r;"
      "MONTECARLO;";
  auto outcome = RunScript(script, /*compiled=*/true, 1, 64);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const auto& program = *outcome.value().bound.program;
  EXPECT_FALSE(program.compiled());
  EXPECT_NE(program.batch_fallback_reason.find("string literal"),
            std::string::npos);
  EXPECT_NE(outcome.value().Report().find("expressions: interpreted"),
            std::string::npos);
  EXPECT_NE(outcome.value().Report().find("fallback:"), std::string::npos);
  EXPECT_EQ(outcome.value().montecarlo->columns.at("x").mean, 2.0);

  // Compiled scripts advertise the fast path instead.
  auto compiled = RunScript(kCompiledMonteCarloScript, true, 1, 64);
  ASSERT_TRUE(compiled.ok());
  EXPECT_NE(compiled.value().Report().find("expressions: compiled"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// MONTECARLO OVER @p: the two-axis (points x worlds) sweep must be
// bit-identical — values, draws, errors, per-point metrics — to N
// standalone MONTECARLO statements at the same valuations, across the
// full points x batch x threads grid, on both engines, compiled and
// interpreted.
// ---------------------------------------------------------------------------

TEST(ParserTest, MonteCarloOverParses) {
  auto list = ParseScript("MONTECARLO OVER @w IN (10, 20, 30);");
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  const auto& over = list.value().statements[0].montecarlo->over;
  ASSERT_TRUE(over.has_value());
  EXPECT_EQ(over->param, "w");
  ASSERT_TRUE(over->values.has_value());
  EXPECT_EQ(over->values->values, (std::vector<double>{10, 20, 30}));

  auto range = ParseScript("MONTECARLO OVER @w IN 0 TO 52 STEP BY 4;");
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  const auto& rover = range.value().statements[0].montecarlo->over;
  ASSERT_TRUE(rover.has_value() && rover->range.has_value());
  EXPECT_DOUBLE_EQ(rover->range->lo, 0);
  EXPECT_DOUBLE_EQ(rover->range->hi, 52);
  EXPECT_DOUBLE_EQ(rover->range->step, 4);

  auto bare = ParseScript("MONTECARLO OVER @w USING LAYERED;");
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  EXPECT_TRUE(bare.value().statements[0].montecarlo->layered);
  ASSERT_TRUE(bare.value().statements[0].montecarlo->over.has_value());
  EXPECT_FALSE(bare.value().statements[0].montecarlo->over->values);
  EXPECT_FALSE(bare.value().statements[0].montecarlo->over->range);

  EXPECT_FALSE(ParseScript("MONTECARLO OVER w;").ok());        // not a @param
  EXPECT_FALSE(ParseScript("MONTECARLO OVER @w IN ();").ok()); // empty list
  EXPECT_FALSE(ParseScript("MONTECARLO OVER @w IN 1 TO;").ok());
}

class MonteCarloSweepTest : public CompiledExprTest {
 protected:
  Result<ScriptOutcome> RunSweepScript(
      const std::string& text, bool compiled, std::size_t threads,
      std::size_t batch, std::size_t samples,
      const std::vector<std::pair<std::string, double>>& overrides = {}) {
    RunConfig cfg;
    cfg.num_samples = samples;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    cfg.compile_expressions = compiled;
    // Retain raw samples so the grid checks draw-level identity, not just
    // summary statistics.
    cfg.keep_samples = true;
    ScriptRunner runner(&registry_, cfg);
    return runner.Run(text, overrides);
  }

  /// Metric equality plus bitwise draw equality (keep_samples runs).
  static void ExpectSameMetricsAndDraws(
      const std::map<std::string, OutputMetrics>& expected,
      const std::map<std::string, OutputMetrics>& actual) {
    ExpectSameMetrics(expected, actual);
    for (const auto& [name, m] : expected) {
      EXPECT_EQ(m.samples, actual.at(name).samples) << name;
    }
  }

  static std::string Engine(bool layered) {
    return layered ? " USING LAYERED;" : ";";
  }

  /// 9 candidate values for @w; sweeps take the first `npoints`.
  static std::vector<double> PointValues(std::size_t npoints) {
    std::vector<double> out;
    for (std::size_t i = 0; i < npoints; ++i) {
      out.push_back(10.0 + 10.0 * static_cast<double>(i));
    }
    return out;
  }

  static std::string SweepScript(std::size_t npoints, bool layered) {
    std::string in;
    for (double v : PointValues(npoints)) {
      in += (in.empty() ? "" : ", ") + std::to_string(v);
    }
    return std::string(kSweepScenario) + "MONTECARLO OVER @w IN (" + in +
           ")" + Engine(layered);
  }

  static constexpr const char* kSweepScenario =
      "DECLARE PARAMETER @w AS RANGE 10 TO 90 STEP BY 10;"
      "SELECT DemandModel(@w, 52) AS demand,"
      "       2 * demand + @w AS adjusted INTO r;";
};

TEST_F(MonteCarloSweepTest, BitIdenticalToStandaloneAcrossGrid) {
  const std::size_t kWorlds = 50;
  const std::string standalone_script =
      std::string(kSweepScenario) + "MONTECARLO";
  for (bool layered : {false, true}) {
    for (bool compiled : {true, false}) {
      SCOPED_TRACE(testing::Message() << "layered=" << layered
                                      << " compiled=" << compiled);
      // One standalone MONTECARLO per candidate value: the reference the
      // sweep must reproduce bit-for-bit. Standalone runs are themselves
      // grid-invariant (MonteCarloThreadedIsBitIdenticalToSerial), so one
      // serial run per value suffices.
      std::vector<std::map<std::string, OutputMetrics>> standalone;
      for (double v : PointValues(9)) {
        auto ref = RunSweepScript(standalone_script + Engine(layered),
                                  compiled, 1, 64, kWorlds, {{"w", v}});
        ASSERT_TRUE(ref.ok()) << ref.status().ToString();
        standalone.push_back(std::move(ref.value().montecarlo->columns));
      }

      for (std::size_t npoints : {1u, 3u, 9u}) {
        const std::string script = SweepScript(npoints, layered);
        test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
          SCOPED_TRACE(testing::Message() << "points=" << npoints);
          auto outcome = RunSweepScript(script, compiled, threads, batch,
                                        kWorlds);
          ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
          const auto& mc = outcome.value().montecarlo;
          ASSERT_TRUE(mc.has_value());
          EXPECT_EQ(mc->layered, layered);
          EXPECT_EQ(mc->sweep_param, "w");
          EXPECT_EQ(mc->worlds, kWorlds);
          ASSERT_EQ(mc->points.size(), npoints);
          EXPECT_EQ(outcome.value().bound.program->compiled(), compiled);
          for (std::size_t k = 0; k < npoints; ++k) {
            SCOPED_TRACE(testing::Message() << "point " << k);
            EXPECT_EQ(mc->points[k].value, PointValues(9)[k]);
            ExpectSameMetricsAndDraws(standalone[k], mc->points[k].columns);
          }
        });
      }
    }
  }
}

TEST_F(MonteCarloSweepTest, BareOverAndRangeFormsExpandPoints) {
  // Bare OVER @w sweeps the declared domain; the IN range form expands
  // like DECLARE RANGE. Both reduce to the explicit-list semantics.
  const std::string scenario =
      "DECLARE PARAMETER @w AS RANGE 10 TO 30 STEP BY 10;"
      "SELECT DemandModel(@w, 52) AS demand INTO r;";
  auto bare = RunSweepScript(scenario + "MONTECARLO OVER @w;", true, 2, 7,
                             40);
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  ASSERT_EQ(bare.value().montecarlo->points.size(), 3u);
  EXPECT_EQ(bare.value().montecarlo->points[0].value, 10.0);
  EXPECT_EQ(bare.value().montecarlo->points[2].value, 30.0);

  auto range = RunSweepScript(
      scenario + "MONTECARLO OVER @w IN 10 TO 30 STEP BY 20;", true, 2, 7,
      40);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  ASSERT_EQ(range.value().montecarlo->points.size(), 2u);
  EXPECT_EQ(range.value().montecarlo->points[0].value, 10.0);
  EXPECT_EQ(range.value().montecarlo->points[1].value, 30.0);
  // Same point, same draws: range point 0 == bare point 0 bit-for-bit.
  ExpectSameMetricsAndDraws(bare.value().montecarlo->points[0].columns,
                            range.value().montecarlo->points[0].columns);
}

TEST_F(MonteCarloSweepTest, OverridesStillPinNonSweptParameters) {
  const std::string scenario =
      "DECLARE PARAMETER @w AS RANGE 10 TO 30 STEP BY 10;"
      "DECLARE PARAMETER @f AS SET (36, 52);"
      "SELECT DemandModel(@w, @f) AS demand INTO r;";
  auto sweep = RunSweepScript(scenario + "MONTECARLO OVER @w IN (20, 30);",
                              true, 2, 7, 40, {{"f", 52.0}});
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  auto standalone = RunSweepScript(scenario + "MONTECARLO;", true, 1, 64, 40,
                                   {{"f", 52.0}, {"w", 30.0}});
  ASSERT_TRUE(standalone.ok()) << standalone.status().ToString();
  ExpectSameMetricsAndDraws(standalone.value().montecarlo->columns,
                            sweep.value().montecarlo->points[1].columns);
}

TEST_F(MonteCarloSweepTest, BindErrors) {
  // Unbound sweep parameter.
  auto unbound = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "MONTECARLO OVER @ghost IN (1, 2);",
      registry_);
  ASSERT_FALSE(unbound.ok());
  EXPECT_EQ(unbound.status().code(), StatusCode::kBindError);
  EXPECT_NE(unbound.status().message().find("undeclared '@ghost'"),
            std::string::npos);

  // Empty point lists: a backwards range, and a CHAIN parameter's
  // (non-enumerable) domain.
  auto empty = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "MONTECARLO OVER @w IN 30 TO 10;",
      registry_);
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find("empty point list"),
            std::string::npos);

  auto chain = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 9 STEP BY 1;"
      "DECLARE PARAMETER @r AS CHAIN r FROM @w : @w - 1 INITIAL VALUE 1;"
      "SELECT @r + 0 AS r, DemandModel(@w, @r) AS demand INTO results;"
      "MONTECARLO OVER @r;",
      registry_);
  ASSERT_FALSE(chain.ok());
  EXPECT_NE(chain.status().message().find("empty point list"),
            std::string::npos);

  auto bad_step = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "MONTECARLO OVER @w IN 0 TO 5 STEP BY -1;",
      registry_);
  ASSERT_FALSE(bad_step.ok());
  EXPECT_NE(bad_step.status().message().find("non-positive STEP"),
            std::string::npos);

  // Range materialization is guarded: an overflowing literal (inf after
  // strtod) must not spin the expansion loop forever, and a finite but
  // absurd span must not OOM the binder.
  auto inf = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "MONTECARLO OVER @w IN 0 TO 1e400;",
      registry_);
  ASSERT_FALSE(inf.ok());
  EXPECT_NE(inf.status().message().find("must be finite"),
            std::string::npos);

  auto huge = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "MONTECARLO OVER @w IN 0 TO 1e18;",
      registry_);
  ASSERT_FALSE(huge.ok());
  EXPECT_NE(huge.status().message().find("more than 1000000 points"),
            std::string::npos);

  // A degenerate range where lo + step rounds back to lo must terminate
  // (index-stepped expansion) and bind to the single point.
  auto degenerate = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "MONTECARLO OVER @w IN 1e16 TO 1e16;",
      registry_);
  ASSERT_TRUE(degenerate.ok()) << degenerate.status().ToString();
  ASSERT_TRUE(degenerate.value().montecarlo->over.has_value());
  EXPECT_EQ(degenerate.value().montecarlo->over->points,
            (std::vector<double>{1e16}));

  // Non-finite literals are rejected in every sweep form, not just the
  // range bounds.
  auto inf_list = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "MONTECARLO OVER @w IN (1, 1e400);",
      registry_);
  ASSERT_FALSE(inf_list.ok());
  EXPECT_NE(inf_list.status().message().find("non-finite point value"),
            std::string::npos);

  // The point cap applies to the bare OVER form too: a large declared
  // domain that DECLARE accepts must still be rejected as a sweep.
  auto bare_huge = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 2000000 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;"
      "MONTECARLO OVER @w;",
      registry_);
  ASSERT_FALSE(bare_huge.ok());
  EXPECT_NE(bare_huge.status().message().find("more than 1000000 points"),
            std::string::npos);
}

TEST_F(MonteCarloSweepTest, PointErrorNamesPointIdenticallySerialParallel) {
  // CoinFlip(1) never lands 0, CoinFlip(0.5) does: point 0 succeeds and
  // point 1 fails with the interpreter's division-by-zero error, prefixed
  // with the failing point — identically at every grid cell, on both
  // expression paths, and matching the standalone statement's error at
  // that valuation.
  const std::string scenario =
      "DECLARE PARAMETER @p AS SET (1, 0.5);"
      "SELECT 1 / CoinFlip(@p) AS q INTO r;";
  const std::string script = scenario + "MONTECARLO OVER @p IN (1, 0.5);";

  auto standalone = RunSweepScript(scenario + "MONTECARLO;", false, 1, 64, 400,
                                   {{"p", 0.5}});
  ASSERT_FALSE(standalone.ok());

  auto serial = RunSweepScript(script, false, 1, 64, 400);
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(serial.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(serial.status().message().find("sweep point 1"),
            std::string::npos)
      << serial.status().ToString();
  EXPECT_NE(serial.status().message().find("division by zero"),
            std::string::npos);
  // The sweep's error is the standalone error plus the point coordinate.
  EXPECT_NE(serial.status().message().find(standalone.status().message()),
            std::string::npos);

  for (bool compiled : {false, true}) {
    test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
      SCOPED_TRACE(testing::Message() << "compiled=" << compiled);
      auto outcome = RunSweepScript(script, compiled, threads, batch, 400);
      EXPECT_EQ(serial.status(), outcome.status());
    });
  }

  // The layered engine reports the same point coordinate.
  auto layered = RunSweepScript(
      scenario + "MONTECARLO OVER @p IN (1, 0.5) USING LAYERED;", false,
      2, 7, 400);
  ASSERT_FALSE(layered.ok());
  EXPECT_NE(layered.status().message().find("sweep point 1"),
            std::string::npos);
}

TEST_F(MonteCarloSweepTest, WorldZeroTypeFlipNamesPoint) {
  // At @p = 1 the CASE always hits; at @p = 0.9 some world > 0 produces
  // NULL, flipping the column away from world 0's numeric layout. The
  // error must name the failing point, identically serial and parallel.
  const std::string script =
      "DECLARE PARAMETER @p AS SET (1, 0.9);"
      "SELECT CASE WHEN CoinFlip(@p) > 0 THEN 1 END AS maybe INTO r;"
      "MONTECARLO OVER @p IN (1, 0.9);";
  auto serial = RunSweepScript(script, false, 1, 64, 400);
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(serial.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(serial.status().message().find("sweep point 1"),
            std::string::npos)
      << serial.status().ToString();
  EXPECT_NE(serial.status().message().find("'maybe' is not numeric"),
            std::string::npos);
  for (bool compiled : {false, true}) {
    auto parallel = RunSweepScript(script, compiled, 8, 7, 400);
    EXPECT_EQ(serial.status(), parallel.status())
        << "compiled=" << compiled;
  }
}

TEST_F(MonteCarloSweepTest, ReportListsPointsDeltasAndFallback) {
  auto compiled = RunSweepScript(SweepScript(3, false), true, 2, 7, 50);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string report = compiled.value().Report();
  EXPECT_NE(report.find("MONTECARLO OVER @w"), std::string::npos);
  EXPECT_NE(report.find("3 points x 50 worlds"), std::string::npos);
  EXPECT_NE(report.find("@w = 10"), std::string::npos);
  EXPECT_NE(report.find("@w = 30"), std::string::npos);
  // Point-vs-point deltas appear from the second point on.
  EXPECT_NE(report.find("dmean"), std::string::npos);
  EXPECT_NE(report.find("expressions: compiled"), std::string::npos);

  // An uncompilable sweep still runs per point, and the de-optimization
  // reason is surfaced in the same report.
  auto fallback = RunSweepScript(
      "DECLARE PARAMETER @w AS SET (1, 2);"
      "SELECT @w + 0 AS w2,"
      "       CASE WHEN 'a' = 'b' THEN 1 ELSE 2 END AS x INTO r;"
      "MONTECARLO OVER @w IN (1, 2);",
      true, 2, 7, 30);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_FALSE(fallback.value().bound.program->compiled());
  const std::string freport = fallback.value().Report();
  EXPECT_NE(freport.find("expressions: interpreted"), std::string::npos);
  EXPECT_NE(freport.find("fallback:"), std::string::npos);
  EXPECT_NE(freport.find("@w = 2"), std::string::npos);
  EXPECT_EQ(fallback.value().montecarlo->points[1].columns.at("x").mean,
            2.0);
}

// ---------------------------------------------------------------------------
// Chain scenario execution (Figure 5 on the Markov executor)
// ---------------------------------------------------------------------------

TEST_F(BinderTest, ChainScenarioNaiveVsJumpAgree) {
  const char* kFigure5 = R"(
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @release_week AS CHAIN release_week
  FROM @current_week : @current_week - 1 INITIAL VALUE 52;
SELECT CASE WHEN demand > 26 AND @current_week + 4 < @release_week
            THEN @current_week + 4 ELSE @release_week END AS release_week,
       demand
FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
INTO results;
)";
  auto bound = ParseAndBind(kFigure5, registry_);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();

  RunConfig cfg;
  cfg.num_samples = 300;
  cfg.fingerprint_size = 10;

  ChainRunStats naive_stats, jump_stats;
  auto naive = RunChainScenario(bound.value(), "demand", 45, cfg,
                                /*use_jump=*/false, &naive_stats);
  auto jump = RunChainScenario(bound.value(), "demand", 45, cfg,
                               /*use_jump=*/true, &jump_stats);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ASSERT_TRUE(jump.ok()) << jump.status().ToString();

  // Demand at week 45 after an (almost certain) pull-in near week 26:
  // mean ~ 45 + 0.2*(45-30) = 48.
  EXPECT_NEAR(naive.value().mean, jump.value().mean,
              4 * naive.value().std_error + 4 * jump.value().std_error + 0.5);
  // The jump runner must do far fewer honest transitions than n*target.
  EXPECT_EQ(naive_stats.step_invocations, 300u * 45u);
  EXPECT_LT(jump_stats.step_invocations + jump_stats.estimator_invocations,
            naive_stats.step_invocations / 2);
}

TEST_F(BinderTest, ChainScenarioUnknownOutputColumn) {
  const char* kFigure5 = R"(
DECLARE PARAMETER @w AS RANGE 0 TO 9 STEP BY 1;
DECLARE PARAMETER @r AS CHAIN r FROM @w : @w - 1 INITIAL VALUE 1;
SELECT @r + 0 AS r, DemandModel(@w, @r) AS demand INTO results;
)";
  auto bound = ParseAndBind(kFigure5, registry_);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  RunConfig cfg;
  cfg.num_samples = 20;
  EXPECT_EQ(RunChainScenario(bound.value(), "ghost", 5, cfg, true)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(BinderTest, NonChainScenarioRejectedByChainRunner) {
  auto bound = ParseAndBind(
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;"
      "SELECT DemandModel(@w, 52) AS d INTO r;",
      registry_);
  ASSERT_TRUE(bound.ok());
  RunConfig cfg;
  EXPECT_EQ(
      RunChainScenario(bound.value(), "d", 5, cfg, true).status().code(),
      StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// MONTECARLO FROM ... JOIN: the uncertain-join surface end to end —
// parse shape, bind-time error shapes, and bit-identity of the engine /
// storage / algorithm / sweep combinations.
// ---------------------------------------------------------------------------

TEST(JoinSqlParseTest, ParsesJoinClauseWithAliasesAndArgs) {
  auto script = ParseScript(
      "MONTECARLO FROM users(20, 0.8, 5.0, 2.0) AS u "
      "JOIN items(30) AS i ON u.user_id = i.item_id USING LAYERED;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  const auto& mc = *script.value().statements[0].montecarlo;
  ASSERT_TRUE(mc.join.has_value());
  EXPECT_TRUE(mc.layered);
  EXPECT_EQ(mc.join->left.table, "users");
  ASSERT_EQ(mc.join->left.args.size(), 4u);
  EXPECT_DOUBLE_EQ(mc.join->left.args[1], 0.8);
  EXPECT_EQ(mc.join->left.alias, "u");
  EXPECT_EQ(mc.join->right.table, "items");
  ASSERT_EQ(mc.join->right.args.size(), 1u);
  EXPECT_EQ(mc.join->right.alias, "i");
  EXPECT_EQ(mc.join->on_left_alias, "u");
  EXPECT_EQ(mc.join->on_left_column, "user_id");
  EXPECT_EQ(mc.join->on_right_alias, "i");
  EXPECT_EQ(mc.join->on_right_column, "item_id");
}

TEST(JoinSqlParseTest, AliasDefaultsToTableNameAndOnSidesMaySwap) {
  auto script = ParseScript(
      "MONTECARLO FROM users(8, 0.8, 5.0, 2.0) JOIN items(9) "
      "ON items.item_id = users.user_id OVER @w IN (1, 2);");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  const auto& mc = *script.value().statements[0].montecarlo;
  ASSERT_TRUE(mc.join.has_value());
  EXPECT_EQ(mc.join->left.alias, "users");
  EXPECT_EQ(mc.join->right.alias, "items");
  EXPECT_EQ(mc.join->on_left_alias, "items");
  EXPECT_EQ(mc.join->on_right_alias, "users");
  ASSERT_TRUE(mc.over.has_value());
}

TEST(JoinSqlParseTest, MalformedJoinClausesRejected) {
  // Missing ON clause.
  EXPECT_FALSE(
      ParseScript("MONTECARLO FROM users(1) JOIN items(1);").ok());
  // Unqualified ON column.
  EXPECT_FALSE(
      ParseScript(
          "MONTECARLO FROM users(1) JOIN items(1) ON user_id = item_id;")
          .ok());
  // Missing JOIN keyword.
  EXPECT_FALSE(ParseScript("MONTECARLO FROM users(1);").ok());
}

class JoinSqlTest : public BinderTest {
 protected:
  // The scenario SELECT is mandatory for every script (binder pass 2)
  // but a joined MONTECARLO never consults the row program.
  static constexpr const char* kJoinScript = R"(
SELECT 1 AS one INTO r;
MONTECARLO FROM users(20, 0.8, 5.0, 2.0) AS u JOIN items(30) AS i
           ON u.user_id = i.item_id%s;
)";

  static std::string Script(const std::string& suffix) {
    return jigsaw::StrFormat(kJoinScript, suffix.c_str());
  }

  Result<ScriptOutcome> RunJoin(const std::string& text, bool columnar,
                                JoinAlgorithm algorithm, std::size_t threads,
                                std::size_t batch,
                                std::size_t samples = 12) {
    RunConfig cfg;
    cfg.num_samples = samples;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    cfg.columnar_storage = columnar;
    cfg.join_algorithm = algorithm;
    ScriptRunner runner(&registry_, cfg);
    return runner.Run(text);
  }

  static void ExpectSameMetrics(
      const std::map<std::string, OutputMetrics>& expected,
      const std::map<std::string, OutputMetrics>& actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (const auto& [name, m] : expected) {
      ASSERT_TRUE(actual.count(name)) << name;
      const auto& a = actual.at(name);
      EXPECT_EQ(m.count, a.count) << name;
      EXPECT_EQ(m.mean, a.mean) << name;
      EXPECT_EQ(m.stddev, a.stddev) << name;
      EXPECT_EQ(m.std_error, a.std_error) << name;
      EXPECT_EQ(m.p50, a.p50) << name;
      EXPECT_EQ(m.p95, a.p95) << name;
      EXPECT_EQ(m.min, a.min) << name;
      EXPECT_EQ(m.max, a.max) << name;
    }
  }

  void ExpectBindError(const std::string& script,
                       const std::string& message_fragment) {
    auto bound = ParseAndBind(script, registry_);
    ASSERT_FALSE(bound.ok()) << script;
    EXPECT_EQ(bound.status().code(), StatusCode::kBindError) << script;
    EXPECT_NE(bound.status().message().find(message_fragment),
              std::string::npos)
        << bound.status().message();
  }
};

TEST_F(JoinSqlTest, SummarizesEveryNumericJoinedColumn) {
  auto outcome = RunJoin(Script(""), /*columnar=*/true,
                         JoinAlgorithm::kSortMerge, 1, 64);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const auto& mc = *outcome.value().montecarlo;
  EXPECT_EQ(mc.join, "users AS u JOIN items AS i ON u.user_id = i.item_id");
  // All numeric columns of (users x items), schema order; the string
  // 'region' has no distribution summary.
  ASSERT_EQ(mc.columns.size(), 7u);
  for (const char* name : {"user_id", "signup_week", "requirement",
                           "item_id", "demand", "cost", "in_stock"}) {
    EXPECT_TRUE(mc.columns.count(name)) << name;
  }
  EXPECT_FALSE(mc.columns.count("region"));
  EXPECT_GT(mc.columns.at("requirement").count, 0);
  EXPECT_NE(outcome.value().Report().find(
                "MONTECARLO join: users AS u JOIN items AS i"),
            std::string::npos);
}

TEST_F(JoinSqlTest, EnginesStorageAndAlgorithmsBitIdenticalAcrossGrid) {
  // Reference: DIRECT, boxed, serial nested-loop oracle.
  auto reference = RunJoin(Script(""), /*columnar=*/false,
                           JoinAlgorithm::kSortMerge, 1, 1);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
    for (const char* engine : {"", " USING DIRECT", " USING LAYERED"}) {
      for (bool columnar : {false, true}) {
        for (JoinAlgorithm algorithm :
             {JoinAlgorithm::kSortMerge, JoinAlgorithm::kHash}) {
          SCOPED_TRACE(::testing::Message()
                       << "engine=" << (engine[0] ? engine : " default")
                       << (columnar ? " columnar" : " boxed"));
          auto got =
              RunJoin(Script(engine), columnar, algorithm, threads, batch);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          EXPECT_EQ(got.value().montecarlo->layered,
                    std::string(engine) == " USING LAYERED");
          ExpectSameMetrics(reference.value().montecarlo->columns,
                            got.value().montecarlo->columns);
        }
      }
    }
  });
}

TEST_F(JoinSqlTest, SweepPointsBitIdenticalToStandalone) {
  // The join ignores script parameters, so every OVER point must carry
  // exactly the standalone statement's summaries.
  const std::string sweep_script =
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;" +
      Script(" OVER @w IN (1, 3, 5)");
  const std::string standalone_script =
      "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;" + Script("");
  for (bool columnar : {false, true}) {
    auto standalone = RunJoin(standalone_script, columnar,
                              JoinAlgorithm::kHash, 2, 7);
    auto sweep = RunJoin(sweep_script, columnar, JoinAlgorithm::kHash, 2, 7);
    ASSERT_TRUE(standalone.ok()) << standalone.status().ToString();
    ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
    const auto& mc = *sweep.value().montecarlo;
    EXPECT_EQ(mc.sweep_param, "w");
    ASSERT_EQ(mc.points.size(), 3u);
    EXPECT_DOUBLE_EQ(mc.points[1].value, 3.0);
    for (const auto& point : mc.points) {
      ExpectSameMetrics(standalone.value().montecarlo->columns,
                        point.columns);
    }
  }
}

TEST_F(JoinSqlTest, BindErrorShapes) {
  // Unknown VG table in the catalog.
  ExpectBindError(
      "SELECT 1 AS one INTO r;"
      "MONTECARLO FROM ghosts(3) AS g JOIN items(3) AS i "
      "ON g.x = i.item_id;",
      "unknown VG table 'ghosts'");
  // Wrong constructor arity.
  ExpectBindError(
      "SELECT 1 AS one INTO r;"
      "MONTECARLO FROM users(20) AS u JOIN items(3) AS i "
      "ON u.user_id = i.item_id;",
      "VG table 'users' takes");
  ExpectBindError(
      "SELECT 1 AS one INTO r;"
      "MONTECARLO FROM users(20, 0.8, 5.0, 2.0) AS u JOIN items() AS i "
      "ON u.user_id = i.item_id;",
      "VG table 'items' takes");
  // ON references an alias neither side declared.
  ExpectBindError(
      "SELECT 1 AS one INTO r;"
      "MONTECARLO FROM users(20, 0.8, 5.0, 2.0) AS u JOIN items(3) AS i "
      "ON ghost.user_id = i.item_id;",
      "ON references unknown alias 'ghost'");
  // Both ON sides name the same table.
  ExpectBindError(
      "SELECT 1 AS one INTO r;"
      "MONTECARLO FROM users(20, 0.8, 5.0, 2.0) AS u JOIN items(3) AS i "
      "ON u.user_id = u.signup_week;",
      "name the same side");
  // Unknown key column (pdb resolver text, bind-time code).
  ExpectBindError(
      "SELECT 1 AS one INTO r;"
      "MONTECARLO FROM users(20, 0.8, 5.0, 2.0) AS u JOIN items(3) AS i "
      "ON u.nope = i.item_id;",
      "no column named 'nope'");
  // Type-mismatched keys.
  ExpectBindError(
      "SELECT 1 AS one INTO r;"
      "MONTECARLO FROM users(20, 0.8, 5.0, 2.0) AS u JOIN items(3) AS i "
      "ON u.user_id = i.region;",
      "have mismatched types");
  // Self-join duplicates every output name.
  ExpectBindError(
      "SELECT 1 AS one INTO r;"
      "MONTECARLO FROM users(5, 0.8, 5.0, 2.0) AS a "
      "JOIN users(5, 0.8, 5.0, 2.0) AS b ON a.user_id = b.user_id;",
      "duplicate column");
  // Two sides sharing one alias can never be disambiguated.
  ExpectBindError(
      "SELECT 1 AS one INTO r;"
      "MONTECARLO FROM users(5, 0.8, 5.0, 2.0) AS t JOIN items(3) AS t "
      "ON t.user_id = t.item_id;",
      "share the alias 't'");
}

}  // namespace
}  // namespace jigsaw::sql
