// Self-test for tools/lint_determinism.py: proves each rule actually
// fires on a minimal synthetic violation (and stays quiet on the
// deterministic twin of the same pattern). The lint guards the draw
// discipline — if a rule silently stopped matching, nondeterminism could
// land unnoticed, so the rules themselves get regression coverage here.
//
// The real tree is checked by the `determinism_lint` CTest, which runs
// the script over src/ and fails on any finding.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef JIGSAW_LINT_SCRIPT
#error "build must define JIGSAW_LINT_SCRIPT (path to lint_determinism.py)"
#endif

bool PythonAvailable() {
  return std::system("python3 --version > /dev/null 2>&1") == 0;
}

struct LintResult {
  int exit_code = -1;
  std::string output;
};

/// Writes `source` to a temp file and lints it (plus optional siblings,
/// for cross-file rules). Returns the exit code and combined output.
class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!PythonAvailable()) GTEST_SKIP() << "python3 not on PATH";
    dir_ = ::testing::TempDir() + "lint_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }

  std::string WriteFile(const std::string& name, const std::string& source) {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path);
    out << source;
    return path;
  }

  LintResult Lint(const std::string& files) {
    const std::string out_path = dir_ + "/lint_output.txt";
    const std::string cmd = std::string("python3 ") + JIGSAW_LINT_SCRIPT +
                            " " + files + " > " + out_path + " 2>&1";
    LintResult r;
    const int status = std::system(cmd.c_str());
    r.exit_code = WEXITSTATUS(status);
    std::ifstream in(out_path);
    std::stringstream ss;
    ss << in.rdbuf();
    r.output = ss.str();
    return r;
  }

  std::string dir_;
};

TEST_F(LintTest, CleanFilePasses) {
  const std::string f = WriteFile("clean.cc", R"(
#include <cstdint>
constexpr std::uint64_t kAlphaSalt = 0x1111ULL;
constexpr std::uint64_t kBetaSalt = 0x2222ULL;
double Draw(RandomStream& rng) { return rng.NextDouble(); }
)");
  const LintResult r = Lint(f);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("clean"), std::string::npos) << r.output;
}

TEST_F(LintTest, DuplicateSaltValueAcrossFilesFires) {
  const std::string a = WriteFile("a.cc",
      "constexpr std::uint64_t kAlphaSalt = 0xABCDEFULL;\n");
  const std::string b = WriteFile("b.cc",
      "constexpr std::uint64_t kBetaSalt = 0xABCDEFULL;\n");
  const LintResult r = Lint(a + " " + b);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("duplicate-salt"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("aliased draw streams"), std::string::npos)
      << r.output;
}

TEST_F(LintTest, DuplicateSaltNameInOneFileFires) {
  const std::string f = WriteFile("dup.cc",
      "constexpr std::uint64_t kStepTag = 0x1ULL;\n"
      "constexpr std::uint64_t kStepTag = 0x2ULL;\n");
  const LintResult r = Lint(f);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("already declared"), std::string::npos) << r.output;
}

TEST_F(LintTest, RandCallFires) {
  const std::string f = WriteFile("r.cc",
      "int Draw() { return rand() % 6; }\n");
  const LintResult r = Lint(f);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("banned-rand"), std::string::npos) << r.output;
}

TEST_F(LintTest, RandInsideIdentifierOrStringDoesNotFire) {
  const std::string f = WriteFile("ok.cc",
      "int operand(int x) { return x; }\n"
      "const char* kMsg = \"rand() is banned\";\n"
      "int y = operand(2);\n");
  const LintResult r = Lint(f);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, RandomDeviceFires) {
  const std::string f = WriteFile("rd.cc",
      "#include <random>\nstd::random_device rd;\n");
  const LintResult r = Lint(f);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("banned-random-device"), std::string::npos)
      << r.output;
}

TEST_F(LintTest, TimeNullptrFires) {
  const std::string f = WriteFile("t.cc",
      "#include <ctime>\nlong Seed() { return time(nullptr); }\n");
  const LintResult r = Lint(f);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("banned-time"), std::string::npos) << r.output;
}

TEST_F(LintTest, ChronoNowFires) {
  const std::string f = WriteFile("c.cc",
      "#include <chrono>\n"
      "auto T() { return std::chrono::steady_clock::now(); }\n");
  const LintResult r = Lint(f);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("banned-clock-now"), std::string::npos) << r.output;
}

TEST_F(LintTest, AllowCommentSuppressesBannedFinding) {
  const std::string f = WriteFile("s.cc",
      "auto T() { return std::chrono::steady_clock::now(); }"
      "  // lint:allow-nondeterminism one-shot startup stamp\n");
  const LintResult r = Lint(f);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, UnorderedMapIterationFires) {
  const std::string f = WriteFile("u.cc",
      "#include <unordered_map>\n"
      "#include <string>\n"
      "std::unordered_map<std::string, double> totals_;\n"
      "double Report() {\n"
      "  double s = 0;\n"
      "  for (const auto& [k, v] : totals_) { s += v; }\n"
      "  return s;\n"
      "}\n");
  const LintResult r = Lint(f);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unordered-iteration"), std::string::npos)
      << r.output;
}

TEST_F(LintTest, UnorderedPointLookupDoesNotFire) {
  // find()/operator[] access is order-independent — only iteration is
  // flagged. Ordered containers never are.
  const std::string f = WriteFile("ok2.cc",
      "#include <map>\n#include <unordered_map>\n"
      "std::unordered_map<int, double> cache_;\n"
      "std::map<int, double> ordered_;\n"
      "double Get(int k) { return cache_.count(k) ? cache_[k] : 0.0; }\n"
      "double Sum() {\n"
      "  double s = 0;\n"
      "  for (const auto& [k, v] : ordered_) { s += v; }\n"
      "  return s;\n"
      "}\n");
  const LintResult r = Lint(f);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
