// Unit tests for the util substrate: Status/Result, streaming statistics,
// histograms (including the affine-transform reuse property), string
// helpers and hashing.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/hash.h"
#include "util/histogram.h"
#include "util/math_util.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace jigsaw {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::ExecutionError("x").code(),
            StatusCode::kExecutionError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  JIGSAW_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  auto err = QuarterEven(6);  // 6/2=3 is odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Welford / quantiles / ApproxEqual
// ---------------------------------------------------------------------------

TEST(WelfordTest, MatchesClosedForm) {
  WelfordAccumulator acc;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (double x : xs) acc.Add(x);
  EXPECT_EQ(acc.count(), 5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 2.0);       // population
  EXPECT_DOUBLE_EQ(acc.sample_variance(), 2.5);  // n-1
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(WelfordTest, MergeEqualsSequential) {
  WelfordAccumulator a, b, whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i * 0.1;
    (i < 20 ? a : b).Add(x);
    whole.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(WelfordTest, MergeWithEmptySides) {
  WelfordAccumulator a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  WelfordAccumulator target;
  target.Merge(a);
  EXPECT_EQ(target.count(), 2);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(KahanTest, CompensatesSmallTerms) {
  KahanSum sum;
  sum.Add(1e16);
  for (int i = 0; i < 10000; ++i) sum.Add(1.0);
  sum.Add(-1e16);
  EXPECT_DOUBLE_EQ(sum.sum(), 10000.0);
}

TEST(QuantileTest, InterpolatesBetweenRanks) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.25), 7.0);
}

TEST(QuantileTest, SelectMatchesSortBitForBit) {
  // QuantileSelect's contract is exact equality with the sort-based path:
  // same interpolation, order statistics obtained by selection. Exercise
  // odd/even sizes, heavy duplicates, and q at/between rank boundaries.
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 40) / 1048576.0;
  };
  for (std::size_t n : {1u, 2u, 3u, 17u, 100u, 101u, 1000u}) {
    std::vector<double> values;
    values.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Quantize so duplicates occur often.
      values.push_back(std::floor(next() * 16.0) / 4.0);
    }
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
      std::vector<double> scratch = values;
      const double by_select = QuantileSelect(scratch, q);
      const double by_sort = Quantile(values, q);
      EXPECT_EQ(by_select, by_sort) << "n=" << n << " q=" << q;
    }
  }
}

TEST(ApproxEqualTest, RelativeAndAbsolute) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(ApproxEqual(1e12, 1e12 * (1 + 1e-10)));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(0.0, 0.0));
  EXPECT_TRUE(ApproxEqual(0.0, 1e-13));  // absolute floor
  EXPECT_FALSE(ApproxEqual(0.0, 1e-6));
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bin 0
  h.Add(9.5);   // bin 9
  h.Add(-5.0);  // clamped to bin 0
  h.Add(15.0);  // clamped to bin 9
  EXPECT_EQ(h.total_count(), 4);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(9), 2);
}

TEST(HistogramTest, FromSamplesCoversRange) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  Histogram h = Histogram::FromSamples(xs, 4);
  EXPECT_DOUBLE_EQ(h.lo(), 1.0);
  EXPECT_DOUBLE_EQ(h.hi(), 4.0);
  EXPECT_EQ(h.total_count(), 4);
}

TEST(HistogramTest, AffineTransformPositiveAlphaPreservesCounts) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(std::sin(i * 0.3) * 5);
  Histogram h = Histogram::FromSamples(xs, 8);
  Histogram t = h.AffineTransformed(2.0, 3.0);
  EXPECT_EQ(t.total_count(), h.total_count());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(t.bin_count(i), h.bin_count(i));
  EXPECT_DOUBLE_EQ(t.lo(), 2.0 * h.lo() + 3.0);
  EXPECT_DOUBLE_EQ(t.hi(), 2.0 * h.hi() + 3.0);
}

TEST(HistogramTest, AffineTransformNegativeAlphaReversesBins) {
  std::vector<double> xs = {0.0, 0.1, 0.2, 0.9};
  Histogram h = Histogram::FromSamples(xs, 4);
  Histogram t = h.AffineTransformed(-1.0, 0.0);
  EXPECT_EQ(t.total_count(), h.total_count());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(t.bin_count(i), h.bin_count(3 - i));
  }
}

TEST(HistogramTest, TransformedHistogramMatchesTransformedSamples) {
  // Property: histogram(M(x)) == M(histogram(x)) for affine M — this is
  // why basis histogram reuse introduces no resampling error.
  std::vector<double> xs, mapped;
  for (int i = 0; i < 500; ++i) {
    const double x = std::cos(i * 0.11) * 7 + 0.3 * i;
    xs.push_back(x);
    mapped.push_back(-1.5 * x + 4.0);
  }
  Histogram direct = Histogram::FromSamples(xs, 16).AffineTransformed(-1.5, 4.0);
  Histogram recomputed = Histogram::FromSamples(mapped, 16);
  ASSERT_EQ(direct.num_bins(), recomputed.num_bins());
  EXPECT_NEAR(direct.lo(), recomputed.lo(), 1e-9);
  EXPECT_NEAR(direct.hi(), recomputed.hi(), 1e-9);
  for (int i = 0; i < direct.num_bins(); ++i) {
    EXPECT_EQ(direct.bin_count(i), recomputed.bin_count(i)) << "bin " << i;
  }
}

TEST(HistogramTest, CdfMonotone) {
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(i % 17 * 1.0);
  Histogram h = Histogram::FromSamples(xs, 10);
  double prev = -1.0;
  for (double x = h.lo(); x <= h.hi(); x += (h.hi() - h.lo()) / 20) {
    const double c = h.CdfAt(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(h.CdfAt(h.hi() + 1), 1.0, 1e-12);
}

TEST(HistogramTest, ApproxMeanNearTrueMean) {
  std::vector<double> xs;
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double x = (i % 100) * 0.1;
    xs.push_back(x);
    sum += x;
  }
  Histogram h = Histogram::FromSamples(xs, 50);
  EXPECT_NEAR(h.ApproxMean(), sum / 1000, 0.2);
}

TEST(HistogramTest, NonFiniteSamplesAreDroppedAndCounted) {
  // Regression: floor(NaN)/floor(inf) cast to int is UB; non-finite
  // observations must be skipped and tallied instead of binned.
  Histogram h(0.0, 10.0, 10);
  h.Add(std::numeric_limits<double>::quiet_NaN());
  h.Add(std::numeric_limits<double>::infinity());
  h.Add(-std::numeric_limits<double>::infinity());
  h.Add(5.0);
  EXPECT_EQ(h.total_count(), 1);
  EXPECT_EQ(h.dropped_count(), 3);
  EXPECT_DOUBLE_EQ(h.CdfAt(10.0), 1.0);  // CDF is over the binned mass
}

TEST(HistogramTest, FromSamplesIgnoresNonFiniteForRange) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Histogram h = Histogram::FromSamples({nan, 1.0, 2.0}, 4);
  EXPECT_DOUBLE_EQ(h.lo(), 1.0);
  EXPECT_DOUBLE_EQ(h.hi(), 2.0);
  EXPECT_EQ(h.total_count(), 2);
  EXPECT_EQ(h.dropped_count(), 1);

  // All-non-finite input must not poison the bin boundaries either.
  Histogram empty = Histogram::FromSamples({nan, nan}, 4);
  EXPECT_EQ(empty.total_count(), 0);
  EXPECT_EQ(empty.dropped_count(), 2);
  EXPECT_DOUBLE_EQ(empty.lo(), 0.0);
  EXPECT_DOUBLE_EQ(empty.hi(), 1.0);
}

TEST(HistogramTest, AffineTransformZeroAlphaCollapsesToPointMass) {
  // Regression: alpha == 0 used to keep the old bin layout over a
  // silently unit-widened [beta, beta] range. The mapped distribution is
  // the point mass at beta: one bin holds everything.
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  Histogram h = Histogram::FromSamples(xs, 8);
  Histogram t = h.AffineTransformed(0.0, 5.0);
  EXPECT_EQ(t.total_count(), 4);
  int nonzero_bins = 0;
  int mass_bin = -1;
  for (int i = 0; i < t.num_bins(); ++i) {
    if (t.bin_count(i) > 0) {
      ++nonzero_bins;
      mass_bin = i;
    }
  }
  ASSERT_EQ(nonzero_bins, 1);
  EXPECT_EQ(t.bin_count(mass_bin), 4);
  EXPECT_LE(t.bin_lo(mass_bin), 5.0);
  EXPECT_GT(t.bin_hi(mass_bin), 5.0);
  EXPECT_DOUBLE_EQ(t.CdfAt(t.hi()), 1.0);
  EXPECT_NEAR(t.ApproxMean(), 5.0, t.bin_hi(mass_bin) - t.bin_lo(mass_bin));

  // A non-finite beta maps every sample to a non-finite point: all mass
  // drops, exactly as if the samples had been Add'ed after the mapping.
  Histogram inf = h.AffineTransformed(0.0,
                                      std::numeric_limits<double>::infinity());
  EXPECT_EQ(inf.total_count(), 0);
  EXPECT_EQ(inf.dropped_count(), 4);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,,c");
  EXPECT_EQ(Split("a,b,,c", ','), parts);
}

TEST(StringTest, SplitEdgeCases) {
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("abc", ',').size(), 1u);
  EXPECT_EQ(Split(",", ',').size(), 2u);
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
  EXPECT_TRUE(EqualsIgnoreCase("EXPECT", "expect"));
  EXPECT_FALSE(EqualsIgnoreCase("EXPECT", "expect_"));
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringTest, StartsWith) {
  EXPECT_TRUE(StartsWith("jigsaw", "jig"));
  EXPECT_FALSE(StartsWith("jig", "jigsaw"));
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(HashTest, Fnv1aDistinguishesInputs) {
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
  EXPECT_EQ(Fnv1a64("same"), Fnv1a64("same"));
}

TEST(HashTest, HashWordsOrderDependent) {
  EXPECT_NE(HashWords({1, 2, 3}), HashWords({3, 2, 1}));
  EXPECT_EQ(HashWords({1, 2, 3}), HashWords({1, 2, 3}));
  EXPECT_NE(HashWords({}), HashWords({0}));
}

TEST(HashTest, HashIdsOrderDependent) {
  EXPECT_NE(HashIds({0, 1, 2}), HashIds({0, 2, 1}));
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace jigsaw
