// Tests for the simulation engine: parameter spaces, the Figure 6 model
// library's fingerprint behaviour, the fingerprint-accelerated runner
// (reuse correctness and invocation accounting) and the batch optimizer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "core/optimizer.h"
#include "core/parameter_space.h"
#include "core/sim_runner.h"
#include "models/cloud_models.h"

namespace jigsaw {
namespace {

// ---------------------------------------------------------------------------
// ParameterSpace
// ---------------------------------------------------------------------------

TEST(ParameterSpaceTest, RangeMaterializesInclusive) {
  ParameterDef def{"w", RangeDomain{0, 52, 4}};
  const auto values = def.Values();
  ASSERT_EQ(values.size(), 14u);
  EXPECT_DOUBLE_EQ(values.front(), 0.0);
  EXPECT_DOUBLE_EQ(values.back(), 52.0);
}

TEST(ParameterSpaceTest, SetDomainKeepsOrder) {
  ParameterDef def{"f", SetDomain{{12, 36, 44}}};
  const auto values = def.Values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 12.0);
  EXPECT_DOUBLE_EQ(values[2], 44.0);
}

TEST(ParameterSpaceTest, ChainContributesFactorOne) {
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{0, 9, 1}}).ok());
  ASSERT_TRUE(
      space.Add({"release", ChainDomain{"release", "week", 52.0}}).ok());
  EXPECT_EQ(space.NumPoints(), 10u);
  const auto v = space.ValuationAt(3);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 52.0);  // chain initial value
}

TEST(ParameterSpaceTest, RowMajorEnumerationLastVariesFastest) {
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"a", SetDomain{{0, 1}}}).ok());
  ASSERT_TRUE(space.Add({"b", SetDomain{{10, 20, 30}}}).ok());
  EXPECT_EQ(space.NumPoints(), 6u);
  EXPECT_EQ(space.ValuationAt(0), (std::vector<double>{0, 10}));
  EXPECT_EQ(space.ValuationAt(1), (std::vector<double>{0, 20}));
  EXPECT_EQ(space.ValuationAt(3), (std::vector<double>{1, 10}));
  EXPECT_EQ(space.ValuationAt(5), (std::vector<double>{1, 30}));
}

TEST(ParameterSpaceTest, RejectsDuplicatesAndBadDomains) {
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"a", RangeDomain{0, 5, 1}}).ok());
  EXPECT_EQ(space.Add({"A", RangeDomain{0, 5, 1}}).code(),
            StatusCode::kAlreadyExists);  // case-insensitive
  EXPECT_EQ(space.Add({"b", RangeDomain{0, 5, 0}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(space.Add({"c", RangeDomain{5, 0, 1}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(space.Add({"d", SetDomain{{}}}).code(),
            StatusCode::kInvalidArgument);
  // Values() materializes the grid into a vector, so Add must bound it:
  // non-finite bounds and absurd spans fail cleanly at declaration.
  EXPECT_EQ(space.Add({"e", RangeDomain{
                               0, std::numeric_limits<double>::infinity(),
                               1}})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(space.Add({"f", RangeDomain{0, 1e30, 1}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(ParameterSpaceTest, DegenerateHighMagnitudeRangeTerminates) {
  // lo + step rounds back to lo at this magnitude; the index-stepped
  // expansion must still produce exactly the points the span implies.
  ParameterDef def{"w", RangeDomain{1e16, 1e16, 1}};
  EXPECT_EQ(def.Values(), (std::vector<double>{1e16}));
}

TEST(ParameterSpaceTest, IndexOfIsCaseInsensitive) {
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"Purchase1", RangeDomain{0, 1, 1}}).ok());
  EXPECT_TRUE(space.IndexOf("purchase1").has_value());
  EXPECT_FALSE(space.IndexOf("purchase2").has_value());
}

// ---------------------------------------------------------------------------
// Figure 6 models: structure that drives fingerprint reuse
// ---------------------------------------------------------------------------

TEST(ModelTest, RegistryRegistersAllCloudModels) {
  ModelRegistry registry;
  ASSERT_TRUE(RegisterCloudModels(&registry).ok());
  EXPECT_TRUE(registry.Contains("DemandModel"));
  EXPECT_TRUE(registry.Contains("capacitymodel"));  // case-insensitive
  EXPECT_TRUE(registry.Contains("OverloadModel"));
  EXPECT_TRUE(registry.Contains("UserSelectionModel"));
  EXPECT_TRUE(registry.Contains("SynthBasisModel"));
  EXPECT_FALSE(registry.Lookup("NoSuchModel").ok());
  EXPECT_EQ(RegisterCloudModels(&registry).code(),
            StatusCode::kAlreadyExists);
}

TEST(ModelTest, DemandGrowsLinearlyBeforeFeature) {
  CloudModelConfig cfg;
  auto model = MakeDemandModel(cfg);
  SeedVector seeds(1, 2000);
  double sum20 = 0, sum40 = 0;
  for (std::size_t k = 0; k < 2000; ++k) {
    sum20 += InvokeSeeded(*model, std::vector<double>{20.0, 52.0}, seeds.seed(k));
    sum40 += InvokeSeeded(*model, std::vector<double>{40.0, 52.0}, seeds.seed(k));
  }
  EXPECT_NEAR(sum20 / 2000, 20.0, 0.5);
  EXPECT_NEAR(sum40 / 2000, 40.0, 0.5);
}

TEST(ModelTest, DemandFeatureReleaseAddsGrowth) {
  CloudModelConfig cfg;
  auto model = MakeDemandModel(cfg);
  SeedVector seeds(2, 2000);
  double with = 0, without = 0;
  for (std::size_t k = 0; k < 2000; ++k) {
    without += InvokeSeeded(*model, std::vector<double>{40.0, 52.0},
                            seeds.seed(k));
    with += InvokeSeeded(*model, std::vector<double>{40.0, 20.0},
                         seeds.seed(k));
  }
  // Post-release extra growth: 0.2 * (40-20) = 4 expected cores.
  EXPECT_NEAR(with / 2000 - without / 2000, 4.0, 0.6);
}

TEST(ModelTest, CapacityStepsUpAfterPurchaseSettles) {
  CloudModelConfig cfg;
  auto model = MakeCapacityModel(cfg);
  SeedVector seeds(3, 2000);
  auto mean_at = [&](double week, double p1, double p2) {
    double sum = 0;
    for (std::size_t k = 0; k < 2000; ++k) {
      sum += InvokeSeeded(*model, std::vector<double>{week, p1, p2},
                          seeds.seed(k));
    }
    return sum / 2000;
  };
  // Before any purchase: base capacity.
  EXPECT_NEAR(mean_at(5, 10, 30), cfg.base_capacity, 1.0);
  // Long after both purchases: base + 2 * volume.
  EXPECT_NEAR(mean_at(52, 10, 30),
              cfg.base_capacity + 2 * cfg.purchase_volume, 2.0);
  // Right after the first purchase: partially settled.
  const double mid = mean_at(11, 10, 30);
  EXPECT_GT(mid, cfg.base_capacity + 1.0);
  EXPECT_LT(mid, cfg.base_capacity + cfg.purchase_volume);
}

TEST(ModelTest, OverloadIsBooleanAndMonotoneInWeek) {
  CloudModelConfig cfg;
  auto model = MakeOverloadModel(cfg);
  SeedVector seeds(4, 1000);
  auto rate_at = [&](double week) {
    double sum = 0;
    for (std::size_t k = 0; k < 1000; ++k) {
      const double v = InvokeSeeded(
          *model, std::vector<double>{week, 200.0, 200.0}, seeds.seed(k));
      EXPECT_TRUE(v == 0.0 || v == 1.0);
      sum += v;
    }
    return sum / 1000;
  };
  // With no purchases landing, demand (mean=week) crosses the base
  // capacity (40) around week 40.
  EXPECT_LT(rate_at(20), 0.01);
  EXPECT_GT(rate_at(70), 0.99);
}

TEST(ModelTest, UserSelectionGrowsWithActivePopulation) {
  CloudModelConfig cfg;
  cfg.num_users = 500;
  auto model = MakeUserSelectionModel(cfg);
  SeedVector seeds(5, 200);
  double early = 0, late = 0;
  for (std::size_t k = 0; k < 200; ++k) {
    early += InvokeSeeded(*model, std::vector<double>{1.0}, seeds.seed(k));
    late += InvokeSeeded(*model, std::vector<double>{200.0}, seeds.seed(k));
  }
  EXPECT_GT(late, early);
}

TEST(ModelTest, UserProfileIsDeterministicData) {
  double s1, b1, s2, b2;
  DeriveUserProfile(17, 0.05, 0.05, &s1, &b1);
  DeriveUserProfile(17, 0.05, 0.05, &s2, &b2);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(b1, b2);
  DeriveUserProfile(18, 0.05, 0.05, &s2, &b2);
  EXPECT_TRUE(s1 != s2 || b1 != b2);
}

TEST(ModelTest, SynthBasisSameClassIsLinearlyMappable) {
  CloudModelConfig cfg;
  cfg.synth_num_basis = 4;
  auto model = MakeSynthBasisModel(cfg);
  BlackBoxSimFunction fn(model);
  SeedVector seeds(6, 100);
  // Points 3 and 7 share class 3 (mod 4); 3 and 6 do not.
  Fingerprint fp3 = ComputeFingerprint(fn, std::vector<double>{3.0}, seeds, 10);
  Fingerprint fp7 = ComputeFingerprint(fn, std::vector<double>{7.0}, seeds, 10);
  Fingerprint fp6 = ComputeFingerprint(fn, std::vector<double>{6.0}, seeds, 10);
  EXPECT_NE(FindLinearMapping(fp3, fp7, 1e-9), nullptr);
  EXPECT_EQ(FindLinearMapping(fp3, fp6, 1e-9), nullptr);
}

// ---------------------------------------------------------------------------
// SimulationRunner: Algorithm 3 in the loop
// ---------------------------------------------------------------------------

RunConfig SmallConfig(std::size_t n = 200, std::size_t m = 10) {
  RunConfig cfg;
  cfg.num_samples = n;
  cfg.fingerprint_size = m;
  return cfg;
}

TEST(SimRunnerTest, ReusedMetricsEqualFullSimulation) {
  // The paper's correctness claim (Section 6.2): "outputs of Jigsaw are
  // equivalent to full simulation for each possible parameter value."
  // For the Demand model every week maps linearly, so reused metrics must
  // match a from-scratch naive run to numerical precision.
  CloudModelConfig mcfg;
  auto model = MakeDemandModel(mcfg);
  BlackBoxSimFunction fn(model);

  SimulationRunner jigsaw_runner(SmallConfig());
  RunConfig naive_cfg = SmallConfig();
  naive_cfg.use_fingerprints = false;
  SimulationRunner naive_runner(naive_cfg);

  for (double week : {5.0, 10.0, 20.0, 40.0}) {
    const std::vector<double> params = {week, 52.0};
    const auto fast = jigsaw_runner.RunPoint(fn, params);
    const auto slow = naive_runner.RunPoint(fn, params);
    EXPECT_NEAR(fast.metrics.mean, slow.metrics.mean,
                1e-6 * (1 + std::fabs(slow.metrics.mean)))
        << "week " << week;
    EXPECT_NEAR(fast.metrics.stddev, slow.metrics.stddev,
                1e-6 * (1 + slow.metrics.stddev));
  }
  // At least one of the later weeks must have been served via reuse.
  EXPECT_GT(jigsaw_runner.stats().points_reused, 0u);
}

TEST(SimRunnerTest, ReuseSavesInvocations) {
  CloudModelConfig mcfg;
  auto model = MakeDemandModel(mcfg);
  BlackBoxSimFunction fn(model);
  SimulationRunner runner(SmallConfig(1000, 10));

  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 50, 1}}).ok());
  ASSERT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());
  const auto results = runner.RunSweep(fn, space);
  ASSERT_EQ(results.size(), 50u);

  const auto& stats = runner.stats();
  EXPECT_EQ(stats.points_evaluated, 50u);
  // Weeks 2..50 all map onto week 1's basis: 49 reuses.
  EXPECT_GE(stats.points_reused, 45u);
  // Invocations ~ 50*m + (few bases)*(n-m), far below the naive 50*n.
  EXPECT_LT(stats.blackbox_invocations, 50u * 1000u / 10u);
}

TEST(SimRunnerTest, NaiveModeNeverReuses) {
  CloudModelConfig mcfg;
  auto model = MakeDemandModel(mcfg);
  BlackBoxSimFunction fn(model);
  RunConfig cfg = SmallConfig(100, 10);
  cfg.use_fingerprints = false;
  SimulationRunner runner(cfg);
  for (double week : {1.0, 2.0, 3.0}) {
    runner.RunPoint(fn, std::vector<double>{week, 52.0});
  }
  EXPECT_EQ(runner.stats().points_reused, 0u);
  EXPECT_EQ(runner.stats().blackbox_invocations, 300u);
}

TEST(SimRunnerTest, SynthBasisProducesExactBasisCount) {
  CloudModelConfig mcfg;
  mcfg.synth_num_basis = 7;
  auto model = MakeSynthBasisModel(mcfg);
  BlackBoxSimFunction fn(model);
  SimulationRunner runner(SmallConfig(100, 10));
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"point", RangeDomain{0, 99, 1}}).ok());
  runner.RunSweep(fn, space);
  EXPECT_EQ(runner.basis_store().size(), 7u);
}

TEST(SimRunnerTest, BooleanOutputsReuseOnlyWhenIdentical) {
  // Overload-style booleans: zero-overload regions share one constant
  // basis; mixed regions rarely map. Reuse exists but is limited — the
  // Figure 8 effect.
  CloudModelConfig mcfg;
  auto model = MakeOverloadModel(mcfg);
  BlackBoxSimFunction fn(model);
  SimulationRunner runner(SmallConfig(200, 10));
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 60, 1}}).ok());
  ASSERT_TRUE(space.Add({"p1", SetDomain{{20.0}}}).ok());
  ASSERT_TRUE(space.Add({"p2", SetDomain{{40.0}}}).ok());
  const auto results = runner.RunSweep(fn, space);
  EXPECT_GT(runner.stats().points_reused, 10u);  // all-zero weeks collapse
  for (const auto& r : results) {
    EXPECT_GE(r.metrics.mean, 0.0);
    EXPECT_LE(r.metrics.mean, 1.0);
  }
}

TEST(SimRunnerTest, KeepSamplesRetainsMappedSamples) {
  CloudModelConfig mcfg;
  auto model = MakeDemandModel(mcfg);
  BlackBoxSimFunction fn(model);
  RunConfig cfg = SmallConfig(50, 5);
  cfg.keep_samples = true;
  SimulationRunner runner(cfg);
  runner.RunPoint(fn, std::vector<double>{10.0, 52.0});
  const auto reused = runner.RunPoint(fn, std::vector<double>{20.0, 52.0});
  if (reused.reused) {
    EXPECT_EQ(reused.metrics.samples.size(), 50u);
  }
}

// ---------------------------------------------------------------------------
// Parallel sweep determinism: RunSweep must be bit-identical at any
// thread count — identical OutputMetrics, identical reuse decisions,
// identical RunnerStats — because the phase pipeline replays the serial
// decision order and every sample is a pure function of its seed.
// ---------------------------------------------------------------------------

std::uint64_t Bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

void ExpectBitIdenticalMetrics(const OutputMetrics& a,
                               const OutputMetrics& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(Bits(a.mean), Bits(b.mean));
  EXPECT_EQ(Bits(a.stddev), Bits(b.stddev));
  EXPECT_EQ(Bits(a.std_error), Bits(b.std_error));
  EXPECT_EQ(Bits(a.min), Bits(b.min));
  EXPECT_EQ(Bits(a.max), Bits(b.max));
  EXPECT_EQ(Bits(a.p50), Bits(b.p50));
  EXPECT_EQ(Bits(a.p95), Bits(b.p95));
  ASSERT_EQ(a.histogram.has_value(), b.histogram.has_value());
  if (a.histogram) {
    EXPECT_TRUE(*a.histogram == *b.histogram);
  }
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    ASSERT_EQ(Bits(a.samples[i]), Bits(b.samples[i])) << "sample " << i;
  }
}

void ExpectSweepsIdentical(const RunConfig& base_cfg, const SimFunction& fn,
                           const ParameterSpace& space) {
  RunConfig serial_cfg = base_cfg;
  serial_cfg.num_threads = 1;
  SimulationRunner serial(serial_cfg);
  const auto expected = serial.RunSweep(fn, space);

  for (std::size_t threads : {2u, 8u}) {
    RunConfig cfg = base_cfg;
    cfg.num_threads = threads;
    SimulationRunner runner(cfg);
    const auto got = runner.RunSweep(fn, space);

    ASSERT_EQ(got.size(), expected.size()) << threads << " threads";
    for (std::size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE(::testing::Message()
                   << threads << " threads, point " << i);
      EXPECT_EQ(got[i].reused, expected[i].reused);
      EXPECT_EQ(got[i].basis_id, expected[i].basis_id);
      ASSERT_NE(got[i].mapping, nullptr);
      EXPECT_EQ(got[i].mapping->ToString(), expected[i].mapping->ToString());
      ExpectBitIdenticalMetrics(got[i].metrics, expected[i].metrics);
    }

    EXPECT_EQ(runner.stats().points_evaluated,
              serial.stats().points_evaluated);
    EXPECT_EQ(runner.stats().points_reused, serial.stats().points_reused);
    EXPECT_EQ(runner.stats().blackbox_invocations,
              serial.stats().blackbox_invocations);

    const auto& ss = serial.basis_store().stats();
    const auto& ps = runner.basis_store().stats();
    EXPECT_EQ(runner.basis_store().size(), serial.basis_store().size());
    EXPECT_EQ(ps.lookups, ss.lookups);
    EXPECT_EQ(ps.hits, ss.hits);
    EXPECT_EQ(ps.misses, ss.misses);
    EXPECT_EQ(ps.candidates_tested, ss.candidates_tested);
    EXPECT_EQ(ps.false_positive_candidates, ss.false_positive_candidates);
    for (std::size_t b = 0; b < runner.basis_store().size(); ++b) {
      EXPECT_EQ(runner.basis_store().Get(static_cast<BasisId>(b)).reuse_count,
                serial.basis_store().Get(static_cast<BasisId>(b)).reuse_count)
          << "basis " << b;
    }
  }
}

TEST(SweepDeterminismTest, FingerprintSweepBitIdenticalAcrossThreadCounts) {
  CloudModelConfig mcfg;
  auto model = MakeDemandModel(mcfg);
  BlackBoxSimFunction fn(model);
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 40, 1}}).ok());
  ASSERT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());
  ExpectSweepsIdentical(SmallConfig(400, 10), fn, space);
}

TEST(SweepDeterminismTest, MixedHitMissSweepBitIdentical) {
  // SynthBasis cycles through several distinct bases, interleaving hits
  // and misses along the sweep — the stress case for the deferred-metrics
  // protocol (a hit may map a basis whose full simulation ran in a later
  // pool slot).
  CloudModelConfig mcfg;
  mcfg.synth_num_basis = 5;
  auto model = MakeSynthBasisModel(mcfg);
  BlackBoxSimFunction fn(model);
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"point", RangeDomain{0, 79, 1}}).ok());
  ExpectSweepsIdentical(SmallConfig(200, 10), fn, space);
}

TEST(SweepDeterminismTest, BooleanSweepBitIdentical) {
  // Overload's constant-zero regions exercise the constant-translation
  // mapping extension and limited-reuse mixed regions.
  CloudModelConfig mcfg;
  auto model = MakeOverloadModel(mcfg);
  BlackBoxSimFunction fn(model);
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 48, 1}}).ok());
  ASSERT_TRUE(space.Add({"p1", SetDomain{{20.0}}}).ok());
  ASSERT_TRUE(space.Add({"p2", SetDomain{{40.0}}}).ok());
  ExpectSweepsIdentical(SmallConfig(300, 10), fn, space);
}

TEST(SweepDeterminismTest, KeepSamplesSweepBitIdentical) {
  // keep_samples routes reuse through sample-level mapping; retained
  // sample vectors must also match bitwise.
  CloudModelConfig mcfg;
  auto model = MakeDemandModel(mcfg);
  BlackBoxSimFunction fn(model);
  RunConfig cfg = SmallConfig(100, 5);
  cfg.keep_samples = true;
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 24, 1}}).ok());
  ASSERT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());
  ExpectSweepsIdentical(cfg, fn, space);
}

TEST(SweepDeterminismTest, NaiveSweepBitIdenticalAcrossThreadCounts) {
  CloudModelConfig mcfg;
  auto model = MakeDemandModel(mcfg);
  BlackBoxSimFunction fn(model);
  RunConfig cfg = SmallConfig(300, 10);
  cfg.use_fingerprints = false;
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 30, 1}}).ok());
  ASSERT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());
  ExpectSweepsIdentical(cfg, fn, space);
}

// ---------------------------------------------------------------------------
// Optimizer & Selector
// ---------------------------------------------------------------------------

TEST(SelectorTest, LexicographicObjectives) {
  Selector sel({{"p1", true}, {"p2", false}}, {"p1", "p2"});
  EXPECT_TRUE(sel.Better({2, 5}, {1, 0}));   // larger p1 wins
  EXPECT_FALSE(sel.Better({1, 5}, {2, 0}));  // smaller p1 loses
  EXPECT_TRUE(sel.Better({2, 1}, {2, 3}));   // tie on p1 -> smaller p2 wins
  EXPECT_FALSE(sel.Better({2, 3}, {2, 3}));  // exact tie keeps incumbent
}

Scenario MakeCapacityScenario(const CloudModelConfig& mcfg) {
  Scenario scenario;
  EXPECT_TRUE(
      scenario.params.Add({"week", RangeDomain{0, 30, 5}}).ok());
  EXPECT_TRUE(
      scenario.params.Add({"purchase", RangeDomain{0, 20, 5}}).ok());
  auto overload = MakeOverloadModel(mcfg);
  // Adapt the 3-parameter Overload model: purchase2 mirrors purchase1.
  scenario.columns.push_back(ScenarioColumn{
      "overload",
      std::make_shared<CallableSimFunction>(
          "overload",
          [overload](std::span<const double> p, std::size_t k,
                     const SeedVector& seeds) {
            const std::vector<double> args = {p[0], p[1], p[1]};
            return InvokeSeeded(*overload, args, seeds.seed(k));
          })});
  return scenario;
}

TEST(OptimizerTest, FindsLatestFeasiblePurchase) {
  CloudModelConfig mcfg;
  Scenario scenario = MakeCapacityScenario(mcfg);

  OptimizeSpec spec;
  spec.group_params = {"purchase"};
  spec.constraints.push_back(MetricConstraint{
      SweepAgg::kMax, MetricSelector::kExpect, "overload", CmpOp::kLt, 0.5});
  spec.objectives.push_back(ObjectiveTerm{"purchase", true});

  SimulationRunner runner(SmallConfig(300, 10));
  Optimizer optimizer(&runner);
  auto result = optimizer.Run(scenario, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& r = result.value();
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.groups.size(), 5u);  // purchases 0,5,10,15,20
  // Early purchases keep overload low through week 30; among feasible
  // ones the optimizer must pick the LATEST (FOR MAX).
  double latest_feasible = -1;
  for (const auto& g : r.groups) {
    if (g.feasible) latest_feasible = std::max(latest_feasible,
                                               g.group_valuation[0]);
  }
  EXPECT_DOUBLE_EQ(r.best_valuation[0], latest_feasible);
}

TEST(OptimizerTest, InfeasibleEverywhereReportsNotFound) {
  CloudModelConfig mcfg;
  Scenario scenario = MakeCapacityScenario(mcfg);
  OptimizeSpec spec;
  spec.group_params = {"purchase"};
  spec.constraints.push_back(MetricConstraint{
      SweepAgg::kMax, MetricSelector::kExpect, "overload", CmpOp::kLt,
      -1.0});  // impossible
  spec.objectives.push_back(ObjectiveTerm{"purchase", true});
  SimulationRunner runner(SmallConfig(100, 10));
  Optimizer optimizer(&runner);
  auto result = optimizer.Run(scenario, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().found);
  EXPECT_NE(result.value().ToString().find("no feasible"),
            std::string::npos);
}

TEST(OptimizerTest, RejectsUndeclaredGroupParam) {
  CloudModelConfig mcfg;
  Scenario scenario = MakeCapacityScenario(mcfg);
  OptimizeSpec spec;
  spec.group_params = {"nope"};
  SimulationRunner runner(SmallConfig(50, 10));
  Optimizer optimizer(&runner);
  EXPECT_EQ(optimizer.Run(scenario, spec).status().code(),
            StatusCode::kBindError);
}

TEST(OptimizerTest, RejectsUnknownConstraintColumn) {
  CloudModelConfig mcfg;
  Scenario scenario = MakeCapacityScenario(mcfg);
  OptimizeSpec spec;
  spec.group_params = {"purchase"};
  spec.constraints.push_back(MetricConstraint{
      SweepAgg::kMax, MetricSelector::kExpect, "ghost", CmpOp::kLt, 1.0});
  SimulationRunner runner(SmallConfig(50, 10));
  Optimizer optimizer(&runner);
  EXPECT_EQ(optimizer.Run(scenario, spec).status().code(),
            StatusCode::kNotFound);
}

TEST(OptimizerTest, EmptyGroupListIsError) {
  CloudModelConfig mcfg;
  Scenario scenario = MakeCapacityScenario(mcfg);
  SimulationRunner runner(SmallConfig(50, 10));
  Optimizer optimizer(&runner);
  EXPECT_FALSE(optimizer.Run(scenario, {}).ok());
}

TEST(MetricSelectorTest, ExtractsEachField) {
  OutputMetrics m;
  m.mean = 1;
  m.stddev = 2;
  m.std_error = 3;
  m.min = 4;
  m.max = 5;
  m.p50 = 6;
  m.p95 = 7;
  EXPECT_EQ(ExtractMetric(m, MetricSelector::kExpect), 1);
  EXPECT_EQ(ExtractMetric(m, MetricSelector::kStdDev), 2);
  EXPECT_EQ(ExtractMetric(m, MetricSelector::kStdError), 3);
  EXPECT_EQ(ExtractMetric(m, MetricSelector::kMin), 4);
  EXPECT_EQ(ExtractMetric(m, MetricSelector::kMax), 5);
  EXPECT_EQ(ExtractMetric(m, MetricSelector::kMedian), 6);
  EXPECT_EQ(ExtractMetric(m, MetricSelector::kP95), 7);
}

TEST(ConstraintTest, CompareOperators) {
  MetricConstraint c;
  c.threshold = 1.0;
  c.cmp = CmpOp::kLt;
  EXPECT_TRUE(c.Compare(0.5));
  EXPECT_FALSE(c.Compare(1.0));
  c.cmp = CmpOp::kLe;
  EXPECT_TRUE(c.Compare(1.0));
  c.cmp = CmpOp::kGt;
  EXPECT_TRUE(c.Compare(1.5));
  EXPECT_FALSE(c.Compare(1.0));
  c.cmp = CmpOp::kGe;
  EXPECT_TRUE(c.Compare(1.0));
}

}  // namespace
}  // namespace jigsaw
