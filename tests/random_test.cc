// Tests for the deterministic random substrate. Determinism (same seed ->
// bit-identical sequence) is a hard requirement: fingerprints compare
// seeded outputs across parameter values and would silently stop matching
// if any distribution consumed platform-dependent randomness.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "random/philox.h"
#include "random/random_stream.h"
#include "random/seed_vector.h"
#include "random/splitmix64.h"
#include "random/xoshiro256.h"

namespace jigsaw {
namespace {

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, JumpProducesDisjointStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.Jump();
  // The jumped stream should not collide with the head of the original.
  std::vector<std::uint64_t> head;
  for (int i = 0; i < 64; ++i) head.push_back(a.Next());
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t v = b.Next();
    for (auto h : head) EXPECT_NE(v, h);
  }
}

TEST(PhiloxTest, BlockIsDeterministicAndKeySensitive) {
  std::uint64_t a0, a1, b0, b1;
  Philox4x32::Block64(1, 2, 3, &a0, &a1);
  Philox4x32::Block64(1, 2, 3, &b0, &b1);
  EXPECT_EQ(a0, b0);
  EXPECT_EQ(a1, b1);
  Philox4x32::Block64(1, 2, 4, &b0, &b1);
  EXPECT_NE(a0, b0);
  Philox4x32::Block64(2, 2, 3, &b0, &b1);
  EXPECT_NE(a0, b0);
}

TEST(PhiloxTest, DeriveStreamSeedSeparatesCallSites) {
  const std::uint64_t sigma = 42;
  EXPECT_NE(DeriveStreamSeed(sigma, 0), DeriveStreamSeed(sigma, 1));
  EXPECT_NE(DeriveStreamSeed(1, 0), DeriveStreamSeed(2, 0));
  EXPECT_EQ(DeriveStreamSeed(5, 9), DeriveStreamSeed(5, 9));
}

TEST(RandomStreamTest, NextDoubleInUnitInterval) {
  RandomStream rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStreamTest, UniformRespectsBounds) {
  RandomStream rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RandomStreamTest, UniformIntInclusiveBounds) {
  RandomStream rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomStreamTest, GaussianMomentsApproximatelyStandard) {
  RandomStream rng(14);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Gaussian();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RandomStreamTest, GaussianAdvancesStreamByFixedAmount) {
  // Two streams that interleave Gaussian with other draws must stay in
  // lockstep: Gaussian always consumes exactly two uniforms.
  RandomStream a(15), b(15);
  a.Gaussian();
  b.NextDouble();
  b.NextDouble();
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomStreamTest, NormalScalesAndShifts) {
  RandomStream a(16), b(16);
  const double z = a.Gaussian();
  const double n = b.Normal(10.0, 2.0);
  EXPECT_DOUBLE_EQ(n, 10.0 + 2.0 * z);
}

TEST(RandomStreamTest, ExponentialMeanMatchesRate) {
  RandomStream rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RandomStreamTest, ExponentialAlwaysPositive) {
  RandomStream rng(18);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.Exponential(3.0), 0.0);
}

TEST(RandomStreamTest, BernoulliFrequency) {
  RandomStream rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomStreamTest, PoissonSmallMean) {
  RandomStream rng(20);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(2.5));
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RandomStreamTest, PoissonLargeMeanUsesNormalApprox) {
  RandomStream rng(21);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(RandomStreamTest, PoissonZeroMean) {
  RandomStream rng(22);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RandomStreamTest, GeometricMean) {
  RandomStream rng(23);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Geometric(0.25));
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RandomStreamTest, DiscretePicksProportionally) {
  RandomStream rng(24);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(RandomStreamTest, GammaMeanMatchesShapeScale) {
  RandomStream rng(25);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gamma(3.0, 2.0);
  EXPECT_NEAR(sum / n, 6.0, 0.15);
}

TEST(RandomStreamTest, GammaShapeBelowOne) {
  RandomStream rng(26);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gamma(0.5, 1.0);
    EXPECT_GT(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(RandomStreamTest, LogNormalMedian) {
  RandomStream rng(27);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.LogNormal(1.0, 0.5));
  std::sort(xs.begin(), xs.end());
  // Median of lognormal(mu, sigma) is e^mu.
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.1);
}

// ---------------------------------------------------------------------------
// SeedVector
// ---------------------------------------------------------------------------

TEST(SeedVectorTest, DeterministicExpansion) {
  SeedVector a(555, 100), b(555, 100);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.seed(i), b.seed(i));
}

TEST(SeedVectorTest, DistinctSeedsWithinVector) {
  SeedVector sv(777, 1000);
  for (std::size_t i = 1; i < sv.size(); ++i) {
    EXPECT_NE(sv.seed(i), sv.seed(0));
  }
}

TEST(SeedVectorTest, EnsureSizePreservesPrefix) {
  SeedVector sv(888, 10);
  std::vector<std::uint64_t> prefix;
  for (std::size_t i = 0; i < 10; ++i) prefix.push_back(sv.seed(i));
  sv.EnsureSize(50);
  ASSERT_EQ(sv.size(), 50u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sv.seed(i), prefix[i]);
}

TEST(SeedVectorTest, StreamForIsReproducibleAndSiteSeparated) {
  SeedVector sv(999, 10);
  RandomStream a = sv.StreamFor(3, 1);
  RandomStream b = sv.StreamFor(3, 1);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  RandomStream c = sv.StreamFor(3, 2);
  RandomStream d = sv.StreamFor(4, 1);
  RandomStream e = sv.StreamFor(3, 1);
  const std::uint64_t head = e.NextUint64();
  EXPECT_NE(c.NextUint64(), head);
  EXPECT_NE(d.NextUint64(), head);
}

}  // namespace
}  // namespace jigsaw
