// Tests for the mini-MCDB substrate: typed values, tables, expression
// evaluation (including stochastic model calls), Volcano operators, VG
// tables with the world cache, the Monte Carlo executor and the layered
// engine.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>

#include <span>

#include "grid_test_util.h"
#include "models/cloud_models.h"
#include "pdb/batch_program.h"
#include "pdb/expr.h"
#include "pdb/layered_engine.h"
#include "pdb/monte_carlo.h"
#include "pdb/operators.h"
#include "pdb/table.h"
#include "pdb/value.h"
#include "pdb/vg_table.h"

namespace jigsaw::pdb {
namespace {

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(std::int64_t{4}).type(), ValueType::kInt);
  EXPECT_EQ(Value(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
  EXPECT_EQ(Value(std::int64_t{4}).AsInt(), 4);
  EXPECT_DOUBLE_EQ(Value(std::int64_t{4}).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(Value(true).AsDouble(), 1.0);
  EXPECT_TRUE(Value(std::int64_t{1}).AsBool());
  EXPECT_FALSE(Value(0.0).AsBool());
}

TEST(ValueTest, ArithmeticPromotion) {
  const Value i4(std::int64_t{4});
  const Value i3(std::int64_t{3});
  const Value d2(2.0);
  auto sum = Add(i4, i3);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum.value().type(), ValueType::kInt);
  EXPECT_EQ(sum.value().AsInt(), 7);
  auto mixed = Multiply(i4, d2);
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed.value().type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(mixed.value().AsDouble(), 8.0);
  // Division always produces double.
  auto div = Divide(i4, i3);
  ASSERT_TRUE(div.ok());
  EXPECT_EQ(div.value().type(), ValueType::kDouble);
}

TEST(ValueTest, NullPropagatesThroughArithmetic) {
  auto v = Add(Value::Null(), Value(1.0));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());
}

TEST(ValueTest, DivisionByZeroIsError) {
  EXPECT_EQ(Divide(Value(1.0), Value(0.0)).status().code(),
            StatusCode::kExecutionError);
}

TEST(ValueTest, NonNumericArithmeticIsError) {
  EXPECT_FALSE(Add(Value(std::string("a")), Value(1.0)).ok());
}

TEST(ValueTest, CompareOrdersNumericsAndStrings) {
  EXPECT_LT(Value::Compare(Value(1.0), Value(std::int64_t{2})), 0);
  EXPECT_EQ(Value::Compare(Value(2.0), Value(std::int64_t{2})), 0);
  EXPECT_GT(Value::Compare(Value(std::string("b")),
                           Value(std::string("a"))),
            0);
  EXPECT_LT(Value::Compare(Value::Null(), Value(0.0)), 0);
}

TEST(ValueTest, ParseRoundTrip) {
  auto i = Value::Parse("42", ValueType::kInt);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i.value().AsInt(), 42);
  auto d = Value::Parse("2.5", ValueType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value().AsDouble(), 2.5);
  auto b = Value::Parse("TRUE", ValueType::kBool);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b.value().AsBool());
  EXPECT_FALSE(Value::Parse("zz", ValueType::kInt).ok());
  EXPECT_FALSE(Value::Parse("maybe", ValueType::kBool).ok());
}

// ---------------------------------------------------------------------------
// Table / Schema / CSV interop
// ---------------------------------------------------------------------------

/// AddRow for rows a test knows to be schema-conformant.
void MustAddRow(Table& t, Row row) {
  const Status s = t.AddRow(std::move(row));
  ASSERT_TRUE(s.ok()) << s.ToString();
}

Table MakeToyTable() {
  Schema schema(std::vector<Column>{{"id", ValueType::kInt},
                                    {"score", ValueType::kDouble}});
  Table t(schema);
  for (int i = 0; i < 5; ++i) {
    MustAddRow(t, {Value(std::int64_t{i}), Value(i * 1.5)});
  }
  return t;
}

TEST(TableTest, AddRowValidatesArityAndTypes) {
  Schema schema(std::vector<Column>{{"id", ValueType::kInt},
                                    {"label", ValueType::kString}});
  Table t(schema);

  // Arity mismatch is rejected, not silently accepted.
  Status arity = t.AddRow({Value(std::int64_t{1})});
  EXPECT_EQ(arity.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(arity.message().find("arity"), std::string::npos);

  // A numeric value cannot land in a string-declared column.
  Status type = t.AddRow({Value(std::int64_t{1}), Value(2.5)});
  EXPECT_EQ(type.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(type.message().find("label"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 0u);

  // The numeric family is interchangeable (Value::AsDouble coercion) and
  // nulls always fit.
  EXPECT_TRUE(t.AddRow({Value(1.0), Value(std::string("ok"))}).ok());
  EXPECT_TRUE(t.AddRow({Value::Null(), Value::Null()}).ok());
  EXPECT_EQ(t.num_rows(), 2u);

  // A string cannot land in a numeric-declared column.
  Schema num(std::vector<Column>{{"x", ValueType::kDouble}});
  Table tn(num);
  EXPECT_FALSE(tn.AddRow({Value(std::string("oops"))}).ok());
}

TEST(TableTest, SchemaLookupCaseInsensitive) {
  const Table t = MakeToyTable();
  auto idx = t.schema().IndexOf("SCORE");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1u);
  EXPECT_FALSE(t.schema().IndexOf("ghost").ok());
}

TEST(TableTest, NumericColumnExtraction) {
  const Table t = MakeToyTable();
  auto col = t.NumericColumn("score");
  ASSERT_TRUE(col.ok());
  ASSERT_EQ(col.value().size(), 5u);
  EXPECT_DOUBLE_EQ(col.value()[2], 3.0);
}

TEST(TableTest, CsvRoundTripPreservesValues) {
  const Table t = MakeToyTable();
  const std::string csv = t.ToCsv();
  auto parsed = Table::FromCsv(csv, t.schema());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().num_rows(), t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_TRUE(parsed.value().row(r)[0] == t.row(r)[0]);
    EXPECT_TRUE(parsed.value().row(r)[1] == t.row(r)[1]);
  }
}

TEST(TableTest, CsvArityMismatchIsError) {
  const Table t = MakeToyTable();
  EXPECT_FALSE(Table::FromCsv("id,score\n1\n", t.schema()).ok());
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

TEST(ExprTest, ArithmeticAndComparison) {
  EvalContext ctx;
  auto e = MakeBinary(BinaryOp::kAdd, MakeLiteral(Value(2.0)),
                      MakeBinary(BinaryOp::kMul, MakeLiteral(Value(3.0)),
                                 MakeLiteral(Value(4.0))));
  auto v = e->Eval(ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v.value().AsDouble(), 14.0);

  auto cmp = MakeBinary(BinaryOp::kLt, MakeLiteral(Value(1.0)),
                        MakeLiteral(Value(2.0)));
  EXPECT_TRUE(cmp->Eval(ctx).value().AsBool());
}

TEST(ExprTest, LogicShortCircuits) {
  EvalContext ctx;
  // false AND <error> must not evaluate the error side.
  auto err = MakeBinary(BinaryOp::kDiv, MakeLiteral(Value(1.0)),
                        MakeLiteral(Value(0.0)));
  auto e = MakeBinary(BinaryOp::kAnd, MakeLiteral(Value(false)), err);
  auto v = e->Eval(ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v.value().AsBool());
  auto e2 = MakeBinary(BinaryOp::kOr, MakeLiteral(Value(true)), err);
  EXPECT_TRUE(e2->Eval(ctx).value().AsBool());
}

TEST(ExprTest, CaseSelectsFirstMatchingBranch) {
  EvalContext ctx;
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  branches.emplace_back(MakeLiteral(Value(false)), MakeLiteral(Value(1.0)));
  branches.emplace_back(MakeLiteral(Value(true)), MakeLiteral(Value(2.0)));
  auto e = MakeCase(std::move(branches), MakeLiteral(Value(3.0)));
  EXPECT_DOUBLE_EQ(e->Eval(ctx).value().AsDouble(), 2.0);

  std::vector<std::pair<ExprPtr, ExprPtr>> none;
  none.emplace_back(MakeLiteral(Value(false)), MakeLiteral(Value(1.0)));
  auto e2 = MakeCase(std::move(none), MakeLiteral(Value(9.0)));
  EXPECT_DOUBLE_EQ(e2->Eval(ctx).value().AsDouble(), 9.0);

  std::vector<std::pair<ExprPtr, ExprPtr>> noelse;
  noelse.emplace_back(MakeLiteral(Value(false)), MakeLiteral(Value(1.0)));
  auto e3 = MakeCase(std::move(noelse), nullptr);
  EXPECT_TRUE(e3->Eval(ctx).value().is_null());
}

TEST(ExprTest, ColumnAliasAndParamRefs) {
  Row row = {Value(10.0), Value(20.0)};
  std::vector<Value> aliases = {Value(7.0)};
  std::vector<double> params = {3.5};
  EvalContext ctx;
  ctx.row = &row;
  ctx.aliases = &aliases;
  ctx.params = params;
  EXPECT_DOUBLE_EQ(
      MakeColumnRef(1, "b")->Eval(ctx).value().AsDouble(), 20.0);
  EXPECT_DOUBLE_EQ(
      MakeAliasRef(0, "a")->Eval(ctx).value().AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(
      MakeParamRef(0, "p")->Eval(ctx).value().AsDouble(), 3.5);
  // Out-of-context references are execution errors, not crashes.
  EXPECT_FALSE(MakeColumnRef(5, "x")->Eval(ctx).ok());
  EXPECT_FALSE(MakeAliasRef(5, "x")->Eval(ctx).ok());
  EXPECT_FALSE(MakeParamRef(5, "x")->Eval(ctx).ok());
}

TEST(ExprTest, ModelCallIsSeededAndCallSiteSeparated) {
  CloudModelConfig cfg;
  auto model = MakeDemandModel(cfg);
  SeedVector seeds(9, 10);
  EvalContext ctx;
  ctx.seeds = &seeds;
  ctx.sample_id = 0;

  auto call1 = MakeModelCall(
      model, {MakeLiteral(Value(10.0)), MakeLiteral(Value(52.0))}, 1);
  auto call1b = MakeModelCall(
      model, {MakeLiteral(Value(10.0)), MakeLiteral(Value(52.0))}, 1);
  auto call2 = MakeModelCall(
      model, {MakeLiteral(Value(10.0)), MakeLiteral(Value(52.0))}, 2);

  const double a = call1->Eval(ctx).value().AsDouble();
  const double b = call1b->Eval(ctx).value().AsDouble();
  const double c = call2->Eval(ctx).value().AsDouble();
  EXPECT_EQ(a, b);  // same call site, same world -> identical draw
  EXPECT_NE(a, c);  // different call site -> independent stream

  ctx.sample_id = 1;
  EXPECT_NE(call1->Eval(ctx).value().AsDouble(), a);  // new world
  ctx.sample_id = 0;
  ctx.stream_salt = 1234;
  EXPECT_NE(call1->Eval(ctx).value().AsDouble(), a);  // salted (chain step)
}

TEST(ExprTest, ModelCallWithoutSeedsIsError) {
  CloudModelConfig cfg;
  auto model = MakeDemandModel(cfg);
  EvalContext ctx;  // no seeds
  auto call = MakeModelCall(
      model, {MakeLiteral(Value(1.0)), MakeLiteral(Value(2.0))}, 1);
  EXPECT_EQ(call->Eval(ctx).status().code(), StatusCode::kExecutionError);
}

// ---------------------------------------------------------------------------
// BatchProgram: compiled expressions must be bit-identical to Expr::Eval
// ---------------------------------------------------------------------------

/// Scalar reference: RowProgram::EvalColumn semantics over raw Expr
/// lists (inner row first, then outer aliases 0..j, numeric check on j).
Result<double> RefEvalColumn(const std::vector<ExprPtr>& inner,
                             const std::vector<ExprPtr>& outer,
                             const std::vector<std::string>& names,
                             std::size_t j, std::span<const double> params,
                             std::size_t sample, const SeedVector& seeds,
                             std::uint64_t salt) {
  EvalContext ctx;
  ctx.params = params;
  ctx.sample_id = sample;
  ctx.seeds = &seeds;
  ctx.stream_salt = salt;
  Row inner_row;
  if (!inner.empty()) {
    std::vector<Value> inner_aliases;
    EvalContext inner_ctx = ctx;
    inner_ctx.aliases = &inner_aliases;
    for (const auto& e : inner) {
      JIGSAW_ASSIGN_OR_RETURN(Value v, e->Eval(inner_ctx));
      inner_aliases.push_back(std::move(v));
    }
    inner_row = std::move(inner_aliases);
    ctx.row = &inner_row;
  }
  std::vector<Value> aliases;
  ctx.aliases = &aliases;
  for (std::size_t i = 0; i <= j; ++i) {
    JIGSAW_ASSIGN_OR_RETURN(Value v, outer[i]->Eval(ctx));
    aliases.push_back(std::move(v));
  }
  if (!aliases[j].IsNumeric()) {
    return Status::ExecutionError("column '" + names[j] +
                                  "' is not numeric");
  }
  return aliases[j].AsDouble();
}

BlackBoxPtr MakeNoisyModel() {
  return std::make_shared<CallableBlackBox>(
      "Noisy", std::vector<std::string>{"base"},
      [](std::span<const double> params, RandomStream& rng) {
        return params[0] + rng.NextDouble();
      });
}

TEST(BatchProgramTest, BitIdenticalToInterpreterAcrossBatchGrid) {
  // Mixed shape: broadcast loads, arithmetic, comparisons, CASE with
  // ELSE, AND/OR, and two stochastic call sites (one with lane-uniform
  // args, one fed by another model call).
  auto model = MakeNoisyModel();
  std::vector<ExprPtr> inner = {
      MakeModelCall(model, {MakeLiteral(Value(10.0))}, /*call_site=*/1)};
  std::vector<ExprPtr> outer;
  std::vector<std::string> names = {"demand", "capacity", "overload"};
  outer.push_back(MakeColumnRef(0, "demand"));
  outer.push_back(MakeBinary(
      BinaryOp::kAdd, MakeParamRef(0, "p"),
      MakeModelCall(model, {MakeAliasRef(0, "demand")}, /*call_site=*/2)));
  outer.push_back(MakeCase(
      {{MakeBinary(BinaryOp::kAnd,
                   MakeBinary(BinaryOp::kLt, MakeAliasRef(1, "capacity"),
                              MakeAliasRef(0, "demand")),
                   MakeBinary(BinaryOp::kGt, MakeParamRef(0, "p"),
                              MakeLiteral(Value(0.0)))),
        MakeLiteral(Value(1.0))}},
      MakeLiteral(Value(0.0))));

  auto compiled = CompileBatchProgram(inner, outer, names);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const BatchProgram& program = *compiled.value();

  const std::size_t kSamples = 64;
  SeedVector seeds(0xFEED, kSamples);
  const std::vector<double> params = {2.5};
  for (std::uint64_t salt : {std::uint64_t{0}, std::uint64_t{77}}) {
    for (std::size_t batch : test::GridBatchSizes()) {
      SCOPED_TRACE(testing::Message() << "salt=" << salt
                                      << " batch=" << batch);
      for (std::size_t j = 0; j < outer.size(); ++j) {
        std::vector<double> got(kSamples);
        BatchScratch scratch;
        for (std::size_t begin = 0; begin < kSamples; begin += batch) {
          const std::size_t n = std::min(batch, kSamples - begin);
          BatchProgram::Context ctx;
          ctx.params = params;
          ctx.sample_begin = begin;
          ctx.seeds = &seeds;
          ctx.stream_salt = salt;
          ASSERT_TRUE(program
                          .RunColumn(j, ctx, n,
                                     std::span<double>(got.data() + begin, n),
                                     scratch)
                          .ok());
        }
        for (std::size_t k = 0; k < kSamples; ++k) {
          auto ref =
              RefEvalColumn(inner, outer, names, j, params, k, seeds, salt);
          ASSERT_TRUE(ref.ok());
          EXPECT_EQ(got[k], ref.value()) << "column " << j << " sample " << k;
        }
      }
    }
  }
}

TEST(BatchProgramTest, DivisionByZeroReportsLowestLaneError) {
  // q = 100 / @d with @d fed per lane; lanes 2 and 5 divide by zero, so
  // the batch must fail with exactly the error the serial interpreter
  // hits first (lane 2's).
  std::vector<ExprPtr> outer = {MakeBinary(
      BinaryOp::kDiv, MakeLiteral(Value(100.0)), MakeParamRef(0, "d"))};
  std::vector<std::string> names = {"q"};
  auto compiled = CompileBatchProgram({}, outer, names);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  SeedVector seeds(1, 8);
  const std::vector<double> lanes = {1, 2, 0, 4, 5, 0, 7, 8};
  BatchProgram::LaneParam lane_param{0, lanes};
  BatchProgram::Context ctx;
  ctx.params = std::vector<double>{1.0};
  ctx.lane_params = std::span<const BatchProgram::LaneParam>(&lane_param, 1);
  ctx.seeds = &seeds;
  BatchScratch scratch;
  std::vector<double> out(8);
  Status s = compiled.value()->RunColumn(0, ctx, 8, out, scratch);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_EQ(s.message(), "division by zero");

  // The clean prefix of lanes must still be computable alone.
  Status ok2 = compiled.value()->RunColumn(0, ctx, 2, out, scratch);
  EXPECT_TRUE(ok2.ok()) << ok2.ToString();
  EXPECT_EQ(out[0], 100.0);
  EXPECT_EQ(out[1], 50.0);
}

TEST(BatchProgramTest, LogicalOpsShortCircuitErroringRightOperand) {
  // (d > 0) AND (10 / d > 1): lanes with d == 0 short-circuit to false;
  // the division must not run (let alone raise) there. Matching OR form
  // checks the complementary mask.
  auto guard = MakeBinary(BinaryOp::kGt, MakeParamRef(0, "d"),
                          MakeLiteral(Value(0.0)));
  auto risky = MakeBinary(
      BinaryOp::kGt,
      MakeBinary(BinaryOp::kDiv, MakeLiteral(Value(10.0)),
                 MakeParamRef(0, "d")),
      MakeLiteral(Value(1.0)));
  std::vector<ExprPtr> outer = {
      MakeBinary(BinaryOp::kAnd, guard, risky),
      MakeBinary(BinaryOp::kOr, MakeNot(guard), risky)};
  std::vector<std::string> names = {"and_col", "or_col"};
  auto compiled = CompileBatchProgram({}, outer, names);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  SeedVector seeds(1, 8);
  const std::vector<double> lanes = {4, 0, 20, 0, 5, 0, 0, 2};
  BatchProgram::LaneParam lane_param{0, lanes};
  BatchProgram::Context ctx;
  ctx.params = std::vector<double>{1.0};
  ctx.lane_params = std::span<const BatchProgram::LaneParam>(&lane_param, 1);
  ctx.seeds = &seeds;
  BatchScratch scratch;
  for (std::size_t j = 0; j < outer.size(); ++j) {
    std::vector<double> got(8);
    Status s = compiled.value()->RunColumn(j, ctx, 8, got, scratch);
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (std::size_t k = 0; k < 8; ++k) {
      const std::vector<double> params = {lanes[k]};
      auto ref = RefEvalColumn({}, outer, names, j, params, k, seeds, 0);
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      EXPECT_EQ(got[k], ref.value()) << "column " << j << " lane " << k;
    }
  }
}

TEST(BatchProgramTest, CaseWithoutElseMatchesInterpreterNullSemantics) {
  // CASE WHEN d > 0 THEN d END: lanes failing the WHEN produce NULL; as
  // an output column that is the interpreter's "not numeric" error, and
  // as an intermediate alias it must flow through untouched arithmetic.
  std::vector<ExprPtr> outer = {
      MakeCase({{MakeBinary(BinaryOp::kGt, MakeParamRef(0, "d"),
                            MakeLiteral(Value(0.0))),
                 MakeParamRef(0, "d")}},
               nullptr),
      MakeBinary(BinaryOp::kAdd, MakeAliasRef(0, "maybe"),
                 MakeLiteral(Value(1.0))),
      MakeLiteral(Value(7.0))};
  std::vector<std::string> names = {"maybe", "shifted", "ok"};
  auto compiled = CompileBatchProgram({}, outer, names);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  SeedVector seeds(1, 4);
  BatchProgram::Context ctx;
  ctx.seeds = &seeds;
  BatchScratch scratch;
  std::vector<double> got(4);

  {  // All lanes match: both output columns are clean and identical.
    const std::vector<double> lanes = {1, 2, 3, 4};
    BatchProgram::LaneParam lane_param{0, lanes};
    ctx.lane_params =
        std::span<const BatchProgram::LaneParam>(&lane_param, 1);
    ctx.params = std::vector<double>{1.0};
    for (std::size_t j : {0u, 1u}) {
      Status s = compiled.value()->RunColumn(j, ctx, 4, got, scratch);
      ASSERT_TRUE(s.ok()) << s.ToString();
      for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_EQ(got[k], lanes[k] + (j == 1 ? 1.0 : 0.0));
      }
    }
  }
  {  // A NULL lane: the same error (and message) the interpreter gives.
    const std::vector<double> lanes = {1, -2, 3, 4};
    BatchProgram::LaneParam lane_param{0, lanes};
    ctx.lane_params =
        std::span<const BatchProgram::LaneParam>(&lane_param, 1);
    for (std::size_t j : {0u, 1u}) {
      Status s = compiled.value()->RunColumn(j, ctx, 4, got, scratch);
      const std::vector<double> params = {lanes[1]};
      auto ref = RefEvalColumn({}, outer, names, j, params, 1, seeds, 0);
      ASSERT_FALSE(s.ok());
      ASSERT_FALSE(ref.ok());
      EXPECT_EQ(s.message(), ref.status().message());
    }
    // Column "ok" never touches the NULL register: RunColumn must skip
    // the intermediate columns' numeric checks like EvalColumn does.
    Status s = compiled.value()->RunColumn(2, ctx, 4, got, scratch);
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(got[1], 7.0);
    // RunAll, by contrast, checks every column in order.
    std::vector<double> c0(4), c1(4), c2(4);
    std::vector<double*> cols = {c0.data(), c1.data(), c2.data()};
    Status all = compiled.value()->RunAll(ctx, 4, cols, scratch);
    ASSERT_FALSE(all.ok());
    EXPECT_EQ(all.message(), "column 'maybe' is not numeric");
  }
}

TEST(BatchProgramTest, ModelCallStreamsMatchInterpreterPerSaltAndSite) {
  // Two lexical call sites over the same model must draw independent
  // streams, and a nonzero stream salt must re-derive them exactly as
  // ModelCallExpr does; nested calls force the per-lane dispatch path.
  auto model = MakeNoisyModel();
  std::vector<ExprPtr> outer = {
      MakeBinary(BinaryOp::kSub,
                 MakeModelCall(model, {MakeLiteral(Value(5.0))}, 11),
                 MakeModelCall(model, {MakeLiteral(Value(5.0))}, 12)),
      MakeModelCall(model,
                    {MakeModelCall(model, {MakeLiteral(Value(1.0))}, 13)},
                    14)};
  std::vector<std::string> names = {"diff", "nested"};
  auto compiled = CompileBatchProgram({}, outer, names);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  const std::size_t kSamples = 32;
  SeedVector seeds(0xABCD, kSamples);
  BatchScratch scratch;
  for (std::uint64_t salt : {std::uint64_t{0}, std::uint64_t{0x5A17}}) {
    for (std::size_t j = 0; j < outer.size(); ++j) {
      BatchProgram::Context ctx;
      ctx.seeds = &seeds;
      ctx.stream_salt = salt;
      std::vector<double> got(kSamples);
      Status s = compiled.value()->RunColumn(j, ctx, kSamples, got, scratch);
      ASSERT_TRUE(s.ok()) << s.ToString();
      for (std::size_t k = 0; k < kSamples; ++k) {
        auto ref = RefEvalColumn({}, outer, names, j, {}, k, seeds, salt);
        ASSERT_TRUE(ref.ok());
        EXPECT_EQ(got[k], ref.value())
            << "salt " << salt << " column " << j << " sample " << k;
      }
    }
  }
}

TEST(BatchProgramTest, ModelArgErrorPrecedenceMatchesInterpreter) {
  // F(NULL-able, erroring) must report the interpreter's first failure:
  // argument i is numeric-checked before argument i+1 ever evaluates, so
  // a NULL first argument wins over a division by zero in the second.
  auto two_arg = std::make_shared<CallableBlackBox>(
      "F", std::vector<std::string>{"a", "b"},
      [](std::span<const double> params, RandomStream&) {
        return params[0] + params[1];
      });
  std::vector<ExprPtr> outer = {MakeModelCall(
      two_arg,
      {MakeCase({{MakeBinary(BinaryOp::kLt, MakeParamRef(0, "p"),
                             MakeLiteral(Value(0.0))),
                  MakeLiteral(Value(1.0))}},
                nullptr),
       MakeBinary(BinaryOp::kDiv, MakeLiteral(Value(1.0)),
                  MakeParamRef(0, "p"))},
      /*call_site=*/1)};
  std::vector<std::string> names = {"x"};
  auto compiled = CompileBatchProgram({}, outer, names);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  SeedVector seeds(1, 4);
  // p = 0: first argument is NULL *and* the second divides by zero.
  const std::vector<double> lanes = {-1, 0, -2, -3};
  BatchProgram::LaneParam lane_param{0, lanes};
  BatchProgram::Context ctx;
  ctx.params = std::vector<double>{1.0};
  ctx.lane_params = std::span<const BatchProgram::LaneParam>(&lane_param, 1);
  ctx.seeds = &seeds;
  BatchScratch scratch;
  std::vector<double> got(4);
  Status s = compiled.value()->RunColumn(0, ctx, 4, got, scratch);
  auto ref = RefEvalColumn({}, outer, names, 0, {{0.0}}, 1, seeds, 0);
  ASSERT_FALSE(s.ok());
  ASSERT_FALSE(ref.ok());
  EXPECT_EQ(s.message(), ref.status().message());
  EXPECT_EQ(s.message(), "non-numeric argument to F");

  // Without seeds the interpreter fails before evaluating any argument;
  // the compiled program must prefer that error over the div-by-zero.
  BatchProgram::Context no_seeds = ctx;
  no_seeds.seeds = nullptr;
  Status s2 = compiled.value()->RunColumn(0, no_seeds, 4, got, scratch);
  ASSERT_FALSE(s2.ok());
  EXPECT_EQ(s2.message(),
            "stochastic expression evaluated without a seed vector");
}

TEST(BatchProgramTest, ModelCallWithoutSeedsMatchesInterpreterError) {
  auto model = MakeNoisyModel();
  std::vector<ExprPtr> outer = {
      MakeModelCall(model, {MakeLiteral(Value(1.0))}, 1)};
  std::vector<std::string> names = {"x"};
  auto compiled = CompileBatchProgram({}, outer, names);
  ASSERT_TRUE(compiled.ok());
  BatchProgram::Context ctx;  // no seeds
  BatchScratch scratch;
  std::vector<double> got(4);
  Status s = compiled.value()->RunColumn(0, ctx, 4, got, scratch);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(),
            "stochastic expression evaluated without a seed vector");
}

TEST(BatchProgramTest, UncompilableExpressionsReportReasons) {
  // String literals have no numeric batch form; the reason must say so.
  std::vector<ExprPtr> with_string = {
      MakeCase({{MakeBinary(BinaryOp::kEq, MakeLiteral(Value(std::string("a"))),
                            MakeLiteral(Value(std::string("b")))),
                 MakeLiteral(Value(1.0))}},
               MakeLiteral(Value(2.0)))};
  std::vector<std::string> names = {"x"};
  auto r1 = CompileBatchProgram({}, with_string, names);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("string literal"), std::string::npos);

  // INT literals carry 64-bit integer arithmetic the double VM cannot
  // reproduce bit-for-bit.
  std::vector<ExprPtr> with_int = {MakeBinary(
      BinaryOp::kAdd, MakeLiteral(Value(std::int64_t{1})),
      MakeLiteral(Value(std::int64_t{2})))};
  auto r2 = CompileBatchProgram({}, with_int, names);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("INT literal"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

TEST(OperatorTest, ScanFilterProject) {
  const Table t = MakeToyTable();
  EvalContext ctx;
  auto plan = MakeProject(
      MakeFilter(MakeTableScan(&t),
                 MakeBinary(BinaryOp::kGe, MakeColumnRef(1, "score"),
                            MakeLiteral(Value(3.0)))),
      {MakeColumnRef(0, "id"),
       MakeBinary(BinaryOp::kMul, MakeColumnRef(1, "score"),
                  MakeLiteral(Value(2.0)))},
      {"id", "double_score"});
  auto result = ExecuteToTable(*plan, ctx);
  ASSERT_TRUE(result.ok());
  // Rows with score >= 3: ids 2,3,4.
  ASSERT_EQ(result.value().num_rows(), 3u);
  EXPECT_DOUBLE_EQ(result.value().row(0)[1].AsDouble(), 6.0);
}

TEST(OperatorTest, ProjectAliasesVisibleToLaterItems) {
  EvalContext ctx;
  auto plan = MakeProject(
      MakeDualScan(),
      {MakeLiteral(Value(5.0)),
       MakeBinary(BinaryOp::kAdd, MakeAliasRef(0, "a"),
                  MakeLiteral(Value(1.0)))},
      {"a", "b"});
  auto result = ExecuteToTable(*plan, ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result.value().row(0)[1].AsDouble(), 6.0);
}

Table MakeDeptTable() {
  Schema schema(std::vector<Column>{{"dept_id", ValueType::kInt},
                                    {"dept", ValueType::kString}});
  Table t(schema);
  MustAddRow(t, {Value(std::int64_t{0}), Value(std::string("eng"))});
  MustAddRow(t, {Value(std::int64_t{1}), Value(std::string("ops"))});
  return t;
}

Table MakeEmpTable() {
  Schema schema(std::vector<Column>{{"name", ValueType::kString},
                                    {"dept_id", ValueType::kInt}});
  Table t(schema);
  MustAddRow(t, {Value(std::string("ada")), Value(std::int64_t{0})});
  MustAddRow(t, {Value(std::string("bob")), Value(std::int64_t{1})});
  MustAddRow(t, {Value(std::string("cyd")), Value(std::int64_t{0})});
  MustAddRow(t,
             {Value(std::string("dee")), Value(std::int64_t{9})});  // dangling
  return t;
}

TEST(OperatorTest, HashJoinMatchesNestedLoopJoin) {
  const Table emp = MakeEmpTable();
  const Table dept = MakeDeptTable();
  EvalContext ctx;

  auto nlj = MakeNestedLoopJoin(
      MakeTableScan(&emp), MakeTableScan(&dept),
      MakeBinary(BinaryOp::kEq, MakeColumnRef(1, "emp.dept_id"),
                 MakeColumnRef(2, "dept.dept_id")));
  auto hash = MakeHashJoin(MakeTableScan(&emp), MakeTableScan(&dept), {1},
                           {0});
  auto a = ExecuteToTable(*nlj, ctx);
  auto b = ExecuteToTable(*hash, ctx);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().num_rows(), 3u);
  ASSERT_EQ(b.value().num_rows(), 3u);
  // Same multiset of joined names (order may differ).
  std::vector<std::string> na, nb;
  for (const auto& r : a.value().rows()) na.push_back(r[0].AsString());
  for (const auto& r : b.value().rows()) nb.push_back(r[0].AsString());
  std::sort(na.begin(), na.end());
  std::sort(nb.begin(), nb.end());
  EXPECT_EQ(na, nb);
}

TEST(OperatorTest, HashAggregateGroupsAndFolds) {
  const Table emp = MakeEmpTable();
  EvalContext ctx;
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kCount, nullptr, "n"});
  auto plan = MakeHashAggregate(MakeTableScan(&emp),
                                {MakeColumnRef(1, "dept_id")}, {"dept_id"},
                                std::move(aggs));
  auto result = ExecuteToTable(*plan, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 3u);  // depts 0,1,9
  std::int64_t total = 0;
  for (const auto& r : result.value().rows()) total += r[1].AsInt();
  EXPECT_EQ(total, 4);
}

TEST(OperatorTest, GlobalAggregateOnEmptyInputYieldsOneRow) {
  Table empty(Schema(std::vector<Column>{{"x", ValueType::kDouble}}));
  EvalContext ctx;
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, MakeColumnRef(0, "x"), "s"});
  aggs.push_back(AggSpec{AggKind::kCount, nullptr, "n"});
  auto plan = MakeHashAggregate(MakeTableScan(&empty), {}, {}, std::move(aggs));
  auto result = ExecuteToTable(*plan, ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result.value().row(0)[0].AsDouble(), 0.0);
  EXPECT_EQ(result.value().row(0)[1].AsInt(), 0);
}

TEST(OperatorTest, AggregateKinds) {
  const Table t = MakeToyTable();  // scores 0, 1.5, 3, 4.5, 6
  EvalContext ctx;
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, MakeColumnRef(1, "score"), "sum"});
  aggs.push_back(AggSpec{AggKind::kAvg, MakeColumnRef(1, "score"), "avg"});
  aggs.push_back(AggSpec{AggKind::kMin, MakeColumnRef(1, "score"), "min"});
  aggs.push_back(AggSpec{AggKind::kMax, MakeColumnRef(1, "score"), "max"});
  auto plan = MakeHashAggregate(MakeTableScan(&t), {}, {}, std::move(aggs));
  auto result = ExecuteToTable(*plan, ctx);
  ASSERT_TRUE(result.ok());
  const Row& r = result.value().row(0);
  EXPECT_DOUBLE_EQ(r[0].AsDouble(), 15.0);
  EXPECT_DOUBLE_EQ(r[1].AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(r[2].AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(r[3].AsDouble(), 6.0);
}

TEST(OperatorTest, SortAscendingAndDescending) {
  const Table t = MakeToyTable();
  EvalContext ctx;
  auto asc = ExecuteToTable(
      *MakeSort(MakeTableScan(&t), {SortKey{1, true}}), ctx);
  ASSERT_TRUE(asc.ok());
  EXPECT_DOUBLE_EQ(asc.value().row(0)[1].AsDouble(), 0.0);
  auto desc = ExecuteToTable(
      *MakeSort(MakeTableScan(&t), {SortKey{1, false}}), ctx);
  ASSERT_TRUE(desc.ok());
  EXPECT_DOUBLE_EQ(desc.value().row(0)[1].AsDouble(), 6.0);
}

TEST(OperatorTest, LimitTruncates) {
  const Table t = MakeToyTable();
  EvalContext ctx;
  auto result = ExecuteToTable(*MakeLimit(MakeTableScan(&t), 2), ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 2u);
  auto zero = ExecuteToTable(*MakeLimit(MakeTableScan(&t), 0), ctx);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.value().num_rows(), 0u);
}

// ---------------------------------------------------------------------------
// VG tables & world cache
// ---------------------------------------------------------------------------

TEST(VGTableTest, GenerateIsDeterministicPerWorld) {
  auto users = MakeUsersVGTable(100, 0.05, 0.05, 0.3);
  SeedVector seeds(77, 10);
  auto w0a = users->Generate(0, seeds);
  auto w0b = users->Generate(0, seeds);
  auto w1 = users->Generate(1, seeds);
  ASSERT_TRUE(w0a.ok());
  ASSERT_TRUE(w0b.ok());
  ASSERT_TRUE(w1.ok());
  ASSERT_EQ(w0a.value().num_rows(), 100u);
  // Same world identical; different world differs in requirements but not
  // in population data.
  bool requirement_differs = false;
  for (std::size_t r = 0; r < 100; ++r) {
    EXPECT_TRUE(w0a.value().row(r)[2] == w0b.value().row(r)[2]);
    EXPECT_TRUE(w0a.value().row(r)[1] == w1.value().row(r)[1]);  // signup
    if (!(w0a.value().row(r)[2] == w1.value().row(r)[2])) {
      requirement_differs = true;
    }
  }
  EXPECT_TRUE(requirement_differs);
}

TEST(WorldCacheTest, GeneratesOncePerWorld) {
  auto users = MakeUsersVGTable(50, 0.05, 0.05, 0.3);
  SeedVector seeds(78, 10);
  WorldCache cache;
  auto a = cache.GetOrGenerate(*users, 3, seeds);
  auto b = cache.GetOrGenerate(*users, 3, seeds);
  auto c = cache.GetOrGenerate(*users, 4, seeds);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value(), b.value());  // same pointer: cached
  EXPECT_NE(a.value(), c.value());
  EXPECT_EQ(cache.generation_count(), 2u);
}

// ---------------------------------------------------------------------------
// Monte Carlo executor
// ---------------------------------------------------------------------------

TEST(MonteCarloTest, EstimatesStochasticScalarQuery) {
  CloudModelConfig mcfg;
  auto model = MakeDemandModel(mcfg);
  RunConfig cfg;
  cfg.num_samples = 2000;
  MonteCarloExecutor executor(cfg);

  auto factory = [&]() -> Result<PlanNodePtr> {
    return MakeProject(
        MakeDualScan(),
        {MakeModelCall(model,
                       {MakeParamRef(0, "week"), MakeLiteral(Value(52.0))},
                       1)},
        {"demand"});
  };
  const std::vector<double> params = {25.0};
  auto result = executor.Run(factory, params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().worlds, 2000u);
  const auto& demand = result.value().columns.at("demand");
  EXPECT_NEAR(demand.mean, 25.0, 0.3);
  EXPECT_NEAR(demand.stddev, std::sqrt(0.1 * 25.0), 0.2);
}

TEST(MonteCarloTest, MultiRowResultIsError) {
  const Table t = MakeToyTable();
  RunConfig cfg;
  cfg.num_samples = 2;
  MonteCarloExecutor executor(cfg);
  auto factory = [&]() -> Result<PlanNodePtr> { return MakeTableScan(&t); };
  EXPECT_EQ(executor.Run(factory, {}).status().code(),
            StatusCode::kExecutionError);
}

// ---------------------------------------------------------------------------
// Parallel Monte Carlo (possible-worlds fan-out)
// ---------------------------------------------------------------------------

void ExpectMetricsBitIdentical(const OutputMetrics& a,
                               const OutputMetrics& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.std_error, b.std_error);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
  ASSERT_EQ(a.histogram.has_value(), b.histogram.has_value());
  if (a.histogram) EXPECT_TRUE(*a.histogram == *b.histogram);
  EXPECT_EQ(a.samples, b.samples);
}

void ExpectResultsBitIdentical(const MonteCarloResult& a,
                               const MonteCarloResult& b) {
  EXPECT_EQ(a.worlds, b.worlds);
  ASSERT_EQ(a.columns.size(), b.columns.size());
  for (const auto& [name, metrics] : a.columns) {
    ASSERT_TRUE(b.columns.count(name)) << name;
    ExpectMetricsBitIdentical(metrics, b.columns.at(name));
  }
}

MonteCarloExecutor::PlanFactory TwoColumnFactory(
    const BlackBoxPtr& demand, const BlackBoxPtr& capacity) {
  return [=]() -> Result<PlanNodePtr> {
    return MakeProject(
        MakeDualScan(),
        {MakeModelCall(demand,
                       {MakeParamRef(0, "week"), MakeLiteral(Value(52.0))},
                       1),
         MakeModelCall(capacity,
                       {MakeParamRef(0, "week"), MakeLiteral(Value(12.0)),
                        MakeLiteral(Value(30.0))},
                       2)},
        {"demand", "capacity"});
  };
}

TEST(MonteCarloParallelTest, BitIdenticalAcrossThreadsAndBatches) {
  CloudModelConfig mcfg;
  auto demand = MakeDemandModel(mcfg);
  auto capacity = MakeCapacityModel(mcfg);
  const std::vector<double> params = {25.0};

  RunConfig base;
  base.num_samples = 200;
  base.keep_samples = true;
  MonteCarloExecutor serial(base);
  auto reference = serial.Run(TwoColumnFactory(demand, capacity), params);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference.value().columns.size(), 2u);

  test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
    RunConfig cfg = base;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    MonteCarloExecutor executor(cfg);
    auto result = executor.Run(TwoColumnFactory(demand, capacity), params);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectResultsBitIdentical(reference.value(), result.value());
  });
}

TEST(MonteCarloParallelTest, SharedWorldCacheIsDeterministic) {
  auto users = MakeUsersVGTable(80, 0.05, 0.05, 0.3);
  const std::vector<double> params = {15.0};

  auto run = [&](std::size_t threads, std::size_t batch) {
    RunConfig cfg;
    cfg.num_samples = 60;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    MonteCarloExecutor executor(cfg);
    // Every world's task hits the shared cache concurrently; the cache
    // must hand back identical realizations and count one generation per
    // world regardless of schedule.
    auto cache = std::make_shared<WorldCache>();
    auto factory = [users, cache]() -> Result<PlanNodePtr> {
      std::vector<AggSpec> aggs;
      aggs.push_back(
          AggSpec{AggKind::kSum, MakeColumnRef(2, "requirement"), "total"});
      return MakeHashAggregate(
          MakeFilter(MakeCachedVGScan(users, cache.get()),
                     MakeBinary(BinaryOp::kLe,
                                MakeColumnRef(1, "signup_week"),
                                MakeParamRef(0, "week"))),
          {}, {}, std::move(aggs));
    };
    auto result = executor.Run(factory, params);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(cache->generation_count(), 60u);
    return std::move(result).value();
  };

  const MonteCarloResult reference = run(1, 64);
  test::ForEachParallelGridPoint([&](std::size_t threads,
                                     std::size_t batch) {
    ExpectResultsBitIdentical(reference, run(threads, batch));
  });
}

/// Emits one row whose single column's value (and type) is produced from
/// the world id — the knob the type-locking regression tests need.
class WorldValueNode final : public PlanNode {
 public:
  explicit WorldValueNode(std::function<Value(std::size_t)> fn)
      : fn_(std::move(fn)),
        schema_(std::vector<Column>{{"x", ValueType::kDouble}}) {}

  const Schema& schema() const override { return schema_; }

  Status Open(EvalContext& ctx) override {
    world_ = ctx.sample_id;
    done_ = false;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (done_) return false;
    done_ = true;
    *out = Row{fn_(world_)};
    return true;
  }

  void Close() override {}

 private:
  std::function<Value(std::size_t)> fn_;
  Schema schema_;
  std::size_t world_ = 0;
  bool done_ = true;
};

TEST(MonteCarloParallelTest, ColumnTypeFlipIsErrorNotSilentSkew) {
  // Numeric in world 0, string from world 5 on: before the locking fix
  // the later worlds were silently dropped from the column's statistics.
  auto make_factory = []() -> MonteCarloExecutor::PlanFactory {
    return []() -> Result<PlanNodePtr> {
      return PlanNodePtr(std::make_unique<WorldValueNode>(
          [](std::size_t world) {
            return world < 5 ? Value(1.0 + static_cast<double>(world))
                             : Value(std::string("oops"));
          }));
    };
  };
  for (std::size_t threads : {1u, 4u}) {
    RunConfig cfg;
    cfg.num_samples = 40;
    cfg.num_threads = threads;
    cfg.batch_size = 7;
    MonteCarloExecutor executor(cfg);
    auto result = executor.Run(make_factory(), {});
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
    // The reported world is the serial run's: the first flipped one.
    EXPECT_NE(result.status().message().find("world 5"), std::string::npos)
        << result.status().message();
  }
}

TEST(MonteCarloParallelTest, NonNumericColumnIsExcludedNotEmpty) {
  // A column that is non-numeric in every world has no distribution;
  // before the fix it produced a zero-sample Finalize() summary.
  CloudModelConfig mcfg;
  auto demand = MakeDemandModel(mcfg);
  auto factory = [&]() -> Result<PlanNodePtr> {
    return MakeProject(
        MakeDualScan(),
        {MakeLiteral(Value(std::string("label"))),
         MakeModelCall(demand,
                       {MakeParamRef(0, "week"), MakeLiteral(Value(52.0))},
                       1)},
        {"tag", "demand"});
  };
  RunConfig cfg;
  cfg.num_samples = 20;
  MonteCarloExecutor executor(cfg);
  const std::vector<double> params = {10.0};
  auto result = executor.Run(factory, params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().columns.count("tag"), 0u);
  ASSERT_EQ(result.value().columns.count("demand"), 1u);
  EXPECT_EQ(result.value().columns.at("demand").count, 20);
}

TEST(MonteCarloParallelTest, NaNSamplesAreCountedNotUndefinedBehavior) {
  // NaN in odd worlds: the histogram must drop (and count) them instead
  // of feeding floor(NaN) to an integer cast. Runs under ASan/UBSan in
  // CI, which is what catches the pre-fix cast.
  auto factory = []() -> Result<PlanNodePtr> {
    return PlanNodePtr(std::make_unique<WorldValueNode>(
        [](std::size_t world) {
          return world % 2 == 1
                     ? Value(std::numeric_limits<double>::quiet_NaN())
                     : Value(1.0);
        }));
  };
  RunConfig cfg;
  cfg.num_samples = 40;
  cfg.num_threads = 2;
  cfg.batch_size = 7;
  MonteCarloExecutor executor(cfg);
  auto result = executor.Run(factory, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& x = result.value().columns.at("x");
  EXPECT_EQ(x.count, 40);
  EXPECT_DOUBLE_EQ(x.p50, 1.0);  // quantiles are over the finite mass
  ASSERT_TRUE(x.histogram.has_value());
  EXPECT_EQ(x.histogram->total_count(), 20);
  EXPECT_EQ(x.histogram->dropped_count(), 20);
}

// ---------------------------------------------------------------------------
// Two-axis sweeps (MONTECARLO OVER): FoldPointWorlds / FoldPointWorldSpans
// must reproduce N standalone single-point folds bit-for-bit at every
// points x batch x threads grid cell, and name both coordinates on error.
// ---------------------------------------------------------------------------

TEST(MonteCarloSweepTest, SpanSweepBitIdenticalToPerPointFolds) {
  const std::vector<std::string> names = {"a", "b"};
  // Deterministic point- and world-dependent cell values.
  auto cell_value = [](std::size_t point, std::size_t world,
                       std::size_t slot) {
    return static_cast<double>(point * 1000 + world * 2 + slot) * 1.25;
  };
  auto run_span = [&](std::size_t point, std::size_t begin,
                      std::size_t count, std::span<double* const> columns) {
    for (std::size_t slot = 0; slot < columns.size(); ++slot) {
      for (std::size_t i = 0; i < count; ++i) {
        columns[slot][i] = cell_value(point, begin + i, slot);
      }
    }
    return Status::OK();
  };

  const std::size_t kWorlds = 83;  // not a multiple of any grid batch
  for (std::size_t npoints : {1u, 3u, 9u}) {
    // Reference: one standalone FoldWorldSpans per point, serial.
    RunConfig ref_cfg;
    ref_cfg.batch_size = 64;
    ref_cfg.keep_samples = true;
    std::vector<std::map<std::string, OutputMetrics>> expected;
    for (std::size_t point = 0; point < npoints; ++point) {
      auto standalone = FoldWorldSpans(
          names, kWorlds, ref_cfg, nullptr,
          [&](std::size_t begin, std::size_t count,
              std::span<double* const> columns) {
            return run_span(point, begin, count, columns);
          });
      ASSERT_TRUE(standalone.ok()) << standalone.status().ToString();
      expected.push_back(std::move(standalone).value());
    }

    test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
      SCOPED_TRACE(testing::Message() << "points=" << npoints);
      RunConfig cfg;
      cfg.batch_size = batch;
      cfg.keep_samples = true;
      ThreadPool pool(threads);
      auto sweep =
          FoldPointWorldSpans(names, npoints, kWorlds, cfg,
                              threads > 1 ? &pool : nullptr, run_span);
      ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
      ASSERT_EQ(sweep.value().size(), npoints);
      for (std::size_t point = 0; point < npoints; ++point) {
        SCOPED_TRACE(testing::Message() << "point " << point);
        ASSERT_EQ(sweep.value()[point].size(), names.size());
        for (const auto& [name, metrics] : expected[point]) {
          ExpectMetricsBitIdentical(metrics,
                                    sweep.value()[point].at(name));
        }
      }
    });
  }
}

TEST(MonteCarloSweepTest, WindowedStagingIsBitIdenticalAndOrdersErrors) {
  // Shrink the staged-doubles budget until every window holds exactly one
  // point: the streamed fold must reproduce the whole-grid results and
  // still surface the serial loop's error, including across windows.
  internal::g_fold_staged_budget_override = 1;  // floor: 1 point/window

  const std::vector<std::string> names = {"x"};
  auto run_span = [](std::size_t point, std::size_t begin,
                     std::size_t count, std::span<double* const> columns) {
    for (std::size_t i = 0; i < count; ++i) {
      columns[0][i] = static_cast<double>(point * 100 + begin + i);
    }
    return Status::OK();
  };
  RunConfig cfg;
  cfg.batch_size = 7;
  ThreadPool pool(2);
  auto windowed = FoldPointWorldSpans(names, 5, 20, cfg, &pool, run_span);
  internal::g_fold_staged_budget_override = 0;
  auto whole = FoldPointWorldSpans(names, 5, 20, cfg, &pool, run_span);
  ASSERT_TRUE(windowed.ok()) << windowed.status().ToString();
  ASSERT_TRUE(whole.ok());
  ASSERT_EQ(windowed.value().size(), 5u);
  for (std::size_t point = 0; point < 5; ++point) {
    SCOPED_TRACE(testing::Message() << "point " << point);
    ExpectMetricsBitIdentical(whole.value()[point].at("x"),
                              windowed.value()[point].at("x"));
  }

  // An error in a late window (point 3, world 12) is surfaced with the
  // same coordinates as the unwindowed run, serial and parallel.
  auto failing = [](std::size_t point, std::size_t begin, std::size_t count,
                    std::span<double* const> columns) {
    for (std::size_t i = 0; i < count; ++i) {
      if (point == 3 && begin + i >= 12) {
        return Status::ExecutionError("world 12 exploded");
      }
      columns[0][i] = 1.0;
    }
    return Status::OK();
  };
  internal::g_fold_staged_budget_override = 1;
  auto serial = FoldPointWorldSpans(names, 5, 20, cfg, nullptr, failing);
  auto parallel = FoldPointWorldSpans(names, 5, 20, cfg, &pool, failing);
  internal::g_fold_staged_budget_override = 0;
  auto reference = FoldPointWorldSpans(names, 5, 20, cfg, nullptr, failing);
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(serial.status(), parallel.status());
  EXPECT_EQ(serial.status(), reference.status());
  EXPECT_NE(serial.status().message().find("sweep point 3"),
            std::string::npos);
}

TEST(MonteCarloSweepTest, ExecutorSweepBitIdenticalToStandaloneRuns) {
  CloudModelConfig mcfg;
  auto demand = MakeDemandModel(mcfg);
  auto capacity = MakeCapacityModel(mcfg);
  const std::vector<std::vector<double>> valuations = {{10.0},
                                                       {20.0},
                                                       {30.0}};

  RunConfig base;
  base.num_samples = 100;
  base.keep_samples = true;
  std::vector<MonteCarloResult> expected;
  for (const auto& v : valuations) {
    MonteCarloExecutor standalone(base);
    auto r = standalone.Run(TwoColumnFactory(demand, capacity), v);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(r).value());
  }

  test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
    RunConfig cfg = base;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    MonteCarloExecutor executor(cfg);
    auto sweep =
        executor.RunSweep(TwoColumnFactory(demand, capacity), valuations);
    ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
    ASSERT_EQ(sweep.value().size(), valuations.size());
    for (std::size_t point = 0; point < valuations.size(); ++point) {
      SCOPED_TRACE(testing::Message() << "point " << point);
      ExpectResultsBitIdentical(expected[point], sweep.value()[point]);
    }
  });
}

TEST(MonteCarloSweepTest, EmptySweepAxes) {
  RunConfig cfg;
  cfg.num_samples = 0;
  MonteCarloExecutor executor(cfg);
  auto no_worlds = executor.RunSweep(
      []() -> Result<PlanNodePtr> {
        return Status::Internal("plan factory must not run");
      },
      std::vector<std::vector<double>>(3));
  ASSERT_TRUE(no_worlds.ok()) << no_worlds.status().ToString();
  ASSERT_EQ(no_worlds.value().size(), 3u);
  for (const auto& point : no_worlds.value()) {
    EXPECT_TRUE(point.columns.empty());
  }

  auto no_points = executor.RunSweep(
      []() -> Result<PlanNodePtr> {
        return Status::Internal("plan factory must not run");
      },
      {});
  ASSERT_TRUE(no_points.ok());
  EXPECT_TRUE(no_points.value().empty());
}

TEST(MonteCarloSweepTest, TypeFlipErrorNamesPointAndWorld) {
  // Point 2's column is numeric in world 0 but a string from world 5 on;
  // the surfaced error must name both coordinates and be identical at
  // every schedule. Point 0/1 stay clean, so the serial point-by-point
  // loop reaches point 2 and reports its first flipped world.
  auto run_world = [](std::size_t point,
                      std::size_t world) -> Result<Table> {
    // The flipped worlds declare a string schema (AddRow validates
    // declared types now); the fold's layout check keys on the *value's*
    // numeric-ness, so the surfaced error is unchanged.
    if (point == 2 && world >= 5) {
      Table t(Schema({{"x", ValueType::kString}}));
      JIGSAW_RETURN_IF_ERROR(t.AddRow({Value(std::string("oops"))}));
      return t;
    }
    Table t(Schema({{"x", ValueType::kDouble}}));
    JIGSAW_RETURN_IF_ERROR(
        t.AddRow({Value(static_cast<double>(point * 100 + world))}));
    return t;
  };

  Status serial;
  test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
    RunConfig cfg;
    cfg.batch_size = batch;
    ThreadPool pool(threads);
    auto result = FoldPointWorlds(4, 40, cfg,
                                  threads > 1 ? &pool : nullptr, run_world);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
    EXPECT_NE(result.status().message().find("sweep point 2"),
              std::string::npos)
        << result.status().ToString();
    EXPECT_NE(result.status().message().find("world 5"), std::string::npos)
        << result.status().ToString();
    if (serial.ok()) serial = result.status();  // first grid cell is serial
    EXPECT_EQ(serial, result.status());
  });

  // A world-0 flip surfaces as that point's layout-lock failure: the
  // one-row check and layout live on world 0, so a point whose very first
  // world misbehaves is named too.
  auto flip0 = [](std::size_t point, std::size_t world) -> Result<Table> {
    if (point == 1 && world == 0) {
      return Status::ExecutionError("world 0 exploded");
    }
    Table t(Schema({{"x", ValueType::kDouble}}));
    JIGSAW_RETURN_IF_ERROR(t.AddRow({Value(1.0)}));
    return t;
  };
  RunConfig cfg;
  cfg.batch_size = 7;
  auto result = FoldPointWorlds(3, 20, cfg, nullptr, flip0);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("sweep point 1"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("world 0 exploded"),
            std::string::npos);
}

TEST(LayeredEngineTest, AgreesWithMonteCarloExecutor) {
  CloudModelConfig mcfg;
  auto model = MakeDemandModel(mcfg);
  RunConfig cfg;
  cfg.num_samples = 500;
  LayeredEngine layered(cfg);
  MonteCarloExecutor direct(cfg);

  auto factory = [&]() -> Result<PlanNodePtr> {
    return MakeProject(
        MakeDualScan(),
        {MakeModelCall(model,
                       {MakeParamRef(0, "week"), MakeLiteral(Value(52.0))},
                       1)},
        {"demand"});
  };
  const std::vector<double> params = {16.0};
  auto a = layered.RunPoint(factory, params);
  auto b = direct.Run(factory, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Identical seeds and plans: close up to CSV text round-trip precision.
  EXPECT_NEAR(a.value().columns.at("demand").mean,
              b.value().columns.at("demand").mean, 1e-9);
  EXPECT_EQ(layered.stats().plans_built, 500u);
  EXPECT_EQ(layered.stats().rows_serialized, 500u);
}

TEST(LayeredEngineTest, WorldCacheAmortizesAcrossPoints) {
  auto users = MakeUsersVGTable(200, 0.05, 0.05, 0.3);
  RunConfig cfg;
  cfg.num_samples = 20;
  LayeredEngine layered(cfg);

  auto factory = [&]() -> Result<PlanNodePtr> {
    std::vector<AggSpec> aggs;
    aggs.push_back(
        AggSpec{AggKind::kSum, MakeColumnRef(2, "requirement"), "total"});
    return MakeHashAggregate(
        MakeFilter(MakeCachedVGScan(users, &layered.world_cache()),
                   MakeBinary(BinaryOp::kLe, MakeColumnRef(1, "signup_week"),
                              MakeParamRef(0, "week"))),
        {}, {}, std::move(aggs));
  };

  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{10, 19, 1}}).ok());
  auto results = layered.RunSweep(factory, space);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results.value().size(), 10u);
  // 10 points x 20 worlds = 200 queries, but only 20 world generations.
  EXPECT_EQ(layered.world_cache().generation_count(), 20u);
  // Totals grow with the active population.
  EXPECT_GT(results.value().back().columns.at("total").mean,
            results.value().front().columns.at("total").mean);
}

}  // namespace
}  // namespace jigsaw::pdb
